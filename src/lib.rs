//! Meta-crate for the ADAMANT reproduction workspace; see README.md.
#![forbid(unsafe_code)]
pub use adamant;

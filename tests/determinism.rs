//! Full-stack determinism: identical configurations and seeds reproduce
//! bit-identical results across every layer of the system.

use adamant::{AppParams, BandwidthClass, Environment, LabeledDataset, Scenario};
use adamant_dds::DdsImplementation;
use adamant_netsim::{MachineClass, SimDuration};
use adamant_transport::{ProtocolKind, TransportConfig};

fn env() -> Environment {
    Environment::new(
        MachineClass::Pc850,
        BandwidthClass::Mbps100,
        DdsImplementation::OpenDds,
        4,
    )
}

#[test]
fn scenario_runs_are_reproducible() {
    for kind in [
        ProtocolKind::Udp,
        ProtocolKind::Nakcast {
            timeout: SimDuration::from_millis(10),
        },
        ProtocolKind::Ricochet { r: 4, c: 3 },
        ProtocolKind::Ackcast {
            rto: SimDuration::from_millis(20),
        },
    ] {
        let run = || {
            Scenario::paper(env(), AppParams::new(4, 50), 1234)
                .with_samples(400)
                .run(TransportConfig::new(kind))
        };
        assert_eq!(run(), run(), "{kind} must be deterministic");
    }
}

#[test]
fn different_seeds_differ() {
    let run = |seed: u64| {
        Scenario::paper(env(), AppParams::new(4, 50), seed)
            .with_samples(400)
            .run(TransportConfig::new(ProtocolKind::Ricochet { r: 4, c: 3 }))
    };
    assert_ne!(run(1), run(2));
}

#[test]
fn dataset_measurement_is_reproducible() {
    let configs = vec![(env(), AppParams::new(3, 25))];
    let a = LabeledDataset::measure(&configs, 300, 2);
    let b = LabeledDataset::measure(&configs, 300, 2);
    assert_eq!(a, b);
}

#[test]
fn trained_selectors_are_reproducible() {
    use adamant::{ProtocolSelector, SelectorConfig};
    let configs = vec![
        (env(), AppParams::new(3, 25)),
        (
            Environment::new(
                MachineClass::Pc3000,
                BandwidthClass::Gbps1,
                DdsImplementation::OpenSplice,
                5,
            ),
            AppParams::new(3, 25),
        ),
    ];
    let dataset = LabeledDataset::measure(&configs, 300, 2);
    let (a, outcome_a) = ProtocolSelector::train_from(&dataset, &SelectorConfig::default());
    let (b, outcome_b) = ProtocolSelector::train_from(&dataset, &SelectorConfig::default());
    assert_eq!(outcome_a, outcome_b);
    assert_eq!(a, b);
}

//! Integration of the runtime-adaptation loop with the DDS status model.

use adamant::{
    AdaptiveController, AdaptiveTimeline, AppParams, BandwidthClass, Environment, LabeledDataset,
    Phase, ProtocolSelector, SelectorConfig,
};
use adamant_dds::{DdsImplementation, DomainParticipant, QosProfile, ReaderStatuses};
use adamant_metrics::MetricKind;
use adamant_netsim::{MachineClass, SimDuration, SimTime, Simulation};
use adamant_transport::{ant, AppSpec, ProtocolKind, TransportConfig};

fn fast() -> Environment {
    Environment::new(
        MachineClass::Pc3000,
        BandwidthClass::Gbps1,
        DdsImplementation::OpenSplice,
        5,
    )
}

fn slow() -> Environment {
    Environment::new(
        MachineClass::Pc850,
        BandwidthClass::Mbps100,
        DdsImplementation::OpenSplice,
        5,
    )
}

fn colocated() -> Environment {
    Environment::colocated(MachineClass::Pc3000, DdsImplementation::OpenSplice)
}

fn trained_controller() -> AdaptiveController {
    let configs = vec![
        (fast(), AppParams::new(3, 25)),
        (slow(), AppParams::new(3, 25)),
        (
            Environment::new(
                MachineClass::Pc3000,
                BandwidthClass::Mbps100,
                DdsImplementation::OpenSplice,
                5,
            ),
            AppParams::new(3, 25),
        ),
        (colocated(), AppParams::new(3, 25)),
    ];
    // 4 repetitions: NAKcast's recovery latency depends on the per-run
    // heartbeat phase, so 2-rep labels would be phase-lottery noise.
    let dataset = LabeledDataset::measure(&configs, 500, 4);
    let (selector, _) = ProtocolSelector::train_from(&dataset, &SelectorConfig::default());
    AdaptiveController::new(selector, MetricKind::ReLate2)
}

#[test]
fn adaptation_follows_the_measured_winners() {
    let controller = trained_controller();
    let phases = [
        Phase {
            env: fast(),
            app: AppParams::new(3, 25),
            samples: 400,
        },
        Phase {
            env: colocated(),
            app: AppParams::new(3, 25),
            samples: 400,
        },
    ];
    let (outcomes, controller) = AdaptiveTimeline::new(controller, 3).run(&phases);
    // On the lossy LAN the sender-driven stream recovers losses faster
    // than NAK- or lateral-error-correction multicast; once the operator
    // consolidates the group onto one host, the shared-memory ring wins
    // outright — and it was never even a candidate before the move.
    assert!(matches!(
        outcomes[0].decision.active_protocol(),
        ProtocolKind::StreamCast { .. }
    ));
    assert!(matches!(
        outcomes[1].decision.active_protocol(),
        ProtocolKind::ShmCast { .. }
    ));
    assert_eq!(controller.switches(), 1);
    for o in &outcomes {
        assert!(o.report.reliability() > 0.97);
    }
}

#[test]
fn reader_statuses_reflect_protocol_semantics() {
    // Run the same lossy stream over NAKcast (ordered, reliable) and
    // Ricochet (unordered, probabilistic) and compare the DDS statuses.
    let run = |kind: ProtocolKind| {
        let env = fast();
        let mut participant = DomainParticipant::new(0, env.dds);
        let qos = match kind {
            ProtocolKind::Nakcast { .. } => QosProfile::reliable(),
            _ => QosProfile::time_critical(),
        };
        let topic = participant
            .create_topic::<[u8; 12]>("status/stream", qos)
            .unwrap();
        participant
            .create_data_writer(
                topic,
                qos,
                AppSpec::at_rate(2_000, 500.0, 12),
                env.host_config(),
            )
            .unwrap();
        for _ in 0..3 {
            participant
                .create_data_reader(topic, qos, env.host_config(), env.drop_probability())
                .unwrap();
        }
        let mut sim = Simulation::new(17).with_network(env.network_config());
        let handles = participant
            .install(&mut sim, topic, TransportConfig::new(kind))
            .unwrap();
        sim.run_until(SimTime::from_secs(25));
        let reader = ant::reader(&sim, &handles, handles.receivers[0]);
        ReaderStatuses::from_log(
            reader.log(),
            2_000,
            reader.duplicates(),
            Some(SimDuration::from_millis(100)),
        )
    };

    let nak = run(ProtocolKind::Nakcast {
        timeout: SimDuration::from_millis(1),
    });
    let ric = run(ProtocolKind::Ricochet { r: 4, c: 3 });

    // NAKcast: nothing lost, nothing out of order.
    assert_eq!(nak.sample_lost.total_count, 0);
    assert_eq!(nak.order_violations.total_count, 0);

    // Ricochet: a little residual loss and out-of-order recoveries.
    assert!(ric.sample_lost.total_count > 0);
    assert!(ric.order_violations.total_count > 0);
    assert!(!ric.is_clean());

    // Both keep the 100 ms deadline comfortably at 500 Hz.
    assert_eq!(nak.deadline_missed.total_count, 0);
    assert_eq!(ric.deadline_missed.total_count, 0);
}

//! CI gate: the retrained selector must reproduce the measured winner
//! for every known (environment × metric) configuration it was trained
//! on — the Fig 18 "environments known a priori" property, held at 100%
//! across the widened grid (LAN loss sweep, WAN, same host).
//!
//! The grid here is a compact stand-in for the full `dataset_grid_v2()`
//! sweep: one representative per axis the selector must separate. A
//! drop below 100% on *training* rows means the widened feature space
//! (RTT, same-host) no longer linearly carries the label structure —
//! exactly the regression this gate exists to catch.

use adamant::{
    features, AppParams, BandwidthClass, Environment, LabeledDataset, ProtocolSelector,
    SelectorConfig, TableSelector,
};
use adamant_dds::DdsImplementation;
use adamant_metrics::MetricKind;
use adamant_netsim::MachineClass;

fn known_environments() -> Vec<(Environment, AppParams)> {
    use BandwidthClass::*;
    use DdsImplementation::*;
    use MachineClass::*;
    vec![
        // The paper's two headline LAN corners.
        (
            Environment::new(Pc3000, Gbps1, OpenSplice, 5),
            AppParams::new(3, 25),
        ),
        (
            Environment::new(Pc850, Mbps100, OpenSplice, 5),
            AppParams::new(3, 25),
        ),
        // The widened axes: a lossy WAN path and a consolidated host.
        (
            Environment::new(Pc3000, Wan50ms, OpenSplice, 3),
            AppParams::new(3, 25),
        ),
        (
            Environment::colocated(Pc3000, OpenSplice),
            AppParams::new(3, 25),
        ),
        // A second machine/DDS point so neither axis is constant.
        (
            Environment::new(Pc850, Gbps1, OpenDds, 2),
            AppParams::new(3, 10),
        ),
    ]
}

#[test]
fn selector_reproduces_every_known_environment_label() {
    let dataset = LabeledDataset::measure_with_metrics(
        &known_environments(),
        &[MetricKind::ReLate2, MetricKind::ReLate2Net],
        400,
        2,
    );

    let (ann, outcome) = ProtocolSelector::train_from(&dataset, &SelectorConfig::default());
    let table = TableSelector::from_dataset(&dataset);

    let mut ann_hits = 0usize;
    for row in &dataset.rows {
        let expected = features::candidate_protocols()[row.best_class];
        let got = ann.select(&row.env, &row.app, row.metric).protocol;
        if got == expected {
            ann_hits += 1;
        } else {
            eprintln!(
                "ANN miss: {} / {} / {:?}: picked {got}, measured winner {expected}",
                row.env, row.app, row.metric
            );
        }
        // The exact-match table is the floor: it must always agree.
        assert_eq!(
            table.select(&row.env, &row.app, row.metric).protocol,
            expected,
            "table selector diverged on a training row"
        );
    }
    println!(
        "selector gate: {ann_hits}/{} known environments correct (train error {:.6})",
        dataset.rows.len(),
        outcome.final_mse
    );
    assert_eq!(
        ann_hits,
        dataset.rows.len(),
        "selector accuracy on known environments must be 100%"
    );
}

//! Trace-driven runtime verification of the chaos scenarios: every fault
//! scenario's captured observability trace must satisfy the declared
//! invariants, and the checker must actually catch a corrupted trace.

use adamant_experiments::chaos::{self, SCENARIOS};
use adamant_metrics::{registry_from_trace, verify_trace, InvariantKind};
use adamant_netsim::{ObsEvent, SimTime, TracedEvent};

#[test]
fn chaos_scenario_traces_satisfy_all_invariants() {
    let policy = chaos::build_policy();
    for scenario in &SCENARIOS {
        let outcome = chaos::run_chaos(scenario, &policy, 77, true);
        assert!(
            !outcome.trace.is_empty(),
            "{}: observed run must capture a trace",
            scenario.name
        );
        let spec = chaos::chaos_verify_spec(&outcome);
        let verify = verify_trace(&outcome.trace, &spec);
        assert!(
            verify.is_clean(),
            "{}: trace violates invariants: {:?}",
            scenario.name,
            verify.violations
        );
        assert!(
            verify.accepted > 0,
            "{}: a healthy run delivers samples",
            scenario.name
        );
        // The same trace folds into a non-trivial metrics registry.
        let registry = registry_from_trace(scenario.name, &outcome.trace);
        assert!(registry.total("packets_sent") > 0, "{}", scenario.name);
        assert!(
            registry.total("samples_accepted") == verify.accepted,
            "{}: registry and checker must agree on accepted samples",
            scenario.name
        );
    }
}

#[test]
fn checker_catches_delivery_after_crash() {
    let policy = chaos::build_policy();
    let scenario = chaos::scenario("loss-spike").expect("scenario exists");
    let outcome = chaos::run_chaos(scenario, &policy, 77, true);
    let spec = chaos::chaos_verify_spec(&outcome);
    assert!(verify_trace(&outcome.trace, &spec).is_clean());

    // Corrupt the trace: append a delivery on a node we just crashed.
    let last = outcome.trace.last().expect("trace is non-empty").time;
    let mut corrupted = outcome.trace.clone();
    let victim = adamant_netsim::NodeId::from_index(1);
    corrupted.push(TracedEvent {
        time: last,
        event: ObsEvent::NodeCrashed {
            node: victim,
            epoch: 99,
        },
    });
    corrupted.push(TracedEvent {
        time: last + adamant_netsim::SimDuration::from_millis(1),
        event: ObsEvent::SampleAccepted {
            node: victim,
            seq: 0,
            published_ns: last.as_nanos(),
            delivered_ns: last.as_nanos() + 1_000_000,
            recovered: false,
        },
    });
    let verify = verify_trace(&corrupted, &spec);
    assert!(!verify.is_clean(), "corrupted trace must be flagged");
    assert!(
        verify.violations_of(InvariantKind::NoDeliveryAfterCrash) >= 1,
        "expected a crash-hygiene violation, got {:?}",
        verify.violations
    );
}

#[test]
fn checker_catches_duplicate_delivery() {
    let policy = chaos::build_policy();
    let scenario = chaos::scenario("loss-spike").expect("scenario exists");
    let outcome = chaos::run_chaos(scenario, &policy, 77, true);
    let spec = chaos::chaos_verify_spec(&outcome);

    // Corrupt the trace: replay an existing accepted sample verbatim.
    let accepted = outcome
        .trace
        .iter()
        .find(|e| matches!(e.event, ObsEvent::SampleAccepted { .. }))
        .copied()
        .expect("run accepts at least one sample");
    let mut corrupted = outcome.trace.clone();
    corrupted.push(accepted);
    let verify = verify_trace(&corrupted, &spec);
    assert!(!verify.is_clean(), "duplicated delivery must be flagged");
    assert!(
        verify.violations_of(InvariantKind::AtMostOnce) >= 1,
        "expected an at-most-once violation, got {:?}",
        verify.violations
    );
    // The duplicate is rejected, not double-counted, so the recomputed
    // ReLate2 still matches the engine's reported value.
    assert_eq!(verify.violations_of(InvariantKind::Relate2Consistency), 0);
}

#[test]
fn checker_catches_recovery_slower_than_the_nak_schedule() {
    // Synthetic trace: one recovered sample whose latency exceeds the
    // declared NAKcast recovery bound.
    let spec = adamant_metrics::VerifySpec::new(1, 1)
        .with_recovery_bound(adamant_netsim::SimDuration::from_millis(50));
    let trace = vec![TracedEvent {
        time: SimTime::from_millis(200),
        event: ObsEvent::SampleAccepted {
            node: adamant_netsim::NodeId::from_index(1),
            seq: 0,
            published_ns: 0,
            delivered_ns: SimTime::from_millis(200).as_nanos(),
            recovered: true,
        },
    }];
    let verify = verify_trace(&trace, &spec);
    assert!(
        verify.violations_of(InvariantKind::RecoveryLatencyBound) >= 1,
        "expected a recovery-latency violation, got {:?}",
        verify.violations
    );
}

//! Failure injection across the full stack: crashed receivers, bursty
//! loss, and degraded environments.

use adamant_dds::{DdsImplementation, DomainParticipant, QosProfile};
use adamant_netsim::{
    Bandwidth, HostConfig, LossModel, MachineClass, NetworkConfig, SimDuration, SimTime, Simulation,
};
use adamant_transport::{ant, AppSpec, ProtocolKind, TransportConfig};

fn host() -> HostConfig {
    HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1)
}

/// Builds a Ricochet session with `receivers` readers through the DDS
/// layer and returns the simulation plus handles.
fn ricochet_session(
    receivers: usize,
    samples: u64,
    drop: f64,
    seed: u64,
) -> (Simulation, adamant_transport::SessionHandles) {
    let mut participant = DomainParticipant::new(0, DdsImplementation::OpenSplice);
    let qos = QosProfile::time_critical();
    let topic = participant
        .create_topic::<[u8; 12]>("test/stream", qos)
        .unwrap();
    participant
        .create_data_writer(topic, qos, AppSpec::at_rate(samples, 100.0, 12), host())
        .unwrap();
    for _ in 0..receivers {
        participant
            .create_data_reader(topic, qos, host(), drop)
            .unwrap();
    }
    let mut sim = Simulation::new(seed);
    let handles = participant
        .install(
            &mut sim,
            topic,
            TransportConfig::new(ProtocolKind::Ricochet { r: 4, c: 3 }),
        )
        .unwrap();
    (sim, handles)
}

#[test]
fn survivors_keep_qos_after_receiver_crash() {
    let (mut sim, handles) = ricochet_session(5, 3_000, 0.05, 77);
    // Run a third of the stream, then one reader's host dies.
    sim.run_until(SimTime::from_secs(10));
    let victim = handles.receivers[4];
    sim.crash_node(victim);
    sim.run_until(SimTime::from_secs(40));

    for &node in &handles.receivers[..4] {
        let reader = ant::reader(&sim, &handles, node);
        let reliability = reader.log().delivered_count() as f64 / 3_000.0;
        assert!(
            reliability > 0.98,
            "survivor {node} degraded to {reliability}"
        );
    }
}

#[test]
fn nakcast_rides_through_network_loss_plus_endhost_loss() {
    // Link-level loss (failure injection) on top of the end-host drops the
    // paper models: NAKcast should still converge to full reliability.
    let mut participant = DomainParticipant::new(0, DdsImplementation::OpenDds);
    let qos = QosProfile::reliable();
    let topic = participant
        .create_topic::<[u8; 12]>("test/reliable", qos)
        .unwrap();
    participant
        .create_data_writer(topic, qos, AppSpec::at_rate(1_000, 100.0, 12), host())
        .unwrap();
    for _ in 0..3 {
        participant
            .create_data_reader(topic, qos, host(), 0.05)
            .unwrap();
    }
    let mut sim = Simulation::new(99).with_network(NetworkConfig {
        propagation: SimDuration::from_micros(50),
        loss: LossModel::GilbertElliott {
            p_enter_bad: 0.002,
            p_exit_bad: 0.05,
            loss_good: 0.002,
            loss_bad: 0.35,
        },
    });
    let handles = participant
        .install(
            &mut sim,
            topic,
            TransportConfig::new(ProtocolKind::Nakcast {
                timeout: SimDuration::from_millis(1),
            }),
        )
        .unwrap();
    sim.run_until(SimTime::from_secs(30));
    let report = ant::collect_report(&sim, &handles);
    assert!(
        report.reliability() > 0.999,
        "NAKcast reliability {} under compound loss",
        report.reliability()
    );
}

#[test]
fn sender_crash_stops_the_stream_cleanly() {
    let (mut sim, handles) = ricochet_session(3, 5_000, 0.0, 13);
    sim.run_until(SimTime::from_secs(5));
    sim.crash_node(handles.sender);
    sim.run_until(SimTime::from_secs(20));
    // Roughly 5 s × 100 Hz samples arrived; nothing after the crash, and
    // nothing panicked or looped forever.
    for &node in &handles.receivers {
        let reader = ant::reader(&sim, &handles, node);
        let delivered = reader.log().delivered_count();
        assert!(
            (400..=600).contains(&delivered),
            "expected ~500 samples before the crash, got {delivered}"
        );
    }
}

#[test]
fn extreme_loss_degrades_gracefully() {
    // 30% end-host loss is far beyond the paper's 1–5% envelope; Ricochet
    // loses more but the system stays live and accounting stays sane.
    let (mut sim, handles) = ricochet_session(3, 2_000, 0.30, 5);
    sim.run_until(SimTime::from_secs(30));
    let report = ant::collect_report(&sim, &handles);
    assert!(report.reliability() > 0.70);
    assert!(report.reliability() < 0.999);
    assert!(report.recovered > 0, "lateral repairs still fire");
    let expected = 2_000 * 3;
    assert!(report.delivered <= expected as u64);
}

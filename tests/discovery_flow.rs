//! Discovery-then-data integration: endpoints find each other on the wire
//! before the configured session starts flowing — the full middleware
//! bring-up sequence.

use adamant_dds::discovery::{DiscoveryConfig, DiscoveryCore, EndpointInfo};
use adamant_dds::{DdsImplementation, DomainParticipant, QosProfile};
use adamant_netsim::{
    Bandwidth, HostConfig, MachineClass, SimDriver, SimDuration, SimTime, Simulation,
};
use adamant_transport::{ant, AppSpec, ProtocolKind, TransportConfig};

#[test]
fn discovery_then_data_end_to_end() {
    let host = HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1);
    let qos = QosProfile::time_critical();

    // ── Phase 1: discovery ──────────────────────────────────────────────
    let mut discovery_sim = Simulation::new(5);
    let group = discovery_sim.create_group(&[]);
    let writer_node = discovery_sim.add_node(
        host,
        SimDriver::new(DiscoveryCore::new(
            0,
            group,
            vec![EndpointInfo::new("sar/stream", true, qos)],
            DiscoveryConfig::default(),
        )),
    );
    discovery_sim.join_group(group, writer_node);
    let mut reader_nodes = Vec::new();
    for id in 1..=3u32 {
        let node = discovery_sim.add_node(
            host,
            SimDriver::new(DiscoveryCore::new(
                id,
                group,
                vec![EndpointInfo::new("sar/stream", false, qos)],
                DiscoveryConfig::default(),
            )),
        );
        discovery_sim.join_group(group, node);
        reader_nodes.push(node);
    }
    discovery_sim.run_until(SimTime::from_secs(2));

    let writer_view = discovery_sim
        .agent::<DiscoveryCore>(writer_node)
        .expect("writer agent");
    let matched_readers = writer_view.matches().len();
    assert_eq!(matched_readers, 3, "writer must discover all readers");
    let bring_up = writer_view
        .time_to_first_match()
        .expect("at least one match");
    assert!(
        bring_up < SimDuration::from_millis(500),
        "discovery too slow: {bring_up}"
    );

    // ── Phase 2: the discovered topology becomes a data session ─────────
    let mut participant = DomainParticipant::new(0, DdsImplementation::OpenSplice);
    let topic = participant
        .create_topic::<[u8; 12]>("sar/stream", qos)
        .expect("topic");
    participant
        .create_data_writer(topic, qos, AppSpec::at_rate(500, 100.0, 12), host)
        .expect("writer");
    for _ in 0..matched_readers {
        participant
            .create_data_reader(topic, qos, host, 0.05)
            .expect("reader");
    }
    let mut data_sim = Simulation::new(6);
    let handles = participant
        .install(
            &mut data_sim,
            topic,
            TransportConfig::new(ProtocolKind::Ricochet { r: 4, c: 3 }),
        )
        .expect("install");
    data_sim.run_until(SimTime::from_secs(10));
    let report = ant::collect_report(&data_sim, &handles);
    assert_eq!(report.receivers as usize, matched_readers);
    assert!(report.reliability() > 0.98);
}

#[test]
fn qos_incompatible_readers_are_never_wired() {
    // A best-effort writer and a reliability-demanding reader: discovery
    // refuses the match, and the entity layer refuses the session — the
    // two layers agree.
    let host = HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1);
    let offered = QosProfile::best_effort();
    let requested = QosProfile::reliable();

    let mut sim = Simulation::new(9);
    let group = sim.create_group(&[]);
    let w = sim.add_node(
        host,
        SimDriver::new(DiscoveryCore::new(
            0,
            group,
            vec![EndpointInfo::new("t", true, offered)],
            DiscoveryConfig::default(),
        )),
    );
    sim.join_group(group, w);
    let r = sim.add_node(
        host,
        SimDriver::new(DiscoveryCore::new(
            1,
            group,
            vec![EndpointInfo::new("t", false, requested)],
            DiscoveryConfig::default(),
        )),
    );
    sim.join_group(group, r);
    sim.run_until(SimTime::from_secs(2));
    assert!(sim.agent::<DiscoveryCore>(w).unwrap().matches().is_empty());

    let mut participant = DomainParticipant::new(0, DdsImplementation::OpenDds);
    let topic = participant.create_topic::<u32>("t", offered).unwrap();
    participant
        .create_data_writer(topic, offered, AppSpec::at_rate(10, 10.0, 12), host)
        .unwrap();
    participant
        .create_data_reader(topic, requested, host, 0.0)
        .unwrap();
    let mut data_sim = Simulation::new(1);
    assert!(participant
        .install(
            &mut data_sim,
            topic,
            TransportConfig::new(ProtocolKind::Udp)
        )
        .is_err());
}

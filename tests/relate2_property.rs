//! Property test: across random seeds, topologies, and protocols, the
//! ReLate2 composite recomputed purely from the delivery trace equals the
//! value the metrics engine reports from its pooled QoS report, within
//! 1e-9. The checker pools per-receiver latencies in the same order the
//! report builder does, so the two Welford accumulations see the identical
//! f64 sequence.

use adamant_metrics::{verify_trace, InvariantKind, MetricKind, VerifySpec};
use adamant_netsim::{
    Bandwidth, HostConfig, MachineClass, MemorySink, SimDuration, SimTime, Simulation,
};
use adamant_transport::{ant, AppSpec, ProtocolKind, SessionSpec, StackProfile, TransportConfig};

/// Deterministic splitmix-style generator so the "random" configurations
/// are reproducible without an external property-testing dependency.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn random_protocol(state: &mut u64) -> ProtocolKind {
    match next(state) % 5 {
        0 => ProtocolKind::Udp,
        1 => ProtocolKind::Nakcast {
            timeout: SimDuration::from_millis(1 + next(state) % 50),
        },
        2 => ProtocolKind::Ricochet {
            r: 3 + (next(state) % 4) as u8,
            c: 2 + (next(state) % 3) as u8,
        },
        3 => ProtocolKind::Ackcast {
            rto: SimDuration::from_millis(5 + next(state) % 40),
        },
        _ => ProtocolKind::Slingshot {
            c: 2 + (next(state) % 3) as u8,
        },
    }
}

#[test]
fn trace_recomputed_relate2_matches_reported() {
    let mut state = 0x5eed_cafe_f00d_u64;
    for case in 0..24u64 {
        let kind = random_protocol(&mut state);
        let receivers = 2 + (next(&mut state) % 4) as usize;
        let samples = 80 + next(&mut state) % 160;
        let drop = (next(&mut state) % 9) as f64 / 100.0;
        let seed = next(&mut state);
        let machine = if next(&mut state).is_multiple_of(2) {
            MachineClass::Pc3000
        } else {
            MachineClass::Pc850
        };
        let host = HostConfig::new(machine, Bandwidth::MBPS_100);
        let spec = SessionSpec {
            transport: TransportConfig::new(kind),
            app: AppSpec::at_rate(samples, 100.0, 12),
            stack: StackProfile::new(40.0, 28),
            sender_host: host,
            receiver_hosts: vec![host; receivers],
            drop_probability: drop,
        };

        let mut sim = Simulation::new(seed).with_obs_sink(MemorySink::new());
        let handles = ant::install(&mut sim, &spec);
        sim.run_until(SimTime::ZERO + spec.app.publish_span() + SimDuration::from_secs(3));
        let trace = sim.take_obs_events();
        let report = ant::collect_report(&sim, &handles);

        let reported = MetricKind::ReLate2.score(&report);
        let vspec = VerifySpec::new(samples, receivers as u32).with_reported_relate2(reported);
        let verify = verify_trace(&trace, &vspec);

        let ctx = format!(
            "case {case}: {kind}, {receivers} receivers, {samples} samples, \
             drop {drop:.2}, seed {seed}"
        );
        assert_eq!(
            verify.violations_of(InvariantKind::Relate2Consistency),
            0,
            "{ctx}: {:?}",
            verify.violations
        );
        assert!(
            (verify.recomputed_relate2 - reported).abs() <= 1e-9,
            "{ctx}: recomputed {} vs reported {reported}",
            verify.recomputed_relate2
        );
        assert_eq!(
            verify.accepted, report.delivered,
            "{ctx}: trace and report must agree on delivered samples"
        );
        assert!(verify.is_clean(), "{ctx}: {:?}", verify.violations);
    }
}

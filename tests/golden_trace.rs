//! Golden-trace determinism: a fixed seeded scenario produces the exact
//! same structured observability trace on every run, and that trace's
//! stable rendering matches the checked-in fixture byte for byte.
//!
//! The fixture lives at `tests/fixtures/golden_trace.txt`. When an
//! intentional engine or protocol change alters the event stream,
//! regenerate it (see `tests/README.md`):
//!
//! ```text
//! ADAMANT_REGEN_GOLDEN=1 cargo test --test golden_trace
//! ```

use adamant_netsim::{
    Bandwidth, FaultPlan, HostConfig, MachineClass, MemorySink, SimDuration, SimTime, Simulation,
    TracedEvent,
};
use adamant_transport::{ant, AppSpec, ProtocolKind, SessionSpec, StackProfile, TransportConfig};
use std::path::PathBuf;

const SEED: u64 = 4242;
const SAMPLES: u64 = 30;

/// A compact but eventful scenario: NAKcast over a lossy end-host path so
/// the trace carries NAK rounds and retransmissions, plus a mid-stream
/// receiver crash so it carries fault transitions and crash-epoch drops.
fn golden_run() -> Vec<TracedEvent> {
    let host = HostConfig::new(MachineClass::Pc850, Bandwidth::MBPS_100);
    let spec = SessionSpec {
        transport: TransportConfig::new(ProtocolKind::Nakcast {
            timeout: SimDuration::from_millis(10),
        }),
        app: AppSpec::at_rate(SAMPLES, 100.0, 12),
        stack: StackProfile::new(40.0, 28),
        sender_host: host,
        receiver_hosts: vec![host; 2],
        drop_probability: 0.08,
    };
    let mut sim = Simulation::new(SEED).with_obs_sink(MemorySink::new());
    let handles = ant::install(&mut sim, &spec);
    let plan = FaultPlan::new().crash_at(SimTime::from_millis(150), handles.receivers[1]);
    plan.run(&mut sim, SimTime::from_secs(2));
    sim.take_obs_events()
}

fn render(trace: &[TracedEvent]) -> String {
    let mut out = String::new();
    for event in trace {
        out.push_str(&event.to_string());
        out.push('\n');
    }
    out
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("golden_trace.txt")
}

#[test]
fn golden_scenario_trace_is_deterministic() {
    let first = golden_run();
    let second = golden_run();
    assert!(!first.is_empty(), "golden scenario must produce a trace");
    assert_eq!(
        first, second,
        "identical seed and scenario must reproduce the trace event-for-event"
    );
    // The rendering (what the fixture stores) is byte-identical too.
    assert_eq!(render(&first), render(&second));
}

#[test]
fn golden_trace_matches_fixture() {
    let rendered = render(&golden_run());
    let path = fixture_path();
    if std::env::var_os("ADAMANT_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture path has a parent"))
            .expect("create fixtures dir");
        std::fs::write(&path, &rendered).expect("write golden fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with \
             ADAMANT_REGEN_GOLDEN=1 cargo test --test golden_trace",
            path.display()
        )
    });
    assert!(
        rendered == expected,
        "golden trace diverged from {} ({} rendered lines vs {} expected); if the \
         change is intentional, regenerate with ADAMANT_REGEN_GOLDEN=1 \
         cargo test --test golden_trace",
        path.display(),
        rendered.lines().count(),
        expected.lines().count()
    );
}

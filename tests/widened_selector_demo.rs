//! End-to-end demonstration of the widened autonomic choice space: the
//! selector, retrained on measured (environment × transport) data over
//! the v2 grid, routes a WAN deployment onto StreamCast and a same-host
//! deployment onto ShmCast — and in both cases the chosen core beats
//! every legacy (paper) transport on the target QoS metric by more than
//! the labelling margin.

use adamant::{
    features, Adamant, AppParams, BandwidthClass, Environment, LabeledDataset, ProtocolSelector,
    Scenario, SelectorConfig, SimulatedCloud, LABEL_MARGIN,
};
use adamant_dds::DdsImplementation;
use adamant_metrics::MetricKind;
use adamant_netsim::MachineClass;
use adamant_transport::ProtocolKind;

fn wan() -> Environment {
    Environment::new(
        MachineClass::Pc3000,
        BandwidthClass::Wan50ms,
        DdsImplementation::OpenSplice,
        3,
    )
}

fn colocated() -> Environment {
    Environment::colocated(MachineClass::Pc3000, DdsImplementation::OpenSplice)
}

fn app() -> AppParams {
    AppParams::new(3, 25)
}

/// Measures the demo grid once; both tests read from it.
fn measured() -> LabeledDataset {
    let configs = vec![
        (wan(), app()),
        (colocated(), app()),
        (
            Environment::new(
                MachineClass::Pc3000,
                BandwidthClass::Gbps1,
                DdsImplementation::OpenSplice,
                5,
            ),
            app(),
        ),
        (
            Environment::new(
                MachineClass::Pc850,
                BandwidthClass::Mbps100,
                DdsImplementation::OpenSplice,
                5,
            ),
            app(),
        ),
    ];
    LabeledDataset::measure_with_metrics(
        &configs,
        &[MetricKind::ReLate2, MetricKind::ReLate2Net],
        500,
        3,
    )
}

fn row<'a>(
    ds: &'a LabeledDataset,
    env: &Environment,
    metric: MetricKind,
) -> &'a adamant::DatasetRow {
    ds.rows
        .iter()
        .find(|r| r.env == *env && r.metric == metric)
        .expect("measured row exists")
}

#[test]
fn widened_selector_routes_wan_to_streamcast_and_same_host_to_shmcast() {
    let dataset = measured();

    // --- The measurements themselves: each new core beats every legacy
    // candidate on its home turf by more than the labelling margin. ---

    // WAN, bandwidth-weighted latency·loss (ReLate2Net): the stream's
    // sender-driven recovery needs no heartbeat traffic across the long
    // path, so it wins on latency-per-wire-byte.
    let wan_row = row(&dataset, &wan(), MetricKind::ReLate2Net);
    let stream_class = features::class_index(ProtocolKind::StreamCast { window: 64 }).unwrap();
    assert_eq!(
        wan_row.best_class, stream_class,
        "scores {:?}",
        wan_row.scores
    );
    let best_legacy_wan = wan_row.scores[..6]
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    assert!(
        wan_row.scores[stream_class] * (1.0 + LABEL_MARGIN) < best_legacy_wan,
        "StreamCast {} must beat the best legacy {} by > the margin",
        wan_row.scores[stream_class],
        best_legacy_wan
    );

    // Same host, plain latency·loss (ReLate2): the ring bypasses the OS
    // network stack entirely.
    let shm_row = row(&dataset, &colocated(), MetricKind::ReLate2);
    let shm_class = features::class_index(ProtocolKind::ShmCast { queue: 256 }).unwrap();
    assert_eq!(shm_row.best_class, shm_class, "scores {:?}", shm_row.scores);
    let best_legacy_shm = shm_row.scores[..6]
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    assert!(
        shm_row.scores[shm_class] * (1.0 + LABEL_MARGIN) < best_legacy_shm,
        "ShmCast {} must beat the best legacy {} by > the margin",
        shm_row.scores[shm_class],
        best_legacy_shm
    );

    // On the WAN the stream is not feasible-gated, but shared memory is:
    // its score must be infinite (never measured, never the label).
    assert!(
        wan_row.scores[features::class_index(ProtocolKind::ShmCast { queue: 256 }).unwrap()]
            .is_infinite()
    );

    // --- The full autonomic flow: probe → select → install. ---
    let (selector, _) = ProtocolSelector::train_from(&dataset, &SelectorConfig::default());
    let platform = Adamant::new(selector);

    let wan_config = platform
        .configure(
            &SimulatedCloud::new(wan()),
            DdsImplementation::OpenSplice,
            3,
            app(),
            MetricKind::ReLate2Net,
        )
        .expect("WAN configuration");
    assert_eq!(wan_config.environment, wan());
    assert!(
        matches!(wan_config.transport().kind, ProtocolKind::StreamCast { .. }),
        "WAN must route onto the stream core, got {}",
        wan_config.transport().kind
    );
    let report = Scenario::paper(wan_config.environment, app(), 11)
        .with_samples(500)
        .run(wan_config.transport());
    assert!(report.reliability() > 0.99, "rel {}", report.reliability());

    let shm_config = platform
        .configure(
            &SimulatedCloud::new(colocated()),
            DdsImplementation::OpenSplice,
            5,
            app(),
            MetricKind::ReLate2,
        )
        .expect("same-host configuration");
    assert!(shm_config.environment.same_host);
    assert!(
        matches!(shm_config.transport().kind, ProtocolKind::ShmCast { .. }),
        "same-host must route onto shared memory, got {}",
        shm_config.transport().kind
    );
    let report = Scenario::paper(shm_config.environment, app(), 11)
        .with_samples(500)
        .run(shm_config.transport());
    assert_eq!(report.reliability(), 1.0, "the ring loses nothing");
    assert!(
        report.avg_latency_us < 100.0,
        "ring latency stays in the double-digit microseconds, got {}",
        report.avg_latency_us
    );
}

//! Driver parity: the same NAKcast cores deliver the same stream whether
//! they run inside the deterministic simulator or over real UDP sockets
//! on 127.0.0.1 — the acceptance check for the sans-I/O refactor. Each
//! receiver injects 5% end-host loss from its own entropy stream, so the
//! real-socket run exercises genuine NAK/retransmit recovery.

use std::collections::BTreeSet;
use std::time::Duration;

use adamant_netsim::{Bandwidth, HostConfig, MachineClass, NodeId, SimDriver, SimTime, Simulation};
use adamant_proto::Span;
use adamant_rt::{
    Cluster, ClusterConfig, Endpoint, MonotonicClock, MuxCluster, MuxConfig, RtConfig,
};
use adamant_transport::{
    AppSpec, DataReader, NakcastReceiver, NakcastSender, ShmCastReceiver, ShmCastSender,
    StackProfile, StreamCastReceiver, StreamCastSender, Tuning,
};

const SAMPLES: u64 = 300;
const RATE_HZ: f64 = 500.0;
const DROP_P: f64 = 0.05;

fn sender_core(group: adamant_proto::GroupId) -> NakcastSender {
    NakcastSender::new(
        AppSpec::at_rate(SAMPLES, RATE_HZ, 12),
        StackProfile::new(10.0, 48),
        Tuning::default(),
        group,
    )
}

fn receiver_core(sender: NodeId) -> NakcastReceiver {
    NakcastReceiver::new(
        sender,
        SAMPLES,
        Span::from_millis(2),
        Tuning::default(),
        DROP_P,
    )
}

/// Delivered sequences and recovery counters of one receiver.
struct RunOutcome {
    delivered: BTreeSet<u64>,
    recovered: u64,
    naks_sent: u64,
}

fn run_netsim() -> RunOutcome {
    let mut sim = Simulation::new(42);
    let host = HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1);
    let group = sim.create_group(&[]);
    let tx = sim.add_node(host, SimDriver::new(sender_core(group)));
    sim.join_group(group, tx);
    let rx = sim.add_node(host, SimDriver::new(receiver_core(tx)));
    sim.join_group(group, rx);
    sim.run_until(SimTime::from_secs(5));
    let r = sim.agent::<NakcastReceiver>(rx).unwrap();
    RunOutcome {
        delivered: r.log().deliveries().iter().map(|d| d.seq).collect(),
        recovered: r.log().recovered_count(),
        naks_sent: r.naks_sent(),
    }
}

fn run_loopback() -> RunOutcome {
    let clock = MonotonicClock::start();
    let tx_node = NodeId(0);
    let rx_node = NodeId(1);
    let mut tx_ep = Endpoint::bind(tx_node, "127.0.0.1:0", RtConfig::new(7).with_clock(clock))
        .expect("bind sender");
    let mut rx_ep = Endpoint::bind(rx_node, "127.0.0.1:0", RtConfig::new(8).with_clock(clock))
        .expect("bind receiver");
    tx_ep.add_peer(rx_node, rx_ep.local_addr().unwrap());
    rx_ep.add_peer(tx_node, tx_ep.local_addr().unwrap());
    let groups = vec![vec![tx_node, rx_node]];
    tx_ep.set_groups(groups.clone());
    rx_ep.set_groups(groups);

    let mut sender = sender_core(adamant_proto::GroupId(0));
    let mut receiver = receiver_core(tx_node);
    // Publishing takes SAMPLES / RATE_HZ = 0.6 s; leave generous slack for
    // tail-loss recovery on loaded CI machines. The sender stays up the
    // whole window so late NAKs are still answered.
    std::thread::scope(|s| {
        s.spawn(|| {
            tx_ep
                .run_for(&mut sender, Duration::from_millis(2_500))
                .expect("sender loop");
        });
        s.spawn(|| {
            rx_ep
                .run_for(&mut receiver, Duration::from_millis(2_500))
                .expect("receiver loop");
        });
    });
    assert_eq!(sender.published(), SAMPLES, "sender finished the stream");
    RunOutcome {
        delivered: receiver.log().deliveries().iter().map(|d| d.seq).collect(),
        recovered: receiver.log().recovered_count(),
        naks_sent: receiver.naks_sent(),
    }
}

/// Runs the netsim side of the fleet parity check: one NAKcast sender and
/// `receivers` lossy receivers inside one simulation.
fn run_netsim_fleet(receivers: usize) -> Vec<RunOutcome> {
    let mut sim = Simulation::new(42);
    let host = HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1);
    let group = sim.create_group(&[]);
    let tx = sim.add_node(host, SimDriver::new(sender_core(group)));
    sim.join_group(group, tx);
    let rx_nodes: Vec<NodeId> = (0..receivers)
        .map(|_| {
            let rx = sim.add_node(host, SimDriver::new(receiver_core(tx)));
            sim.join_group(group, rx);
            rx
        })
        .collect();
    sim.run_until(SimTime::from_secs(5));
    rx_nodes
        .into_iter()
        .map(|rx| {
            let r = sim.agent::<NakcastReceiver>(rx).unwrap();
            RunOutcome {
                delivered: r.log().deliveries().iter().map(|d| d.seq).collect(),
                recovered: r.log().recovered_count(),
                naks_sent: r.naks_sent(),
            }
        })
        .collect()
}

/// Runs the same fleet inside a sharded [`Cluster`] over real UDP:
/// returns the shard of every endpoint (sender first), the published
/// count, and each receiver's outcome.
fn run_cluster_fleet(
    receivers: usize,
    workers: usize,
    seed: u64,
    wall: Duration,
) -> (Vec<usize>, u64, Vec<RunOutcome>) {
    let clock = MonotonicClock::start();
    let mut cluster = Cluster::new(
        ClusterConfig::new(workers)
            .with_seed(seed)
            .with_clock(clock),
    );
    let tx = cluster
        .add_endpoint(
            NodeId(0),
            "127.0.0.1:0",
            sender_core(adamant_proto::GroupId(0)),
        )
        .expect("bind cluster sender");
    let rx_ids: Vec<_> = (1..=receivers as u32)
        .map(|n| {
            cluster
                .add_endpoint(NodeId(n), "127.0.0.1:0", receiver_core(NodeId(0)))
                .expect("bind cluster receiver")
        })
        .collect();
    cluster.connect_full_mesh().expect("wire mesh");
    let shards: Vec<usize> = std::iter::once(tx)
        .chain(rx_ids.iter().copied())
        .map(|id| cluster.shard_of(id))
        .collect();
    cluster.run_for(wall).expect("cluster run");
    let published = cluster
        .core::<NakcastSender>(tx)
        .expect("sender core survives")
        .published();
    let outcomes = rx_ids
        .iter()
        .map(|&id| {
            let r = cluster
                .core::<NakcastReceiver>(id)
                .expect("receiver core survives");
            RunOutcome {
                delivered: r.log().deliveries().iter().map(|d| d.seq).collect(),
                recovered: r.log().recovered_count(),
                naks_sent: r.naks_sent(),
            }
        })
        .collect();
    (shards, published, outcomes)
}

/// Runs the same fleet on the multiplexed runtime: all endpoints share
/// each worker's small socket pool and are demuxed by the wire-header
/// endpoint ID. Returns the published count, each receiver's outcome,
/// and the cluster stats (for the no-drop assertions).
fn run_mux_fleet(
    receivers: usize,
    workers: usize,
    seed: u64,
    wall: Duration,
) -> (u64, Vec<RunOutcome>, adamant_rt::ClusterStats) {
    let clock = MonotonicClock::start();
    let cfg = MuxConfig::new(workers)
        .with_sockets_per_worker(2)
        .with_batch_size(16)
        .with_seed(seed)
        .with_clock(clock);
    let mut cluster = MuxCluster::bind("127.0.0.1:0", cfg).expect("bind mux cluster");
    let tx = cluster
        .add_endpoint(NodeId(0), sender_core(adamant_proto::GroupId(0)))
        .expect("add mux sender");
    let rx_ids: Vec<_> = (1..=receivers as u32)
        .map(|n| {
            cluster
                .add_endpoint(NodeId(n), receiver_core(NodeId(0)))
                .expect("add mux receiver")
        })
        .collect();
    cluster.connect_full_mesh().expect("wire mesh");
    cluster.run_for(wall).expect("mux cluster run");
    let published = cluster
        .core::<NakcastSender>(tx)
        .expect("sender core survives")
        .published();
    let outcomes = rx_ids
        .iter()
        .map(|&id| {
            let r = cluster
                .core::<NakcastReceiver>(id)
                .expect("receiver core survives");
            RunOutcome {
                delivered: r.log().deliveries().iter().map(|d| d.seq).collect(),
                recovered: r.log().recovered_count(),
                naks_sent: r.naks_sent(),
            }
        })
        .collect();
    (published, outcomes, cluster.stats())
}

#[test]
fn nakcast_delivers_identically_under_both_drivers() {
    let sim = run_netsim();
    let rt = run_loopback();

    let expected: BTreeSet<u64> = (0..SAMPLES).collect();
    assert_eq!(
        sim.delivered, expected,
        "netsim NAKcast must deliver every sample"
    );
    assert_eq!(
        rt.delivered, expected,
        "real-UDP NAKcast must deliver every sample under 5% injected loss \
         (recovered {} of {} via {} NAKs)",
        rt.recovered, SAMPLES, rt.naks_sent
    );

    // Both runs draw independent 5%-loss patterns, so recovery volumes are
    // stochastic — but with ~15 expected losses each, they must land in
    // the same ballpark and both must actually exercise the NAK path.
    assert!(
        sim.recovered > 0 && rt.recovered > 0,
        "both drivers must exercise recovery (sim {}, rt {})",
        sim.recovered,
        rt.recovered
    );
    let (lo, hi) = (
        sim.recovered.min(rt.recovered),
        sim.recovered.max(rt.recovered),
    );
    assert!(
        hi <= 4 * lo + 20,
        "recovery counts implausibly far apart: sim {} vs rt {}",
        sim.recovered,
        rt.recovered
    );
    assert!(
        sim.naks_sent > 0 && rt.naks_sent > 0,
        "both drivers must send NAKs (sim {}, rt {})",
        sim.naks_sent,
        rt.naks_sent
    );
}

/// The cluster-scale version of the parity check: the same NAKcast
/// session over 64 endpoints (one sender, 63 lossy receivers) hosted on
/// 4 cluster workers must deliver exactly the sequence sets the netsim
/// run of the same fleet delivers — every receiver, the complete stream.
#[test]
fn cluster_nakcast_matches_netsim_across_64_endpoints() {
    const RECEIVERS: usize = 63;
    const WORKERS: usize = 4;

    let sim = run_netsim_fleet(RECEIVERS);
    // Publishing takes 0.6 s; the rest of the wall is recovery slack for
    // 63 receivers sharing 4 workers on a possibly loaded CI machine.
    let (shards, published, rt) =
        run_cluster_fleet(RECEIVERS, WORKERS, 42, Duration::from_millis(3_500));

    assert_eq!(published, SAMPLES, "cluster sender finished the stream");
    assert_eq!(shards.len(), RECEIVERS + 1);
    for w in 0..WORKERS {
        assert!(
            shards.contains(&w),
            "every worker must own a shard slice (assignment {shards:?})"
        );
    }

    let expected: BTreeSet<u64> = (0..SAMPLES).collect();
    for (i, o) in sim.iter().enumerate() {
        assert_eq!(
            o.delivered, expected,
            "netsim receiver {i} must deliver every sample"
        );
    }
    let mut recovered_total = 0;
    for (i, o) in rt.iter().enumerate() {
        assert_eq!(
            o.delivered, expected,
            "cluster receiver {i} must deliver every sample \
             (recovered {} via {} NAKs)",
            o.recovered, o.naks_sent
        );
        recovered_total += o.recovered;
    }
    // 63 receivers × 300 samples × 5% loss ≈ 945 expected drops: the run
    // must actually exercise the recovery path, not just survive it.
    assert!(
        recovered_total > 0,
        "cluster fleet must exercise NAK recovery"
    );
}

/// The multiplexed-runtime leg of the fleet parity check: the same
/// 64-endpoint NAKcast session (one sender, 63 lossy receivers) runs on
/// the readiness-driven [`MuxCluster`] — 4 workers sharing 2 sockets
/// each, every datagram demuxed by the wire-header endpoint ID — and
/// must deliver exactly the sequence sets the netsim and per-socket
/// cluster runs deliver: every receiver, the complete stream.
#[test]
fn mux_cluster_nakcast_matches_netsim_and_per_socket_fleets() {
    const RECEIVERS: usize = 63;
    const WORKERS: usize = 4;

    let sim = run_netsim_fleet(RECEIVERS);
    let wall = Duration::from_millis(3_500);
    let (_, per_socket_published, per_socket) = run_cluster_fleet(RECEIVERS, WORKERS, 42, wall);
    let (mux_published, mux, stats) = run_mux_fleet(RECEIVERS, WORKERS, 42, wall);

    assert_eq!(per_socket_published, SAMPLES, "per-socket sender finished");
    assert_eq!(mux_published, SAMPLES, "mux sender finished the stream");

    let expected: BTreeSet<u64> = (0..SAMPLES).collect();
    for (i, o) in sim.iter().enumerate() {
        assert_eq!(
            o.delivered, expected,
            "netsim receiver {i} must deliver every sample"
        );
    }
    for (i, o) in per_socket.iter().enumerate() {
        assert_eq!(
            o.delivered, expected,
            "per-socket receiver {i} must deliver every sample"
        );
    }
    let mut recovered_total = 0;
    for (i, o) in mux.iter().enumerate() {
        assert_eq!(
            o.delivered, expected,
            "mux receiver {i} must deliver every sample \
             (recovered {} via {} NAKs)",
            o.recovered, o.naks_sent
        );
        recovered_total += o.recovered;
    }
    // 63 receivers × 300 samples × 5% loss ≈ 945 expected drops.
    assert!(recovered_total > 0, "mux fleet must exercise NAK recovery");

    // A healthy same-incarnation run never hits the demux error paths.
    assert_eq!(stats.endpoints, RECEIVERS + 1);
    assert_eq!(stats.header_drops, 0, "no malformed frames on loopback");
    assert_eq!(stats.unknown_endpoint_drops, 0, "routes cover the mesh");
    assert_eq!(stats.stale_drops, 0, "single incarnation, no stale drops");
}

const STREAM_WINDOW: u32 = 64;

fn stream_sender_core(group: adamant_proto::GroupId) -> StreamCastSender {
    StreamCastSender::new(
        AppSpec::at_rate(SAMPLES, RATE_HZ, 12),
        StackProfile::new(10.0, 48),
        Tuning::default(),
        group,
        STREAM_WINDOW,
    )
}

fn stream_receiver_core(sender: NodeId) -> StreamCastReceiver {
    StreamCastReceiver::new(sender, SAMPLES, STREAM_WINDOW, Tuning::default(), DROP_P)
}

/// The StreamCast leg of the parity check: the same sender/receiver cores
/// deliver the complete ordered stream both inside netsim and over real
/// UDP on the multiplexed runtime, with each receiver injecting 5%
/// end-host loss — so both drivers exercise the cumulative-ACK
/// retransmission machinery (fast retransmit and/or RTO).
#[test]
fn streamcast_delivers_identically_under_netsim_and_mux_udp() {
    const RECEIVERS: usize = 3;

    // Netsim leg.
    let mut sim = Simulation::new(42);
    let host = HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1);
    let group = sim.create_group(&[]);
    let tx = sim.add_node(host, SimDriver::new(stream_sender_core(group)));
    sim.join_group(group, tx);
    let rx_nodes: Vec<NodeId> = (0..RECEIVERS)
        .map(|_| {
            let rx = sim.add_node(host, SimDriver::new(stream_receiver_core(tx)));
            sim.join_group(group, rx);
            rx
        })
        .collect();
    sim.run_until(SimTime::from_secs(5));
    let expected: BTreeSet<u64> = (0..SAMPLES).collect();
    let mut sim_recovered = 0;
    for (i, rx) in rx_nodes.iter().enumerate() {
        let r = sim.agent::<StreamCastReceiver>(*rx).unwrap();
        let delivered: BTreeSet<u64> = r.log().deliveries().iter().map(|d| d.seq).collect();
        assert_eq!(
            delivered, expected,
            "netsim StreamCast receiver {i} must deliver every sample in order"
        );
        sim_recovered += r.log().recovered_count();
    }
    assert!(
        sim.agent::<StreamCastSender>(tx)
            .unwrap()
            .retransmissions_sent()
            > 0,
        "netsim leg must exercise stream recovery"
    );

    // Real-UDP leg on the multiplexed runtime.
    let clock = MonotonicClock::start();
    let cfg = MuxConfig::new(2)
        .with_sockets_per_worker(2)
        .with_batch_size(16)
        .with_seed(42)
        .with_clock(clock);
    let mut cluster = MuxCluster::bind("127.0.0.1:0", cfg).expect("bind mux cluster");
    let tx_id = cluster
        .add_endpoint(NodeId(0), stream_sender_core(adamant_proto::GroupId(0)))
        .expect("add mux stream sender");
    let rx_ids: Vec<_> = (1..=RECEIVERS as u32)
        .map(|n| {
            cluster
                .add_endpoint(NodeId(n), stream_receiver_core(NodeId(0)))
                .expect("add mux stream receiver")
        })
        .collect();
    cluster.connect_full_mesh().expect("wire mesh");
    cluster
        .run_for(Duration::from_millis(3_000))
        .expect("mux run");

    let sender = cluster
        .core::<StreamCastSender>(tx_id)
        .expect("sender core survives");
    assert_eq!(
        sender.published(),
        SAMPLES,
        "mux sender finished the stream"
    );
    let mut rt_recovered = 0;
    for (i, &id) in rx_ids.iter().enumerate() {
        let r = cluster
            .core::<StreamCastReceiver>(id)
            .expect("receiver core survives");
        assert!(r.is_connected(), "receiver {i} completed the handshake");
        let delivered: BTreeSet<u64> = r.log().deliveries().iter().map(|d| d.seq).collect();
        assert_eq!(
            delivered,
            expected,
            "mux StreamCast receiver {i} must deliver every sample \
             (dropped {} acks {})",
            r.dropped(),
            r.acks_sent()
        );
        rt_recovered += r.log().recovered_count();
    }
    assert!(
        sim_recovered > 0 && rt_recovered > 0,
        "both drivers must exercise stream recovery (sim {sim_recovered}, rt {rt_recovered})"
    );
}

/// The same-host core on the real runtime: ShmCast's credit-based ring is
/// meant for co-located groups, and a loopback mux cluster *is* one host —
/// a tiny ring must backpressure the 500 Hz publisher without losing or
/// reordering anything.
#[test]
fn shmcast_runs_over_the_mux_runtime_on_one_host() {
    const RECEIVERS: usize = 2;
    const QUEUE: u32 = 8;

    let clock = MonotonicClock::start();
    let cfg = MuxConfig::new(2)
        .with_sockets_per_worker(1)
        .with_seed(7)
        .with_clock(clock);
    let mut cluster = MuxCluster::bind("127.0.0.1:0", cfg).expect("bind mux cluster");
    let tx_id = cluster
        .add_endpoint(
            NodeId(0),
            ShmCastSender::new(
                AppSpec::at_rate(SAMPLES, RATE_HZ, 12),
                StackProfile::new(10.0, 48),
                Tuning::default(),
                adamant_proto::GroupId(0),
                QUEUE,
            ),
        )
        .expect("add shm sender");
    let rx_ids: Vec<_> = (1..=RECEIVERS as u32)
        .map(|n| {
            cluster
                .add_endpoint(
                    NodeId(n),
                    ShmCastReceiver::new(NodeId(0), SAMPLES, QUEUE, Tuning::default()),
                )
                .expect("add shm receiver")
        })
        .collect();
    cluster.connect_full_mesh().expect("wire mesh");
    cluster
        .run_for(Duration::from_millis(2_500))
        .expect("mux run");

    let sender = cluster
        .core::<ShmCastSender>(tx_id)
        .expect("sender core survives");
    assert_eq!(sender.published(), SAMPLES, "ring sender finished");
    assert_eq!(sender.queue(), QUEUE);
    let expected: Vec<u64> = (0..SAMPLES).collect();
    for (i, &id) in rx_ids.iter().enumerate() {
        let r = cluster
            .core::<ShmCastReceiver>(id)
            .expect("receiver core survives");
        let delivered: Vec<u64> = r.log().deliveries().iter().map(|d| d.seq).collect();
        assert_eq!(
            delivered, expected,
            "ring receiver {i} must deliver everything in publication order"
        );
        assert_eq!(r.duplicates(), 0, "the ring never duplicates");
    }
}

/// Same seed + same shard assignment ⇒ the same outcome: two
/// identically-configured cluster runs place every endpoint on the same
/// worker (`index % workers`) and deliver identical per-endpoint
/// sequence sets.
#[test]
fn cluster_reruns_are_shard_stable_and_deterministic() {
    const RECEIVERS: usize = 15;
    const WORKERS: usize = 3;

    let wall = Duration::from_millis(2_500);
    let (shards_a, published_a, a) = run_cluster_fleet(RECEIVERS, WORKERS, 11, wall);
    let (shards_b, published_b, b) = run_cluster_fleet(RECEIVERS, WORKERS, 11, wall);

    assert_eq!(shards_a, shards_b, "shard assignment must be rerun-stable");
    for (index, &shard) in shards_a.iter().enumerate() {
        assert_eq!(shard, index % WORKERS, "assignment must be index % workers");
    }
    assert_eq!(published_a, SAMPLES);
    assert_eq!(published_b, SAMPLES);
    let expected: BTreeSet<u64> = (0..SAMPLES).collect();
    for (i, (oa, ob)) in a.iter().zip(&b).enumerate() {
        assert_eq!(
            oa.delivered, ob.delivered,
            "receiver {i} must deliver the same sequence set on both runs"
        );
        assert_eq!(oa.delivered, expected, "receiver {i} must deliver fully");
    }
}

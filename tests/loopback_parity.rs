//! Driver parity: the same NAKcast cores deliver the same stream whether
//! they run inside the deterministic simulator or over real UDP sockets
//! on 127.0.0.1 — the acceptance check for the sans-I/O refactor. Each
//! receiver injects 5% end-host loss from its own entropy stream, so the
//! real-socket run exercises genuine NAK/retransmit recovery.

use std::collections::BTreeSet;
use std::time::Duration;

use adamant_netsim::{Bandwidth, HostConfig, MachineClass, NodeId, SimDriver, SimTime, Simulation};
use adamant_proto::Span;
use adamant_rt::{Endpoint, MonotonicClock, RtConfig};
use adamant_transport::{
    AppSpec, DataReader, NakcastReceiver, NakcastSender, StackProfile, Tuning,
};

const SAMPLES: u64 = 300;
const RATE_HZ: f64 = 500.0;
const DROP_P: f64 = 0.05;

fn sender_core(group: adamant_proto::GroupId) -> NakcastSender {
    NakcastSender::new(
        AppSpec::at_rate(SAMPLES, RATE_HZ, 12),
        StackProfile::new(10.0, 48),
        Tuning::default(),
        group,
    )
}

fn receiver_core(sender: NodeId) -> NakcastReceiver {
    NakcastReceiver::new(
        sender,
        SAMPLES,
        Span::from_millis(2),
        Tuning::default(),
        DROP_P,
    )
}

/// Delivered sequences and recovery counters of one receiver.
struct RunOutcome {
    delivered: BTreeSet<u64>,
    recovered: u64,
    naks_sent: u64,
}

fn run_netsim() -> RunOutcome {
    let mut sim = Simulation::new(42);
    let host = HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1);
    let group = sim.create_group(&[]);
    let tx = sim.add_node(host, SimDriver::new(sender_core(group)));
    sim.join_group(group, tx);
    let rx = sim.add_node(host, SimDriver::new(receiver_core(tx)));
    sim.join_group(group, rx);
    sim.run_until(SimTime::from_secs(5));
    let r = sim.agent::<NakcastReceiver>(rx).unwrap();
    RunOutcome {
        delivered: r.log().deliveries().iter().map(|d| d.seq).collect(),
        recovered: r.log().recovered_count(),
        naks_sent: r.naks_sent(),
    }
}

fn run_loopback() -> RunOutcome {
    let clock = MonotonicClock::start();
    let tx_node = NodeId(0);
    let rx_node = NodeId(1);
    let mut tx_ep = Endpoint::bind(tx_node, "127.0.0.1:0", RtConfig::new(7).with_clock(clock))
        .expect("bind sender");
    let mut rx_ep = Endpoint::bind(rx_node, "127.0.0.1:0", RtConfig::new(8).with_clock(clock))
        .expect("bind receiver");
    tx_ep.add_peer(rx_node, rx_ep.local_addr().unwrap());
    rx_ep.add_peer(tx_node, tx_ep.local_addr().unwrap());
    let groups = vec![vec![tx_node, rx_node]];
    tx_ep.set_groups(groups.clone());
    rx_ep.set_groups(groups);

    let mut sender = sender_core(adamant_proto::GroupId(0));
    let mut receiver = receiver_core(tx_node);
    // Publishing takes SAMPLES / RATE_HZ = 0.6 s; leave generous slack for
    // tail-loss recovery on loaded CI machines. The sender stays up the
    // whole window so late NAKs are still answered.
    std::thread::scope(|s| {
        s.spawn(|| {
            tx_ep
                .run_for(&mut sender, Duration::from_millis(2_500))
                .expect("sender loop");
        });
        s.spawn(|| {
            rx_ep
                .run_for(&mut receiver, Duration::from_millis(2_500))
                .expect("receiver loop");
        });
    });
    assert_eq!(sender.published(), SAMPLES, "sender finished the stream");
    RunOutcome {
        delivered: receiver.log().deliveries().iter().map(|d| d.seq).collect(),
        recovered: receiver.log().recovered_count(),
        naks_sent: receiver.naks_sent(),
    }
}

#[test]
fn nakcast_delivers_identically_under_both_drivers() {
    let sim = run_netsim();
    let rt = run_loopback();

    let expected: BTreeSet<u64> = (0..SAMPLES).collect();
    assert_eq!(
        sim.delivered, expected,
        "netsim NAKcast must deliver every sample"
    );
    assert_eq!(
        rt.delivered, expected,
        "real-UDP NAKcast must deliver every sample under 5% injected loss \
         (recovered {} of {} via {} NAKs)",
        rt.recovered, SAMPLES, rt.naks_sent
    );

    // Both runs draw independent 5%-loss patterns, so recovery volumes are
    // stochastic — but with ~15 expected losses each, they must land in
    // the same ballpark and both must actually exercise the NAK path.
    assert!(
        sim.recovered > 0 && rt.recovered > 0,
        "both drivers must exercise recovery (sim {}, rt {})",
        sim.recovered,
        rt.recovered
    );
    let (lo, hi) = (
        sim.recovered.min(rt.recovered),
        sim.recovered.max(rt.recovered),
    );
    assert!(
        hi <= 4 * lo + 20,
        "recovery counts implausibly far apart: sim {} vs rt {}",
        sim.recovered,
        rt.recovered
    );
    assert!(
        sim.naks_sent > 0 && rt.naks_sent > 0,
        "both drivers must send NAKs (sim {}, rt {})",
        sim.naks_sent,
        rt.naks_sent
    );
}

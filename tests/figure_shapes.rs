//! Reduced-scale assertions of the paper's figure shapes. The full-scale
//! regeneration lives in `adamant-experiments` (`figures` binary); these
//! tests keep the qualitative claims true at CI scale.

use adamant_experiments::figures::{
    check_shapes, fifteen_receiver_figures, three_receiver_figures, FigureScale,
};

fn ci_scale() -> FigureScale {
    FigureScale {
        // Large enough that the thin pc850 margins (Figs 9/13/15) are
        // stable; runs are deterministic, so this is a fixed outcome, not
        // a flaky one.
        samples: 6_000,
        repetitions: 3,
        ann_restarts: 1,
        cv_restarts: 1,
        max_epochs: 50,
        timing_experiments: 1,
    }
}

#[test]
fn three_receiver_figures_match_paper_shapes() {
    let scale = ci_scale();
    let mut figs = three_receiver_figures(true, scale);
    figs.extend(three_receiver_figures(false, scale));
    let checks = check_shapes(&figs);
    assert!(!checks.is_empty());
    let failures: Vec<&String> = checks
        .iter()
        .filter(|(_, ok)| !ok)
        .map(|(name, _)| name)
        .collect();
    assert!(
        failures.is_empty(),
        "paper-shape checks failed: {failures:?}"
    );
}

#[test]
fn fifteen_receiver_figures_match_paper_shapes() {
    let scale = ci_scale();
    let mut figs = fifteen_receiver_figures(true, scale);
    figs.extend(fifteen_receiver_figures(false, scale));
    let checks = check_shapes(&figs);
    assert!(!checks.is_empty());
    let failures: Vec<&String> = checks
        .iter()
        .filter(|(_, ok)| !ok)
        .map(|(name, _)| name)
        .collect();
    assert!(
        failures.is_empty(),
        "paper-shape checks failed: {failures:?}"
    );
}

//! End-to-end integration: the complete ADAMANT pipeline across every
//! crate — measure → train → probe → select → configure → run.

use adamant::{
    Adamant, AppParams, BandwidthClass, Environment, LabeledDataset, ProtocolSelector, Scenario,
    SelectorConfig, SimulatedCloud,
};
use adamant_dds::DdsImplementation;
use adamant_metrics::MetricKind;
use adamant_netsim::MachineClass;
use adamant_transport::{ProtocolKind, TransportConfig};

/// A compact measured dataset covering both machine classes on the fast
/// and slow LANs (the paper's headline axis).
fn measured_dataset() -> LabeledDataset {
    let mut configs = Vec::new();
    for machine in MachineClass::all() {
        for bandwidth in [BandwidthClass::Gbps1, BandwidthClass::Mbps100] {
            for loss in [3u8, 5] {
                let env = Environment::new(machine, bandwidth, DdsImplementation::OpenSplice, loss);
                configs.push((env, AppParams::new(3, 25)));
            }
        }
    }
    LabeledDataset::measure(&configs, 500, 2)
}

#[test]
fn measured_labels_show_the_paper_pattern() {
    let dataset = measured_dataset();
    assert_eq!(dataset.len(), 16); // 8 configs × 2 metrics

    // At 5% loss the paper's headline, ranked among the paper's own
    // transports: Ricochet wins ReLate2 on pc3000+1Gb, NAKcast 1 ms on
    // pc850+100Mb. The widened candidate set (StreamCast, ShmCast) may
    // beat both overall — see DESIGN.md §3.1 — so the assertion scores
    // the paper subset of each row, not the full candidate list.
    let paper_len = ProtocolKind::paper_candidates().len();
    let find = |machine: MachineClass, bandwidth: BandwidthClass| {
        dataset
            .rows
            .iter()
            .find(|r| {
                r.env.machine == machine
                    && r.env.bandwidth == bandwidth
                    && r.env.loss_percent == 5
                    && r.metric == MetricKind::ReLate2
            })
            .expect("config present")
    };
    let paper_best = |row: &adamant::DatasetRow| {
        let idx = row.scores[..paper_len]
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("paper candidates scored")
            .0;
        adamant::features::candidate_protocols()[idx]
    };
    let fast = paper_best(find(MachineClass::Pc3000, BandwidthClass::Gbps1));
    assert!(
        matches!(fast, ProtocolKind::Ricochet { .. }),
        "pc3000/1Gb should favour Ricochet among the paper set, got {fast}",
    );
    let slow = paper_best(find(MachineClass::Pc850, BandwidthClass::Mbps100));
    assert!(
        matches!(slow, ProtocolKind::Nakcast { .. }),
        "pc850/100Mb should favour NAKcast among the paper set, got {slow}",
    );
}

#[test]
fn full_pipeline_probe_select_run() {
    let dataset = measured_dataset();
    let (selector, _) = ProtocolSelector::train_from(&dataset, &SelectorConfig::default());
    // Training recall should be near-perfect on a measured set of this size.
    let recall = selector.evaluate_on(&dataset).accuracy();
    assert!(recall >= 0.9, "training recall {recall}");

    let adamant = Adamant::new(selector);
    let provisioned = Environment::new(
        MachineClass::Pc3000,
        BandwidthClass::Gbps1,
        DdsImplementation::OpenSplice,
        5,
    );
    let config = adamant
        .configure(
            &SimulatedCloud::new(provisioned),
            DdsImplementation::OpenSplice,
            5,
            AppParams::new(3, 25),
            MetricKind::ReLate2,
        )
        .expect("probe succeeds");

    // The probed environment must round-trip exactly.
    assert_eq!(config.environment, provisioned);
    // The decision is fast (generously bounded; typically microseconds).
    assert!(config.selection.elapsed.as_millis() < 10);

    // The configured session actually runs and meets basic QoS.
    let report = Scenario::paper(provisioned, AppParams::new(3, 25), 5)
        .with_samples(500)
        .run(config.transport());
    assert!(report.reliability() > 0.97);
    assert!(report.avg_latency_us > 0.0);
}

#[test]
fn selected_protocol_beats_the_worst_candidate() {
    let dataset = measured_dataset();
    let (selector, _) = ProtocolSelector::train_from(&dataset, &SelectorConfig::default());
    let env = Environment::new(
        MachineClass::Pc3000,
        BandwidthClass::Gbps1,
        DdsImplementation::OpenSplice,
        5,
    );
    let app = AppParams::new(3, 25);
    let selection = selector.select(&env, &app, MetricKind::ReLate2);

    let scenario = Scenario::paper(env, app, 11).with_samples(800);
    let chosen = scenario.run(TransportConfig::new(selection.protocol));
    let worst = scenario.run(TransportConfig::new(ProtocolKind::Nakcast {
        timeout: adamant_netsim::SimDuration::from_millis(50),
    }));
    assert!(
        MetricKind::ReLate2.score(&chosen) < MetricKind::ReLate2.score(&worst),
        "the ANN's choice should beat NAKcast 50 ms on fast hardware"
    );
}

#[test]
fn table_selector_agrees_with_ann_on_known_environments() {
    let dataset = measured_dataset();
    let (ann, _) = ProtocolSelector::train_from(&dataset, &SelectorConfig::default());
    let table = adamant::TableSelector::from_dataset(&dataset);
    let mut agreements = 0;
    for row in &dataset.rows {
        let a = ann.select(&row.env, &row.app, row.metric).protocol;
        let t = table.select(&row.env, &row.app, row.metric).protocol;
        assert_eq!(
            t,
            row.best_protocol(),
            "table lookup must be exact on known configurations"
        );
        if a == t {
            agreements += 1;
        }
    }
    assert!(
        agreements * 10 >= dataset.len() * 9,
        "ANN and table should mostly agree on training configurations: {agreements}/{}",
        dataset.len()
    );
}

//! # adamant-bench
//!
//! Benchmarks for the ADAMANT reproduction, run by the self-contained
//! timing harness in [`bench()`] (the build environment has no registry
//! access, so no criterion). The benches map onto the paper's evaluation:
//!
//! * `ann_query` — Figures 20–21: ANN query latency and its spread, per
//!   hidden-layer size, plus the lookup-table baseline ablation.
//! * `protocol_cells` — the per-cell cost of the runs behind Figures 4–17
//!   (reduced workloads; the real series come from `adamant-experiments`).
//! * `engine` — substrate hot paths: simulator event throughput, metric
//!   computation, and ANN training epochs.
//!
//! This library exposes shared helpers for those benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::time::{Duration, Instant};

use adamant::{AppParams, BandwidthClass, DatasetRow, Environment, LabeledDataset};
use adamant_dds::DdsImplementation;
use adamant_json::{Json, ToJson};
use adamant_metrics::MetricKind;
use adamant_netsim::MachineClass;

/// One completed [`measure`] batch: the mean per-iteration wall time and
/// how many iterations it averaged over.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchMeasurement {
    /// Bench name (`group/case`).
    pub name: String,
    /// Mean wall time per iteration, nanoseconds.
    pub per_iter_ns: u64,
    /// Iterations in the measured batch.
    pub iters: u64,
}

impl ToJson for BenchMeasurement {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".to_owned(), Json::Str(self.name.clone())),
            ("per_iter_ns".to_owned(), Json::Num(self.per_iter_ns as f64)),
            ("iters".to_owned(), Json::Num(self.iters as f64)),
        ])
    }
}

/// Times `f` and prints one result line: warms up briefly, sizes the
/// measured batch to roughly [`BENCH_TARGET`], and reports the mean
/// per-iteration wall time.
pub fn bench<T>(name: &str, f: impl FnMut() -> T) {
    measure(name, f);
}

/// Like [`bench()`], but also returns the measurement for report assembly.
pub fn measure<T>(name: &str, mut f: impl FnMut() -> T) -> BenchMeasurement {
    // Warm-up: one call to page everything in, then estimate cost.
    std::hint::black_box(f());
    let probe_start = Instant::now();
    std::hint::black_box(f());
    let probe = probe_start.elapsed().max(Duration::from_nanos(1));
    let iters = (BENCH_TARGET.as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u64;
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let total = start.elapsed();
    let per_iter = total / u32::try_from(iters).expect("iters fits in u32");
    println!("{name:<50} {per_iter:>12.2?}/iter  ({iters} iters in {total:.2?})");
    BenchMeasurement {
        name: name.to_owned(),
        per_iter_ns: u64::try_from(per_iter.as_nanos()).unwrap_or(u64::MAX),
        iters,
    }
}

/// Wall-clock profiler over named phases of a bench run.
///
/// Each [`phase`](PhaseProfiler::phase) call times one closure; the
/// collected spans land in the [`PerfReport`] as per-phase wall-clock.
#[derive(Debug, Default)]
pub struct PhaseProfiler {
    phases: Vec<(String, Duration)>,
}

impl PhaseProfiler {
    /// An empty profiler.
    pub fn new() -> Self {
        PhaseProfiler::default()
    }

    /// Runs `f` as the named phase, recording its wall-clock span.
    pub fn phase<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.phases.push((name.to_owned(), start.elapsed()));
        out
    }

    /// The recorded phases, in execution order.
    pub fn phases(&self) -> &[(String, Duration)] {
        &self.phases
    }

    /// Total wall-clock across every recorded phase.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }
}

/// One point of the multiplexed runtime's endpoint-scaling series.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingPoint {
    /// Endpoints hosted in the mux cluster for this point.
    pub endpoints: u64,
    /// Aggregate delivered messages per wall-clock second.
    pub msgs_per_sec: f64,
    /// Worker loop iterations that made no progress before parking
    /// (should stay near zero — the runtime sleeps instead of spinning).
    pub busy_polls: u64,
}

impl ToJson for ScalingPoint {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("endpoints".to_owned(), Json::Num(self.endpoints as f64)),
            ("msgs_per_sec".to_owned(), Json::Num(self.msgs_per_sec)),
            ("busy_polls".to_owned(), Json::Num(self.busy_polls as f64)),
        ])
    }
}

/// A machine-readable perf report for one bench binary run, written as
/// `BENCH_netsim.json` so CI can archive and diff engine throughput.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// What produced the report (bench binary name).
    pub bench: String,
    /// Raw simulator throughput: events dispatched per wall-clock second.
    pub events_per_sec: f64,
    /// Throughput with a trace sink attached (same workload), for
    /// observability-overhead tracking; zero when not measured.
    pub events_per_sec_traced: f64,
    /// Raw calendar-queue throughput: push+pop pairs per wall-clock second.
    pub queue_ops_per_sec: f64,
    /// Sans-I/O core stepping rate: effects emitted per wall-clock second
    /// by a warmed NAKcast receiver fed an in-order data stream through
    /// `EnvHost` — the driver-independent protocol-engine baseline.
    pub proto_effects_per_sec: f64,
    /// Aggregate delivered-message throughput of the readiness-driven
    /// multiplexed runtime ([`adamant_rt::MuxCluster`]): many timer-paced
    /// echo endpoints sharing per-worker socket pools, batched syscalls,
    /// and frame coalescing; zero when not measured.
    pub cluster_msgs_per_sec: f64,
    /// The same workload shape on the per-socket [`adamant_rt::Cluster`]
    /// (one UDP socket per endpoint, one `recv_from` per datagram) — the
    /// pre-multiplexing runtime the mux number is measured against; zero
    /// when not measured.
    pub per_socket_msgs_per_sec: f64,
    /// The echo workload run one endpoint at a time through
    /// single-endpoint `run_for` loops — the no-cluster baseline; zero
    /// when not measured.
    pub sequential_msgs_per_sec: f64,
    /// Fleet-scale selection throughput: queries answered per wall-clock
    /// second by `ProtocolSelector::select_batch` sweeping a batch of
    /// [`FeatureRow`](adamant::FeatureRow)s through one flat-slice forward
    /// pass; zero when not measured.
    pub selections_per_sec: f64,
    /// The same query mix answered through per-call scalar
    /// `ProtocolSelector::select` — the baseline the batched number is
    /// measured against; zero when not measured.
    pub selections_per_sec_scalar: f64,
    /// Multiplexed-runtime endpoint scaling: delivered throughput and
    /// worker idle accounting at 1k/10k/100k endpoints under a constant
    /// aggregate offered load. Flat `msgs_per_sec` across the series is
    /// the scaling claim; `busy_polls` staying small is the no-spinning
    /// claim.
    pub endpoint_scaling: Vec<ScalingPoint>,
    /// Heap allocations observed during a steady-state window of the event
    /// loop (after warm-up). The allocation-free hot path keeps this at 0.
    pub event_loop_steady_allocs: u64,
    /// Heap allocations per warmed-up ANN training epoch.
    pub training_epoch_allocs: u64,
    /// Every per-iteration measurement taken.
    pub measurements: Vec<BenchMeasurement>,
    /// Per-phase wall-clock, in execution order.
    pub phases: Vec<(String, Duration)>,
}

impl ToJson for PerfReport {
    fn to_json(&self) -> Json {
        let phases = Json::Obj(
            self.phases
                .iter()
                .map(|(name, span)| {
                    (
                        name.clone(),
                        Json::Num(u64::try_from(span.as_nanos()).unwrap_or(u64::MAX) as f64),
                    )
                })
                .collect(),
        );
        Json::Obj(vec![
            ("bench".to_owned(), Json::Str(self.bench.clone())),
            ("events_per_sec".to_owned(), Json::Num(self.events_per_sec)),
            (
                "events_per_sec_traced".to_owned(),
                Json::Num(self.events_per_sec_traced),
            ),
            (
                "queue_ops_per_sec".to_owned(),
                Json::Num(self.queue_ops_per_sec),
            ),
            (
                "proto_effects_per_sec".to_owned(),
                Json::Num(self.proto_effects_per_sec),
            ),
            (
                "cluster_msgs_per_sec".to_owned(),
                Json::Num(self.cluster_msgs_per_sec),
            ),
            (
                "per_socket_msgs_per_sec".to_owned(),
                Json::Num(self.per_socket_msgs_per_sec),
            ),
            (
                "sequential_msgs_per_sec".to_owned(),
                Json::Num(self.sequential_msgs_per_sec),
            ),
            (
                "selections_per_sec".to_owned(),
                Json::Num(self.selections_per_sec),
            ),
            (
                "selections_per_sec_scalar".to_owned(),
                Json::Num(self.selections_per_sec_scalar),
            ),
            (
                "cluster_endpoints_scaling".to_owned(),
                self.endpoint_scaling.to_json(),
            ),
            (
                "event_loop_steady_allocs".to_owned(),
                Json::Num(self.event_loop_steady_allocs as f64),
            ),
            (
                "training_epoch_allocs".to_owned(),
                Json::Num(self.training_epoch_allocs as f64),
            ),
            ("measurements".to_owned(), self.measurements.to_json()),
            ("phase_wall_ns".to_owned(), phases),
        ])
    }
}

/// Where the engine bench writes its perf report: `$ADAMANT_BENCH_OUT`, or
/// `BENCH_netsim.json` at the repository root.
pub fn bench_report_path() -> PathBuf {
    std::env::var_os("ADAMANT_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("..")
                .join("..")
                .join("BENCH_netsim.json")
        })
}

/// Writes `report` as pretty JSON to [`bench_report_path`].
///
/// # Errors
///
/// Returns an error message when the file cannot be written.
pub fn write_perf_report(report: &PerfReport) -> Result<PathBuf, String> {
    let path = bench_report_path();
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).map_err(|e| format!("mkdir {}: {e}", parent.display()))?;
    }
    std::fs::write(&path, adamant_json::to_string_pretty(report))
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(path)
}

/// Wall-clock budget for one [`bench()`] measurement batch.
pub const BENCH_TARGET: Duration = Duration::from_millis(300);

/// A synthetic labelled dataset with the paper's headline pattern (fast
/// hardware → Ricochet, slow hardware → NAKcast 1 ms), sized like the real
/// 394-row set. Benches use it so they do not depend on sweep artifacts.
pub fn synthetic_dataset() -> LabeledDataset {
    let mut rows = Vec::new();
    for machine in MachineClass::all() {
        for bandwidth in [
            BandwidthClass::Gbps1,
            BandwidthClass::Mbps100,
            BandwidthClass::Mbps10,
        ] {
            for dds in DdsImplementation::all() {
                for loss in 1..=5u8 {
                    for receivers in [3u32, 9, 15] {
                        let env = Environment::new(machine, bandwidth, dds, loss);
                        let best_class = match machine {
                            MachineClass::Pc3000 => 4,
                            MachineClass::Pc850 => 3,
                        };
                        rows.push(DatasetRow {
                            env,
                            app: AppParams::new(receivers, 25),
                            metric: MetricKind::ReLate2,
                            best_class,
                            scores: vec![0.0; 6],
                        });
                    }
                }
            }
        }
    }
    LabeledDataset { rows }
}

/// The environment behind Figures 4/6/8 (fast) and 5/7/9 (slow).
pub fn figure_environment(fast: bool) -> Environment {
    if fast {
        Environment::new(
            MachineClass::Pc3000,
            BandwidthClass::Gbps1,
            DdsImplementation::OpenSplice,
            5,
        )
    } else {
        Environment::new(
            MachineClass::Pc850,
            BandwidthClass::Mbps100,
            DdsImplementation::OpenSplice,
            5,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_dataset_shape() {
        let ds = synthetic_dataset();
        assert_eq!(ds.len(), 2 * 3 * 2 * 5 * 3);
        assert!(ds.class_histogram()[3] > 0);
        assert!(ds.class_histogram()[4] > 0);
    }

    #[test]
    fn figure_environments_differ() {
        assert_ne!(figure_environment(true), figure_environment(false));
    }

    #[test]
    fn profiler_records_phases_in_order() {
        let mut profiler = PhaseProfiler::new();
        let out = profiler.phase("a", || 41 + 1);
        assert_eq!(out, 42);
        profiler.phase("b", || std::thread::sleep(Duration::from_millis(1)));
        let phases = profiler.phases();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].0, "a");
        assert!(phases[1].1 >= Duration::from_millis(1));
        assert!(profiler.total() >= phases[1].1);
    }

    #[test]
    fn perf_report_serializes() {
        let report = PerfReport {
            bench: "engine".to_owned(),
            events_per_sec: 1_000_000.0,
            events_per_sec_traced: 900_000.0,
            queue_ops_per_sec: 50_000_000.0,
            proto_effects_per_sec: 30_000_000.0,
            cluster_msgs_per_sec: 2_000_000.0,
            per_socket_msgs_per_sec: 400_000.0,
            sequential_msgs_per_sec: 100_000.0,
            selections_per_sec: 8_000_000.0,
            selections_per_sec_scalar: 1_000_000.0,
            endpoint_scaling: vec![ScalingPoint {
                endpoints: 100_000,
                msgs_per_sec: 900_000.0,
                busy_polls: 12,
            }],
            event_loop_steady_allocs: 0,
            training_epoch_allocs: 0,
            measurements: vec![BenchMeasurement {
                name: "x/y".to_owned(),
                per_iter_ns: 1_500,
                iters: 10,
            }],
            phases: vec![("warm".to_owned(), Duration::from_micros(3))],
        };
        let json = report.to_json();
        assert_eq!(json.field::<f64>("events_per_sec"), Ok(1_000_000.0));
        assert_eq!(json.field::<f64>("queue_ops_per_sec"), Ok(50_000_000.0));
        assert_eq!(json.field::<f64>("proto_effects_per_sec"), Ok(30_000_000.0));
        assert_eq!(json.field::<f64>("cluster_msgs_per_sec"), Ok(2_000_000.0));
        assert_eq!(json.field::<f64>("per_socket_msgs_per_sec"), Ok(400_000.0));
        assert_eq!(json.field::<f64>("sequential_msgs_per_sec"), Ok(100_000.0));
        assert_eq!(json.field::<f64>("selections_per_sec"), Ok(8_000_000.0));
        assert_eq!(
            json.field::<f64>("selections_per_sec_scalar"),
            Ok(1_000_000.0)
        );
        let scaling = json
            .get("cluster_endpoints_scaling")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(scaling[0].field::<u64>("endpoints"), Ok(100_000));
        assert_eq!(scaling[0].field::<u64>("busy_polls"), Ok(12));
        assert_eq!(json.field::<u64>("event_loop_steady_allocs"), Ok(0));
        assert_eq!(json.field::<u64>("training_epoch_allocs"), Ok(0));
        assert_eq!(
            json.get("phase_wall_ns").unwrap().field::<u64>("warm"),
            Ok(3_000)
        );
        let arr = json.get("measurements").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].field::<u64>("per_iter_ns"), Ok(1_500));
    }
}

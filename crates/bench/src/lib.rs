//! # adamant-bench
//!
//! Benchmarks for the ADAMANT reproduction, run by the self-contained
//! timing harness in [`bench`] (the build environment has no registry
//! access, so no criterion). The benches map onto the paper's evaluation:
//!
//! * `ann_query` — Figures 20–21: ANN query latency and its spread, per
//!   hidden-layer size, plus the lookup-table baseline ablation.
//! * `protocol_cells` — the per-cell cost of the runs behind Figures 4–17
//!   (reduced workloads; the real series come from `adamant-experiments`).
//! * `engine` — substrate hot paths: simulator event throughput, metric
//!   computation, and ANN training epochs.
//!
//! This library exposes shared helpers for those benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use adamant::{AppParams, BandwidthClass, DatasetRow, Environment, LabeledDataset};
use adamant_dds::DdsImplementation;
use adamant_metrics::MetricKind;
use adamant_netsim::MachineClass;

/// Times `f` and prints one result line: warms up briefly, sizes the
/// measured batch to roughly [`BENCH_TARGET`], and reports the mean
/// per-iteration wall time.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Warm-up: one call to page everything in, then estimate cost.
    std::hint::black_box(f());
    let probe_start = Instant::now();
    std::hint::black_box(f());
    let probe = probe_start.elapsed().max(Duration::from_nanos(1));
    let iters = (BENCH_TARGET.as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u64;
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let total = start.elapsed();
    let per_iter = total / u32::try_from(iters).expect("iters fits in u32");
    println!("{name:<50} {per_iter:>12.2?}/iter  ({iters} iters in {total:.2?})");
}

/// Wall-clock budget for one [`bench`] measurement batch.
pub const BENCH_TARGET: Duration = Duration::from_millis(300);

/// A synthetic labelled dataset with the paper's headline pattern (fast
/// hardware → Ricochet, slow hardware → NAKcast 1 ms), sized like the real
/// 394-row set. Benches use it so they do not depend on sweep artifacts.
pub fn synthetic_dataset() -> LabeledDataset {
    let mut rows = Vec::new();
    for machine in MachineClass::all() {
        for bandwidth in [
            BandwidthClass::Gbps1,
            BandwidthClass::Mbps100,
            BandwidthClass::Mbps10,
        ] {
            for dds in DdsImplementation::all() {
                for loss in 1..=5u8 {
                    for receivers in [3u32, 9, 15] {
                        let env = Environment::new(machine, bandwidth, dds, loss);
                        let best_class = match machine {
                            MachineClass::Pc3000 => 4,
                            MachineClass::Pc850 => 3,
                        };
                        rows.push(DatasetRow {
                            env,
                            app: AppParams::new(receivers, 25),
                            metric: MetricKind::ReLate2,
                            best_class,
                            scores: vec![0.0; 6],
                        });
                    }
                }
            }
        }
    }
    LabeledDataset { rows }
}

/// The environment behind Figures 4/6/8 (fast) and 5/7/9 (slow).
pub fn figure_environment(fast: bool) -> Environment {
    if fast {
        Environment::new(
            MachineClass::Pc3000,
            BandwidthClass::Gbps1,
            DdsImplementation::OpenSplice,
            5,
        )
    } else {
        Environment::new(
            MachineClass::Pc850,
            BandwidthClass::Mbps100,
            DdsImplementation::OpenSplice,
            5,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_dataset_shape() {
        let ds = synthetic_dataset();
        assert_eq!(ds.len(), 2 * 3 * 2 * 5 * 3);
        assert!(ds.class_histogram()[3] > 0);
        assert!(ds.class_histogram()[4] > 0);
    }

    #[test]
    fn figure_environments_differ() {
        assert_ne!(figure_environment(true), figure_environment(false));
    }
}

//! CI perf-regression guard.
//!
//! Compares a freshly measured engine perf report against the committed
//! baseline (`BENCH_netsim.json`) and fails when raw simulator throughput
//! regressed by more than the allowed fraction:
//!
//! ```text
//! perf_guard <baseline.json> <candidate.json>
//! ```
//!
//! Exit codes: 0 = within budget, 1 = regression, 2 = usage/parse error.
//! The threshold is deliberately loose (25%) because CI runners are noisy;
//! it exists to catch structural regressions (an accidentally quadratic
//! queue, a per-event allocation), not scheduling jitter.

use adamant_json::Json;

/// Allowed fractional drop in `events_per_sec` before the guard fails.
const MAX_REGRESSION: f64 = 0.25;

fn events_per_sec(path: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let json: Json = adamant_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))?;
    json.field::<f64>("events_per_sec")
        .map_err(|e| format!("{path}: {e}"))
}

fn run(baseline_path: &str, candidate_path: &str) -> Result<bool, String> {
    let baseline = events_per_sec(baseline_path)?;
    let candidate = events_per_sec(candidate_path)?;
    if baseline <= 0.0 {
        return Err(format!(
            "baseline events_per_sec must be positive, got {baseline}"
        ));
    }
    let floor = baseline * (1.0 - MAX_REGRESSION);
    let ratio = candidate / baseline;
    println!(
        "perf guard: events_per_sec baseline {baseline:.0}, candidate {candidate:.0} \
         ({ratio:.2}x, floor {floor:.0})"
    );
    Ok(candidate >= floor)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, candidate_path] = args.as_slice() else {
        eprintln!("usage: perf_guard <baseline.json> <candidate.json>");
        std::process::exit(2);
    };
    match run(baseline_path, candidate_path) {
        Ok(true) => {}
        Ok(false) => {
            eprintln!(
                "perf guard FAILED: events_per_sec regressed more than \
                 {}% against the committed baseline",
                (MAX_REGRESSION * 100.0) as u32
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("perf guard error: {e}");
            std::process::exit(2);
        }
    }
}

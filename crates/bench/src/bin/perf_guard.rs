//! CI perf-regression guard.
//!
//! Compares a freshly measured engine perf report against the committed
//! baseline (`BENCH_netsim.json`) and fails when any guarded throughput
//! metric regressed by more than its allowed fraction:
//!
//! ```text
//! perf_guard <baseline.json> <candidate.json>
//! ```
//!
//! Guarded metrics:
//!
//! * `events_per_sec` — raw simulator dispatch (25% budget).
//! * `cluster_msgs_per_sec` — the multiplexed UDP runtime (60% budget:
//!   real sockets on shared CI runners are far noisier than the
//!   in-process simulator, and the number sits an order of magnitude
//!   above the per-socket one, so even a halved run clears the old
//!   runtime by a wide margin).
//! * `per_socket_msgs_per_sec` — the per-socket cluster runtime (60%).
//! * `selections_per_sec` — batched fleet-scale protocol selection (60%).
//!
//! The candidate must also carry a `cluster_endpoints_scaling` series
//! with a 100k-endpoint point whose throughput is at least a quarter of
//! the 1k-endpoint point — the flat-scaling claim of the multiplexed
//! runtime, gated structurally rather than against the baseline so a
//! uniformly slow runner cannot mask a scaling collapse. Likewise,
//! batched `selections_per_sec` must reach at least 4x the scalar
//! `selections_per_sec_scalar` baseline measured in the same run — the
//! amortization claim of `select_batch`, again gated structurally so a
//! slow runner cannot mask the batch path collapsing to per-call cost.
//!
//! Exit codes: 0 = within budget, 1 = regression, 2 = usage/parse error.
//! Thresholds are deliberately loose; the guard exists to catch
//! structural regressions (an accidentally quadratic queue, a per-event
//! allocation, a serialized worker loop), not scheduling jitter.

use adamant_json::Json;

/// Guarded metrics and the fractional drop each may show before failing.
const GUARDS: &[(&str, f64)] = &[
    ("events_per_sec", 0.25),
    ("cluster_msgs_per_sec", 0.60),
    ("per_socket_msgs_per_sec", 0.60),
    ("selections_per_sec", 0.60),
];

/// The 100k-endpoint scaling point must deliver at least this fraction of
/// the 1k-endpoint point's throughput.
const MIN_SCALING_RATIO: f64 = 0.25;

/// Batched selection must beat the scalar per-call baseline by at least
/// this factor.
const MIN_BATCH_SPEEDUP: f64 = 4.0;

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    adamant_json::from_str(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn check_metrics(baseline: &Json, candidate: &Json) -> Result<bool, String> {
    let mut ok = true;
    for &(name, budget) in GUARDS {
        // A baseline predating a metric cannot gate it; the candidate
        // must always carry every guarded metric.
        let base = match baseline.field::<f64>(name) {
            Ok(v) if v > 0.0 => v,
            _ => {
                println!("perf guard: {name} missing from baseline, skipped");
                continue;
            }
        };
        let cand = candidate
            .field::<f64>(name)
            .map_err(|e| format!("candidate: {e}"))?;
        let floor = base * (1.0 - budget);
        let ratio = cand / base;
        println!(
            "perf guard: {name} baseline {base:.0}, candidate {cand:.0} \
             ({ratio:.2}x, floor {floor:.0})"
        );
        if cand < floor {
            eprintln!(
                "perf guard FAILED: {name} regressed more than {}% against the baseline",
                (budget * 100.0) as u32
            );
            ok = false;
        }
    }
    Ok(ok)
}

fn scaling_point(series: &[Json], endpoints: u64) -> Result<f64, String> {
    series
        .iter()
        .find(|p| p.field::<u64>("endpoints") == Ok(endpoints))
        .ok_or(format!(
            "candidate cluster_endpoints_scaling has no {endpoints}-endpoint point"
        ))?
        .field::<f64>("msgs_per_sec")
        .map_err(|e| format!("candidate scaling point: {e}"))
}

fn check_scaling(candidate: &Json) -> Result<bool, String> {
    let series = candidate
        .get("cluster_endpoints_scaling")
        .ok_or("candidate is missing the cluster_endpoints_scaling series")?
        .as_arr()
        .map_err(|e| format!("candidate: {e}"))?;
    let small = scaling_point(series, 1_000)?;
    let large = scaling_point(series, 100_000)?;
    if small <= 0.0 {
        return Err("1k-endpoint scaling point must be positive".to_owned());
    }
    let ratio = large / small;
    println!(
        "perf guard: endpoint scaling 1k {small:.0}/s -> 100k {large:.0}/s ({ratio:.2}x, \
         floor {MIN_SCALING_RATIO:.2}x)"
    );
    if ratio < MIN_SCALING_RATIO {
        eprintln!(
            "perf guard FAILED: 100k-endpoint throughput collapsed to {ratio:.2}x of the \
             1k-endpoint point (floor {MIN_SCALING_RATIO:.2}x)"
        );
        return Ok(false);
    }
    Ok(true)
}

fn check_batch_speedup(candidate: &Json) -> Result<bool, String> {
    let batched = candidate
        .field::<f64>("selections_per_sec")
        .map_err(|e| format!("candidate: {e}"))?;
    let scalar = candidate
        .field::<f64>("selections_per_sec_scalar")
        .map_err(|e| format!("candidate: {e}"))?;
    if scalar <= 0.0 {
        return Err("scalar selection baseline must be positive".to_owned());
    }
    let ratio = batched / scalar;
    println!(
        "perf guard: selection scalar {scalar:.0}/s -> batched {batched:.0}/s ({ratio:.2}x, \
         floor {MIN_BATCH_SPEEDUP:.2}x)"
    );
    if ratio < MIN_BATCH_SPEEDUP {
        eprintln!(
            "perf guard FAILED: batched selection is only {ratio:.2}x the scalar baseline \
             (floor {MIN_BATCH_SPEEDUP:.2}x)"
        );
        return Ok(false);
    }
    Ok(true)
}

fn run(baseline_path: &str, candidate_path: &str) -> Result<bool, String> {
    let baseline = load(baseline_path)?;
    let candidate = load(candidate_path)?;
    let metrics_ok = check_metrics(&baseline, &candidate)?;
    let scaling_ok = check_scaling(&candidate)?;
    let batch_ok = check_batch_speedup(&candidate)?;
    Ok(metrics_ok && scaling_ok && batch_ok)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, candidate_path] = args.as_slice() else {
        eprintln!("usage: perf_guard <baseline.json> <candidate.json>");
        std::process::exit(2);
    };
    match run(baseline_path, candidate_path) {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(e) => {
            eprintln!("perf guard error: {e}");
            std::process::exit(2);
        }
    }
}

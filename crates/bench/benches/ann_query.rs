//! Figures 20–21: ANN query latency.
//!
//! The paper reports that a trained ANN answers "which transport protocol?"
//! in a few microseconds with small, input-independent spread. These
//! benches measure the same path on this host: the raw forward pass per
//! hidden-layer width, the full `ProtocolSelector::select` (feature
//! scaling + forward pass + argmax), and the lookup-table baseline whose
//! cost grows with the table.

use adamant::{AppParams, ProtocolSelector, SelectorConfig, TableSelector};
use adamant_ann::{Activation, NeuralNetwork, TrainParams};
use adamant_bench::{bench, synthetic_dataset};
use adamant_metrics::MetricKind;
use std::hint::black_box;

fn bench_forward_pass() {
    for hidden in [8usize, 24, 32] {
        let net = NeuralNetwork::new(&[7, hidden, 6], Activation::fann_default(), 42);
        let input = [0.3, 0.7, 1.0, 0.4, 0.25, 0.1, 0.0];
        bench(&format!("fig20_ann_forward_pass/{hidden}"), || {
            black_box(net.run(black_box(&input)))
        });
    }
}

fn bench_selector() {
    let dataset = synthetic_dataset();
    let config = SelectorConfig {
        train: TrainParams {
            max_epochs: 200,
            ..TrainParams::default()
        },
        ..SelectorConfig::default()
    };
    let (selector, _) = ProtocolSelector::train_from(&dataset, &config);
    let env = dataset.rows[0].env;
    let app = AppParams::new(3, 25);

    bench("fig20_end_to_end_selection/ann_selector", || {
        black_box(selector.select(black_box(&env), &app, MetricKind::ReLate2))
    });

    // Ablation: the manual lookup-table alternative scans every measured
    // configuration; its cost grows with the table while the ANN stays
    // constant.
    let table = TableSelector::from_dataset(&dataset);
    bench("fig20_end_to_end_selection/table_selector", || {
        black_box(table.select(black_box(&env), &app, MetricKind::ReLate2))
    });
}

fn main() {
    bench_forward_pass();
    bench_selector();
}

//! Substrate hot paths: simulator event processing, metric computation,
//! and ANN training epochs.
//!
//! Besides printing per-iteration timings, this bench writes a
//! machine-readable perf report (`BENCH_netsim.json` at the repo root, or
//! `$ADAMANT_BENCH_OUT`) carrying raw simulator events/sec — with and
//! without a trace sink attached — and per-phase wall-clock, so CI can
//! archive engine throughput and watch the observability overhead.

use adamant_ann::{train, Activation, NeuralNetwork, TrainParams, TrainingData};
use adamant_bench::{measure, write_perf_report, PerfReport, PhaseProfiler};
use adamant_metrics::{Delivery, MetricKind, QosReport};
use adamant_netsim::{
    Agent, Bandwidth, Ctx, HostConfig, MachineClass, MemorySink, OutPacket, Packet, SimTime,
    Simulation,
};
use std::any::Any;
use std::hint::black_box;
use std::time::Instant;

/// Minimal ping-pong agents to exercise the raw event loop.
struct Pong;
impl Agent for Pong {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        ctx.send(pkt.src, OutPacket::new(64, ()));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct Ping {
    peer: adamant_netsim::NodeId,
    remaining: u32,
}
impl Agent for Ping {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.send(self.peer, OutPacket::new(64, ()));
    }
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _pkt: Packet) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(self.peer, OutPacket::new(64, ()));
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn ping_pong_sim(round_trips: u32) -> Simulation {
    let mut sim = Simulation::new(1);
    let cfg = HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1);
    let pong = sim.add_node(cfg, Pong);
    sim.add_node(
        cfg,
        Ping {
            peer: pong,
            remaining: round_trips,
        },
    );
    sim
}

fn bench_event_loop(report: &mut PerfReport) {
    const ROUND_TRIPS: u32 = 1_000;
    report
        .measurements
        .push(measure("netsim_event_loop/ping_pong_1000", || {
            let mut sim = ping_pong_sim(ROUND_TRIPS);
            sim.run();
            black_box(sim.events_processed())
        }));
}

/// Raw dispatch throughput over a long run, untraced and traced with a
/// retaining sink — the observability layer's whole-pipeline overhead.
fn events_per_sec(report: &mut PerfReport) {
    const ROUND_TRIPS: u32 = 200_000;
    let run = |traced: bool| {
        let mut sim = ping_pong_sim(ROUND_TRIPS);
        if traced {
            sim.set_obs_sink(MemorySink::new());
        }
        let start = Instant::now();
        sim.run();
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        sim.events_processed() as f64 / secs
    };
    // Warm both paths once before measuring.
    black_box(run(false));
    report.events_per_sec = run(false);
    report.events_per_sec_traced = run(true);
    println!(
        "netsim_event_loop/events_per_sec                   {:>12.0} untraced, {:>12.0} traced",
        report.events_per_sec, report.events_per_sec_traced
    );
}

fn bench_metrics(report: &mut PerfReport) {
    let deliveries: Vec<Delivery> = (0..10_000u64)
        .map(|seq| Delivery {
            seq,
            published_at: SimTime::from_micros(seq * 100),
            delivered_at: SimTime::from_micros(seq * 100 + 350 + (seq % 13) * 7),
            recovered: seq % 20 == 0,
        })
        .collect();
    report
        .measurements
        .push(measure("metrics/report_build_10k", || {
            let mut builder = QosReport::builder(10_000, 1);
            builder.add_receiver(black_box(&deliveries), 0);
            black_box(builder.finish())
        }));
    let mut builder = QosReport::builder(10_000, 1);
    builder.add_receiver(&deliveries, 0);
    let built = builder.finish();
    report
        .measurements
        .push(measure("metrics/relate2jit_score", || {
            black_box(MetricKind::ReLate2Jit.score(black_box(&built)))
        }));
}

fn bench_training(report: &mut PerfReport) {
    // One RPROP epoch over a 394-row, 7-feature dataset (the paper's
    // training-set scale).
    let inputs: Vec<Vec<f64>> = (0..394)
        .map(|i| (0..7).map(|d| ((i * 7 + d) % 97) as f64 / 97.0).collect())
        .collect();
    let targets: Vec<Vec<f64>> = (0..394)
        .map(|i| {
            let mut t = vec![0.0; 6];
            t[i % 6] = 1.0;
            t
        })
        .collect();
    let data = TrainingData::new(inputs, targets);
    report
        .measurements
        .push(measure("ann_training/rprop_10_epochs_394rows", || {
            let mut net = NeuralNetwork::new(&[7, 24, 6], Activation::fann_default(), 7);
            black_box(train(
                &mut net,
                &data,
                &TrainParams {
                    stopping_mse: 0.0,
                    max_epochs: 10,
                    ..TrainParams::default()
                },
            ))
        }));
}

fn main() {
    let mut profiler = PhaseProfiler::new();
    let mut report = PerfReport {
        bench: "engine".to_owned(),
        events_per_sec: 0.0,
        events_per_sec_traced: 0.0,
        measurements: Vec::new(),
        phases: Vec::new(),
    };
    profiler.phase("event_loop", || bench_event_loop(&mut report));
    profiler.phase("events_per_sec", || events_per_sec(&mut report));
    profiler.phase("metrics", || bench_metrics(&mut report));
    profiler.phase("ann_training", || bench_training(&mut report));
    report.phases = profiler.phases().to_vec();
    match write_perf_report(&report) {
        Ok(path) => println!("perf report: {}", path.display()),
        Err(e) => {
            eprintln!("failed to write perf report: {e}");
            std::process::exit(1);
        }
    }
}

//! Substrate hot paths: simulator event processing, metric computation,
//! and ANN training epochs.
//!
//! Besides printing per-iteration timings, this bench writes a
//! machine-readable perf report (`BENCH_netsim.json` at the repo root, or
//! `$ADAMANT_BENCH_OUT`) carrying raw simulator events/sec — with and
//! without a trace sink attached — and per-phase wall-clock, so CI can
//! archive engine throughput and watch the observability overhead.

use adamant::{AppParams, Choice, FeatureRow, ProtocolSelector, SelectorConfig};
use adamant_ann::{train, Activation, NeuralNetwork, TrainParams, TrainingData};
use adamant_bench::ScalingPoint;
use adamant_bench::{measure, synthetic_dataset, write_perf_report, PerfReport, PhaseProfiler};
use adamant_metrics::{Delivery, MetricKind, QosReport};
use adamant_netsim::{
    Agent, Bandwidth, CalendarQueue, Ctx, HostConfig, LossModel, MachineClass, MemorySink,
    NetworkConfig, OutPacket, Packet, SimDuration, SimTime, Simulation,
};
use adamant_proto::wire::DataMsg;
use adamant_proto::{
    Env, EnvHost, Input, NodeId, ProcessingCost, ProtocolCore, Span, TimePoint, WireMsg,
};
use adamant_rt::{
    Cluster, ClusterConfig, Endpoint, MonotonicClock, MuxCluster, MuxConfig, RtConfig,
};
use adamant_transport::{NakcastReceiver, Tuning};
use std::alloc::{GlobalAlloc, Layout, System};
use std::any::Any;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A counting wrapper around the system allocator, installed only in this
/// bench binary so the steady-state alloc measurements observe every heap
/// allocation the hot paths make. `alloc` and `realloc` both count — a
/// growing `Vec` is exactly the kind of hidden churn we are hunting.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Minimal ping-pong agents to exercise the raw event loop. Packets use
/// the shared empty payload, so sending is allocation-free.
struct Pong;
impl Agent for Pong {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        ctx.send(pkt.src, OutPacket::empty(64));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct Ping {
    peer: adamant_netsim::NodeId,
    remaining: u32,
}
impl Agent for Ping {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.send(self.peer, OutPacket::empty(64));
    }
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _pkt: Packet) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(self.peer, OutPacket::empty(64));
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn ping_pong_sim(round_trips: u32) -> Simulation {
    let mut sim = Simulation::new(1);
    let cfg = HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1);
    let pong = sim.add_node(cfg, Pong);
    sim.add_node(
        cfg,
        Ping {
            peer: pong,
            remaining: round_trips,
        },
    );
    sim
}

fn bench_event_loop(report: &mut PerfReport) {
    const ROUND_TRIPS: u32 = 1_000;
    report
        .measurements
        .push(measure("netsim_event_loop/ping_pong_1000", || {
            let mut sim = ping_pong_sim(ROUND_TRIPS);
            sim.run();
            black_box(sim.events_processed())
        }));
}

/// Raw dispatch throughput over a long run, untraced and traced with a
/// retaining sink — the observability layer's whole-pipeline overhead.
fn events_per_sec(report: &mut PerfReport) {
    const ROUND_TRIPS: u32 = 200_000;
    let run = |traced: bool| {
        let mut sim = ping_pong_sim(ROUND_TRIPS);
        if traced {
            sim.set_obs_sink(MemorySink::new());
        }
        let start = Instant::now();
        sim.run();
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        sim.events_processed() as f64 / secs
    };
    // Warm both paths once before measuring.
    black_box(run(false));
    report.events_per_sec = run(false);
    report.events_per_sec_traced = run(true);
    println!(
        "netsim_event_loop/events_per_sec                   {:>12.0} untraced, {:>12.0} traced",
        report.events_per_sec, report.events_per_sec_traced
    );
}

/// Raw calendar-queue throughput: sustained push+pop churn over a large
/// live set, times drawn from a cheap inline LCG so the generator itself
/// is negligible.
fn bench_queue(report: &mut PerfReport) {
    const LIVE: u64 = 4_096;
    const PAIRS: u64 = 1 << 21;
    let churn = || {
        let mut queue: CalendarQueue<u64> = CalendarQueue::new();
        let mut lcg: u64 = 0x2545_f491_4f6c_dd1d;
        let mut clock = 0u64;
        for i in 0..LIVE {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            queue.push(lcg >> 44, i);
        }
        for i in 0..PAIRS {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            queue.push(clock + (lcg >> 44), i);
            let (t, _, item) = queue.pop().expect("queue populated");
            clock = t;
            black_box(item);
        }
        while let Some(e) = queue.pop() {
            black_box(e);
        }
    };
    churn();
    let start = Instant::now();
    churn();
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    // One push and one pop per pair.
    report.queue_ops_per_sec = (2 * PAIRS) as f64 / secs;
    println!(
        "calendar_queue/push_pop_ops_per_sec                {:>12.0}",
        report.queue_ops_per_sec
    );
}

/// Sans-I/O protocol-engine throughput: effects per second out of a
/// warmed NAKcast receiver core stepped directly through `EnvHost` with
/// an in-order data stream — no simulator, no sockets, just the state
/// machine. This is the ceiling any driver (netsim or real UDP) steps
/// against, kept in the report so driver work has a baseline.
fn bench_proto_step(report: &mut PerfReport) {
    const PACKETS: u64 = 200_000;
    let sender = NodeId(0);
    let run = || {
        let mut core = NakcastReceiver::new(
            sender,
            PACKETS,
            Span::from_millis(1),
            Tuning::default(),
            0.0,
        );
        let mut host = EnvHost::new(NodeId(1), 1);
        let mut effects = Vec::new();
        let mut total = 0u64;
        let start = Instant::now();
        for seq in 0..PACKETS {
            let msg = WireMsg::Data(DataMsg {
                seq,
                published_at: TimePoint::from_micros(seq * 10),
                retransmission: false,
            });
            host.step_into(
                &mut core,
                TimePoint::from_micros(seq * 10 + 5),
                Input::PacketIn {
                    src: sender,
                    msg: &msg,
                },
                &mut effects,
            );
            total += effects.len() as u64;
            effects.clear();
        }
        (total, start.elapsed())
    };
    // One full pass warms the core's reception log and the host buffers.
    black_box(run());
    let (total, elapsed) = run();
    assert!(total >= PACKETS, "every in-order packet must deliver");
    report.proto_effects_per_sec = total as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "proto_step/nakcast_effects_per_sec                 {:>12.0} ({total} effects)",
        report.proto_effects_per_sec
    );
}

/// A timer-paced publisher that loops datagrams back to its own socket:
/// every `period` it sends a burst of `Data` messages addressed to its
/// own node (the peer table maps that to its own UDP port) and delivers
/// whatever arrives. This is the paper's periodic-sender shape reduced to
/// one endpoint, so a fleet of them measures how many concurrently paced
/// endpoints a host can sustain — the consolidation question the sharded
/// runtimes exist to answer. The first timer is staggered by node id so a
/// large fleet does not fire as one thundering herd.
struct PacedEcho {
    period: Span,
    burst: u32,
    seq: u64,
}

impl ProtocolCore for PacedEcho {
    fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
        match input {
            Input::Start => {
                let phase = u64::from(env.node().0) % 997;
                env.set_timer(Span::from_nanos(self.period.as_nanos() * phase / 997), 0);
            }
            Input::TimerFired { .. } => {
                let node = env.node();
                for _ in 0..self.burst {
                    let msg = WireMsg::Data(DataMsg {
                        seq: self.seq,
                        published_at: env.now(),
                        retransmission: false,
                    });
                    self.seq += 1;
                    env.send(node, 64, 0, ProcessingCost::FREE, msg);
                }
                env.set_timer(self.period, 0);
            }
            Input::PacketIn { msg, .. } => {
                if let WireMsg::Data(d) = msg {
                    env.deliver(d.seq, d.published_at, false);
                }
            }
            Input::Tick => {}
        }
    }
}

/// Aggregate delivered-message throughput of timer-paced echo endpoints,
/// hosted three ways over real UDP sockets:
///
/// * **sequential** — one endpoint at a time through single-endpoint
///   `run_for` loops (the only option before the cluster existed): the
///   pacing walls serialize, so aggregate throughput is one endpoint's.
/// * **per-socket cluster** — 64 endpoints inside a sharded `Cluster` on
///   4 workers, one UDP socket and one `recv_from` per endpoint per
///   datagram: every endpoint's pacing overlaps, but each message still
///   pays a full syscall round trip.
/// * **multiplexed** — 1024 endpoints inside a `MuxCluster`: per-worker
///   shared-socket pools, `epoll` parking, `recvmmsg`/`sendmmsg`
///   batches, and adjacent same-destination messages coalesced into one
///   datagram. Per-message syscall and kernel-stack costs amortize over
///   the batch, which is where the order-of-magnitude gain lives.
fn bench_cluster(report: &mut PerfReport) {
    use std::time::Duration;

    const ENDPOINTS: usize = 64;
    const WORKERS: usize = 4;
    const PERIOD: Span = Span::from_micros(250);
    const WALL: Duration = Duration::from_millis(30);

    let clock = MonotonicClock::start();

    let sequential_start = Instant::now();
    let mut sequential_delivered = 0u64;
    for i in 0..ENDPOINTS as u32 {
        let node = NodeId(i);
        let mut ep = Endpoint::bind(
            node,
            "127.0.0.1:0",
            RtConfig::new(u64::from(i) + 1).with_clock(clock),
        )
        .expect("bind echo endpoint");
        let addr = ep.local_addr().expect("local addr");
        ep.add_peer(node, addr);
        let mut core = PacedEcho {
            period: PERIOD,
            burst: 1,
            seq: 0,
        };
        ep.run_for(&mut core, WALL).expect("sequential echo run");
        sequential_delivered += ep.report().delivered.len() as u64;
    }
    let sequential_secs = sequential_start.elapsed().as_secs_f64().max(1e-9);
    report.sequential_msgs_per_sec = sequential_delivered as f64 / sequential_secs;

    let mut cluster = Cluster::new(ClusterConfig::new(WORKERS).with_clock(clock));
    for i in 0..ENDPOINTS as u32 {
        let node = NodeId(i);
        let id = cluster
            .add_endpoint(
                node,
                "127.0.0.1:0",
                PacedEcho {
                    period: PERIOD,
                    burst: 1,
                    seq: 0,
                },
            )
            .expect("bind cluster echo endpoint");
        let addr = cluster.local_addr(id).expect("local addr");
        cluster.add_peer(id, node, addr).expect("self peer route");
    }
    let cluster_start = Instant::now();
    cluster.run_for(WALL).expect("cluster echo run");
    let cluster_secs = cluster_start.elapsed().as_secs_f64().max(1e-9);
    report.per_socket_msgs_per_sec = cluster.stats().delivered as f64 / cluster_secs;

    // The multiplexed runtime hosts a 16x larger fleet with a saturating
    // offered load (1024 endpoints x 16 msgs/ms = 16M/s offered); what it
    // delivers is its actual single-host capacity.
    const MUX_ENDPOINTS: u32 = 1024;
    const MUX_WALL: Duration = Duration::from_millis(300);
    let mut mux = MuxCluster::bind(
        "127.0.0.1:0",
        MuxConfig::new(WORKERS)
            .with_sockets_per_worker(4)
            .with_batch_size(64)
            .with_observed(false)
            .with_seed(1)
            .with_clock(clock),
    )
    .expect("bind mux cluster");
    for i in 0..MUX_ENDPOINTS {
        let id = mux
            .add_endpoint(
                NodeId(i),
                PacedEcho {
                    period: Span::from_millis(1),
                    burst: 16,
                    seq: 0,
                },
            )
            .expect("add mux endpoint");
        mux.add_peer(id, id).expect("self route");
    }
    let mux_start = Instant::now();
    mux.run_for(MUX_WALL).expect("mux echo run");
    let mux_secs = mux_start.elapsed().as_secs_f64().max(1e-9);
    report.cluster_msgs_per_sec = mux.stats().delivered as f64 / mux_secs;

    println!(
        "cluster/echo_msgs_per_sec                          {:>12.0} mux (1024 ep), \
         {:>12.0} per-socket (64 ep), {:>12.0} sequential ({:.1}x over per-socket)",
        report.cluster_msgs_per_sec,
        report.per_socket_msgs_per_sec,
        report.sequential_msgs_per_sec,
        report.cluster_msgs_per_sec / report.per_socket_msgs_per_sec.max(1e-9),
    );
}

/// Endpoint-count scaling of the multiplexed runtime: 1k, 10k, and 100k
/// self-echo endpoints under a constant aggregate offered load (~1M
/// msgs/s — each point scales the pacing period with the fleet size).
/// Flat delivered throughput across the series demonstrates that per-
/// endpoint cost is independent of fleet size: the descriptor budget
/// stays at `workers x sockets_per_worker`, demux is O(1) per datagram,
/// and idle endpoints cost nothing (`busy_polls` stays near zero because
/// workers park in `epoll` instead of spinning).
fn bench_endpoint_scaling(report: &mut PerfReport) {
    use std::time::Duration;

    for endpoints in [1_000u64, 10_000, 100_000] {
        let mut mux = MuxCluster::bind(
            "127.0.0.1:0",
            MuxConfig::new(4)
                .with_sockets_per_worker(4)
                .with_batch_size(64)
                .with_observed(false)
                .with_seed(endpoints),
        )
        .expect("bind mux cluster");
        // Period grows with the fleet so offered load stays ~1M msgs/s;
        // the wall covers the staggered ramp-up plus two steady periods.
        let period = Span::from_micros(4 * endpoints);
        let wall =
            Duration::from_micros(3 * period.as_nanos() / 1000).max(Duration::from_millis(600));
        for i in 0..endpoints as u32 {
            let id = mux
                .add_endpoint(
                    NodeId(i),
                    PacedEcho {
                        period,
                        burst: 4,
                        seq: 0,
                    },
                )
                .expect("add mux endpoint");
            mux.add_peer(id, id).expect("self route");
        }
        let start = Instant::now();
        mux.run_for(wall).expect("mux scaling run");
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        let stats = mux.stats();
        let point = ScalingPoint {
            endpoints,
            msgs_per_sec: stats.delivered as f64 / secs,
            busy_polls: stats.busy_polls,
        };
        println!(
            "cluster_scaling/{endpoints}ep_msgs_per_sec{:pad$} {:>12.0} ({} busy polls)",
            "",
            point.msgs_per_sec,
            point.busy_polls,
            pad = 24usize.saturating_sub(endpoints.to_string().len()),
        );
        report.endpoint_scaling.push(point);
    }
}

/// Counts heap allocations across a steady-state window of the event loop
/// and across warmed-up training epochs. Both are designed to be zero:
/// every buffer the hot paths touch is recycled after warm-up.
fn bench_allocations(report: &mut PerfReport) {
    // Short propagation keeps the whole window inside simulated second 0,
    // so even the per-second bandwidth histogram stays at its warm size.
    let network = NetworkConfig {
        propagation: SimDuration::from_nanos(500),
        loss: LossModel::NONE,
    };
    // Warm-up must exceed one full calendar-ring cycle (1024 buckets ×
    // 262 µs ≈ 268 ms of simulated time) so every bucket slot has rotated
    // storage before counting begins.
    let mut sim = ping_pong_sim(u32::MAX).with_network(network);
    sim.run_until(SimTime::from_millis(300));
    let warmed_events = sim.events_processed();
    let before = allocations();
    sim.run_until(SimTime::from_millis(700));
    report.event_loop_steady_allocs = allocations() - before;
    let window_events = sim.events_processed() - warmed_events;
    println!(
        "netsim_event_loop/steady_state_allocs              {:>12} (over {} events)",
        report.event_loop_steady_allocs, window_events
    );

    // Training: identical runs at 1 and 11 epochs; the difference isolates
    // ten warmed-up epochs from one-time scratch/state construction.
    let data = training_data();
    let epochs_allocs = |max_epochs: u32| {
        let mut net = NeuralNetwork::new(&[7, 24, 6], Activation::fann_default(), 7);
        let before = allocations();
        black_box(train(
            &mut net,
            &data,
            &TrainParams {
                stopping_mse: 0.0,
                max_epochs,
                ..TrainParams::default()
            },
        ));
        allocations() - before
    };
    let one = epochs_allocs(1);
    let eleven = epochs_allocs(11);
    report.training_epoch_allocs = eleven.saturating_sub(one) / 10;
    println!(
        "ann_training/steady_state_allocs_per_epoch         {:>12}",
        report.training_epoch_allocs
    );
}

fn bench_metrics(report: &mut PerfReport) {
    let deliveries: Vec<Delivery> = (0..10_000u64)
        .map(|seq| Delivery {
            seq,
            published_at: SimTime::from_micros(seq * 100),
            delivered_at: SimTime::from_micros(seq * 100 + 350 + (seq % 13) * 7),
            recovered: seq % 20 == 0,
        })
        .collect();
    report
        .measurements
        .push(measure("metrics/report_build_10k", || {
            let mut builder = QosReport::builder(10_000, 1);
            builder.add_receiver(black_box(&deliveries), 0);
            black_box(builder.finish())
        }));
    let mut builder = QosReport::builder(10_000, 1);
    builder.add_receiver(&deliveries, 0);
    let built = builder.finish();
    report
        .measurements
        .push(measure("metrics/relate2jit_score", || {
            black_box(MetricKind::ReLate2Jit.score(black_box(&built)))
        }));
}

/// A 394-row, 7-feature dataset (the paper's training-set scale).
fn training_data() -> TrainingData {
    let inputs: Vec<Vec<f64>> = (0..394)
        .map(|i| (0..7).map(|d| ((i * 7 + d) % 97) as f64 / 97.0).collect())
        .collect();
    let targets: Vec<Vec<f64>> = (0..394)
        .map(|i| {
            let mut t = vec![0.0; 6];
            t[i % 6] = 1.0;
            t
        })
        .collect();
    TrainingData::new(inputs, targets)
}

/// Fleet-scale selection throughput: a trained knowledge base answering a
/// 1024-query fleet sweep through `select_batch` (one flat-slice forward
/// pass over the whole batch) against the same mix answered by per-call
/// scalar `select`. The batched path amortizes dispatch, scaling, and
/// buffer churn across the batch; the ratio is the consolidation win for
/// whole-fleet re-selection after an environment change.
fn bench_selection(report: &mut PerfReport) {
    use std::time::Duration;

    const TARGET: Duration = Duration::from_millis(300);
    let dataset = synthetic_dataset();
    let (selector, _) = ProtocolSelector::train_from(
        &dataset,
        &SelectorConfig {
            train: TrainParams {
                max_epochs: 200,
                ..TrainParams::default()
            },
            ..SelectorConfig::default()
        },
    );
    // A fleet's worth of distinct queries, cycling the dataset's
    // environments with varying application parameters.
    let queries: Vec<FeatureRow> = dataset
        .rows
        .iter()
        .cycle()
        .take(1024)
        .enumerate()
        .map(|(i, row)| {
            FeatureRow::new(
                row.env,
                AppParams::new(1 + (i as u32 % 25), 10 + (i as u32 % 91)),
                row.metric,
            )
        })
        .collect();
    let mut out = vec![Choice::default(); queries.len()];

    selector.select_batch(&queries, &mut out);
    let mut batched_queries = 0u64;
    let start = Instant::now();
    while start.elapsed() < TARGET {
        selector.select_batch(black_box(&queries), &mut out);
        batched_queries += queries.len() as u64;
    }
    report.selections_per_sec = batched_queries as f64 / start.elapsed().as_secs_f64().max(1e-9);

    black_box(selector.select(&queries[0].env, &queries[0].app, queries[0].metric));
    let mut scalar_queries = 0u64;
    let start = Instant::now();
    while start.elapsed() < TARGET {
        for query in &queries {
            black_box(selector.select(black_box(&query.env), black_box(&query.app), query.metric));
        }
        scalar_queries += queries.len() as u64;
    }
    report.selections_per_sec_scalar =
        scalar_queries as f64 / start.elapsed().as_secs_f64().max(1e-9);

    println!(
        "selector/selections_per_sec                        {:>12.0} batched (1024-row sweep), \
         {:>12.0} scalar ({:.1}x)",
        report.selections_per_sec,
        report.selections_per_sec_scalar,
        report.selections_per_sec / report.selections_per_sec_scalar.max(1e-9),
    );
}

fn bench_training(report: &mut PerfReport) {
    // Ten RPROP epochs over the paper-scale dataset.
    let data = training_data();
    report
        .measurements
        .push(measure("ann_training/rprop_10_epochs_394rows", || {
            let mut net = NeuralNetwork::new(&[7, 24, 6], Activation::fann_default(), 7);
            black_box(train(
                &mut net,
                &data,
                &TrainParams {
                    stopping_mse: 0.0,
                    max_epochs: 10,
                    ..TrainParams::default()
                },
            ))
        }));
}

fn main() {
    let mut profiler = PhaseProfiler::new();
    let mut report = PerfReport {
        bench: "engine".to_owned(),
        events_per_sec: 0.0,
        events_per_sec_traced: 0.0,
        queue_ops_per_sec: 0.0,
        proto_effects_per_sec: 0.0,
        cluster_msgs_per_sec: 0.0,
        per_socket_msgs_per_sec: 0.0,
        sequential_msgs_per_sec: 0.0,
        selections_per_sec: 0.0,
        selections_per_sec_scalar: 0.0,
        endpoint_scaling: Vec::new(),
        event_loop_steady_allocs: 0,
        training_epoch_allocs: 0,
        measurements: Vec::new(),
        phases: Vec::new(),
    };
    profiler.phase("event_loop", || bench_event_loop(&mut report));
    profiler.phase("events_per_sec", || events_per_sec(&mut report));
    profiler.phase("calendar_queue", || bench_queue(&mut report));
    profiler.phase("proto_step", || bench_proto_step(&mut report));
    profiler.phase("cluster", || bench_cluster(&mut report));
    profiler.phase("cluster_endpoints_scaling", || {
        bench_endpoint_scaling(&mut report)
    });
    profiler.phase("allocations", || bench_allocations(&mut report));
    profiler.phase("metrics", || bench_metrics(&mut report));
    profiler.phase("selector", || bench_selection(&mut report));
    profiler.phase("ann_training", || bench_training(&mut report));
    report.phases = profiler.phases().to_vec();
    match write_perf_report(&report) {
        Ok(path) => println!("perf report: {}", path.display()),
        Err(e) => {
            eprintln!("failed to write perf report: {e}");
            std::process::exit(1);
        }
    }
}

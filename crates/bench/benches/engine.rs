//! Substrate hot paths: simulator event processing, metric computation,
//! and ANN training epochs.

use adamant_ann::{train, Activation, NeuralNetwork, TrainParams, TrainingData};
use adamant_bench::bench;
use adamant_metrics::{Delivery, MetricKind, QosReport};
use adamant_netsim::{
    Agent, Bandwidth, Ctx, HostConfig, MachineClass, OutPacket, Packet, SimTime, Simulation,
};
use std::any::Any;
use std::hint::black_box;

/// Minimal ping-pong agents to exercise the raw event loop.
struct Pong;
impl Agent for Pong {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet) {
        ctx.send(pkt.src, OutPacket::new(64, ()));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct Ping {
    peer: adamant_netsim::NodeId,
    remaining: u32,
}
impl Agent for Ping {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.send(self.peer, OutPacket::new(64, ()));
    }
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _pkt: Packet) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.send(self.peer, OutPacket::new(64, ()));
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn bench_event_loop() {
    const ROUND_TRIPS: u32 = 1_000;
    bench("netsim_event_loop/ping_pong_1000", || {
        let mut sim = Simulation::new(1);
        let cfg = HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1);
        let pong = sim.add_node(cfg, Pong);
        sim.add_node(
            cfg,
            Ping {
                peer: pong,
                remaining: ROUND_TRIPS,
            },
        );
        sim.run();
        black_box(sim.events_processed())
    });
}

fn bench_metrics() {
    let deliveries: Vec<Delivery> = (0..10_000u64)
        .map(|seq| Delivery {
            seq,
            published_at: SimTime::from_micros(seq * 100),
            delivered_at: SimTime::from_micros(seq * 100 + 350 + (seq % 13) * 7),
            recovered: seq % 20 == 0,
        })
        .collect();
    bench("metrics/report_build_10k", || {
        let mut builder = QosReport::builder(10_000, 1);
        builder.add_receiver(black_box(&deliveries), 0);
        black_box(builder.finish())
    });
    let mut builder = QosReport::builder(10_000, 1);
    builder.add_receiver(&deliveries, 0);
    let report = builder.finish();
    bench("metrics/relate2jit_score", || {
        black_box(MetricKind::ReLate2Jit.score(black_box(&report)))
    });
}

fn bench_training() {
    // One RPROP epoch over a 394-row, 7-feature dataset (the paper's
    // training-set scale).
    let inputs: Vec<Vec<f64>> = (0..394)
        .map(|i| (0..7).map(|d| ((i * 7 + d) % 97) as f64 / 97.0).collect())
        .collect();
    let targets: Vec<Vec<f64>> = (0..394)
        .map(|i| {
            let mut t = vec![0.0; 6];
            t[i % 6] = 1.0;
            t
        })
        .collect();
    let data = TrainingData::new(inputs, targets);
    bench("ann_training/rprop_10_epochs_394rows", || {
        let mut net = NeuralNetwork::new(&[7, 24, 6], Activation::fann_default(), 7);
        black_box(train(
            &mut net,
            &data,
            &TrainParams {
                stopping_mse: 0.0,
                max_epochs: 10,
                ..TrainParams::default()
            },
        ))
    });
}

fn main() {
    bench_event_loop();
    bench_metrics();
    bench_training();
}

//! n-fold cross-validation (the paper's §4.4 methodology for accuracy on
//! environments "unknown until runtime").

use crate::classify::evaluate;
use crate::network::NeuralNetwork;
use crate::rng::InitRng;
use crate::train::{train, TrainParams, TrainingData};
use crate::Activation;

/// Deterministically assigns each of `n` examples to one of `k` folds
/// (shuffled by `seed`), returning the fold index per example.
///
/// # Panics
///
/// Panics if `k` is zero or greater than `n`.
pub fn fold_assignment(n: usize, k: usize, seed: u64) -> Vec<usize> {
    assert!(k > 0, "need at least one fold");
    assert!(k <= n, "more folds than examples");
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = InitRng::new(seed);
    for i in (1..n).rev() {
        let j = rng.below(i + 1);
        order.swap(i, j);
    }
    let mut folds = vec![0usize; n];
    for (pos, &example) in order.iter().enumerate() {
        folds[example] = pos % k;
    }
    folds
}

/// Result of one cross-validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossValidation {
    /// Held-out accuracy per fold.
    pub fold_accuracies: Vec<f64>,
}

impl CrossValidation {
    /// Mean held-out accuracy.
    pub fn mean_accuracy(&self) -> f64 {
        if self.fold_accuracies.is_empty() {
            return 0.0;
        }
        self.fold_accuracies.iter().sum::<f64>() / self.fold_accuracies.len() as f64
    }
}

/// Runs `k`-fold cross-validation: trains a fresh network (architecture
/// `layer_sizes`, weights seeded per fold) on each training split and
/// evaluates on the held-out fold.
///
/// # Panics
///
/// Panics if `k` exceeds the dataset size or `layer_sizes` does not match
/// the data dimensions.
pub fn cross_validate(
    layer_sizes: &[usize],
    activation: Activation,
    data: &TrainingData,
    params: &TrainParams,
    k: usize,
    seed: u64,
) -> CrossValidation {
    let folds = fold_assignment(data.len(), k, seed);
    let mut fold_accuracies = Vec::with_capacity(k);
    for fold in 0..k {
        let (test, train_set) = data.split_by(|i| folds[i] == fold);
        let mut net = NeuralNetwork::new(layer_sizes, activation, seed ^ (fold as u64) << 32);
        train(&mut net, &train_set, params);
        fold_accuracies.push(evaluate(&net, &test).accuracy());
    }
    CrossValidation { fold_accuracies }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::one_hot;

    #[test]
    fn folds_are_balanced_and_cover_everything() {
        let folds = fold_assignment(100, 10, 3);
        assert_eq!(folds.len(), 100);
        for f in 0..10 {
            assert_eq!(folds.iter().filter(|&&x| x == f).count(), 10);
        }
    }

    #[test]
    fn uneven_folds_differ_by_at_most_one() {
        let folds = fold_assignment(47, 10, 1);
        let sizes: Vec<usize> = (0..10)
            .map(|f| folds.iter().filter(|&&x| x == f).count())
            .collect();
        assert_eq!(sizes.iter().sum::<usize>(), 47);
        assert!(sizes.iter().all(|&s| s == 4 || s == 5));
    }

    #[test]
    fn fold_assignment_deterministic_per_seed() {
        assert_eq!(fold_assignment(30, 5, 7), fold_assignment(30, 5, 7));
        assert_ne!(fold_assignment(30, 5, 7), fold_assignment(30, 5, 8));
    }

    #[test]
    #[should_panic(expected = "more folds")]
    fn too_many_folds_panics() {
        fold_assignment(3, 5, 0);
    }

    #[test]
    fn cross_validation_on_separable_data_scores_high() {
        // Two linearly separable classes.
        let inputs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        let targets: Vec<Vec<f64>> = (0..40).map(|i| one_hot(usize::from(i >= 20), 2)).collect();
        let data = TrainingData::new(inputs, targets);
        let cv = cross_validate(
            &[1, 6, 2],
            Activation::fann_default(),
            &data,
            &TrainParams {
                stopping_mse: 1e-3,
                max_epochs: 1_500,
                ..TrainParams::default()
            },
            5,
            11,
        );
        assert_eq!(cv.fold_accuracies.len(), 5);
        assert!(
            cv.mean_accuracy() > 0.85,
            "mean accuracy {}",
            cv.mean_accuracy()
        );
    }

    #[test]
    fn empty_cv_mean_is_zero() {
        let cv = CrossValidation {
            fold_accuracies: vec![],
        };
        assert_eq!(cv.mean_accuracy(), 0.0);
    }
}

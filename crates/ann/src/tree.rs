//! A CART-style decision-tree classifier.
//!
//! The paper's concluding remarks note the authors were "investigating
//! other machine learning techniques that provide timeliness and high
//! accuracy to compare with ANNs". A depth-bounded decision tree is the
//! natural first comparator: training is deterministic, and querying is a
//! short chain of comparisons — also constant-bounded, like the ANN's
//! forward pass.

use adamant_json::{impl_json_struct, FromJson, Json, JsonError, ToJson};

/// Training limits for [`DecisionTree::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionTreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Do not split nodes with fewer examples than this.
    pub min_samples_split: usize,
}

impl Default for DecisionTreeParams {
    fn default() -> Self {
        DecisionTreeParams {
            max_depth: 12,
            min_samples_split: 2,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl_json_struct!(DecisionTreeParams {
    max_depth,
    min_samples_split,
});

// Externally tagged like the serde derive layout: `{"Leaf":{"class":n}}` /
// `{"Split":{...}}`.
impl ToJson for Node {
    fn to_json(&self) -> Json {
        match self {
            Node::Leaf { class } => Json::Obj(vec![(
                "Leaf".to_owned(),
                Json::Obj(vec![("class".to_owned(), class.to_json())]),
            )]),
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => Json::Obj(vec![(
                "Split".to_owned(),
                Json::Obj(vec![
                    ("feature".to_owned(), feature.to_json()),
                    ("threshold".to_owned(), threshold.to_json()),
                    ("left".to_owned(), left.to_json()),
                    ("right".to_owned(), right.to_json()),
                ]),
            )]),
        }
    }
}

impl FromJson for Node {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Some(body) = v.get("Leaf") {
            return Ok(Node::Leaf {
                class: body.field("class")?,
            });
        }
        if let Some(body) = v.get("Split") {
            return Ok(Node::Split {
                feature: body.field("feature")?,
                threshold: body.field("threshold")?,
                left: body.field("left")?,
                right: body.field("right")?,
            });
        }
        Err(JsonError(format!("invalid tree Node: {}", v.kind())))
    }
}

/// A trained decision tree over dense `f64` features.
///
/// # Examples
///
/// ```
/// use adamant_ann::{DecisionTree, DecisionTreeParams};
///
/// let inputs = vec![vec![0.1], vec![0.2], vec![0.8], vec![0.9]];
/// let labels = vec![0, 0, 1, 1];
/// let tree = DecisionTree::fit(&inputs, &labels, 2, DecisionTreeParams::default());
/// assert_eq!(tree.predict(&[0.15]), 0);
/// assert_eq!(tree.predict(&[0.85]), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    root: Node,
    classes: usize,
    features: usize,
}

impl_json_struct!(DecisionTree {
    root,
    classes,
    features,
});

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let mut sum_sq = 0.0;
    for &c in counts {
        let p = c as f64 / total as f64;
        sum_sq += p * p;
    }
    1.0 - sum_sq
}

fn majority(counts: &[usize]) -> usize {
    counts
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

impl DecisionTree {
    /// Fits a tree to `inputs` with integer `labels` in `0..classes`.
    ///
    /// Training is fully deterministic: features are scanned in order and
    /// the first best split wins.
    ///
    /// # Panics
    ///
    /// Panics if the inputs are empty or ragged, the label count differs,
    /// or any label is out of range.
    pub fn fit(
        inputs: &[Vec<f64>],
        labels: &[usize],
        classes: usize,
        params: DecisionTreeParams,
    ) -> Self {
        assert!(!inputs.is_empty(), "cannot fit a tree to no data");
        assert_eq!(inputs.len(), labels.len(), "label count mismatch");
        let features = inputs[0].len();
        assert!(
            inputs.iter().all(|r| r.len() == features),
            "ragged input rows"
        );
        assert!(labels.iter().all(|&l| l < classes), "label out of range");
        let indices: Vec<usize> = (0..inputs.len()).collect();
        let root = Self::build(inputs, labels, classes, &indices, 0, &params);
        DecisionTree {
            root,
            classes,
            features,
        }
    }

    fn build(
        inputs: &[Vec<f64>],
        labels: &[usize],
        classes: usize,
        indices: &[usize],
        depth: usize,
        params: &DecisionTreeParams,
    ) -> Node {
        let mut counts = vec![0usize; classes];
        for &i in indices {
            counts[labels[i]] += 1;
        }
        let node_gini = gini(&counts, indices.len());
        if node_gini == 0.0 || depth >= params.max_depth || indices.len() < params.min_samples_split
        {
            return Node::Leaf {
                class: majority(&counts),
            };
        }

        // Exhaustive split search: for each feature, sort the node's
        // examples and evaluate every midpoint between distinct values.
        let mut best: Option<(f64, usize, f64)> = None; // (impurity, feature, threshold)
        let features = inputs[indices[0]].len();
        #[allow(clippy::needless_range_loop)] // `feature` indexes a column across many rows
        for feature in 0..features {
            let mut order: Vec<usize> = indices.to_vec();
            order.sort_by(|&a, &b| inputs[a][feature].total_cmp(&inputs[b][feature]));
            let mut left_counts = vec![0usize; classes];
            let mut right_counts = counts.clone();
            for cut in 1..order.len() {
                let moved = order[cut - 1];
                left_counts[labels[moved]] += 1;
                right_counts[labels[moved]] -= 1;
                let a = inputs[order[cut - 1]][feature];
                let b = inputs[order[cut]][feature];
                if a == b {
                    continue;
                }
                let threshold = a + (b - a) / 2.0;
                let left_total = cut;
                let right_total = order.len() - cut;
                let weighted = (left_total as f64 * gini(&left_counts, left_total)
                    + right_total as f64 * gini(&right_counts, right_total))
                    / order.len() as f64;
                if best.is_none_or(|(bi, _, _)| weighted < bi - 1e-12) {
                    best = Some((weighted, feature, threshold));
                }
            }
        }

        let Some((impurity, feature, threshold)) = best else {
            return Node::Leaf {
                class: majority(&counts),
            };
        };
        // Accept zero-gain splits (XOR-like patterns have no single
        // impurity-reducing cut at the root, yet splitting still leads to
        // pure grandchildren); the depth cap bounds the recursion. Reject
        // only splits that make things strictly worse.
        if impurity > node_gini + 1e-12 {
            return Node::Leaf {
                class: majority(&counts),
            };
        }
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| inputs[i][feature] <= threshold);
        Node::Split {
            feature,
            threshold,
            left: Box::new(Self::build(
                inputs,
                labels,
                classes,
                &left_idx,
                depth + 1,
                params,
            )),
            right: Box::new(Self::build(
                inputs,
                labels,
                classes,
                &right_idx,
                depth + 1,
                params,
            )),
        }
    }

    /// Predicts the class of `input`.
    ///
    /// # Panics
    ///
    /// Panics if `input` has the wrong dimensionality.
    pub fn predict(&self, input: &[f64]) -> usize {
        assert_eq!(input.len(), self.features, "feature dimension mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { class } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if input[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Fraction of `(input, label)` pairs predicted correctly.
    pub fn accuracy(&self, inputs: &[Vec<f64>], labels: &[usize]) -> f64 {
        if inputs.is_empty() {
            return 0.0;
        }
        let correct = inputs
            .iter()
            .zip(labels)
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        correct as f64 / inputs.len() as f64
    }

    /// Total nodes in the tree.
    pub fn node_count(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Depth of the deepest leaf (root = 0).
    pub fn depth(&self) -> usize {
        fn depth(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + depth(left).max(depth(right)),
            }
        }
        depth(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_separable_data_perfectly() {
        let inputs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
        let tree = DecisionTree::fit(&inputs, &labels, 2, DecisionTreeParams::default());
        assert_eq!(tree.accuracy(&inputs, &labels), 1.0);
        assert_eq!(tree.depth(), 1);
        assert_eq!(tree.node_count(), 3);
    }

    #[test]
    fn learns_xor_with_two_features() {
        let inputs = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let labels = vec![0, 1, 1, 0];
        let tree = DecisionTree::fit(&inputs, &labels, 2, DecisionTreeParams::default());
        assert_eq!(tree.accuracy(&inputs, &labels), 1.0);
        assert!(tree.depth() >= 2, "XOR needs two levels");
    }

    #[test]
    fn depth_cap_is_respected() {
        let inputs: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let labels: Vec<usize> = (0..64).map(|i| (i % 2) as usize).collect();
        let tree = DecisionTree::fit(
            &inputs,
            &labels,
            2,
            DecisionTreeParams {
                max_depth: 3,
                min_samples_split: 2,
            },
        );
        assert!(tree.depth() <= 3);
        // Alternating labels on one feature cannot be perfect at depth 3.
        assert!(tree.accuracy(&inputs, &labels) < 1.0);
    }

    #[test]
    fn pure_node_is_a_leaf() {
        let inputs = vec![vec![1.0], vec![2.0], vec![3.0]];
        let labels = vec![1, 1, 1];
        let tree = DecisionTree::fit(&inputs, &labels, 3, DecisionTreeParams::default());
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[99.0]), 1);
    }

    #[test]
    fn deterministic_fit() {
        let inputs: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 7) as f64, (i % 5) as f64])
            .collect();
        let labels: Vec<usize> = (0..30).map(|i| (i % 3) as usize).collect();
        let a = DecisionTree::fit(&inputs, &labels, 3, DecisionTreeParams::default());
        let b = DecisionTree::fit(&inputs, &labels, 3, DecisionTreeParams::default());
        assert_eq!(a, b);
    }

    #[test]
    fn json_round_trip() {
        let inputs = vec![vec![0.0], vec![1.0]];
        let labels = vec![0, 1];
        let tree = DecisionTree::fit(&inputs, &labels, 2, DecisionTreeParams::default());
        let json = adamant_json::to_string(&tree);
        let back: DecisionTree = adamant_json::from_str(&json).unwrap();
        assert_eq!(tree, back);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn bad_labels_rejected() {
        DecisionTree::fit(&[vec![0.0]], &[5], 2, DecisionTreeParams::default());
    }

    #[test]
    #[should_panic(expected = "feature dimension")]
    fn wrong_dimension_rejected() {
        let tree = DecisionTree::fit(
            &[vec![0.0], vec![1.0]],
            &[0, 1],
            2,
            DecisionTreeParams::default(),
        );
        tree.predict(&[0.0, 1.0]);
    }
}

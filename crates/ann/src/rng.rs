//! Minimal deterministic RNG for weight initialisation (SplitMix64).

/// A tiny deterministic generator: enough for reproducible weight
/// initialisation without pulling in a dependency.
#[derive(Debug, Clone)]
pub(crate) struct InitRng {
    state: u64,
}

impl InitRng {
    pub fn new(seed: u64) -> Self {
        InitRng {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[-half_range, half_range)`.
    pub fn uniform(&mut self, half_range: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (unit * 2.0 - 1.0) * half_range
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = InitRng::new(5);
        let mut b = InitRng::new(5);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_range() {
        let mut rng = InitRng::new(1);
        for _ in 0..1_000 {
            let x = rng.uniform(0.5);
            assert!((-0.5..0.5).contains(&x));
        }
    }

    #[test]
    fn below_in_range() {
        let mut rng = InitRng::new(2);
        for _ in 0..1_000 {
            assert!(rng.below(7) < 7);
        }
    }
}

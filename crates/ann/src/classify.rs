//! Classification on top of the network: one-hot targets, argmax
//! prediction, accuracy, and confusion matrices.

use crate::network::NeuralNetwork;
use crate::train::TrainingData;

/// Encodes class `class` of `classes` as a one-hot target vector.
///
/// # Panics
///
/// Panics if `class >= classes`.
pub fn one_hot(class: usize, classes: usize) -> Vec<f64> {
    assert!(class < classes, "class index out of range");
    let mut v = vec![0.0; classes];
    v[class] = 1.0;
    v
}

/// Decodes a network output vector to the class with the largest score.
///
/// Returns `None` for an empty output. Ties break toward the lower index,
/// keeping prediction deterministic.
pub fn argmax(output: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &y) in output.iter().enumerate() {
        match best {
            Some((_, b)) if y <= b => {}
            _ => best = Some((i, y)),
        }
    }
    best.map(|(i, _)| i)
}

/// Classification quality of a network over a labelled dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Correct predictions.
    pub correct: usize,
    /// Total examples.
    pub total: usize,
    /// `confusion[actual][predicted]` counts.
    pub confusion: Vec<Vec<usize>>,
}

impl Evaluation {
    /// Accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.correct as f64 / self.total as f64
    }

    /// Whether every example was classified correctly (the paper's
    /// "100% accurate classification" criterion for known environments).
    pub fn is_perfect(&self) -> bool {
        self.total > 0 && self.correct == self.total
    }

    /// Per-class recall: `recall[c]` is the fraction of class-`c` examples
    /// predicted correctly (`None` when the class has no examples).
    pub fn per_class_recall(&self) -> Vec<Option<f64>> {
        self.confusion
            .iter()
            .enumerate()
            .map(|(actual, row)| {
                let total: usize = row.iter().sum();
                if total == 0 {
                    None
                } else {
                    Some(row[actual] as f64 / total as f64)
                }
            })
            .collect()
    }
}

impl std::fmt::Display for Evaluation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}/{} correct ({:.2}%)",
            self.correct,
            self.total,
            self.accuracy() * 100.0
        )?;
        for (actual, row) in self.confusion.iter().enumerate() {
            write!(f, "  actual {actual}:")?;
            for count in row {
                write!(f, " {count:>5}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Evaluates `net` as a classifier over `data` (one-hot targets).
///
/// Forward passes run through one reused scratch: the evaluation loop
/// performs no per-example allocation, so the online trainer's holdout
/// gate can call this every candidate round without touching the heap.
pub fn evaluate(net: &NeuralNetwork, data: &TrainingData) -> Evaluation {
    let classes = data.target_dim();
    let mut confusion = vec![vec![0usize; classes]; classes];
    let mut correct = 0;
    let mut scratch = crate::network::BatchScratch::new();
    for (input, target) in data.inputs().iter().zip(data.targets()) {
        let predicted = argmax(net.run_scratch(input, &mut scratch)).expect("nonempty output");
        let actual = argmax(target).expect("nonempty target");
        confusion[actual][predicted] += 1;
        if predicted == actual {
            correct += 1;
        }
    }
    Evaluation {
        correct,
        total: data.len(),
        confusion,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::train::{train, TrainParams};

    #[test]
    fn one_hot_encoding() {
        assert_eq!(one_hot(2, 4), vec![0.0, 0.0, 1.0, 0.0]);
        assert_eq!(one_hot(0, 1), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_hot_rejects_bad_class() {
        one_hot(3, 3);
    }

    #[test]
    fn argmax_basics() {
        assert_eq!(argmax(&[0.1, 0.9, 0.5]), Some(1));
        assert_eq!(argmax(&[0.5, 0.5]), Some(0)); // tie → lowest index
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn trained_classifier_reaches_perfect_training_accuracy() {
        // Three separable classes on one input dimension.
        let inputs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 30.0]).collect();
        let targets: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                one_hot(
                    if i < 10 {
                        0
                    } else if i < 20 {
                        1
                    } else {
                        2
                    },
                    3,
                )
            })
            .collect();
        let data = TrainingData::new(inputs, targets);
        let mut net = NeuralNetwork::new(&[1, 8, 3], Activation::fann_default(), 3);
        train(
            &mut net,
            &data,
            &TrainParams {
                stopping_mse: 1e-3,
                max_epochs: 3_000,
                ..TrainParams::default()
            },
        );
        let eval = evaluate(&net, &data);
        assert!(eval.is_perfect(), "accuracy {}", eval.accuracy());
        // The confusion matrix is diagonal.
        for (a, row) in eval.confusion.iter().enumerate() {
            for (p, &count) in row.iter().enumerate() {
                if a == p {
                    assert_eq!(count, 10);
                } else {
                    assert_eq!(count, 0);
                }
            }
        }
    }

    #[test]
    fn per_class_recall_reported() {
        let eval = Evaluation {
            correct: 3,
            total: 4,
            confusion: vec![vec![2, 0], vec![1, 1]],
        };
        let recall = eval.per_class_recall();
        assert_eq!(recall, vec![Some(1.0), Some(0.5)]);
        let text = eval.to_string();
        assert!(text.contains("75.00%"));
        assert!(text.contains("actual 1"));
    }

    #[test]
    fn recall_of_absent_class_is_none() {
        let eval = Evaluation {
            correct: 1,
            total: 1,
            confusion: vec![vec![1, 0], vec![0, 0]],
        };
        assert_eq!(eval.per_class_recall()[1], None);
    }

    #[test]
    fn empty_evaluation_is_zero_accuracy() {
        let eval = Evaluation {
            correct: 0,
            total: 0,
            confusion: vec![],
        };
        assert_eq!(eval.accuracy(), 0.0);
        assert!(!eval.is_perfect());
    }
}

//! # adamant-ann
//!
//! A FANN-style feedforward artificial neural network — the supervised
//! machine-learning knowledge base of the ADAMANT paper (Hoffert, Schmidt,
//! Gokhale — Middleware 2010, §3.2 and §4.4).
//!
//! The paper trains a fully connected sigmoid network (inputs: environment
//! and application parameters; outputs: one neuron per candidate transport
//! protocol) to a stopping error of `1e-4`, sweeps the hidden-node count,
//! evaluates accuracy on environments known *a priori* (training-set
//! recall) and unknown until runtime (10-fold cross-validation), and shows
//! the query path runs in bounded, input-independent time.
//!
//! This crate reproduces that toolchain:
//!
//! * [`NeuralNetwork`] — dense feedforward network with deterministic
//!   seeded initialisation, an architecture-only
//!   [`ops_per_query`](NeuralNetwork::ops_per_query) count for analytic
//!   timing models, and a batched flat-slice forward pass
//!   ([`run_batch_into`](NeuralNetwork::run_batch_into) via
//!   [`BatchScratch`]) that amortizes fleet-scale inference.
//! * [`train`] — iRPROP− (FANN's default) and incremental backpropagation,
//!   driven to a stopping MSE.
//! * [`evaluate`] / [`one_hot`] / [`argmax`] — classification utilities.
//! * [`cross_validate`] — n-fold cross-validation.
//! * [`MinMaxScaler`] — feature scaling.
//!
//! ## Example: train a tiny classifier
//!
//! ```
//! use adamant_ann::{
//!     evaluate, one_hot, train, Activation, NeuralNetwork, TrainParams, TrainingData,
//! };
//!
//! let inputs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 20.0]).collect();
//! let targets: Vec<Vec<f64>> = (0..20).map(|i| one_hot(usize::from(i >= 10), 2)).collect();
//! let data = TrainingData::new(inputs, targets);
//!
//! let mut net = NeuralNetwork::new(&[1, 6, 2], Activation::fann_default(), 42);
//! train(&mut net, &data, &TrainParams::default());
//! assert!(evaluate(&net, &data).accuracy() > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod classify;
mod cv;
mod network;
mod rng;
mod scale;
mod train;
mod tree;

pub use activation::Activation;
pub use classify::{argmax, evaluate, one_hot, Evaluation};
pub use cv::{cross_validate, fold_assignment, CrossValidation};
pub use network::{BatchScratch, NeuralNetwork};
pub use scale::MinMaxScaler;
pub use train::{
    train, train_with_validation, Algorithm, TrainOutcome, TrainParams, TrainingData,
    ValidatedOutcome,
};
pub use tree::{DecisionTree, DecisionTreeParams};

//! Neuron activation functions (the FANN-style subset used here).

use adamant_json::{FromJson, Json, JsonError, ToJson};

/// Activation applied to a layer's weighted sums.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activation {
    /// Logistic sigmoid `1 / (1 + e^(-2sx))` with steepness `s` (FANN's
    /// default output squashing; outputs in `(0, 1)`).
    Sigmoid {
        /// Steepness `s` (FANN defaults to 0.5).
        steepness: f64,
    },
    /// Symmetric sigmoid (tanh-shaped; outputs in `(-1, 1)`).
    SymmetricSigmoid {
        /// Steepness `s`.
        steepness: f64,
    },
    /// Identity (for regression outputs).
    Linear,
}

impl Activation {
    /// FANN's default hidden/output activation: sigmoid, steepness 0.5.
    pub fn fann_default() -> Self {
        Activation::Sigmoid { steepness: 0.5 }
    }

    /// Applies the activation.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Sigmoid { steepness } => 1.0 / (1.0 + (-2.0 * steepness * x).exp()),
            Activation::SymmetricSigmoid { steepness } => (steepness * x).tanh(),
            Activation::Linear => x,
        }
    }

    /// Derivative expressed in terms of the activation *output* `y` (the
    /// form backpropagation uses).
    pub fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Sigmoid { steepness } => {
                // Clamp to keep training moving when neurons saturate
                // (FANN applies the same trick).
                let y = y.clamp(0.01, 0.99);
                2.0 * steepness * y * (1.0 - y)
            }
            Activation::SymmetricSigmoid { steepness } => {
                let y = y.clamp(-0.98, 0.98);
                steepness * (1.0 - y * y)
            }
            Activation::Linear => 1.0,
        }
    }
}

// Externally tagged, matching the serde derive layout the persisted
// selector artifacts were written with: struct variants are
// `{"Variant": {..fields..}}`, unit variants are `"Variant"`.
impl ToJson for Activation {
    fn to_json(&self) -> Json {
        match self {
            Activation::Sigmoid { steepness } => Json::Obj(vec![(
                "Sigmoid".to_owned(),
                Json::Obj(vec![("steepness".to_owned(), steepness.to_json())]),
            )]),
            Activation::SymmetricSigmoid { steepness } => Json::Obj(vec![(
                "SymmetricSigmoid".to_owned(),
                Json::Obj(vec![("steepness".to_owned(), steepness.to_json())]),
            )]),
            Activation::Linear => Json::Str("Linear".to_owned()),
        }
    }
}

impl FromJson for Activation {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Json::Str(s) = v {
            return match s.as_str() {
                "Linear" => Ok(Activation::Linear),
                other => Err(JsonError(format!("unknown Activation variant `{other}`"))),
            };
        }
        if let Some(body) = v.get("Sigmoid") {
            return Ok(Activation::Sigmoid {
                steepness: body.field("steepness")?,
            });
        }
        if let Some(body) = v.get("SymmetricSigmoid") {
            return Ok(Activation::SymmetricSigmoid {
                steepness: body.field("steepness")?,
            });
        }
        Err(JsonError(format!("invalid Activation: {}", v.kind())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip_matches_serde_layout() {
        let a = Activation::Sigmoid { steepness: 0.5 };
        let text = adamant_json::to_string(&a);
        assert_eq!(text, r#"{"Sigmoid":{"steepness":0.5}}"#);
        assert_eq!(adamant_json::from_str::<Activation>(&text).unwrap(), a);
        assert_eq!(adamant_json::to_string(&Activation::Linear), "\"Linear\"");
        assert_eq!(
            adamant_json::from_str::<Activation>("\"Linear\"").unwrap(),
            Activation::Linear
        );
    }

    #[test]
    fn sigmoid_shape() {
        let a = Activation::fann_default();
        assert!((a.apply(0.0) - 0.5).abs() < 1e-12);
        assert!(a.apply(10.0) > 0.99);
        assert!(a.apply(-10.0) < 0.01);
    }

    #[test]
    fn symmetric_sigmoid_shape() {
        let a = Activation::SymmetricSigmoid { steepness: 1.0 };
        assert!(a.apply(0.0).abs() < 1e-12);
        assert!(a.apply(5.0) > 0.99);
        assert!(a.apply(-5.0) < -0.99);
    }

    #[test]
    fn linear_is_identity() {
        assert_eq!(Activation::Linear.apply(3.25), 3.25);
        assert_eq!(Activation::Linear.derivative_from_output(3.25), 1.0);
    }

    #[test]
    fn sigmoid_derivative_matches_numeric() {
        let a = Activation::Sigmoid { steepness: 0.5 };
        let x = 0.3;
        let h = 1e-6;
        let numeric = (a.apply(x + h) - a.apply(x - h)) / (2.0 * h);
        let analytic = a.derivative_from_output(a.apply(x));
        assert!((numeric - analytic).abs() < 1e-6, "{numeric} vs {analytic}");
    }

    #[test]
    fn symmetric_derivative_matches_numeric() {
        let a = Activation::SymmetricSigmoid { steepness: 0.7 };
        let x = -0.4;
        let h = 1e-6;
        let numeric = (a.apply(x + h) - a.apply(x - h)) / (2.0 * h);
        let analytic = a.derivative_from_output(a.apply(x));
        assert!((numeric - analytic).abs() < 1e-6);
    }
}

//! Training: batch backpropagation gradients with iRPROP− or plain online
//! gradient descent, driven to a target MSE (FANN's "stopping error").

use crate::network::NeuralNetwork;
use crate::rng::InitRng;

/// A supervised training set.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainingData {
    inputs: Vec<Vec<f64>>,
    targets: Vec<Vec<f64>>,
}

impl TrainingData {
    /// Creates a dataset from matching input/target rows.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ, rows are ragged, or the set is
    /// empty.
    pub fn new(inputs: Vec<Vec<f64>>, targets: Vec<Vec<f64>>) -> Self {
        assert_eq!(inputs.len(), targets.len(), "row counts must match");
        assert!(!inputs.is_empty(), "training data must be nonempty");
        let in_dim = inputs[0].len();
        let out_dim = targets[0].len();
        assert!(
            inputs.iter().all(|r| r.len() == in_dim),
            "ragged input rows"
        );
        assert!(
            targets.iter().all(|r| r.len() == out_dim),
            "ragged target rows"
        );
        TrainingData { inputs, targets }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the set is empty (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.inputs[0].len()
    }

    /// Target dimensionality.
    pub fn target_dim(&self) -> usize {
        self.targets[0].len()
    }

    /// The input rows.
    pub fn inputs(&self) -> &[Vec<f64>] {
        &self.inputs
    }

    /// The target rows.
    pub fn targets(&self) -> &[Vec<f64>] {
        &self.targets
    }

    /// Splits into (selected, rest) by example index predicate.
    pub fn split_by<F: Fn(usize) -> bool>(&self, pick: F) -> (TrainingData, TrainingData) {
        let mut a = (Vec::new(), Vec::new());
        let mut b = (Vec::new(), Vec::new());
        for i in 0..self.len() {
            let bucket = if pick(i) { &mut a } else { &mut b };
            bucket.0.push(self.inputs[i].clone());
            bucket.1.push(self.targets[i].clone());
        }
        (
            TrainingData {
                inputs: a.0,
                targets: a.1,
            },
            TrainingData {
                inputs: b.0,
                targets: b.1,
            },
        )
    }
}

/// Which optimisation algorithm drives training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algorithm {
    /// iRPROP− — FANN's default: per-weight adaptive steps from gradient
    /// signs only. Fast and insensitive to learning-rate choice.
    Rprop,
    /// Plain online (incremental) gradient descent.
    Incremental {
        /// Learning rate.
        learning_rate: f64,
        /// Momentum factor in `[0, 1)`.
        momentum: f64,
    },
    /// Quickprop (Fahlman): batch training with a per-weight parabolic
    /// step estimated from consecutive gradients, clamped by the growth
    /// factor `mu`. FANN's second classic batch algorithm.
    Quickprop {
        /// Gradient-descent bootstrap/fallback rate.
        learning_rate: f64,
        /// Maximum growth factor between consecutive steps (FANN: 1.75).
        mu: f64,
    },
}

/// Training configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainParams {
    /// Optimiser.
    pub algorithm: Algorithm,
    /// Stop once dataset MSE falls to this value (the paper uses 1e-4).
    pub stopping_mse: f64,
    /// Hard cap on training epochs.
    pub max_epochs: u32,
    /// Seed for example shuffling (incremental training).
    pub seed: u64,
}

impl Default for TrainParams {
    fn default() -> Self {
        TrainParams {
            algorithm: Algorithm::Rprop,
            stopping_mse: 1e-4,
            max_epochs: 2_000,
            seed: 0,
        }
    }
}

/// What training achieved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainOutcome {
    /// Epochs actually run.
    pub epochs: u32,
    /// Final dataset MSE.
    pub final_mse: f64,
    /// Whether the stopping error was reached before `max_epochs`.
    pub reached_target: bool,
}

/// Per-weight iRPROP− state.
struct RpropState {
    step: Vec<f64>,
    prev_grad: Vec<f64>,
}

const RPROP_ETA_PLUS: f64 = 1.2;
const RPROP_ETA_MINUS: f64 = 0.5;
const RPROP_STEP_MIN: f64 = 1e-9;
const RPROP_STEP_MAX: f64 = 50.0;
const RPROP_STEP_INIT: f64 = 0.1;

/// Trains `net` on `data` until the stopping error or epoch cap.
///
/// # Panics
///
/// Panics if the data dimensions do not match the network.
pub fn train(net: &mut NeuralNetwork, data: &TrainingData, params: &TrainParams) -> TrainOutcome {
    assert_eq!(data.input_dim(), net.input_size(), "input dim mismatch");
    assert_eq!(data.target_dim(), net.output_size(), "target dim mismatch");
    match params.algorithm {
        Algorithm::Rprop => train_rprop(net, data, params),
        Algorithm::Incremental {
            learning_rate,
            momentum,
        } => train_incremental(net, data, params, learning_rate, momentum),
        Algorithm::Quickprop { learning_rate, mu } => {
            train_quickprop(net, data, params, learning_rate, mu)
        }
    }
}

/// Per-weight Quickprop state.
struct QuickpropState {
    prev_step: Vec<f64>,
    prev_grad: Vec<f64>,
}

fn quickprop_update(
    params: &mut [f64],
    grad: &[f64],
    state: &mut QuickpropState,
    learning_rate: f64,
    mu: f64,
) {
    const SHRINK_GUARD: f64 = 1e-12;
    for i in 0..params.len() {
        let g = grad[i];
        let prev_step = state.prev_step[i];
        let prev_grad = state.prev_grad[i];
        let mut step = 0.0;
        if prev_step.abs() > SHRINK_GUARD {
            // Parabolic estimate of the minimum along this weight.
            let denom = prev_grad - g;
            if denom.abs() > SHRINK_GUARD {
                step = g / denom * prev_step;
            }
            // Clamp growth and keep direction sane.
            let max_step = mu * prev_step.abs();
            step = step.clamp(-max_step, max_step);
            // Add a gradient term while the slope still points the same
            // way (Fahlman's recommendation; FANN does the same).
            if g * prev_grad > 0.0 {
                step += -learning_rate * g;
            }
        } else {
            step = -learning_rate * g;
        }
        params[i] += step;
        state.prev_step[i] = step;
        state.prev_grad[i] = g;
    }
}

fn train_quickprop(
    net: &mut NeuralNetwork,
    data: &TrainingData,
    params: &TrainParams,
    learning_rate: f64,
    mu: f64,
) -> TrainOutcome {
    let mut states: Vec<(QuickpropState, QuickpropState)> = net
        .layers
        .iter()
        .map(|l| {
            (
                QuickpropState {
                    prev_step: vec![0.0; l.weights.len()],
                    prev_grad: vec![0.0; l.weights.len()],
                },
                QuickpropState {
                    prev_step: vec![0.0; l.biases.len()],
                    prev_grad: vec![0.0; l.biases.len()],
                },
            )
        })
        .collect();
    let mut scratch = GradScratch::new(net);
    let mut epochs = 0;
    loop {
        let mse = batch_gradients_into(net, data, &mut scratch);
        if mse <= params.stopping_mse {
            return TrainOutcome {
                epochs,
                final_mse: mse,
                reached_target: true,
            };
        }
        if epochs >= params.max_epochs {
            return TrainOutcome {
                epochs,
                final_mse: mse,
                reached_target: false,
            };
        }
        for (l, (gw, gb)) in scratch.grads.iter().enumerate() {
            let (wstate, bstate) = &mut states[l];
            quickprop_update(&mut net.layers[l].weights, gw, wstate, learning_rate, mu);
            quickprop_update(&mut net.layers[l].biases, gb, bstate, learning_rate, mu);
        }
        epochs += 1;
    }
}

/// Preallocated training buffers, reused across every example and epoch so
/// a warmed-up epoch performs zero heap allocations.
struct GradScratch {
    /// Per-layer `(dE/dw, dE/db)` accumulators, zeroed in place per batch.
    grads: Vec<(Vec<f64>, Vec<f64>)>,
    /// Per-layer activations of the current example (index 0 = the input).
    activations: Vec<Vec<f64>>,
    /// Backpropagated error terms for the layer being processed.
    delta: Vec<f64>,
    /// Error terms under construction for the layer below.
    next_delta: Vec<f64>,
}

impl GradScratch {
    fn new(net: &NeuralNetwork) -> Self {
        let widest = net.layer_sizes().into_iter().max().unwrap_or(0);
        GradScratch {
            grads: net
                .layers
                .iter()
                .map(|l| (vec![0.0; l.weights.len()], vec![0.0; l.biases.len()]))
                .collect(),
            activations: vec![Vec::with_capacity(widest); net.layers.len() + 1],
            delta: Vec::with_capacity(widest),
            next_delta: Vec::with_capacity(widest),
        }
    }

    fn zero_grads(&mut self) {
        for (gw, gb) in &mut self.grads {
            gw.fill(0.0);
            gb.fill(0.0);
        }
    }
}

/// One fused pass over the dataset: accumulates batch gradients into
/// `scratch.grads` and returns the MSE of the *current* weights.
///
/// The error accumulates per output in example order — the exact arithmetic
/// and association [`NeuralNetwork::mse`] uses — so fusing the stopping
/// check into the gradient sweep is bit-exact while halving the forward
/// passes per epoch.
fn batch_gradients_into(
    net: &NeuralNetwork,
    data: &TrainingData,
    scratch: &mut GradScratch,
) -> f64 {
    scratch.zero_grads();
    let mut total = 0.0;
    let mut count = 0usize;
    for (input, target) in data.inputs().iter().zip(data.targets()) {
        accumulate_example_into(net, input, target, scratch, &mut total, &mut count);
    }
    total / count as f64
}

/// Adds one example's gradients into `scratch.grads` (standard backprop)
/// and its per-output squared errors into `total`/`count`.
fn accumulate_example_into(
    net: &NeuralNetwork,
    input: &[f64],
    target: &[f64],
    scratch: &mut GradScratch,
    total: &mut f64,
    count: &mut usize,
) {
    net.run_full_into(input, &mut scratch.activations);
    let depth = net.layers.len();
    // Output-layer delta: (y - t) * f'(y).
    let output = &scratch.activations[depth];
    scratch.delta.clear();
    for (&y, &t) in output.iter().zip(target) {
        *total += (y - t) * (y - t);
        *count += 1;
        scratch
            .delta
            .push((y - t) * net.layers[depth - 1].activation.derivative_from_output(y));
    }
    for l in (0..depth).rev() {
        let layer = &net.layers[l];
        let prev = &scratch.activations[l];
        let (gw, gb) = &mut scratch.grads[l];
        for o in 0..layer.outputs {
            let d = scratch.delta[o];
            gb[o] += d;
            let row = &mut gw[o * layer.inputs..(o + 1) * layer.inputs];
            for (g, &x) in row.iter_mut().zip(prev) {
                *g += d * x;
            }
        }
        if l > 0 {
            let below = &net.layers[l - 1];
            scratch.next_delta.clear();
            scratch.next_delta.resize(layer.inputs, 0.0);
            for (i, nd) in scratch.next_delta.iter_mut().enumerate() {
                let mut sum = 0.0;
                for (o, d) in scratch.delta.iter().enumerate() {
                    sum += d * layer.weights[o * layer.inputs + i];
                }
                *nd = sum
                    * below
                        .activation
                        .derivative_from_output(scratch.activations[l][i]);
            }
            std::mem::swap(&mut scratch.delta, &mut scratch.next_delta);
        }
    }
}

/// Computes batch gradients (dE/dw, dE/db per layer) for squared error.
/// Allocating convenience wrapper around the scratch-based sweep, used by
/// the numeric-gradient test.
#[cfg(test)]
fn batch_gradients(net: &NeuralNetwork, data: &TrainingData) -> Vec<(Vec<f64>, Vec<f64>)> {
    let mut scratch = GradScratch::new(net);
    batch_gradients_into(net, data, &mut scratch);
    scratch.grads
}

fn train_rprop(net: &mut NeuralNetwork, data: &TrainingData, params: &TrainParams) -> TrainOutcome {
    let mut states: Vec<(RpropState, RpropState)> = net
        .layers
        .iter()
        .map(|l| {
            (
                RpropState {
                    step: vec![RPROP_STEP_INIT; l.weights.len()],
                    prev_grad: vec![0.0; l.weights.len()],
                },
                RpropState {
                    step: vec![RPROP_STEP_INIT; l.biases.len()],
                    prev_grad: vec![0.0; l.biases.len()],
                },
            )
        })
        .collect();

    let mut scratch = GradScratch::new(net);
    let mut epochs = 0;
    loop {
        let mse = batch_gradients_into(net, data, &mut scratch);
        if mse <= params.stopping_mse {
            return TrainOutcome {
                epochs,
                final_mse: mse,
                reached_target: true,
            };
        }
        if epochs >= params.max_epochs {
            return TrainOutcome {
                epochs,
                final_mse: mse,
                reached_target: false,
            };
        }
        for (l, (gw, gb)) in scratch.grads.iter().enumerate() {
            let (wstate, bstate) = &mut states[l];
            rprop_update(&mut net.layers[l].weights, gw, wstate);
            rprop_update(&mut net.layers[l].biases, gb, bstate);
        }
        epochs += 1;
    }
}

fn rprop_update(params: &mut [f64], grad: &[f64], state: &mut RpropState) {
    for i in 0..params.len() {
        let g = grad[i];
        let sign_product = g * state.prev_grad[i];
        if sign_product > 0.0 {
            state.step[i] = (state.step[i] * RPROP_ETA_PLUS).min(RPROP_STEP_MAX);
            params[i] -= g.signum() * state.step[i];
            state.prev_grad[i] = g;
        } else if sign_product < 0.0 {
            state.step[i] = (state.step[i] * RPROP_ETA_MINUS).max(RPROP_STEP_MIN);
            // iRPROP−: forget the gradient after a sign change, no revert.
            state.prev_grad[i] = 0.0;
        } else {
            params[i] -= g.signum() * state.step[i];
            state.prev_grad[i] = g;
        }
    }
}

fn train_incremental(
    net: &mut NeuralNetwork,
    data: &TrainingData,
    params: &TrainParams,
    learning_rate: f64,
    momentum: f64,
) -> TrainOutcome {
    let mut rng = InitRng::new(params.seed);
    let mut velocity: Vec<(Vec<f64>, Vec<f64>)> = net
        .layers
        .iter()
        .map(|l| (vec![0.0; l.weights.len()], vec![0.0; l.biases.len()]))
        .collect();
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut scratch = GradScratch::new(net);
    let mut epochs = 0;
    loop {
        let mse = net.mse_scratch(
            data.inputs(),
            data.targets(),
            &mut scratch.delta,
            &mut scratch.next_delta,
        );
        if mse <= params.stopping_mse {
            return TrainOutcome {
                epochs,
                final_mse: mse,
                reached_target: true,
            };
        }
        if epochs >= params.max_epochs {
            return TrainOutcome {
                epochs,
                final_mse: mse,
                reached_target: false,
            };
        }
        // Fisher-Yates shuffle for stochastic example order.
        for i in (1..order.len()).rev() {
            let j = rng.below(i + 1);
            order.swap(i, j);
        }
        for &idx in &order {
            scratch.zero_grads();
            let (mut total, mut count) = (0.0, 0usize);
            accumulate_example_into(
                net,
                &data.inputs()[idx],
                &data.targets()[idx],
                &mut scratch,
                &mut total,
                &mut count,
            );
            for (l, (gw, gb)) in scratch.grads.iter().enumerate() {
                let (vw, vb) = &mut velocity[l];
                for i in 0..gw.len() {
                    vw[i] = momentum * vw[i] - learning_rate * gw[i];
                    net.layers[l].weights[i] += vw[i];
                }
                for i in 0..gb.len() {
                    vb[i] = momentum * vb[i] - learning_rate * gb[i];
                    net.layers[l].biases[i] += vb[i];
                }
            }
        }
        epochs += 1;
    }
}

/// Outcome of [`train_with_validation`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidatedOutcome {
    /// The inner training outcome of the final round.
    pub train: TrainOutcome,
    /// Validation MSE of the best (restored) weights.
    pub best_validation_mse: f64,
    /// Total epochs run across all rounds.
    pub total_epochs: u32,
    /// Whether early stopping fired (patience exhausted).
    pub stopped_early: bool,
}

/// Trains with validation-based early stopping: runs training in rounds of
/// `round_epochs`, evaluates the validation MSE after each round, and stops
/// once it has failed to improve for `patience` consecutive rounds —
/// restoring the weights from the best round.
///
/// This is the standard guard against over-fitting small datasets like the
/// paper's 394 inputs; the paper itself trains to a fixed stopping error,
/// which `train` reproduces, while this variant is the cross-validated
/// practitioner's alternative.
///
/// # Panics
///
/// Panics if `round_epochs` or `patience` is zero or the data dimensions
/// do not match the network.
pub fn train_with_validation(
    net: &mut NeuralNetwork,
    training: &TrainingData,
    validation: &TrainingData,
    params: &TrainParams,
    round_epochs: u32,
    patience: u32,
) -> ValidatedOutcome {
    assert!(round_epochs > 0, "round_epochs must be positive");
    assert!(patience > 0, "patience must be positive");
    let mut best_net = net.clone();
    let mut best_val = net.mse(validation.inputs(), validation.targets());
    let mut bad_rounds = 0;
    let mut total_epochs = 0;
    let mut last = TrainOutcome {
        epochs: 0,
        final_mse: net.mse(training.inputs(), training.targets()),
        reached_target: false,
    };
    while total_epochs < params.max_epochs {
        let round = TrainParams {
            max_epochs: round_epochs.min(params.max_epochs - total_epochs),
            ..*params
        };
        last = train(net, training, &round);
        total_epochs += last.epochs;
        let val = net.mse(validation.inputs(), validation.targets());
        if val < best_val {
            best_val = val;
            best_net = net.clone();
            bad_rounds = 0;
        } else {
            bad_rounds += 1;
            if bad_rounds >= patience {
                *net = best_net;
                return ValidatedOutcome {
                    train: last,
                    best_validation_mse: best_val,
                    total_epochs,
                    stopped_early: true,
                };
            }
        }
        if last.reached_target || last.epochs == 0 {
            break;
        }
    }
    *net = best_net;
    ValidatedOutcome {
        train: last,
        best_validation_mse: best_val,
        total_epochs,
        stopped_early: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;

    fn xor_data() -> TrainingData {
        TrainingData::new(
            vec![
                vec![0.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 0.0],
                vec![1.0, 1.0],
            ],
            vec![vec![0.0], vec![1.0], vec![1.0], vec![0.0]],
        )
    }

    #[test]
    fn rprop_learns_xor() {
        let mut net = NeuralNetwork::new(&[2, 6, 1], Activation::fann_default(), 7);
        let outcome = train(
            &mut net,
            &xor_data(),
            &TrainParams {
                stopping_mse: 1e-3,
                max_epochs: 5_000,
                ..TrainParams::default()
            },
        );
        assert!(
            outcome.reached_target,
            "XOR did not converge: mse {}",
            outcome.final_mse
        );
        assert!(net.run(&[0.0, 1.0])[0] > 0.9);
        assert!(net.run(&[1.0, 1.0])[0] < 0.1);
    }

    #[test]
    fn incremental_learns_xor() {
        let mut net = NeuralNetwork::new(&[2, 8, 1], Activation::fann_default(), 3);
        let outcome = train(
            &mut net,
            &xor_data(),
            &TrainParams {
                algorithm: Algorithm::Incremental {
                    learning_rate: 0.7,
                    momentum: 0.5,
                },
                stopping_mse: 1e-2,
                max_epochs: 20_000,
                seed: 11,
            },
        );
        assert!(
            outcome.reached_target,
            "incremental XOR did not converge: mse {}",
            outcome.final_mse
        );
    }

    #[test]
    fn quickprop_learns_xor() {
        let mut net = NeuralNetwork::new(&[2, 8, 1], Activation::fann_default(), 21);
        let outcome = train(
            &mut net,
            &xor_data(),
            &TrainParams {
                algorithm: Algorithm::Quickprop {
                    learning_rate: 0.7,
                    mu: 1.75,
                },
                stopping_mse: 1e-2,
                max_epochs: 10_000,
                seed: 0,
            },
        );
        assert!(
            outcome.reached_target,
            "Quickprop XOR did not converge: mse {}",
            outcome.final_mse
        );
        assert!(net.run(&[1.0, 0.0])[0] > 0.8);
        assert!(net.run(&[0.0, 0.0])[0] < 0.2);
    }

    #[test]
    fn quickprop_is_deterministic() {
        let run = || {
            let mut net = NeuralNetwork::new(&[2, 4, 1], Activation::fann_default(), 5);
            train(
                &mut net,
                &xor_data(),
                &TrainParams {
                    algorithm: Algorithm::Quickprop {
                        learning_rate: 0.5,
                        mu: 1.75,
                    },
                    max_epochs: 100,
                    ..TrainParams::default()
                },
            );
            net
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn training_is_deterministic() {
        let run = || {
            let mut net = NeuralNetwork::new(&[2, 4, 1], Activation::fann_default(), 5);
            train(
                &mut net,
                &xor_data(),
                &TrainParams {
                    max_epochs: 200,
                    ..TrainParams::default()
                },
            );
            net
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn mse_decreases_during_training() {
        let data = xor_data();
        let mut net = NeuralNetwork::new(&[2, 6, 1], Activation::fann_default(), 9);
        let before = net.mse(data.inputs(), data.targets());
        train(
            &mut net,
            &data,
            &TrainParams {
                max_epochs: 300,
                stopping_mse: 0.0,
                ..TrainParams::default()
            },
        );
        let after = net.mse(data.inputs(), data.targets());
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn epoch_cap_respected() {
        let mut net = NeuralNetwork::new(&[2, 2, 1], Activation::fann_default(), 1);
        let outcome = train(
            &mut net,
            &xor_data(),
            &TrainParams {
                stopping_mse: 0.0, // unreachable
                max_epochs: 17,
                ..TrainParams::default()
            },
        );
        assert_eq!(outcome.epochs, 17);
        assert!(!outcome.reached_target);
    }

    #[test]
    fn gradients_match_numeric_estimate() {
        let net = NeuralNetwork::new(&[2, 3, 2], Activation::fann_default(), 13);
        let data = TrainingData::new(vec![vec![0.3, -0.6]], vec![vec![0.2, 0.9]]);
        let grads = batch_gradients(&net, &data);
        // Perturb a handful of weights and compare dE/dw numerically.
        // E = sum((y - t)^2) over outputs; batch gradient is dE/dw / 2...
        // our delta uses (y - t) so gradient corresponds to E = 1/2 sum sq.
        let h = 1e-6;
        for (layer_idx, weight_idx) in [(0usize, 0usize), (0, 4), (1, 2), (1, 5)] {
            let mut plus = net.clone();
            plus.layers[layer_idx].weights[weight_idx] += h;
            let mut minus = net.clone();
            minus.layers[layer_idx].weights[weight_idx] -= h;
            let e = |n: &NeuralNetwork| {
                let y = n.run(&data.inputs()[0]);
                y.iter()
                    .zip(&data.targets()[0])
                    .map(|(a, b)| 0.5 * (a - b) * (a - b))
                    .sum::<f64>()
            };
            let numeric = (e(&plus) - e(&minus)) / (2.0 * h);
            let analytic = grads[layer_idx].0[weight_idx];
            assert!(
                (numeric - analytic).abs() < 1e-5,
                "layer {layer_idx} w{weight_idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn split_by_partitions() {
        let data = TrainingData::new(
            vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]],
            vec![vec![0.0], vec![1.0], vec![0.0], vec![1.0]],
        );
        let (even, odd) = data.split_by(|i| i % 2 == 0);
        assert_eq!(even.len(), 2);
        assert_eq!(odd.len(), 2);
        assert_eq!(even.inputs()[1], vec![2.0]);
    }

    #[test]
    fn early_stopping_restores_best_weights() {
        // Train/validation split of a noisy 1-D threshold problem: enough
        // capacity to overfit, so validation MSE eventually degrades.
        let inputs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
        let targets: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                // A few mislabelled points to overfit on.
                let label = if i == 3 || i == 37 {
                    usize::from(i < 20)
                } else {
                    usize::from(i >= 20)
                };
                crate::classify::one_hot(label, 2)
            })
            .collect();
        let all = TrainingData::new(inputs, targets);
        let (validation, training) = all.split_by(|i| i % 4 == 0);
        let mut net = NeuralNetwork::new(&[1, 16, 2], Activation::fann_default(), 11);
        let outcome = train_with_validation(
            &mut net,
            &training,
            &validation,
            &TrainParams {
                stopping_mse: 0.0,
                max_epochs: 4_000,
                ..TrainParams::default()
            },
            50,
            3,
        );
        // The restored network achieves the reported best validation MSE.
        let val = net.mse(validation.inputs(), validation.targets());
        assert!((val - outcome.best_validation_mse).abs() < 1e-12);
        assert!(outcome.total_epochs > 0);
        assert!(outcome.total_epochs <= 4_000);
    }

    #[test]
    fn validated_training_respects_epoch_budget() {
        let data = xor_data();
        let mut net = NeuralNetwork::new(&[2, 4, 1], Activation::fann_default(), 2);
        let outcome = train_with_validation(
            &mut net,
            &data,
            &data,
            &TrainParams {
                stopping_mse: 0.0,
                max_epochs: 73,
                ..TrainParams::default()
            },
            20,
            100, // patience never fires
        );
        assert_eq!(outcome.total_epochs, 73);
        assert!(!outcome.stopped_early);
    }

    #[test]
    #[should_panic(expected = "row counts")]
    fn mismatched_rows_panic() {
        TrainingData::new(vec![vec![0.0]], vec![]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        TrainingData::new(vec![vec![0.0], vec![0.0, 1.0]], vec![vec![1.0], vec![1.0]]);
    }
}

//! Min-max feature scaling: maps each input dimension to `[0, 1]` so the
//! sigmoid network sees comparable magnitudes.

use adamant_json::impl_json_struct;

/// A fitted per-dimension min-max scaler.
///
/// # Examples
///
/// ```
/// use adamant_ann::MinMaxScaler;
///
/// let rows = vec![vec![0.0, 10.0], vec![4.0, 30.0]];
/// let scaler = MinMaxScaler::fit(&rows);
/// assert_eq!(scaler.transform_row(&[2.0, 20.0]), vec![0.5, 0.5]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl MinMaxScaler {
    /// Fits a scaler to `rows`.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or ragged.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a scaler to no data");
        let dim = rows[0].len();
        let mut mins = vec![f64::INFINITY; dim];
        let mut maxs = vec![f64::NEG_INFINITY; dim];
        for row in rows {
            assert_eq!(row.len(), dim, "ragged rows");
            for (d, &x) in row.iter().enumerate() {
                mins[d] = mins[d].min(x);
                maxs[d] = maxs[d].max(x);
            }
        }
        MinMaxScaler { mins, maxs }
    }

    /// Number of dimensions the scaler was fitted on.
    pub fn dim(&self) -> usize {
        self.mins.len()
    }

    /// Scales one row into `[0, 1]` per dimension; constant dimensions map
    /// to 0.5. Values outside the fitted range are clamped.
    ///
    /// # Panics
    ///
    /// Panics if `row` has the wrong dimensionality.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.dim());
        self.transform_into(row, &mut out);
        out
    }

    /// [`transform_row`](Self::transform_row) appending into a
    /// caller-provided buffer: batched encoders build flat row-major
    /// feature matrices without a `Vec` per row.
    ///
    /// # Panics
    ///
    /// Panics if `row` has the wrong dimensionality.
    pub fn transform_into(&self, row: &[f64], out: &mut Vec<f64>) {
        assert_eq!(row.len(), self.dim(), "dimension mismatch");
        out.extend(row.iter().enumerate().map(|(d, &x)| self.scale_dim(d, x)));
    }

    /// Scales one value of dimension `d` exactly as
    /// [`transform_into`](Self::transform_into) would — the single-value
    /// form batched encoders use to write feature lanes directly.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn scale_dim(&self, d: usize, x: f64) -> f64 {
        let span = self.maxs[d] - self.mins[d];
        if span <= 0.0 {
            0.5
        } else {
            ((x - self.mins[d]) / span).clamp(0.0, 1.0)
        }
    }

    /// Scales a whole dataset.
    pub fn transform(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform_row(r)).collect()
    }
}

impl_json_struct!(MinMaxScaler { mins, maxs });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_extremes_to_unit_interval() {
        let rows = vec![vec![-5.0, 100.0], vec![5.0, 200.0]];
        let s = MinMaxScaler::fit(&rows);
        assert_eq!(s.transform_row(&[-5.0, 100.0]), vec![0.0, 0.0]);
        assert_eq!(s.transform_row(&[5.0, 200.0]), vec![1.0, 1.0]);
    }

    #[test]
    fn constant_dimension_maps_to_half() {
        let rows = vec![vec![3.0], vec![3.0]];
        let s = MinMaxScaler::fit(&rows);
        assert_eq!(s.transform_row(&[3.0]), vec![0.5]);
    }

    #[test]
    fn out_of_range_clamped() {
        let rows = vec![vec![0.0], vec![1.0]];
        let s = MinMaxScaler::fit(&rows);
        assert_eq!(s.transform_row(&[2.0]), vec![1.0]);
        assert_eq!(s.transform_row(&[-1.0]), vec![0.0]);
    }

    #[test]
    fn transform_whole_dataset() {
        let rows = vec![vec![0.0], vec![2.0], vec![4.0]];
        let s = MinMaxScaler::fit(&rows);
        assert_eq!(s.transform(&rows), vec![vec![0.0], vec![0.5], vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_fit_panics() {
        MinMaxScaler::fit(&[]);
    }

    #[test]
    fn json_round_trip() {
        let s = MinMaxScaler::fit(&[vec![0.0, 1.0], vec![2.0, 3.0]]);
        let json = adamant_json::to_string(&s);
        let back: MinMaxScaler = adamant_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}

//! The feedforward network: dense layers, forward pass, and an operation
//! count for analytic timing models.

use adamant_json::impl_json_struct;

use crate::activation::Activation;
use crate::rng::InitRng;

/// One fully connected layer.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Layer {
    pub inputs: usize,
    pub outputs: usize,
    /// Row-major `outputs × inputs` weight matrix.
    pub weights: Vec<f64>,
    pub biases: Vec<f64>,
    pub activation: Activation,
}

impl Layer {
    fn new(inputs: usize, outputs: usize, activation: Activation, rng: &mut InitRng) -> Self {
        // FANN-style init: uniform in ±(1/sqrt(fan_in)).
        let half_range = 1.0 / (inputs as f64).sqrt();
        Layer {
            inputs,
            outputs,
            weights: (0..inputs * outputs)
                .map(|_| rng.uniform(half_range))
                .collect(),
            biases: (0..outputs).map(|_| rng.uniform(half_range)).collect(),
            activation,
        }
    }

    fn forward_into(&self, input: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.outputs {
            let row = &self.weights[o * self.inputs..(o + 1) * self.inputs];
            let mut sum = self.biases[o];
            for (w, x) in row.iter().zip(input) {
                sum += w * x;
            }
            out.push(self.activation.apply(sum));
        }
    }

    /// Forward pass over a column-major `inputs × rows` batch (feature
    /// `i`'s values for every row stored contiguously at
    /// `cols[i*rows..(i+1)*rows]`) into a column-major `outputs × rows`
    /// buffer.
    ///
    /// Vectorization runs *across the batch*: each weight is broadcast
    /// against a contiguous lane of `rows` independent accumulators, so
    /// the compiler can emit SIMD multiply-adds without reassociating any
    /// single row's sum — a strict-FP dot-product reduction cannot
    /// autovectorize, but independent per-lane accumulators can. Each
    /// row's floating-point order (bias first, then weights in input
    /// order) is exactly [`forward_into`]'s, so results stay bit-identical
    /// to the scalar path.
    fn forward_batch_cols(&self, cols: &[f64], rows: usize, out: &mut Vec<f64>) {
        debug_assert_eq!(cols.len(), rows * self.inputs);
        out.clear();
        out.resize(rows * self.outputs, 0.0);
        // Blocks of four output lanes share every loaded input column
        // (column traffic drops 4x versus one-output-at-a-time), and the
        // bias seeds the first multiply-add pass instead of a separate
        // fill. Each lane still accumulates bias first, then inputs in
        // order — forward_into's exact sequence.
        for (block, lanes) in out.chunks_mut(4 * rows).enumerate() {
            let o0 = block * 4;
            let col0 = &cols[..rows];
            for (k, acc) in lanes.chunks_exact_mut(rows).enumerate() {
                let w = self.weights[(o0 + k) * self.inputs];
                let bias = self.biases[o0 + k];
                for (a, &x) in acc.iter_mut().zip(col0) {
                    *a = bias + w * x;
                }
            }
            for i in 1..self.inputs {
                let col = &cols[i * rows..(i + 1) * rows];
                for (k, acc) in lanes.chunks_exact_mut(rows).enumerate() {
                    let w = self.weights[(o0 + k) * self.inputs + i];
                    for (a, &x) in acc.iter_mut().zip(col) {
                        *a += w * x;
                    }
                }
            }
            for acc in lanes.chunks_exact_mut(rows) {
                for a in acc.iter_mut() {
                    *a = self.activation.apply(*a);
                }
            }
        }
    }
}

impl_json_struct!(Layer {
    inputs,
    outputs,
    weights,
    biases,
    activation,
});

/// Reusable ping-pong buffers for [`NeuralNetwork::run_batch_into`] and
/// [`NeuralNetwork::run_scratch`]: after the first call, repeated forward
/// passes through the same scratch allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    current: Vec<f64>,
    next: Vec<f64>,
}

impl BatchScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A fully connected feedforward neural network (FANN-style).
///
/// # Examples
///
/// ```
/// use adamant_ann::{Activation, NeuralNetwork};
///
/// let net = NeuralNetwork::new(&[2, 4, 1], Activation::fann_default(), 42);
/// let out = net.run(&[0.3, 0.7]);
/// assert_eq!(out.len(), 1);
/// assert!((0.0..=1.0).contains(&out[0]));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NeuralNetwork {
    pub(crate) layers: Vec<Layer>,
}

impl NeuralNetwork {
    /// Builds a network with the given layer sizes (`[inputs, hidden...,
    /// outputs]`), one activation everywhere, and deterministic random
    /// weights from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two layer sizes are given or any size is zero.
    pub fn new(layer_sizes: &[usize], activation: Activation, seed: u64) -> Self {
        assert!(
            layer_sizes.len() >= 2,
            "a network needs at least input and output layers"
        );
        assert!(
            layer_sizes.iter().all(|&n| n > 0),
            "layer sizes must be positive"
        );
        let mut rng = InitRng::new(seed);
        let layers = layer_sizes
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], activation, &mut rng))
            .collect();
        NeuralNetwork { layers }
    }

    /// Number of input neurons.
    pub fn input_size(&self) -> usize {
        self.layers.first().map_or(0, |l| l.inputs)
    }

    /// Number of output neurons.
    pub fn output_size(&self) -> usize {
        self.layers.last().map_or(0, |l| l.outputs)
    }

    /// Layer sizes including input and output.
    pub fn layer_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![self.input_size()];
        sizes.extend(self.layers.iter().map(|l| l.outputs));
        sizes
    }

    /// Total trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.weights.len() + l.biases.len())
            .sum()
    }

    /// Floating-point operations per query (multiply-adds counted as two
    /// ops, plus one activation evaluation per neuron).
    ///
    /// The count depends only on the architecture — a feedforward query
    /// touches every connection exactly once regardless of input values,
    /// which is why the paper's ANN responds in constant, predictable time.
    pub fn ops_per_query(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| (2 * l.inputs * l.outputs + 2 * l.outputs) as u64)
            .sum()
    }

    /// Runs a forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from [`input_size`](Self::input_size).
    pub fn run(&self, input: &[f64]) -> Vec<f64> {
        let mut scratch = BatchScratch::new();
        self.run_scratch(input, &mut scratch).to_vec()
    }

    /// [`run`](Self::run) through caller-provided buffers: returns the
    /// output activations as a slice borrowed from `scratch`. Bit-identical
    /// to `run` — same layers, same accumulation order — but a hot loop
    /// querying through one scratch never allocates after warm-up.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from [`input_size`](Self::input_size).
    pub fn run_scratch<'a>(&self, input: &[f64], scratch: &'a mut BatchScratch) -> &'a [f64] {
        assert_eq!(
            input.len(),
            self.input_size(),
            "input length must match the input layer"
        );
        scratch.current.clear();
        scratch.current.extend_from_slice(input);
        for layer in &self.layers {
            layer.forward_into(&scratch.current, &mut scratch.next);
            std::mem::swap(&mut scratch.current, &mut scratch.next);
        }
        &scratch.current
    }

    /// Batched forward pass: `inputs` is a flat row-major `rows ×
    /// input_size` matrix and `out` becomes the flat row-major `rows ×
    /// output_size` activation matrix. Row `r` of the result equals
    /// `run(&inputs[r*input_size..(r+1)*input_size])` exactly — the batch
    /// path reuses the scalar accumulation order — but internally the
    /// batch is transposed into column-major lanes so each dense layer is
    /// one pass of SIMD-friendly broadcast multiply-adds over contiguous
    /// slices (see `forward_batch_cols`), with zero allocations after
    /// warm-up.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != rows * input_size`.
    pub fn run_batch_into(
        &self,
        inputs: &[f64],
        rows: usize,
        scratch: &mut BatchScratch,
        out: &mut Vec<f64>,
    ) {
        assert_eq!(
            inputs.len(),
            rows * self.input_size(),
            "batch length must be rows × input size"
        );
        out.clear();
        if rows == 0 {
            return;
        }
        // Transpose the row-major queries into column-major feature lanes.
        let in_dim = self.input_size();
        scratch.current.clear();
        scratch.current.resize(rows * in_dim, 0.0);
        for (r, row) in inputs.chunks_exact(in_dim).enumerate() {
            for (i, &x) in row.iter().enumerate() {
                scratch.current[i * rows + r] = x;
            }
        }
        let BatchScratch { current, next } = scratch;
        for layer in &self.layers {
            layer.forward_batch_cols(current, rows, next);
            std::mem::swap(current, next);
        }
        // Transpose the activations back to one row per query.
        let out_dim = self.output_size();
        out.resize(rows * out_dim, 0.0);
        for (o, col) in current.chunks_exact(rows).enumerate() {
            for (r, &y) in col.iter().enumerate() {
                out[r * out_dim + o] = y;
            }
        }
    }

    /// Column-major batched forward pass: `cols` is the flat `input_size ×
    /// rows` matrix with feature `i`'s values for every query stored
    /// contiguously at `cols[i*rows..(i+1)*rows]`, and `out` becomes the
    /// column-major `output_size × rows` activation matrix (`out[o*rows +
    /// r]` is output `o` for query `r`). This is the kernel
    /// [`run_batch_into`](Self::run_batch_into) wraps: results are
    /// bit-identical to per-row [`run`](Self::run), and callers that can
    /// produce and consume feature lanes directly skip both transposes.
    ///
    /// # Panics
    ///
    /// Panics if `cols.len() != rows * input_size`.
    pub fn run_batch_cols_into(
        &self,
        cols: &[f64],
        rows: usize,
        scratch: &mut BatchScratch,
        out: &mut Vec<f64>,
    ) {
        assert_eq!(
            cols.len(),
            rows * self.input_size(),
            "batch length must be rows × input size"
        );
        out.clear();
        if rows == 0 {
            return;
        }
        let BatchScratch { current, next } = scratch;
        current.clear();
        current.extend_from_slice(cols);
        for layer in &self.layers {
            layer.forward_batch_cols(current, rows, next);
            std::mem::swap(current, next);
        }
        std::mem::swap(out, current);
    }

    /// Forward pass recording every layer's activations into `activations`
    /// (used by backpropagation). Index 0 is the input itself.
    ///
    /// The caller's buffers are reused in place: after the first example,
    /// a whole training epoch's forward passes allocate nothing.
    pub(crate) fn run_full_into(&self, input: &[f64], activations: &mut Vec<Vec<f64>>) {
        activations.resize_with(self.layers.len() + 1, Vec::new);
        activations[0].clear();
        activations[0].extend_from_slice(input);
        for (i, layer) in self.layers.iter().enumerate() {
            let (done, rest) = activations.split_at_mut(i + 1);
            layer.forward_into(&done[i], &mut rest[0]);
        }
    }

    /// Mean squared error over a dataset (FANN's stopping criterion).
    pub fn mse(&self, inputs: &[Vec<f64>], targets: &[Vec<f64>]) -> f64 {
        let mut current = Vec::new();
        let mut next = Vec::new();
        self.mse_scratch(inputs, targets, &mut current, &mut next)
    }

    /// [`mse`](Self::mse) with caller-provided forward-pass buffers, so hot
    /// loops (the incremental trainer's per-epoch stopping check) can
    /// evaluate the error without allocating. Bit-identical to `mse`: the
    /// arithmetic and accumulation order are the same.
    pub(crate) fn mse_scratch(
        &self,
        inputs: &[Vec<f64>],
        targets: &[Vec<f64>],
        current: &mut Vec<f64>,
        next: &mut Vec<f64>,
    ) -> f64 {
        assert_eq!(inputs.len(), targets.len());
        if inputs.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        let mut count = 0usize;
        for (input, target) in inputs.iter().zip(targets) {
            assert_eq!(
                input.len(),
                self.input_size(),
                "input length must match the input layer"
            );
            current.clear();
            current.extend_from_slice(input);
            for layer in &self.layers {
                layer.forward_into(current, next);
                std::mem::swap(current, next);
            }
            for (o, t) in current.iter().zip(target) {
                total += (o - t) * (o - t);
                count += 1;
            }
        }
        total / count as f64
    }
}

impl_json_struct!(NeuralNetwork { layers });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_shapes() {
        let net = NeuralNetwork::new(&[7, 24, 6], Activation::fann_default(), 1);
        assert_eq!(net.input_size(), 7);
        assert_eq!(net.output_size(), 6);
        assert_eq!(net.layer_sizes(), vec![7, 24, 6]);
        assert_eq!(net.parameter_count(), 7 * 24 + 24 + 24 * 6 + 6);
    }

    #[test]
    fn ops_per_query_matches_architecture() {
        let net = NeuralNetwork::new(&[7, 24, 6], Activation::fann_default(), 1);
        let expected = (2 * 7 * 24 + 2 * 24) + (2 * 24 * 6 + 2 * 6);
        assert_eq!(net.ops_per_query(), expected as u64);
    }

    #[test]
    fn same_seed_same_network() {
        let a = NeuralNetwork::new(&[3, 5, 2], Activation::fann_default(), 9);
        let b = NeuralNetwork::new(&[3, 5, 2], Activation::fann_default(), 9);
        assert_eq!(a, b);
        assert_eq!(a.run(&[0.1, 0.2, 0.3]), b.run(&[0.1, 0.2, 0.3]));
    }

    #[test]
    fn different_seeds_differ() {
        let a = NeuralNetwork::new(&[3, 5, 2], Activation::fann_default(), 9);
        let b = NeuralNetwork::new(&[3, 5, 2], Activation::fann_default(), 10);
        assert_ne!(a.run(&[0.1, 0.2, 0.3]), b.run(&[0.1, 0.2, 0.3]));
    }

    #[test]
    fn sigmoid_outputs_bounded() {
        let net = NeuralNetwork::new(&[4, 8, 3], Activation::fann_default(), 3);
        let out = net.run(&[10.0, -10.0, 0.0, 1.0]);
        assert!(out.iter().all(|&y| (0.0..=1.0).contains(&y)));
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn wrong_input_size_panics() {
        let net = NeuralNetwork::new(&[2, 2], Activation::fann_default(), 1);
        net.run(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn too_few_layers_panics() {
        NeuralNetwork::new(&[4], Activation::fann_default(), 1);
    }

    #[test]
    fn mse_of_perfect_predictor_is_zero() {
        let net = NeuralNetwork::new(&[1, 2, 1], Activation::fann_default(), 1);
        let input = vec![vec![0.5]];
        let target = vec![net.run(&[0.5])];
        assert!(net.mse(&input, &target) < 1e-15);
    }

    #[test]
    fn json_round_trip() {
        let net = NeuralNetwork::new(&[3, 4, 2], Activation::fann_default(), 5);
        let json = adamant_json::to_string(&net);
        let back: NeuralNetwork = adamant_json::from_str(&json).unwrap();
        // The printer is shortest-round-trip, so weights survive exactly.
        assert_eq!(net, back);
        let input = [0.2, -0.4, 0.9];
        assert_eq!(net.run(&input), back.run(&input));
    }

    #[test]
    fn scratch_run_matches_allocating_run() {
        let net = NeuralNetwork::new(&[4, 9, 3], Activation::fann_default(), 11);
        let mut scratch = BatchScratch::new();
        let input = [0.2, -1.5, 0.0, 3.4];
        assert_eq!(net.run_scratch(&input, &mut scratch), net.run(&input));
    }

    #[test]
    fn empty_batch_yields_empty_output() {
        let net = NeuralNetwork::new(&[3, 2], Activation::fann_default(), 1);
        let mut scratch = BatchScratch::new();
        let mut out = vec![99.0];
        net.run_batch_into(&[], 0, &mut scratch, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "rows × input size")]
    fn misshapen_batch_panics() {
        let net = NeuralNetwork::new(&[3, 2], Activation::fann_default(), 1);
        let mut scratch = BatchScratch::new();
        let mut out = Vec::new();
        net.run_batch_into(&[1.0, 2.0], 2, &mut scratch, &mut out);
    }

    /// Property test: over 200 random architectures and inputs, every row
    /// of the batched forward pass matches the per-example `run_full_into`
    /// trace's final activations to ≤ 1e-12 (in fact bit-for-bit: the batch
    /// kernel reuses the scalar accumulation order).
    #[test]
    fn batched_forward_matches_scalar_run_full() {
        let mut rng = InitRng::new(0xBA7C4);
        let mut scratch = BatchScratch::new();
        for case in 0..200u64 {
            let inputs = 1 + (case % 11) as usize;
            let hidden = 1 + ((case / 11) % 17) as usize;
            let outputs = 1 + (case % 7) as usize;
            let net = NeuralNetwork::new(
                &[inputs, hidden, outputs],
                Activation::fann_default(),
                0x5EED ^ case,
            );
            let rows = (case % 9) as usize + 1;
            let flat: Vec<f64> = (0..rows * inputs).map(|_| rng.uniform(3.0)).collect();
            let mut batch = Vec::new();
            net.run_batch_into(&flat, rows, &mut scratch, &mut batch);
            assert_eq!(batch.len(), rows * outputs);

            let mut activations = Vec::new();
            for r in 0..rows {
                net.run_full_into(&flat[r * inputs..(r + 1) * inputs], &mut activations);
                let scalar = activations.last().expect("layers exist");
                let batched = &batch[r * outputs..(r + 1) * outputs];
                for (b, s) in batched.iter().zip(scalar) {
                    assert!(
                        (b - s).abs() <= 1e-12,
                        "case {case} row {r}: batched {b} vs scalar {s}"
                    );
                }
            }
        }
    }
}

//! Property-based tests of the neural-network invariants.

use adamant_ann::{
    argmax, cross_validate, fold_assignment, one_hot, train, Activation, MinMaxScaler,
    NeuralNetwork, TrainParams, TrainingData,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sigmoid outputs stay in (0, 1) for arbitrary inputs and seeds.
    #[test]
    fn outputs_bounded(
        seed in 0u64..10_000,
        hidden in 1usize..40,
        input in prop::collection::vec(-1e3f64..1e3, 5),
    ) {
        let net = NeuralNetwork::new(&[5, hidden, 3], Activation::fann_default(), seed);
        let out = net.run(&input);
        prop_assert_eq!(out.len(), 3);
        for y in out {
            prop_assert!((0.0..=1.0).contains(&y));
        }
    }

    /// The query operation count depends only on the architecture, and the
    /// forward pass is a pure function.
    #[test]
    fn query_is_pure_and_constant_cost(
        seed in 0u64..1_000,
        a in prop::collection::vec(-10.0f64..10.0, 4),
        b in prop::collection::vec(-10.0f64..10.0, 4),
    ) {
        let net = NeuralNetwork::new(&[4, 9, 2], Activation::fann_default(), seed);
        prop_assert_eq!(net.run(&a), net.run(&a));
        // ops_per_query never changes with inputs (trivially: no input arg).
        let ops = net.ops_per_query();
        let _ = net.run(&b);
        prop_assert_eq!(ops, net.ops_per_query());
    }

    /// One-hot and argmax round-trip.
    #[test]
    fn one_hot_argmax_round_trip(classes in 1usize..20, class in 0usize..20) {
        prop_assume!(class < classes);
        prop_assert_eq!(argmax(&one_hot(class, classes)), Some(class));
    }

    /// Min-max scaling maps fitted data into [0, 1] in every dimension.
    #[test]
    fn scaler_bounds(rows in prop::collection::vec(
        prop::collection::vec(-1e6f64..1e6, 3),
        1..50,
    )) {
        let scaler = MinMaxScaler::fit(&rows);
        for row in scaler.transform(&rows) {
            for x in row {
                prop_assert!((0.0..=1.0).contains(&x));
            }
        }
    }

    /// Fold assignment partitions every element into a valid fold with
    /// balanced sizes.
    #[test]
    fn folds_partition(n in 10usize..200, k in 2usize..10, seed in 0u64..100) {
        prop_assume!(k <= n);
        let folds = fold_assignment(n, k, seed);
        prop_assert_eq!(folds.len(), n);
        let mut counts = vec![0usize; k];
        for &f in &folds {
            prop_assert!(f < k);
            counts[f] += 1;
        }
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        prop_assert!(max - min <= 1, "unbalanced folds: {counts:?}");
    }

    /// Training never increases the dataset MSE beyond its starting point
    /// (for a healthy learning setup on separable data).
    #[test]
    fn training_reduces_mse(seed in 0u64..50) {
        let inputs: Vec<Vec<f64>> = (0..16).map(|i| vec![i as f64 / 16.0]).collect();
        let targets: Vec<Vec<f64>> = (0..16).map(|i| one_hot(usize::from(i >= 8), 2)).collect();
        let data = TrainingData::new(inputs, targets);
        let mut net = NeuralNetwork::new(&[1, 5, 2], Activation::fann_default(), seed);
        let before = net.mse(data.inputs(), data.targets());
        train(&mut net, &data, &TrainParams {
            stopping_mse: 0.0,
            max_epochs: 100,
            ..TrainParams::default()
        });
        let after = net.mse(data.inputs(), data.targets());
        prop_assert!(after <= before + 1e-12, "MSE rose: {before} -> {after}");
    }
}

/// Cross-validation accuracy lies in [0, 1] for every fold, whatever the
/// labels (deterministic small cases).
#[test]
fn cross_validation_accuracy_bounds() {
    for seed in 0..3u64 {
        let inputs: Vec<Vec<f64>> = (0..30).map(|i| vec![(i % 7) as f64, (i % 3) as f64]).collect();
        let targets: Vec<Vec<f64>> = (0..30).map(|i| one_hot((i % 2) as usize, 2)).collect();
        let data = TrainingData::new(inputs, targets);
        let cv = cross_validate(
            &[2, 4, 2],
            Activation::fann_default(),
            &data,
            &TrainParams {
                max_epochs: 50,
                ..TrainParams::default()
            },
            5,
            seed,
        );
        assert_eq!(cv.fold_accuracies.len(), 5);
        for acc in &cv.fold_accuracies {
            assert!((0.0..=1.0).contains(acc));
        }
    }
}

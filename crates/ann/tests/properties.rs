//! Property-style tests of the neural-network invariants, driven by
//! deterministic seeded sweeps (the build environment has no registry
//! access, so no proptest; the case grids below cover the same space).

use adamant_ann::{
    argmax, cross_validate, fold_assignment, one_hot, train, Activation, MinMaxScaler,
    NeuralNetwork, TrainParams, TrainingData,
};

/// A tiny splitmix-style generator for test-case values.
struct CaseRng(u64);

impl CaseRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn in_range(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    fn usize_below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Sigmoid outputs stay in (0, 1) for arbitrary inputs and seeds.
#[test]
fn outputs_bounded() {
    let mut rng = CaseRng(1);
    for case in 0..64u64 {
        let hidden = 1 + rng.usize_below(39);
        let input: Vec<f64> = (0..5).map(|_| rng.in_range(-1e3, 1e3)).collect();
        let net = NeuralNetwork::new(&[5, hidden, 3], Activation::fann_default(), case);
        let out = net.run(&input);
        assert_eq!(out.len(), 3);
        for y in out {
            assert!((0.0..=1.0).contains(&y), "case {case}: output {y}");
        }
    }
}

/// The query operation count depends only on the architecture, and the
/// forward pass is a pure function.
#[test]
fn query_is_pure_and_constant_cost() {
    let mut rng = CaseRng(2);
    for seed in 0..64u64 {
        let a: Vec<f64> = (0..4).map(|_| rng.in_range(-10.0, 10.0)).collect();
        let b: Vec<f64> = (0..4).map(|_| rng.in_range(-10.0, 10.0)).collect();
        let net = NeuralNetwork::new(&[4, 9, 2], Activation::fann_default(), seed);
        assert_eq!(net.run(&a), net.run(&a));
        let ops = net.ops_per_query();
        let _ = net.run(&b);
        assert_eq!(ops, net.ops_per_query());
    }
}

/// One-hot and argmax round-trip.
#[test]
fn one_hot_argmax_round_trip() {
    for classes in 1usize..20 {
        for class in 0..classes {
            assert_eq!(argmax(&one_hot(class, classes)), Some(class));
        }
    }
}

/// Min-max scaling maps fitted data into [0, 1] in every dimension.
#[test]
fn scaler_bounds() {
    let mut rng = CaseRng(3);
    for _ in 0..64 {
        let n = 1 + rng.usize_below(49);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..3).map(|_| rng.in_range(-1e6, 1e6)).collect())
            .collect();
        let scaler = MinMaxScaler::fit(&rows);
        for row in scaler.transform(&rows) {
            for x in row {
                assert!((0.0..=1.0).contains(&x));
            }
        }
    }
}

/// Fold assignment partitions every element into a valid fold with
/// balanced sizes.
#[test]
fn folds_partition() {
    let mut rng = CaseRng(4);
    for seed in 0..64u64 {
        let n = 10 + rng.usize_below(190);
        let k = 2 + rng.usize_below(8).min(n - 2);
        let folds = fold_assignment(n, k, seed);
        assert_eq!(folds.len(), n);
        let mut counts = vec![0usize; k];
        for &f in &folds {
            assert!(f < k);
            counts[f] += 1;
        }
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max - min <= 1, "unbalanced folds: {counts:?}");
    }
}

/// Training never increases the dataset MSE beyond its starting point
/// (for a healthy learning setup on separable data).
#[test]
fn training_reduces_mse() {
    for seed in 0..50u64 {
        let inputs: Vec<Vec<f64>> = (0..16).map(|i| vec![i as f64 / 16.0]).collect();
        let targets: Vec<Vec<f64>> = (0..16).map(|i| one_hot(usize::from(i >= 8), 2)).collect();
        let data = TrainingData::new(inputs, targets);
        let mut net = NeuralNetwork::new(&[1, 5, 2], Activation::fann_default(), seed);
        let before = net.mse(data.inputs(), data.targets());
        train(
            &mut net,
            &data,
            &TrainParams {
                stopping_mse: 0.0,
                max_epochs: 100,
                ..TrainParams::default()
            },
        );
        let after = net.mse(data.inputs(), data.targets());
        assert!(after <= before + 1e-12, "MSE rose: {before} -> {after}");
    }
}

/// Cross-validation accuracy lies in [0, 1] for every fold, whatever the
/// labels (deterministic small cases).
#[test]
fn cross_validation_accuracy_bounds() {
    for seed in 0..3u64 {
        let inputs: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 7) as f64, (i % 3) as f64])
            .collect();
        let targets: Vec<Vec<f64>> = (0..30).map(|i| one_hot((i % 2) as usize, 2)).collect();
        let data = TrainingData::new(inputs, targets);
        let cv = cross_validate(
            &[2, 4, 2],
            Activation::fann_default(),
            &data,
            &TrainParams {
                max_epochs: 50,
                ..TrainParams::default()
            },
            5,
            seed,
        );
        assert_eq!(cv.fold_accuracies.len(), 5);
        for acc in &cv.fold_accuracies {
            assert!((0.0..=1.0).contains(acc));
        }
    }
}

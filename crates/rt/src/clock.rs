//! Wall-clock time for the real-UDP runtime.

use std::time::Instant;

use adamant_proto::{Clock, TimePoint};

/// A monotonic wall clock anchored at construction.
///
/// [`now`](Clock::now) reports the time elapsed since the anchor as a
/// [`TimePoint`], so a fresh endpoint starts its session near `t = 0` just
/// like a simulated node — publication timestamps and latency spans are
/// directly comparable between the two drivers as long as both ends of a
/// session share one clock (the loopback harness does) or only spans are
/// compared (cross-host deployments).
#[derive(Debug, Clone, Copy)]
pub struct MonotonicClock {
    anchor: Instant,
}

impl MonotonicClock {
    /// Starts a clock anchored at the current instant.
    pub fn start() -> Self {
        MonotonicClock {
            anchor: Instant::now(),
        }
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> TimePoint {
        // u64 nanoseconds cover ~584 years of uptime; the cast is safe for
        // any realistic session.
        TimePoint::from_nanos(self.anchor.elapsed().as_nanos() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone_and_advances() {
        let clock = MonotonicClock::start();
        let a = clock.now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = clock.now();
        assert!(b > a);
        assert!(b.saturating_since(a) >= adamant_proto::Span::from_millis(1));
    }
}

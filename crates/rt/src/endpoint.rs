//! A real-UDP endpoint: one socket, one timer heap, one protocol core.
//!
//! [`Endpoint`] is the production counterpart of the simulator's
//! `SimDriver`: it feeds the same [`Input`]s to a [`ProtocolCore`] and
//! discharges the same [`Effect`]s, but against a real
//! [`std::net::UdpSocket`] and the [`MonotonicClock`] instead of the
//! simulated network and virtual time. Datagrams carry the sender's node
//! id (4 bytes, little endian) followed by the
//! [`adamant_proto::wire`] encoding of the message; the declared
//! `size_bytes`/`cost` of a [`Effect::Send`] are simulation-model inputs
//! and are ignored here — real packets cost what they cost.
//!
//! The event loop is single-threaded and blocking: it fires due timers,
//! then waits on the socket until the next timer deadline (or a short
//! cap), stepping the core for every datagram that arrives. Run one
//! endpoint per thread; a loopback session is two endpoints on
//! `127.0.0.1` sharing a clock anchor.

use std::cmp::Reverse;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::Duration;

use adamant_proto::{
    Clock, Destination, Effect, EnvHost, Input, NodeId, ProtoEvent, ProtocolCore, TimePoint,
    TimerToken, WireMsg,
};

use crate::clock::MonotonicClock;

/// Maximum UDP payload the endpoint will receive (a full 64 KiB datagram).
const RECV_BUF_BYTES: usize = 65_536;

/// Longest idle sleep between socket polls. The socket is nonblocking and
/// the loop sleeps with [`std::thread::sleep`] (hrtimer precision) rather
/// than a socket read timeout, whose kernel rounding to scheduler-tick
/// granularity would stall millisecond protocol timers.
const MAX_SLEEP: Duration = Duration::from_millis(1);

/// Configuration for a real-UDP endpoint.
#[derive(Debug, Clone, Copy)]
pub struct RtConfig {
    /// Seed for the endpoint's deterministic entropy stream (drop draws,
    /// jitter phases — the same stream the simulator would feed the core).
    pub seed: u64,
    /// Whether the core's trace events are recorded in the report.
    pub observed: bool,
    /// The wall clock. Share one value across endpoints of a session so
    /// their `TimePoint`s are mutually comparable.
    pub clock: MonotonicClock,
}

impl RtConfig {
    /// A config with entropy seeded from `seed`, tracing on, and a clock
    /// anchored now.
    pub fn new(seed: u64) -> Self {
        RtConfig {
            seed,
            observed: true,
            clock: MonotonicClock::start(),
        }
    }

    /// Replaces the clock (builder-style) — pass the same clock to every
    /// endpoint of a co-located session.
    pub fn with_clock(mut self, clock: MonotonicClock) -> Self {
        self.clock = clock;
        self
    }
}

/// What an endpoint observed over one or more [`run_for`](Endpoint::run_for)
/// windows.
#[derive(Debug, Clone, Default)]
pub struct EndpointReport {
    /// Samples the core handed up the stack: `(seq, published_at, recovered)`.
    pub delivered: Vec<(u64, TimePoint, bool)>,
    /// Protocol-behaviour trace events (empty unless `observed`).
    pub events: Vec<ProtoEvent>,
    /// Datagrams written to the socket.
    pub datagrams_sent: u64,
    /// Datagrams read from the socket.
    pub datagrams_received: u64,
    /// Datagrams that failed to parse (short header or bad wire encoding).
    pub decode_errors: u64,
    /// Send effects addressed to a node with no registered peer address.
    pub unroutable: u64,
}

impl EndpointReport {
    /// The distinct sequence numbers delivered.
    pub fn delivered_seqs(&self) -> BTreeSet<u64> {
        self.delivered.iter().map(|&(seq, _, _)| seq).collect()
    }

    /// Samples that arrived through a recovery path.
    pub fn recovered_count(&self) -> u64 {
        self.delivered.iter().filter(|&&(_, _, r)| r).count() as u64
    }

    /// Retransmissions performed (sender-side trace events).
    pub fn retransmissions(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, ProtoEvent::Retransmitted { .. }))
            .count() as u64
    }
}

/// A pending timer: ordered by deadline, then arming order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct TimerEntry {
    at: TimePoint,
    seq: u64,
    token: TimerToken,
    tag: u64,
}

/// One UDP socket driving one protocol core.
///
/// The core itself is *not* owned by the endpoint — callers keep it and
/// pass it to [`run_for`](Endpoint::run_for), mirroring how the simulator
/// keeps cores inside agents. That keeps the core inspectable between
/// windows (delivered counts, NAK statistics) without downcasting.
#[derive(Debug)]
pub struct Endpoint {
    node: NodeId,
    socket: UdpSocket,
    clock: MonotonicClock,
    host: EnvHost,
    peers: HashMap<NodeId, SocketAddr>,
    timers: std::collections::BinaryHeap<Reverse<TimerEntry>>,
    timer_seq: u64,
    cancelled: HashSet<TimerToken>,
    effects: Vec<Effect>,
    encode_buf: Vec<u8>,
    started: bool,
    report: EndpointReport,
}

impl Endpoint {
    /// Binds a UDP socket at `addr` (e.g. `"127.0.0.1:0"` for an ephemeral
    /// loopback port) for protocol endpoint `node`.
    pub fn bind(node: NodeId, addr: impl ToSocketAddrs, cfg: RtConfig) -> io::Result<Endpoint> {
        let socket = UdpSocket::bind(addr)?;
        socket.set_nonblocking(true)?;
        Ok(Endpoint {
            node,
            socket,
            clock: cfg.clock,
            host: EnvHost::new(node, cfg.seed).with_observed(cfg.observed),
            peers: HashMap::new(),
            timers: std::collections::BinaryHeap::new(),
            timer_seq: 0,
            cancelled: HashSet::new(),
            effects: Vec::new(),
            encode_buf: Vec::new(),
            started: false,
            report: EndpointReport::default(),
        })
    }

    /// The socket's bound address (tell it to the other endpoints).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// This endpoint's protocol node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Registers where datagrams for `peer` should be sent.
    pub fn add_peer(&mut self, peer: NodeId, addr: SocketAddr) {
        self.peers.insert(peer, addr);
    }

    /// Replaces the group-membership table used to fan out
    /// [`Destination::Group`] sends. Index = group id; the local node is
    /// skipped on fan-out (it already has what it sent), matching the
    /// simulator's switch model.
    pub fn set_groups(&mut self, groups: Vec<Vec<NodeId>>) {
        *self.host.groups_mut() = groups;
    }

    /// The report accumulated so far.
    pub fn report(&self) -> &EndpointReport {
        &self.report
    }

    /// Runs the event loop for `wall` of real time, stepping `core` for
    /// every fired timer and received datagram. The first call feeds the
    /// core [`Input::Start`]; later calls resume where the previous window
    /// left off. Returns the report accumulated so far.
    pub fn run_for<C: ProtocolCore + ?Sized>(
        &mut self,
        core: &mut C,
        wall: Duration,
    ) -> io::Result<&EndpointReport> {
        let deadline = self.clock.now() + adamant_proto::Span::from_nanos(wall.as_nanos() as u64);
        if !self.started {
            self.started = true;
            self.step(core, Input::Start)?;
        }
        let mut buf = vec![0u8; RECV_BUF_BYTES];
        loop {
            self.fire_due_timers(core)?;
            if self.clock.now() >= deadline {
                break;
            }
            // Drain everything queued on the socket, then sleep until the
            // next timer deadline (bounded so an arriving datagram is never
            // left waiting long).
            let mut drained_any = false;
            loop {
                match self.socket.recv_from(&mut buf) {
                    Ok((len, _from)) => {
                        drained_any = true;
                        self.on_datagram(core, &buf[..len])?;
                    }
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
            if !drained_any {
                let next = self
                    .timers
                    .peek()
                    .map(|Reverse(e)| e.at)
                    .unwrap_or(TimePoint::MAX)
                    .min(deadline);
                let wait = Duration::from_nanos(next.saturating_since(self.clock.now()).as_nanos());
                if !wait.is_zero() {
                    std::thread::sleep(wait.min(MAX_SLEEP));
                }
            }
        }
        Ok(&self.report)
    }

    /// Decodes one datagram and steps the core with it.
    fn on_datagram<C: ProtocolCore + ?Sized>(
        &mut self,
        core: &mut C,
        datagram: &[u8],
    ) -> io::Result<()> {
        self.report.datagrams_received += 1;
        let Some((header, body)) = datagram.split_at_checked(4) else {
            self.report.decode_errors += 1;
            return Ok(());
        };
        let src = NodeId(u32::from_le_bytes(header.try_into().unwrap()));
        let Some(msg) = WireMsg::decode(body) else {
            self.report.decode_errors += 1;
            return Ok(());
        };
        self.step(core, Input::PacketIn { src, msg: &msg })
    }

    /// Fires every timer due at the current instant, in deadline order.
    fn fire_due_timers<C: ProtocolCore + ?Sized>(&mut self, core: &mut C) -> io::Result<()> {
        loop {
            let now = self.clock.now();
            let Some(&Reverse(entry)) = self.timers.peek() else {
                return Ok(());
            };
            if entry.at > now {
                return Ok(());
            }
            self.timers.pop();
            if self.cancelled.remove(&entry.token) {
                continue;
            }
            self.step(
                core,
                Input::TimerFired {
                    token: entry.token,
                    tag: entry.tag,
                },
            )?;
        }
    }

    /// Steps the core once at the current wall instant and discharges the
    /// effects it produced.
    fn step<C: ProtocolCore + ?Sized>(&mut self, core: &mut C, input: Input<'_>) -> io::Result<()> {
        let now = self.clock.now();
        let mut effects = std::mem::take(&mut self.effects);
        self.host.step_into(core, now, input, &mut effects);
        for effect in effects.drain(..) {
            match effect {
                Effect::Send { dst, msg, .. } => self.transmit(now, dst, &msg)?,
                Effect::SetTimer { token, delay, tag } => {
                    self.timer_seq += 1;
                    self.timers.push(Reverse(TimerEntry {
                        at: now + delay,
                        seq: self.timer_seq,
                        token,
                        tag,
                    }));
                }
                Effect::CancelTimer { token } => {
                    self.cancelled.insert(token);
                }
                Effect::Deliver {
                    seq,
                    published_at,
                    recovered,
                } => self.report.delivered.push((seq, published_at, recovered)),
                Effect::Trace(event) => self.report.events.push(event),
            }
        }
        self.effects = effects;
        Ok(())
    }

    /// Writes `msg` to every endpoint `dst` resolves to.
    fn transmit(&mut self, _now: TimePoint, dst: Destination, msg: &WireMsg) -> io::Result<()> {
        self.encode_buf.clear();
        self.encode_buf
            .extend_from_slice(&self.node.0.to_le_bytes());
        msg.encode(&mut self.encode_buf);
        match dst {
            Destination::Node(node) => self.transmit_one(node)?,
            Destination::Group(group) => {
                // Group tables are tiny (a handful of nodes); clone the
                // member list to keep the borrow checker out of the send
                // loop.
                let members = self
                    .host
                    .groups_mut()
                    .get(group.index())
                    .cloned()
                    .unwrap_or_default();
                for node in members {
                    if node != self.node {
                        self.transmit_one(node)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn transmit_one(&mut self, node: NodeId) -> io::Result<()> {
        let Some(&addr) = self.peers.get(&node) else {
            self.report.unroutable += 1;
            return Ok(());
        };
        self.socket.send_to(&self.encode_buf, addr)?;
        self.report.datagrams_sent += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_proto::{Env, GroupId, ProcessingCost, Span};

    /// Publishes `total` sequenced messages into group 0 on a short timer.
    #[derive(Debug)]
    struct Beacon {
        next: u64,
        total: u64,
    }

    impl ProtocolCore for Beacon {
        fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
            match input {
                Input::Start | Input::TimerFired { .. } if self.next < self.total => {
                    env.send(
                        GroupId(0),
                        64,
                        1,
                        ProcessingCost::FREE,
                        WireMsg::Data(adamant_proto::wire::DataMsg {
                            seq: self.next,
                            published_at: env.now(),
                            retransmission: false,
                        }),
                    );
                    self.next += 1;
                    env.set_timer(Span::from_millis(1), 1);
                }
                _ => {}
            }
        }
    }

    /// Delivers every data message it hears.
    #[derive(Debug, Default)]
    struct Listener;

    impl ProtocolCore for Listener {
        fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
            if let Input::PacketIn {
                msg: WireMsg::Data(data),
                ..
            } = input
            {
                env.deliver(data.seq, data.published_at, false);
            }
        }
    }

    #[test]
    fn two_endpoints_exchange_datagrams_over_loopback() {
        let clock = MonotonicClock::start();
        let tx_node = NodeId(0);
        let rx_node = NodeId(1);
        let mut tx =
            Endpoint::bind(tx_node, "127.0.0.1:0", RtConfig::new(1).with_clock(clock)).unwrap();
        let mut rx =
            Endpoint::bind(rx_node, "127.0.0.1:0", RtConfig::new(2).with_clock(clock)).unwrap();
        tx.add_peer(rx_node, rx.local_addr().unwrap());
        rx.add_peer(tx_node, tx.local_addr().unwrap());
        let groups = vec![vec![tx_node, rx_node]];
        tx.set_groups(groups.clone());
        rx.set_groups(groups);

        let mut beacon = Beacon { next: 0, total: 20 };
        let mut listener = Listener;
        std::thread::scope(|s| {
            s.spawn(|| {
                tx.run_for(&mut beacon, Duration::from_millis(100)).unwrap();
            });
            s.spawn(|| {
                rx.run_for(&mut listener, Duration::from_millis(150))
                    .unwrap();
            });
        });
        assert_eq!(beacon.next, 20);
        assert_eq!(tx.report().datagrams_sent, 20);
        let seqs = rx.report().delivered_seqs();
        assert_eq!(seqs, (0..20).collect::<BTreeSet<u64>>());
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        /// Arms two timers on start, cancels one, and records what fires.
        #[derive(Debug, Default)]
        struct Canceller {
            fired: Vec<u64>,
        }
        impl ProtocolCore for Canceller {
            fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
                match input {
                    Input::Start => {
                        let doomed = env.set_timer(Span::from_millis(1), 7);
                        env.set_timer(Span::from_millis(2), 8);
                        env.cancel_timer(doomed);
                    }
                    Input::TimerFired { tag, .. } => self.fired.push(tag),
                    _ => {}
                }
            }
        }
        let mut ep = Endpoint::bind(NodeId(0), "127.0.0.1:0", RtConfig::new(3)).unwrap();
        let mut core = Canceller::default();
        ep.run_for(&mut core, Duration::from_millis(20)).unwrap();
        assert_eq!(core.fired, vec![8]);
    }

    #[test]
    fn malformed_datagrams_are_counted_not_fatal() {
        let mut ep = Endpoint::bind(NodeId(0), "127.0.0.1:0", RtConfig::new(4)).unwrap();
        let addr = ep.local_addr().unwrap();
        let probe = UdpSocket::bind("127.0.0.1:0").unwrap();
        probe.send_to(&[1, 2], addr).unwrap(); // short header
        probe.send_to(&[1, 2, 3, 4, 250, 0], addr).unwrap(); // bad wire kind
        let mut core = Listener;
        ep.run_for(&mut core, Duration::from_millis(30)).unwrap();
        assert_eq!(ep.report().datagrams_received, 2);
        assert_eq!(ep.report().decode_errors, 2);
        assert!(ep.report().delivered.is_empty());
    }
}

//! A real-UDP endpoint: one socket, one protocol core, one timer wheel.
//!
//! [`Endpoint`] is the production counterpart of the simulator's
//! `SimDriver`: it feeds the same [`Input`]s to a [`ProtocolCore`] and
//! discharges the same [`Effect`]s, but against a real
//! [`std::net::UdpSocket`] and the [`MonotonicClock`] instead of the
//! simulated network and virtual time. Datagrams carry a
//! [`FrameHeader`] (wire version 2: source node plus the
//! endpoint/incarnation demux key) followed by the
//! [`adamant_proto::wire`] encoding of the message; the declared
//! `size_bytes`/`cost` of a [`Effect::Send`] are simulation-model inputs
//! and are ignored here — real packets cost what they cost. A per-socket
//! endpoint stamps the wildcard demux key (the socket *is* the demux) and
//! ignores the endpoint field on receive, but still honours the
//! incarnation field so datagrams addressed to a previous incarnation are
//! counted as stale rather than delivered.
//!
//! Timers live on the shared [`TimerWheel`] — the same hierarchical
//! calendar queue the simulator schedules through — rather than a
//! per-endpoint binary heap. The event loop is single-threaded: it fires
//! due timers, then parks in a [`Poller`] until the socket is readable or
//! the next timer deadline arrives, stepping the core for every datagram.
//! Run one endpoint per thread, or host many endpoints on a few threads
//! with [`Cluster`](crate::Cluster) (one socket per endpoint) or
//! [`MuxCluster`](crate::MuxCluster) (shared sockets, headers demuxed);
//! a loopback session is two endpoints on `127.0.0.1` sharing a clock
//! anchor.
//!
//! All construction follows one idiom: consuming `with_*` builders for
//! pre-bind configuration ([`RtConfig::with_clock`],
//! [`RtConfig::with_seed`], …), `set_*`/`add_*` mutators for post-bind
//! state ([`Endpoint::add_peer`], [`Endpoint::set_groups`]).

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::Duration;

use adamant_proto::{
    Clock, Destination, Effect, EnvHost, FrameBody, FrameHeader, Input, NodeId, ProtoEvent,
    ProtocolCore, TimePoint, TimerWheel, WireMsg, ANY_INCARNATION,
};

use crate::clock::MonotonicClock;
use crate::error::RtError;
use crate::poller::Poller;

/// Maximum UDP payload the endpoint will receive (a full 64 KiB datagram).
pub(crate) const RECV_BUF_BYTES: usize = 65_536;

/// Most datagrams a slot will queue while its socket reports `WouldBlock`
/// before it starts shedding new ones (counted as
/// [`backpressure_drops`](EndpointReport::backpressure_drops)).
pub(crate) const OUTBOX_MAX: usize = 4096;

/// Configuration for a real-UDP endpoint.
#[derive(Debug, Clone, Copy)]
pub struct RtConfig {
    /// Seed for the endpoint's deterministic entropy stream (drop draws,
    /// jitter phases — the same stream the simulator would feed the core).
    pub seed: u64,
    /// Whether the core's trace events are recorded in the report.
    pub observed: bool,
    /// The wall clock. Share one value across endpoints of a session so
    /// their `TimePoint`s are mutually comparable.
    pub clock: MonotonicClock,
}

impl RtConfig {
    /// A config with entropy seeded from `seed`, tracing on, and a clock
    /// anchored now.
    pub fn new(seed: u64) -> Self {
        RtConfig {
            seed,
            observed: true,
            clock: MonotonicClock::start(),
        }
    }

    /// Replaces the entropy seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets whether trace events are recorded (builder-style).
    pub fn with_observed(mut self, observed: bool) -> Self {
        self.observed = observed;
        self
    }

    /// Replaces the clock (builder-style) — pass the same clock to every
    /// endpoint of a co-located session.
    pub fn with_clock(mut self, clock: MonotonicClock) -> Self {
        self.clock = clock;
        self
    }
}

/// What an endpoint observed over one or more [`run_for`](Endpoint::run_for)
/// windows.
#[derive(Debug, Clone, Default)]
pub struct EndpointReport {
    /// Samples the core handed up the stack: `(seq, published_at, recovered)`.
    pub delivered: Vec<(u64, TimePoint, bool)>,
    /// Protocol-behaviour trace events (empty unless `observed`).
    pub events: Vec<ProtoEvent>,
    /// Datagrams written to the socket.
    pub datagrams_sent: u64,
    /// Datagrams read from the socket.
    pub datagrams_received: u64,
    /// Datagrams that failed to parse (short header or bad wire encoding).
    pub decode_errors: u64,
    /// Datagrams addressed to a previous incarnation of this endpoint
    /// (in flight across a restart); dropped, never delivered.
    pub stale_datagrams: u64,
    /// Send effects addressed to a node with no registered peer address.
    pub unroutable: u64,
    /// Times a send hit `WouldBlock` and the datagram was parked in the
    /// outbox instead (the socket outran the core's effect stream).
    pub backpressure_stalls: u64,
    /// Datagrams shed because the outbox was already at capacity — the
    /// backpressure rule of last resort (UDP may drop; we count it).
    pub backpressure_drops: u64,
    /// Soft I/O errors absorbed without aborting the loop (ICMP
    /// port-unreachable surfacing as `ConnectionRefused`/`ConnectionReset`
    /// when a peer's socket is already gone).
    pub soft_io_errors: u64,
}

impl EndpointReport {
    /// The distinct sequence numbers delivered.
    pub fn delivered_seqs(&self) -> BTreeSet<u64> {
        self.delivered.iter().map(|&(seq, _, _)| seq).collect()
    }

    /// Samples that arrived through a recovery path.
    pub fn recovered_count(&self) -> u64 {
        self.delivered.iter().filter(|&&(_, _, r)| r).count() as u64
    }

    /// Retransmissions performed (sender-side trace events).
    pub fn retransmissions(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, ProtoEvent::Retransmitted { .. }))
            .count() as u64
    }

    /// Folds this endpoint's accepted-sample trace into per-window QoS
    /// rows — the per-shard observation tap the online-adaptation feedback
    /// path consumes. `published_per_window` is the writer's publication
    /// schedule (its length sets the window count) and `window_ns` the
    /// window length in nanoseconds of the shared session clock.
    ///
    /// The fold reads `SampleAccepted` trace events (they carry both the
    /// publication and delivery instants), so the endpoint must run with
    /// [`RtConfig::observed`] enabled; an unobserved report folds to
    /// windows that saw no deliveries.
    ///
    /// # Panics
    ///
    /// Panics if `window_ns` is zero.
    pub fn window_qos(
        &self,
        published_per_window: &[u64],
        window_ns: u64,
    ) -> Vec<adamant_metrics::WindowQos> {
        use adamant_metrics::{Delivery, SimDuration, SimTime};
        let deliveries: Vec<Delivery> = self
            .events
            .iter()
            .filter_map(|e| match *e {
                ProtoEvent::SampleAccepted {
                    seq,
                    published_ns,
                    delivered_ns,
                    recovered,
                } => Some(Delivery {
                    seq,
                    published_at: SimTime::from_nanos(published_ns),
                    delivered_at: SimTime::from_nanos(delivered_ns),
                    recovered,
                }),
                _ => None,
            })
            .collect();
        adamant_metrics::windowed_qos(
            &deliveries,
            published_per_window,
            SimDuration::from_nanos(window_ns),
        )
    }
}

/// `WouldBlock`-family kinds: the socket has no data / no buffer space.
fn is_would_block(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

/// Soft error kinds the runtime absorbs instead of aborting: on Linux a
/// UDP socket surfaces queued ICMP port-unreachable as
/// `ConnectionRefused`/`ConnectionReset` on the *next* send or recv, which
/// just means some peer's socket closed first.
fn is_soft_io(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused | io::ErrorKind::ConnectionReset
    )
}

/// The driver-agnostic half of an endpoint: one bound socket, the core's
/// environment host, peer routing, the outbox, and the report. [`Endpoint`]
/// pairs one slot with a private [`TimerWheel`]; `Cluster` packs many slots
/// onto one wheel per worker, which is why every stepping method takes the
/// wheel and this slot's wheel-local `owner` index as parameters.
#[derive(Debug)]
pub(crate) struct Slot {
    pub(crate) node: NodeId,
    pub(crate) socket: UdpSocket,
    pub(crate) clock: MonotonicClock,
    pub(crate) host: EnvHost,
    pub(crate) peers: HashMap<NodeId, SocketAddr>,
    effects: Vec<Effect>,
    encode_buf: Vec<u8>,
    /// Datagrams waiting out a `WouldBlock`, oldest first. While non-empty,
    /// new sends append here so per-destination ordering is preserved.
    pub(crate) outbox: VecDeque<(SocketAddr, Vec<u8>)>,
    pub(crate) started: bool,
    pub(crate) report: EndpointReport,
    /// Whether trace events are recorded (kept so a restart can rebuild
    /// the [`EnvHost`] with the same observation setting).
    observed: bool,
    /// Restarts this slot has been through (0 for the first incarnation).
    pub(crate) incarnation: u32,
    /// The owner code this slot's timers are armed under on a shared
    /// wheel: `(endpoint index << 8) | (incarnation & 0xFF)`. A restart
    /// changes the code, so timers armed by a dead incarnation are
    /// recognised as stale when they pop. [`Endpoint`] (one slot, private
    /// wheel) leaves it at 0.
    pub(crate) wheel_owner: u32,
}

impl Slot {
    /// Binds a nonblocking UDP socket at `addr` for protocol node `node`.
    pub(crate) fn bind(
        node: NodeId,
        addr: impl ToSocketAddrs,
        cfg: RtConfig,
    ) -> Result<Slot, RtError> {
        let socket = UdpSocket::bind(addr).map_err(RtError::Bind)?;
        socket.set_nonblocking(true).map_err(RtError::Bind)?;
        Ok(Slot {
            node,
            socket,
            clock: cfg.clock,
            host: EnvHost::new(node, cfg.seed).with_observed(cfg.observed),
            peers: HashMap::new(),
            effects: Vec::new(),
            encode_buf: Vec::new(),
            outbox: VecDeque::new(),
            started: false,
            report: EndpointReport::default(),
            observed: cfg.observed,
            incarnation: 0,
            wheel_owner: 0,
        })
    }

    /// Reinitialises this slot for a fresh core incarnation: same socket
    /// (the restarted process keeps its port), same peer routes and group
    /// table, new entropy stream, cleared in-flight state. The report keeps
    /// accumulating across incarnations — callers segment it by the restart
    /// instant when they need per-incarnation views. The wheel-owner code
    /// changes, so timers the previous incarnation armed on a shared wheel
    /// are dropped as stale when they pop.
    pub(crate) fn restart(&mut self, seed: u64) {
        self.incarnation = self.incarnation.wrapping_add(1);
        self.wheel_owner = (self.wheel_owner & !0xFF) | (self.incarnation & 0xFF);
        self.started = false;
        self.effects.clear();
        self.encode_buf.clear();
        self.outbox.clear();
        let groups = std::mem::take(self.host.groups_mut());
        self.host = EnvHost::new(self.node, seed).with_observed(self.observed);
        *self.host.groups_mut() = groups;
    }

    pub(crate) fn local_addr(&self) -> Result<SocketAddr, RtError> {
        self.socket.local_addr().map_err(RtError::Addr)
    }

    /// Feeds [`Input::Start`] on the first call; later calls are no-ops.
    pub(crate) fn start<C: ProtocolCore + ?Sized>(
        &mut self,
        core: &mut C,
        wheel: &mut TimerWheel,
        owner: u32,
    ) -> Result<(), RtError> {
        if !self.started {
            self.started = true;
            self.step(core, Input::Start, wheel, owner)?;
        }
        Ok(())
    }

    /// Steps the core once at the current wall instant and discharges the
    /// effects it produced (sends to the socket or outbox, timers to the
    /// wheel, deliveries and traces to the report).
    pub(crate) fn step<C: ProtocolCore + ?Sized>(
        &mut self,
        core: &mut C,
        input: Input<'_>,
        wheel: &mut TimerWheel,
        owner: u32,
    ) -> Result<(), RtError> {
        let now = self.clock.now();
        let mut effects = std::mem::take(&mut self.effects);
        self.host.step_into(core, now, input, &mut effects);
        for effect in effects.drain(..) {
            match effect {
                Effect::Send { dst, msg, .. } => self.transmit(dst, &msg)?,
                Effect::SetTimer { token, delay, tag } => {
                    wheel.arm(now + delay, owner, token, tag);
                }
                Effect::CancelTimer { token } => wheel.cancel(owner, token),
                Effect::Deliver {
                    seq,
                    published_at,
                    recovered,
                } => self.report.delivered.push((seq, published_at, recovered)),
                Effect::Trace(event) => self.report.events.push(event),
            }
        }
        self.effects = effects;
        Ok(())
    }

    /// Decodes one datagram and steps the core with it.
    pub(crate) fn on_datagram<C: ProtocolCore + ?Sized>(
        &mut self,
        core: &mut C,
        datagram: &[u8],
        wheel: &mut TimerWheel,
        owner: u32,
    ) -> Result<(), RtError> {
        self.report.datagrams_received += 1;
        let Some((header, body)) = FrameHeader::decode(datagram) else {
            self.report.decode_errors += 1;
            return Ok(());
        };
        // The socket is this slot's demux, so `dst_endpoint` is ignored —
        // but a datagram stamped for an earlier incarnation was in flight
        // across a restart and must not reach the new core.
        if header.dst_incarnation != ANY_INCARNATION && header.dst_incarnation != self.incarnation {
            self.report.stale_datagrams += 1;
            return Ok(());
        }
        // The body is one or more length-prefixed entries (a coalescing
        // sender packs several messages per datagram); each entry steps
        // the core independently, and damage is counted where it is found.
        let mut entries = FrameBody::new(body);
        for entry in &mut entries {
            let Some(msg) = WireMsg::decode(entry) else {
                self.report.decode_errors += 1;
                continue;
            };
            self.step(
                core,
                Input::PacketIn {
                    src: header.src,
                    msg: &msg,
                },
                wheel,
                owner,
            )?;
        }
        if entries.malformed() {
            self.report.decode_errors += 1;
        }
        Ok(())
    }

    /// Drains everything queued on the socket (until `WouldBlock`),
    /// stepping the core for each datagram. Returns whether anything was
    /// read.
    pub(crate) fn drain_socket<C: ProtocolCore + ?Sized>(
        &mut self,
        core: &mut C,
        buf: &mut [u8],
        wheel: &mut TimerWheel,
        owner: u32,
    ) -> Result<bool, RtError> {
        let mut drained_any = false;
        loop {
            match self.socket.recv_from(buf) {
                Ok((len, _from)) => {
                    drained_any = true;
                    self.on_datagram(core, &buf[..len], wheel, owner)?;
                }
                Err(e) if is_would_block(&e) => break,
                Err(e) if is_soft_io(&e) => self.report.soft_io_errors += 1,
                Err(e) => return Err(RtError::Recv(e)),
            }
        }
        Ok(drained_any)
    }

    /// Retries parked datagrams, oldest first, until the outbox empties or
    /// the socket blocks again. Returns how many were sent.
    pub(crate) fn flush_outbox(&mut self) -> Result<usize, RtError> {
        let mut sent = 0;
        while let Some((addr, bytes)) = self.outbox.front() {
            match self.socket.send_to(bytes, *addr) {
                Ok(_) => {
                    self.report.datagrams_sent += 1;
                    sent += 1;
                    self.outbox.pop_front();
                }
                Err(e) if is_would_block(&e) => break,
                Err(e) if is_soft_io(&e) => {
                    self.report.soft_io_errors += 1;
                    self.outbox.pop_front();
                }
                Err(e) => return Err(RtError::Send(e)),
            }
        }
        Ok(sent)
    }

    /// Writes `msg` to every endpoint `dst` resolves to. The message is
    /// encoded once; group fan-out reuses the same buffer per member.
    fn transmit(&mut self, dst: Destination, msg: &WireMsg) -> Result<(), RtError> {
        self.encode_buf.clear();
        // Per-socket endpoints address "whoever owns the destination
        // socket, any incarnation": the receiver applies its own
        // incarnation check, and there is no endpoint index to name.
        FrameHeader::broadcast(self.node).encode(&mut self.encode_buf);
        // One length-prefixed body entry per datagram here (a per-socket
        // endpoint sends as it steps, so there is nothing to coalesce with;
        // the length is patched in after encoding the message in place).
        let len_at = self.encode_buf.len();
        self.encode_buf.extend_from_slice(&[0, 0]);
        msg.encode(&mut self.encode_buf);
        let body_len = self.encode_buf.len() - len_at - 2;
        debug_assert!(body_len <= usize::from(u16::MAX));
        self.encode_buf[len_at..len_at + 2].copy_from_slice(&(body_len as u16).to_le_bytes());
        match dst {
            Destination::Node(node) => self.transmit_one(node)?,
            Destination::Group(group) => {
                // Group tables are tiny (a handful of nodes); clone the
                // member list to keep the borrow checker out of the send
                // loop.
                let members = self
                    .host
                    .groups_mut()
                    .get(group.index())
                    .cloned()
                    .unwrap_or_default();
                for node in members {
                    if node != self.node {
                        self.transmit_one(node)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn transmit_one(&mut self, node: NodeId) -> Result<(), RtError> {
        let Some(&addr) = self.peers.get(&node) else {
            self.report.unroutable += 1;
            return Ok(());
        };
        if self.outbox.is_empty() {
            match self.socket.send_to(&self.encode_buf, addr) {
                Ok(_) => {
                    self.report.datagrams_sent += 1;
                    return Ok(());
                }
                Err(e) if is_would_block(&e) => self.report.backpressure_stalls += 1,
                Err(e) if is_soft_io(&e) => {
                    self.report.soft_io_errors += 1;
                    return Ok(());
                }
                Err(e) => return Err(RtError::Send(e)),
            }
        }
        // Socket is (or was already) saturated: park the datagram so it
        // goes out in order once the socket drains, shedding only when the
        // outbox itself is full.
        if self.outbox.len() >= OUTBOX_MAX {
            self.report.backpressure_drops += 1;
        } else {
            self.outbox.push_back((addr, self.encode_buf.clone()));
        }
        Ok(())
    }
}

/// One UDP socket driving one protocol core.
///
/// The core itself is *not* owned by the endpoint — callers keep it and
/// pass it to [`run_for`](Endpoint::run_for), mirroring how the simulator
/// keeps cores inside agents. That keeps the core inspectable between
/// windows (delivered counts, NAK statistics) without downcasting. To host
/// many cores on a few threads, use [`Cluster`](crate::Cluster) instead.
#[derive(Debug)]
pub struct Endpoint {
    slot: Slot,
    wheel: TimerWheel,
    poller: Poller,
}

impl Endpoint {
    /// Binds a UDP socket at `addr` (e.g. `"127.0.0.1:0"` for an ephemeral
    /// loopback port) for protocol endpoint `node`.
    ///
    /// # Errors
    ///
    /// [`RtError::Bind`] when the socket cannot be bound or switched to
    /// nonblocking mode.
    pub fn bind(
        node: NodeId,
        addr: impl ToSocketAddrs,
        cfg: RtConfig,
    ) -> Result<Endpoint, RtError> {
        let slot = Slot::bind(node, addr, cfg)?;
        let mut poller = Poller::new().map_err(RtError::Io)?;
        poller.register(&slot.socket).map_err(RtError::Io)?;
        Ok(Endpoint {
            slot,
            wheel: TimerWheel::new(),
            poller,
        })
    }

    /// The socket's bound address (tell it to the other endpoints).
    ///
    /// # Errors
    ///
    /// [`RtError::Addr`] when the OS refuses to report the address.
    pub fn local_addr(&self) -> Result<SocketAddr, RtError> {
        self.slot.local_addr()
    }

    /// This endpoint's protocol node id.
    pub fn node(&self) -> NodeId {
        self.slot.node
    }

    /// Registers where datagrams for `peer` should be sent.
    pub fn add_peer(&mut self, peer: NodeId, addr: SocketAddr) {
        self.slot.peers.insert(peer, addr);
    }

    /// Replaces the group-membership table used to fan out
    /// [`Destination::Group`] sends. Index = group id; the local node is
    /// skipped on fan-out (it already has what it sent), matching the
    /// simulator's switch model.
    pub fn set_groups(&mut self, groups: Vec<Vec<NodeId>>) {
        *self.slot.host.groups_mut() = groups;
    }

    /// The report accumulated so far.
    pub fn report(&self) -> &EndpointReport {
        &self.slot.report
    }

    /// Runs the event loop for `wall` of real time, stepping `core` for
    /// every fired timer and received datagram. The first call feeds the
    /// core [`Input::Start`]; later calls resume where the previous window
    /// left off. Returns the report accumulated so far.
    ///
    /// # Errors
    ///
    /// [`RtError::Send`]/[`RtError::Recv`] on hard socket errors (soft
    /// flow-control and ICMP-unreachable conditions are absorbed and
    /// counted in the report).
    pub fn run_for<C: ProtocolCore + ?Sized>(
        &mut self,
        core: &mut C,
        wall: Duration,
    ) -> Result<&EndpointReport, RtError> {
        let clock = self.slot.clock;
        let deadline = clock.now() + adamant_proto::Span::from_nanos(wall.as_nanos() as u64);
        self.slot.start(core, &mut self.wheel, 0)?;
        let mut buf = vec![0u8; RECV_BUF_BYTES];
        loop {
            while let Some(fire) = self.wheel.pop_due(clock.now()) {
                self.slot.step(
                    core,
                    Input::TimerFired {
                        token: fire.token,
                        tag: fire.tag,
                    },
                    &mut self.wheel,
                    0,
                )?;
            }
            if clock.now() >= deadline {
                break;
            }
            let flushed = self.slot.flush_outbox()?;
            let drained = self.slot.drain_socket(core, &mut buf, &mut self.wheel, 0)?;
            if !drained && flushed == 0 {
                // Nothing to do until the next timer or a datagram: park
                // in the poller for the full gap (zero CPU while idle)
                // instead of spinning a capped sleep loop.
                let next = self
                    .wheel
                    .next_deadline()
                    .unwrap_or(TimePoint::MAX)
                    .min(deadline);
                let mut wait = Duration::from_nanos(next.saturating_since(clock.now()).as_nanos());
                if !self.slot.outbox.is_empty() {
                    // The poller only watches readability; parked sends
                    // need a bounded retry cadence, not a timer-length nap.
                    wait = wait.min(Duration::from_millis(1));
                }
                if !wait.is_zero() {
                    self.poller.wait(wait).map_err(RtError::Io)?;
                }
            }
        }
        self.slot.flush_outbox()?;
        Ok(&self.slot.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_proto::{Env, GroupId, ProcessingCost, Span};

    #[test]
    fn window_qos_folds_the_accepted_sample_trace() {
        let mut report = EndpointReport::default();
        // Two samples in window 0 (one recovered, late), one in window 1.
        report.events.push(ProtoEvent::SampleAccepted {
            seq: 0,
            published_ns: 100_000,
            delivered_ns: 600_000,
            recovered: false,
        });
        report.events.push(ProtoEvent::SampleAccepted {
            seq: 1,
            published_ns: 900_000,
            delivered_ns: 2_500_000,
            recovered: true,
        });
        report.events.push(ProtoEvent::SampleAccepted {
            seq: 2,
            published_ns: 1_200_000,
            delivered_ns: 1_400_000,
            recovered: false,
        });
        let windows = report.window_qos(&[3, 2], 1_000_000);
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].published, 3);
        assert_eq!(windows[0].delivered, 2);
        assert_eq!(windows[1].delivered, 1);
        assert_eq!(windows[1].avg_latency_us, 200.0);
        // The unobserved fold sees nothing.
        let quiet = EndpointReport::default().window_qos(&[3, 2], 1_000_000);
        assert!(quiet.iter().all(|w| w.delivered == 0));
    }

    /// Publishes `total` sequenced messages into group 0 on a short timer.
    #[derive(Debug)]
    struct Beacon {
        next: u64,
        total: u64,
    }

    impl ProtocolCore for Beacon {
        fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
            match input {
                Input::Start | Input::TimerFired { .. } if self.next < self.total => {
                    env.send(
                        GroupId(0),
                        64,
                        1,
                        ProcessingCost::FREE,
                        WireMsg::Data(adamant_proto::wire::DataMsg {
                            seq: self.next,
                            published_at: env.now(),
                            retransmission: false,
                        }),
                    );
                    self.next += 1;
                    env.set_timer(Span::from_millis(1), 1);
                }
                _ => {}
            }
        }
    }

    /// Delivers every data message it hears.
    #[derive(Debug, Default)]
    struct Listener;

    impl ProtocolCore for Listener {
        fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
            if let Input::PacketIn {
                msg: WireMsg::Data(data),
                ..
            } = input
            {
                env.deliver(data.seq, data.published_at, false);
            }
        }
    }

    #[test]
    fn two_endpoints_exchange_datagrams_over_loopback() {
        let clock = MonotonicClock::start();
        let tx_node = NodeId(0);
        let rx_node = NodeId(1);
        let mut tx =
            Endpoint::bind(tx_node, "127.0.0.1:0", RtConfig::new(1).with_clock(clock)).unwrap();
        let mut rx =
            Endpoint::bind(rx_node, "127.0.0.1:0", RtConfig::new(2).with_clock(clock)).unwrap();
        tx.add_peer(rx_node, rx.local_addr().unwrap());
        rx.add_peer(tx_node, tx.local_addr().unwrap());
        let groups = vec![vec![tx_node, rx_node]];
        tx.set_groups(groups.clone());
        rx.set_groups(groups);

        let mut beacon = Beacon { next: 0, total: 20 };
        let mut listener = Listener;
        std::thread::scope(|s| {
            // Wide walls: the beacon only needs ~20ms of ticks, but under a
            // fully loaded test host the threads can be starved for far
            // longer than that.
            s.spawn(|| {
                tx.run_for(&mut beacon, Duration::from_millis(400)).unwrap();
            });
            s.spawn(|| {
                rx.run_for(&mut listener, Duration::from_millis(600))
                    .unwrap();
            });
        });
        assert_eq!(beacon.next, 20);
        assert_eq!(tx.report().datagrams_sent, 20);
        let seqs = rx.report().delivered_seqs();
        assert_eq!(seqs, (0..20).collect::<BTreeSet<u64>>());
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        /// Arms two timers on start, cancels one, and records what fires.
        #[derive(Debug, Default)]
        struct Canceller {
            fired: Vec<u64>,
        }
        impl ProtocolCore for Canceller {
            fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
                match input {
                    Input::Start => {
                        let doomed = env.set_timer(Span::from_millis(1), 7);
                        env.set_timer(Span::from_millis(2), 8);
                        env.cancel_timer(doomed);
                    }
                    Input::TimerFired { tag, .. } => self.fired.push(tag),
                    _ => {}
                }
            }
        }
        let mut ep = Endpoint::bind(NodeId(0), "127.0.0.1:0", RtConfig::new(3)).unwrap();
        let mut core = Canceller::default();
        ep.run_for(&mut core, Duration::from_millis(20)).unwrap();
        assert_eq!(core.fired, vec![8]);
    }

    #[test]
    fn malformed_datagrams_are_counted_not_fatal() {
        let mut ep = Endpoint::bind(NodeId(0), "127.0.0.1:0", RtConfig::new(4)).unwrap();
        let addr = ep.local_addr().unwrap();
        let probe = UdpSocket::bind("127.0.0.1:0").unwrap();
        // Truncated header: version byte present, demux fields cut off.
        probe.send_to(&[2, 1], addr).unwrap();
        // Valid header, bad wire kind in the body.
        let mut bad_body = Vec::new();
        FrameHeader::broadcast(NodeId(9)).encode(&mut bad_body);
        bad_body.push(250);
        probe.send_to(&bad_body, addr).unwrap();
        // Wire version 1 framing (bare node-id prefix) is no longer spoken.
        probe.send_to(&[1, 0, 0, 0, 250, 0], addr).unwrap();
        let mut core = Listener;
        ep.run_for(&mut core, Duration::from_millis(30)).unwrap();
        assert_eq!(ep.report().datagrams_received, 3);
        assert_eq!(ep.report().decode_errors, 3);
        assert!(ep.report().delivered.is_empty());
    }

    #[test]
    fn cross_incarnation_datagrams_are_counted_stale() {
        let mut ep = Endpoint::bind(NodeId(0), "127.0.0.1:0", RtConfig::new(5)).unwrap();
        let addr = ep.local_addr().unwrap();
        let probe = UdpSocket::bind("127.0.0.1:0").unwrap();
        let msg = WireMsg::Data(adamant_proto::wire::DataMsg {
            seq: 1,
            published_at: TimePoint::from_nanos(0),
            retransmission: false,
        });
        // Stamped for incarnation 3; this endpoint is incarnation 0.
        let mut stale = Vec::new();
        FrameHeader {
            src: NodeId(9),
            dst_endpoint: adamant_proto::ANY_ENDPOINT,
            dst_incarnation: 3,
        }
        .encode(&mut stale);
        FrameHeader::encode_body_entry(&mut stale, &msg.to_bytes());
        probe.send_to(&stale, addr).unwrap();
        // Wildcard incarnation still delivers.
        let mut fresh = Vec::new();
        FrameHeader::broadcast(NodeId(9)).encode(&mut fresh);
        FrameHeader::encode_body_entry(&mut fresh, &msg.to_bytes());
        probe.send_to(&fresh, addr).unwrap();
        let mut core = Listener;
        ep.run_for(&mut core, Duration::from_millis(30)).unwrap();
        assert_eq!(ep.report().datagrams_received, 2);
        assert_eq!(ep.report().stale_datagrams, 1);
        assert_eq!(ep.report().decode_errors, 0);
        assert_eq!(ep.report().delivered.len(), 1);
    }
}

//! The multiplexed runtime: thousands of endpoints over a handful of
//! shared sockets, driven by readiness notification and batched syscalls.
//!
//! [`MuxCluster`] is the scale-oriented sibling of
//! [`Cluster`](crate::Cluster). Where the per-socket cluster gives every
//! endpoint its own UDP socket (N endpoints → N file descriptors → N
//! `recv_from` calls per drain pass), a mux cluster gives each worker a
//! small fixed pool of shared sockets and multiplexes the whole shard
//! over them:
//!
//! * **Demux key, not socket identity.** Every datagram carries a
//!   [`FrameHeader`] naming the destination endpoint index and
//!   incarnation. The worker routes each received datagram to its
//!   endpoint by that key; unknown keys, truncated headers, and
//!   cross-incarnation strays are counted in [`ClusterStats`] as typed
//!   drops — never a panic, never a misdelivery.
//! * **Batched syscalls.** Each worker's per-tick sends coalesce into one
//!   outbox per socket and flush via `sendmmsg`; receives drain via
//!   `recvmmsg` ([`crate::poller`] carries the portable single-syscall
//!   fallbacks).
//! * **Readiness, not spinning.** An idle worker parks in `epoll` until
//!   the next [`TimerWheel`] deadline or an incoming datagram, so idle
//!   CPU is ~0 regardless of endpoint count.
//!
//! The file-descriptor budget is `workers × sockets_per_worker` no matter
//! how many endpoints are added, which is what makes a 100k-endpoint
//! process (the bench's `cluster_endpoints_scaling` phase) possible at
//! all — the per-socket design would need 100k descriptors.
//!
//! Endpoint `i` lives on shard `i % workers` (same deal-out rule as
//! [`Cluster`](crate::Cluster)) and is pinned to socket
//! `(i / workers) % sockets_per_worker` of that worker's pool, so shard
//! layout remains a pure function of add order. Routing is by
//! [`NodeId`] → `(socket address, endpoint index, incarnation)`; a
//! [`restart_endpoint`](MuxCluster::restart_endpoint) bumps the
//! incarnation **and rewrites every peer's route entry**, so only
//! datagrams already in flight at the restart instant are dropped as
//! stale — exactly the durable-delivery semantics the per-socket runtime
//! has.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::Duration;

use adamant_metrics::MetricsRegistry;
use adamant_proto::{
    Clock, Destination, Effect, EnvHost, FrameBody, FrameHeader, Input, NodeId, ProtocolCore, Span,
    TimePoint, TimerWheel, WireMsg, ANY_ENDPOINT, ANY_INCARNATION,
};

use crate::clock::MonotonicClock;
use crate::cluster::{
    endpoint_seed, wheel_owner, ClusterCore, ClusterStats, EndpointId, WorkerCounters,
};
use crate::endpoint::{EndpointReport, OUTBOX_MAX};
use crate::error::RtError;
use crate::poller::{set_socket_buffers, soft_io_error, Poller, RecvBatch, SendBatch};

/// Kernel buffer size requested per shared socket: large enough to absorb
/// a full burst wave from every endpoint multiplexed onto the socket
/// between two drain passes (the kernel clamps to `net.core.rmem_max`).
const SOCKET_BUF_BYTES: usize = 4 << 20;

/// Configuration for a [`MuxCluster`] (consuming `with_*` builders, same
/// idiom as [`ClusterConfig`](crate::ClusterConfig)).
#[derive(Debug, Clone, Copy)]
pub struct MuxConfig {
    /// Worker threads to shard endpoints across (at least 1).
    pub workers: usize,
    /// Shared UDP sockets per worker (at least 1). The process-wide
    /// descriptor budget is `workers × sockets_per_worker`, independent
    /// of endpoint count. A few sockets per worker spreads kernel socket
    /// buffers without inflating the poll set.
    pub sockets_per_worker: usize,
    /// Datagrams per `recvmmsg`/`sendmmsg` batch (at least 1). Larger
    /// batches amortise syscall cost at the price of batch-buffer memory
    /// (`batch_size × 64 KiB` receive buffer per worker).
    pub batch_size: usize,
    /// Base entropy seed; endpoint `i` derives its stream from
    /// `(base, i)`, exactly as in the per-socket cluster.
    pub seed: u64,
    /// Whether cores' trace events are recorded in their reports.
    pub observed: bool,
    /// The wall clock shared by every endpoint of the cluster.
    pub clock: MonotonicClock,
}

impl MuxConfig {
    /// A config for `workers` threads with 4 sockets per worker, batch
    /// size 32, seed 0, tracing on, and a clock anchored now.
    pub fn new(workers: usize) -> Self {
        MuxConfig {
            workers: workers.max(1),
            sockets_per_worker: 4,
            batch_size: 32,
            seed: 0,
            observed: true,
            clock: MonotonicClock::start(),
        }
    }

    /// Replaces the per-worker socket pool size (builder-style).
    pub fn with_sockets_per_worker(mut self, sockets: usize) -> Self {
        self.sockets_per_worker = sockets.max(1);
        self
    }

    /// Replaces the syscall batch size (builder-style).
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        self.batch_size = batch.max(1);
        self
    }

    /// Replaces the base entropy seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets whether trace events are recorded (builder-style).
    pub fn with_observed(mut self, observed: bool) -> Self {
        self.observed = observed;
        self
    }

    /// Replaces the shared clock (builder-style).
    pub fn with_clock(mut self, clock: MonotonicClock) -> Self {
        self.clock = clock;
        self
    }
}

/// Where an endpoint sends datagrams for one peer node: the peer's shared
/// socket plus the demux key its worker routes by.
#[derive(Debug, Clone, Copy)]
struct MuxRoute {
    addr: SocketAddr,
    endpoint: u32,
    incarnation: u32,
}

/// One endpoint of the mux cluster. Unlike the per-socket [`Slot`]
/// (socket + core), a mux entry owns no socket — it is pinned to one of
/// its worker's shared sockets by index.
struct MuxEntry {
    node: NodeId,
    host: EnvHost,
    core: Box<dyn ClusterCore>,
    routes: HashMap<NodeId, MuxRoute>,
    report: EndpointReport,
    started: bool,
    observed: bool,
    incarnation: u32,
    wheel_owner: u32,
    /// Index into the worker's socket pool this endpoint sends from (and
    /// whose bound address peers send to).
    socket: usize,
}

/// A datagram coalesced into a worker's per-socket outbox, tagged with
/// the shard-local position of the sending endpoint for stat attribution.
/// The demux key is kept alongside the encoded frame so later messages
/// for the same `(addr, key)` can append body entries to this datagram
/// instead of opening a new one.
struct OutMsg {
    addr: SocketAddr,
    endpoint: u32,
    incarnation: u32,
    buf: Vec<u8>,
    from: usize,
}

/// Coalescing cap per datagram: adjacent same-destination messages pack
/// into one frame until it reaches this size — an Ethernet-safe payload,
/// so coalesced frames survive off-loopback paths without fragmentation.
const COALESCE_BYTES: usize = 1400;

/// The multiplexed sharded runtime (see the module docs for the
/// architecture).
///
/// ```no_run
/// use adamant_rt::{MuxCluster, MuxConfig, RtError};
/// # use adamant_proto::{Env, Input, NodeId, ProtocolCore};
/// # #[derive(Debug)] struct MyCore;
/// # impl ProtocolCore for MyCore {
/// #     fn step(&mut self, _input: Input<'_>, _env: &mut Env<'_>) {}
/// # }
/// # fn main() -> Result<(), RtError> {
/// let cfg = MuxConfig::new(4)
///     .with_sockets_per_worker(4)
///     .with_batch_size(32)
///     .with_seed(42);
/// let mut cluster = MuxCluster::bind("127.0.0.1:0", cfg)?;
/// for node in 0..100_000 {
///     cluster.add_endpoint(NodeId(node), MyCore)?;
/// }
/// cluster.connect_full_mesh()?;
/// cluster.run_for(std::time::Duration::from_secs(1))?;
/// let stats = cluster.stats();
/// # let _ = stats;
/// # Ok(())
/// # }
/// ```
pub struct MuxCluster {
    cfg: MuxConfig,
    /// `None` only for endpoints whose shard was lost to a worker panic.
    entries: Vec<Option<MuxEntry>>,
    /// Each worker's socket pool (emptied for a shard lost to a panic —
    /// the sockets died with the worker thread).
    sockets: Vec<Vec<UdpSocket>>,
    /// Bound address of every socket, `addrs[shard][socket]`.
    addrs: Vec<Vec<SocketAddr>>,
    /// One persistent timer wheel per shard, as in the per-socket cluster.
    wheels: Vec<TimerWheel>,
    worker: WorkerCounters,
}

impl std::fmt::Debug for MuxCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MuxCluster")
            .field("cfg", &self.cfg)
            .field("endpoints", &self.entries.len())
            .finish()
    }
}

impl MuxCluster {
    /// Binds the shared socket pools (`workers × sockets_per_worker`
    /// sockets at `addr`, typically `"127.0.0.1:0"`) and returns an empty
    /// cluster; add endpoints, wire them, then run.
    ///
    /// # Errors
    ///
    /// [`RtError::Bind`] when any socket cannot be bound,
    /// [`RtError::Addr`] when a bound address cannot be read.
    pub fn bind(addr: impl ToSocketAddrs + Copy, cfg: MuxConfig) -> Result<MuxCluster, RtError> {
        let workers = cfg.workers.max(1);
        let per_worker = cfg.sockets_per_worker.max(1);
        let mut sockets = Vec::with_capacity(workers);
        let mut addrs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let mut pool = Vec::with_capacity(per_worker);
            let mut pool_addrs = Vec::with_capacity(per_worker);
            for _ in 0..per_worker {
                let sock = UdpSocket::bind(addr).map_err(RtError::Bind)?;
                sock.set_nonblocking(true).map_err(RtError::Bind)?;
                set_socket_buffers(&sock, SOCKET_BUF_BYTES).map_err(RtError::Bind)?;
                pool_addrs.push(sock.local_addr().map_err(RtError::Addr)?);
                pool.push(sock);
            }
            sockets.push(pool);
            addrs.push(pool_addrs);
        }
        Ok(MuxCluster {
            cfg,
            entries: Vec::new(),
            sockets,
            addrs,
            wheels: Vec::new(),
            worker: WorkerCounters::default(),
        })
    }

    /// Installs `core` as endpoint `node` on the next index. No socket is
    /// bound: the endpoint shares its shard's pool, and peers reach it by
    /// demux key at [`endpoint_addr`](MuxCluster::endpoint_addr).
    ///
    /// # Errors
    ///
    /// [`RtError::ShardPanicked`] when the endpoint's shard lost its
    /// sockets to an earlier worker panic.
    pub fn add_endpoint<C: ProtocolCore>(
        &mut self,
        node: NodeId,
        core: C,
    ) -> Result<EndpointId, RtError> {
        let index = self.entries.len();
        let shard = index % self.cfg.workers.max(1);
        if self.sockets[shard].is_empty() {
            return Err(RtError::ShardPanicked { shard });
        }
        let socket = (index / self.cfg.workers.max(1)) % self.sockets[shard].len();
        self.entries.push(Some(MuxEntry {
            node,
            host: EnvHost::new(node, endpoint_seed(self.cfg.seed, index))
                .with_observed(self.cfg.observed),
            core: Box::new(core),
            routes: HashMap::new(),
            report: EndpointReport::default(),
            started: false,
            observed: self.cfg.observed,
            incarnation: 0,
            wheel_owner: wheel_owner(index, 0),
            socket,
        }));
        Ok(EndpointId(index))
    }

    /// Restarts endpoint `id` as a fresh incarnation running `core`, with
    /// the same semantics as the per-socket cluster — plus one mux-specific
    /// step: every live peer's route to this node is re-stamped with the
    /// new incarnation, so only datagrams already in flight at the restart
    /// instant are dropped as stale. Call between
    /// [`run_for`](MuxCluster::run_for) windows.
    ///
    /// # Errors
    ///
    /// [`RtError::UnknownEndpoint`] for a dead or out-of-range id.
    pub fn restart_endpoint<C: ProtocolCore>(
        &mut self,
        id: EndpointId,
        core: C,
    ) -> Result<(), RtError> {
        let base = self.cfg.seed;
        let entry = self.entry_mut(id)?;
        let node = entry.node;
        entry.incarnation = entry.incarnation.wrapping_add(1);
        entry.wheel_owner = wheel_owner(id.0, entry.incarnation);
        entry.started = false;
        let incarnation = entry.incarnation;
        // Same derivation as Cluster::restart_endpoint: a distinct stream
        // per (cluster seed, endpoint, incarnation).
        let seed = endpoint_seed(
            base.wrapping_add(u64::from(incarnation).wrapping_mul(0xA076_1D64_78BD_642F)),
            id.0,
        );
        let groups = std::mem::take(entry.host.groups_mut());
        entry.host = EnvHost::new(node, seed).with_observed(entry.observed);
        *entry.host.groups_mut() = groups;
        entry.core = Box::new(core);
        // Re-stamp every peer's route so post-restart sends reach the new
        // incarnation instead of being dropped as stale.
        for cell in self.entries.iter_mut().flatten() {
            if let Some(route) = cell.routes.get_mut(&node) {
                if route.endpoint == id.0 as u32 {
                    route.incarnation = incarnation;
                }
            }
        }
        Ok(())
    }

    /// How many times endpoint `id` has been restarted.
    ///
    /// # Errors
    ///
    /// [`RtError::UnknownEndpoint`] for a dead or out-of-range id.
    pub fn incarnation(&self, id: EndpointId) -> Result<u32, RtError> {
        Ok(self.entry(id)?.incarnation)
    }

    /// Endpoints added so far (including any lost to a shard panic).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no endpoints have been added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The worker shard `id` runs on: `index % workers`.
    pub fn shard_of(&self, id: EndpointId) -> usize {
        id.0 % self.cfg.workers.max(1)
    }

    /// The shared-socket address peers should send endpoint `id`'s
    /// datagrams to (together with its demux key — see
    /// [`add_external_peer`](MuxCluster::add_external_peer) for the
    /// sender side).
    ///
    /// # Errors
    ///
    /// [`RtError::UnknownEndpoint`] for a dead or out-of-range id.
    pub fn endpoint_addr(&self, id: EndpointId) -> Result<SocketAddr, RtError> {
        let entry = self.entry(id)?;
        Ok(self.addrs[id.0 % self.cfg.workers.max(1)][entry.socket])
    }

    /// The protocol node id of endpoint `id`.
    ///
    /// # Errors
    ///
    /// [`RtError::UnknownEndpoint`] for a dead or out-of-range id.
    pub fn node(&self, id: EndpointId) -> Result<NodeId, RtError> {
        Ok(self.entry(id)?.node)
    }

    /// Routes endpoint `id`'s sends for `peer`'s node to `peer`'s shared
    /// socket, stamped with `peer`'s demux key (`id == peer` gives an
    /// endpoint a route to itself, which self-echo benchmarks use).
    ///
    /// # Errors
    ///
    /// [`RtError::UnknownEndpoint`] when either id is dead or out of range.
    pub fn add_peer(&mut self, id: EndpointId, peer: EndpointId) -> Result<(), RtError> {
        let peer_entry = self.entry(peer)?;
        let route = MuxRoute {
            addr: self.addrs[peer.0 % self.cfg.workers.max(1)][peer_entry.socket],
            endpoint: peer.0 as u32,
            incarnation: peer_entry.incarnation,
        };
        let peer_node = peer_entry.node;
        self.entry_mut(id)?.routes.insert(peer_node, route);
        Ok(())
    }

    /// Routes endpoint `id`'s sends for `peer` to an address outside this
    /// cluster (a per-socket [`Endpoint`](crate::Endpoint), say), stamped
    /// with the wildcard demux key — the receiving socket is its own
    /// demux.
    ///
    /// # Errors
    ///
    /// [`RtError::UnknownEndpoint`] for a dead or out-of-range id.
    pub fn add_external_peer(
        &mut self,
        id: EndpointId,
        peer: NodeId,
        addr: SocketAddr,
    ) -> Result<(), RtError> {
        self.entry_mut(id)?.routes.insert(
            peer,
            MuxRoute {
                addr,
                endpoint: ANY_ENDPOINT,
                incarnation: ANY_INCARNATION,
            },
        );
        Ok(())
    }

    /// Replaces endpoint `id`'s group-membership table (index = group id).
    ///
    /// # Errors
    ///
    /// [`RtError::UnknownEndpoint`] for a dead or out-of-range id.
    pub fn set_groups(&mut self, id: EndpointId, groups: Vec<Vec<NodeId>>) -> Result<(), RtError> {
        *self.entry_mut(id)?.host.groups_mut() = groups;
        Ok(())
    }

    /// Wires every endpoint to every other (routes both ways) and installs
    /// group 0 containing all nodes on each — the all-to-all session shape
    /// the paper's scenarios use.
    pub fn connect_full_mesh(&mut self) -> Result<(), RtError> {
        let workers = self.cfg.workers.max(1);
        let mut routes = Vec::with_capacity(self.entries.len());
        let mut all_nodes = Vec::with_capacity(self.entries.len());
        for (index, cell) in self.entries.iter().enumerate() {
            if let Some(entry) = cell {
                routes.push((
                    entry.node,
                    MuxRoute {
                        addr: self.addrs[index % workers][entry.socket],
                        endpoint: index as u32,
                        incarnation: entry.incarnation,
                    },
                ));
                all_nodes.push(entry.node);
            }
        }
        for cell in self.entries.iter_mut().flatten() {
            for &(node, route) in &routes {
                if node != cell.node {
                    cell.routes.insert(node, route);
                }
            }
            *cell.host.groups_mut() = vec![all_nodes.clone()];
        }
        Ok(())
    }

    /// Runs every endpoint's event loop for `wall` of real time across the
    /// configured worker threads, exactly as
    /// [`Cluster::run_for`](crate::Cluster::run_for) does — but each
    /// worker multiplexes its whole shard over its socket pool with
    /// batched syscalls instead of visiting per-endpoint sockets.
    ///
    /// # Errors
    ///
    /// [`RtError::ShardPanicked`] when a worker thread panicked (that
    /// shard's endpoints and sockets are lost); otherwise the first hard
    /// socket error any worker hit.
    pub fn run_for(&mut self, wall: Duration) -> Result<(), RtError> {
        if self.entries.is_empty() {
            return Ok(());
        }
        let workers = self.cfg.workers.max(1);
        let batch = self.cfg.batch_size.max(1);
        let clock = self.cfg.clock;
        let deadline = clock.now() + Span::from_nanos(wall.as_nanos() as u64);

        let mut shards: Vec<Vec<(usize, MuxEntry)>> = (0..workers).map(|_| Vec::new()).collect();
        for (index, cell) in self.entries.iter_mut().enumerate() {
            if let Some(entry) = cell.take() {
                shards[index % workers].push((index, entry));
            }
        }
        self.wheels.resize_with(workers, TimerWheel::new);
        let wheels: Vec<TimerWheel> = self.wheels.drain(..).collect();
        let socket_pools: Vec<Vec<UdpSocket>> = std::mem::take(&mut self.sockets);

        let mut first_error: Option<RtError> = None;
        let mut panicked: Option<usize> = None;
        self.wheels.resize_with(workers, TimerWheel::new);
        self.sockets = (0..workers).map(|_| Vec::new()).collect();
        let joined: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .zip(wheels)
                .zip(socket_pools)
                .map(|((shard, wheel), pool)| {
                    scope.spawn(move || {
                        run_mux_shard(shard, pool, wheel, clock, deadline, workers, batch)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });
        for (shard_index, outcome) in joined.into_iter().enumerate() {
            match outcome {
                Ok((shard, pool, wheel, counters, error)) => {
                    for (index, entry) in shard {
                        self.entries[index] = Some(entry);
                    }
                    self.sockets[shard_index] = pool;
                    self.wheels[shard_index] = wheel;
                    self.worker.absorb(counters);
                    if first_error.is_none() {
                        first_error = error;
                    }
                }
                // The panicked shard's sockets died with the thread; its
                // endpoints stay `None` and its socket pool stays empty.
                Err(_) => panicked = panicked.or(Some(shard_index)),
            }
        }
        if let Some(shard) = panicked {
            return Err(RtError::ShardPanicked { shard });
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// The report of endpoint `id`, if it is still live.
    pub fn report(&self, id: EndpointId) -> Option<&EndpointReport> {
        self.entries.get(id.0)?.as_ref().map(|e| &e.report)
    }

    /// Iterates `(id, node, report)` over every live endpoint, in add
    /// order.
    pub fn reports(&self) -> impl Iterator<Item = (EndpointId, NodeId, &EndpointReport)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, cell)| cell.as_ref().map(|e| (EndpointId(i), e.node, &e.report)))
    }

    /// Downcasts endpoint `id`'s core back to its concrete type for
    /// post-run inspection (`None` on a dead id or type mismatch).
    pub fn core<C: ProtocolCore>(&self, id: EndpointId) -> Option<&C> {
        self.entries
            .get(id.0)?
            .as_ref()?
            .core
            .as_any()
            .downcast_ref::<C>()
    }

    /// Mutable variant of [`core`](MuxCluster::core).
    pub fn core_mut<C: ProtocolCore>(&mut self, id: EndpointId) -> Option<&mut C> {
        self.entries
            .get_mut(id.0)?
            .as_mut()?
            .core
            .as_any_mut()
            .downcast_mut::<C>()
    }

    /// Aggregate counters across every live endpoint plus the workers'
    /// shard-level drop/idle accounting.
    pub fn stats(&self) -> ClusterStats {
        let mut stats = ClusterStats::default();
        for (_, _, report) in self.reports() {
            stats.endpoints += 1;
            stats.delivered += report.delivered.len() as u64;
            stats.recovered += report.recovered_count();
            stats.datagrams_sent += report.datagrams_sent;
            stats.datagrams_received += report.datagrams_received;
            stats.decode_errors += report.decode_errors;
            stats.unroutable += report.unroutable;
            stats.backpressure_stalls += report.backpressure_stalls;
            stats.backpressure_drops += report.backpressure_drops;
            stats.soft_io_errors += report.soft_io_errors;
            stats.stale_drops += report.stale_datagrams;
        }
        stats.busy_polls = self.worker.busy_polls;
        stats.header_drops = self.worker.header_drops;
        stats.unknown_endpoint_drops = self.worker.unknown_endpoint_drops;
        stats
    }

    /// Folds per-endpoint counters (`<protocol>/node<i>/<name>`) and the
    /// [`stats`](MuxCluster::stats) aggregates (`<protocol>/cluster/<name>`)
    /// into `registry`, matching [`Cluster::fold_metrics`](crate::Cluster::fold_metrics).
    pub fn fold_metrics(&self, protocol: &str, registry: &mut MetricsRegistry) {
        for (_, node, report) in self.reports() {
            let key = |name: &str| MetricsRegistry::node_key(protocol, node, name);
            registry.add(key("delivered"), report.delivered.len() as u64);
            registry.add(key("recovered"), report.recovered_count());
            registry.add(key("datagrams_sent"), report.datagrams_sent);
            registry.add(key("datagrams_received"), report.datagrams_received);
            registry.add(key("decode_errors"), report.decode_errors);
            registry.add(key("unroutable"), report.unroutable);
            registry.add(key("backpressure_stalls"), report.backpressure_stalls);
            registry.add(key("backpressure_drops"), report.backpressure_drops);
            registry.add(key("stale_datagrams"), report.stale_datagrams);
        }
        self.stats().fold_into(protocol, registry);
    }

    fn entry(&self, id: EndpointId) -> Result<&MuxEntry, RtError> {
        self.entries
            .get(id.0)
            .and_then(Option::as_ref)
            .ok_or(RtError::UnknownEndpoint { index: id.0 })
    }

    fn entry_mut(&mut self, id: EndpointId) -> Result<&mut MuxEntry, RtError> {
        self.entries
            .get_mut(id.0)
            .and_then(Option::as_mut)
            .ok_or(RtError::UnknownEndpoint { index: id.0 })
    }
}

/// Scratch buffers a worker reuses across every step of a window.
struct Scratch {
    effects: Vec<Effect>,
    body: Vec<u8>,
    /// Retired datagram buffers, recycled to keep the hot path
    /// allocation-free once warmed up.
    pool: Vec<Vec<u8>>,
}

/// Everything a worker hands back when its window ends: the shard's
/// entries, its socket pool, the timer wheel, the worker counters, and
/// the first hard error (if any).
type ShardRun = (
    Vec<(usize, MuxEntry)>,
    Vec<UdpSocket>,
    TimerWheel,
    WorkerCounters,
    Option<RtError>,
);

#[allow(clippy::too_many_arguments)]
fn run_mux_shard(
    mut shard: Vec<(usize, MuxEntry)>,
    sockets: Vec<UdpSocket>,
    mut wheel: TimerWheel,
    clock: MonotonicClock,
    deadline: TimePoint,
    workers: usize,
    batch: usize,
) -> ShardRun {
    let mut counters = WorkerCounters::default();
    let result = drive_mux_shard(
        &mut shard,
        &sockets,
        &mut wheel,
        clock,
        deadline,
        workers,
        batch,
        &mut counters,
    );
    (shard, sockets, wheel, counters, result.err())
}

/// Maps a global endpoint index to its position in this shard's entry
/// slice: entries are dealt out strided (`shard_index`, `shard_index +
/// workers`, …), so position is `global / workers` — verified against the
/// stored index so a stale or hostile key can never alias another entry.
fn local_pos(global: usize, shard: &[(usize, MuxEntry)], workers: usize) -> Option<usize> {
    let pos = global / workers;
    match shard.get(pos) {
        Some((index, _)) if *index == global => Some(pos),
        _ => None,
    }
}

#[allow(clippy::too_many_arguments)]
fn drive_mux_shard(
    shard: &mut [(usize, MuxEntry)],
    sockets: &[UdpSocket],
    wheel: &mut TimerWheel,
    clock: MonotonicClock,
    deadline: TimePoint,
    workers: usize,
    batch: usize,
    counters: &mut WorkerCounters,
) -> Result<(), RtError> {
    let mut poller = Poller::new().map_err(RtError::Io)?;
    for sock in sockets {
        poller.register(sock).map_err(RtError::Io)?;
    }
    let mut recv = RecvBatch::new(batch);
    let mut send = SendBatch::new(batch);
    let mut outboxes: Vec<VecDeque<OutMsg>> = (0..sockets.len()).map(|_| VecDeque::new()).collect();
    let mut scratch = Scratch {
        effects: Vec::new(),
        body: Vec::new(),
        pool: Vec::new(),
    };

    for (pos, (_, entry)) in shard.iter_mut().enumerate() {
        if !entry.started {
            entry.started = true;
            let now = clock.now();
            step_entry(
                entry,
                pos,
                Input::Start,
                now,
                wheel,
                &mut outboxes,
                &mut scratch,
            );
        }
    }
    loop {
        // Fire everything due across the shard, in global deadline order.
        while let Some(fire) = wheel.pop_due(clock.now()) {
            let index = (fire.owner >> 8) as usize;
            let Some(pos) = local_pos(index, shard, workers) else {
                continue;
            };
            if fire.owner != shard[pos].1.wheel_owner {
                continue; // armed by a dead incarnation: drop as stale
            }
            let now = clock.now();
            step_entry(
                &mut shard[pos].1,
                pos,
                Input::TimerFired {
                    token: fire.token,
                    tag: fire.tag,
                },
                now,
                wheel,
                &mut outboxes,
                &mut scratch,
            );
        }
        if clock.now() >= deadline {
            break;
        }
        let mut progressed = false;
        // Flush each socket's coalesced outbox in send batches.
        for (si, sock) in sockets.iter().enumerate() {
            progressed |=
                flush_socket(sock, &mut outboxes[si], &mut send, shard, &mut scratch.pool)? > 0;
        }
        // Drain each socket in receive batches, demuxing as we go.
        for sock in sockets {
            loop {
                let n = recv.recv(sock).map_err(RtError::Recv)?;
                if n == 0 {
                    break;
                }
                progressed = true;
                let now = clock.now();
                demux_batch(
                    &recv,
                    shard,
                    workers,
                    now,
                    wheel,
                    &mut outboxes,
                    &mut scratch,
                    counters,
                );
                if n < batch {
                    break; // short batch: the queue is (momentarily) dry
                }
            }
        }
        if recv.soft_errors > 0 {
            // ICMP noise read off a shared socket belongs to no single
            // endpoint; fold it into the first live entry's report so the
            // aggregate stat still carries it.
            if let Some((_, entry)) = shard.first_mut() {
                entry.report.soft_io_errors += recv.soft_errors;
            }
            recv.soft_errors = 0;
        }
        if !progressed {
            counters.busy_polls += 1;
            let next = wheel
                .next_deadline()
                .unwrap_or(TimePoint::MAX)
                .min(deadline);
            let mut wait = Duration::from_nanos(next.saturating_since(clock.now()).as_nanos());
            if outboxes.iter().any(|o| !o.is_empty()) {
                // The poller only watches readability; parked sends need
                // a bounded retry cadence, not a timer-length nap.
                wait = wait.min(Duration::from_millis(1));
            }
            if !wait.is_zero() {
                poller.wait(wait).map_err(RtError::Io)?;
            }
        }
    }
    for (si, sock) in sockets.iter().enumerate() {
        flush_socket(sock, &mut outboxes[si], &mut send, shard, &mut scratch.pool)?;
    }
    Ok(())
}

/// Steps one entry's core and discharges its effects: sends are framed
/// with the destination's demux key and coalesced into the worker's
/// per-socket outbox; timers go to the shard wheel; deliveries and traces
/// to the entry's report.
fn step_entry(
    entry: &mut MuxEntry,
    pos: usize,
    input: Input<'_>,
    now: TimePoint,
    wheel: &mut TimerWheel,
    outboxes: &mut [VecDeque<OutMsg>],
    scratch: &mut Scratch,
) {
    let MuxEntry {
        node,
        host,
        core,
        routes,
        report,
        wheel_owner: owner,
        socket,
        ..
    } = entry;
    let mut effects = std::mem::take(&mut scratch.effects);
    host.step_into(core.as_core(), now, input, &mut effects);
    for effect in effects.drain(..) {
        match effect {
            Effect::Send { dst, msg, .. } => {
                scratch.body.clear();
                msg.encode(&mut scratch.body);
                let outbox = &mut outboxes[*socket];
                let body = &scratch.body;
                let pool = &mut scratch.pool;
                let mut queue_one = |peer: NodeId| {
                    let Some(route) = routes.get(&peer) else {
                        report.unroutable += 1;
                        return;
                    };
                    // Coalesce: if the newest queued datagram is for the
                    // same destination and key and has room, append this
                    // message as another body entry — per-datagram costs
                    // then amortize over the whole burst.
                    if let Some(back) = outbox.back_mut() {
                        // `from` must match too: the header carries one
                        // `src`, so only one sender's messages may share
                        // a frame.
                        if back.from == pos
                            && back.addr == route.addr
                            && back.endpoint == route.endpoint
                            && back.incarnation == route.incarnation
                            && back.buf.len() + 2 + body.len() <= COALESCE_BYTES
                        {
                            FrameHeader::encode_body_entry(&mut back.buf, body);
                            return;
                        }
                    }
                    if outbox.len() >= OUTBOX_MAX {
                        report.backpressure_drops += 1;
                        return;
                    }
                    let mut buf = pool.pop().unwrap_or_default();
                    buf.clear();
                    FrameHeader {
                        src: *node,
                        dst_endpoint: route.endpoint,
                        dst_incarnation: route.incarnation,
                    }
                    .encode(&mut buf);
                    FrameHeader::encode_body_entry(&mut buf, body);
                    outbox.push_back(OutMsg {
                        addr: route.addr,
                        endpoint: route.endpoint,
                        incarnation: route.incarnation,
                        buf,
                        from: pos,
                    });
                };
                match dst {
                    Destination::Node(peer) => queue_one(peer),
                    Destination::Group(group) => {
                        if let Some(members) = host.groups_mut().get(group.index()) {
                            for &member in members {
                                if member != *node {
                                    queue_one(member);
                                }
                            }
                        }
                    }
                }
            }
            Effect::SetTimer { token, delay, tag } => {
                wheel.arm(now + delay, *owner, token, tag);
            }
            Effect::CancelTimer { token } => wheel.cancel(*owner, token),
            Effect::Deliver {
                seq,
                published_at,
                recovered,
            } => report.delivered.push((seq, published_at, recovered)),
            Effect::Trace(event) => report.events.push(event),
        }
    }
    scratch.effects = effects;
}

/// Routes every datagram of a filled receive batch to its endpoint by
/// demux key, counting pre-demux failures in the worker counters and
/// post-demux failures in the resolved endpoint's report.
#[allow(clippy::too_many_arguments)]
fn demux_batch(
    recv: &RecvBatch,
    shard: &mut [(usize, MuxEntry)],
    workers: usize,
    now: TimePoint,
    wheel: &mut TimerWheel,
    outboxes: &mut [VecDeque<OutMsg>],
    scratch: &mut Scratch,
    counters: &mut WorkerCounters,
) {
    for datagram in recv.datagrams() {
        let Some((header, body)) = FrameHeader::decode(datagram) else {
            counters.header_drops += 1;
            continue;
        };
        // A wildcard key cannot be routed on a shared socket: only
        // per-socket receivers accept `ANY_ENDPOINT`.
        if header.dst_endpoint == ANY_ENDPOINT {
            counters.unknown_endpoint_drops += 1;
            continue;
        }
        let Some(pos) = local_pos(header.dst_endpoint as usize, shard, workers) else {
            counters.unknown_endpoint_drops += 1;
            continue;
        };
        let entry = &mut shard[pos].1;
        entry.report.datagrams_received += 1;
        if header.dst_incarnation != ANY_INCARNATION && header.dst_incarnation != entry.incarnation
        {
            entry.report.stale_datagrams += 1;
            continue;
        }
        // Walk the frame's coalesced body entries; each one steps the core
        // independently and damage is counted where it is found.
        let mut body_entries = FrameBody::new(body);
        for bytes in &mut body_entries {
            let Some(msg) = WireMsg::decode(bytes) else {
                entry.report.decode_errors += 1;
                continue;
            };
            step_entry(
                entry,
                pos,
                Input::PacketIn {
                    src: header.src,
                    msg: &msg,
                },
                now,
                wheel,
                outboxes,
                scratch,
            );
        }
        if body_entries.malformed() {
            entry.report.decode_errors += 1;
        }
    }
}

/// Flushes one socket's outbox in `sendmmsg` batches until it empties or
/// the socket flow-blocks. Returns the number of datagrams sent; retired
/// buffers return to the pool.
fn flush_socket(
    sock: &UdpSocket,
    outbox: &mut VecDeque<OutMsg>,
    send: &mut SendBatch,
    shard: &mut [(usize, MuxEntry)],
    pool: &mut Vec<Vec<u8>>,
) -> Result<usize, RtError> {
    let mut total = 0;
    while !outbox.is_empty() {
        let n = outbox.len().min(send.capacity());
        let msgs: Vec<(SocketAddr, &[u8])> = outbox
            .iter()
            .take(n)
            .map(|m| (m.addr, m.buf.as_slice()))
            .collect();
        match send.send(sock, &msgs) {
            Ok(0) => {
                // Flow-blocked: charge a stall to the stuck message's
                // sender and let the idle branch pace the retry.
                if let Some(front) = outbox.front() {
                    shard[front.from].1.report.backpressure_stalls += 1;
                }
                break;
            }
            Ok(sent) => {
                drop(msgs);
                for _ in 0..sent {
                    let msg = outbox.pop_front().expect("sent ≤ queued");
                    shard[msg.from].1.report.datagrams_sent += 1;
                    pool.push(msg.buf);
                }
                total += sent;
                if sent < n {
                    break; // partial batch: the socket is filling up
                }
            }
            Err(e) if soft_io_error(&e) => {
                drop(msgs);
                // The error names the first unsent message: drop it so
                // the batch makes progress past the unreachable peer.
                if let Some(msg) = outbox.pop_front() {
                    shard[msg.from].1.report.soft_io_errors += 1;
                    pool.push(msg.buf);
                }
            }
            Err(e) => return Err(RtError::Send(e)),
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_proto::{Env, GroupId, ProcessingCost};
    use std::collections::BTreeSet;

    /// Publishes `total` sequenced messages into group 0 on a short timer.
    #[derive(Debug)]
    struct Beacon {
        next: u64,
        total: u64,
    }

    impl ProtocolCore for Beacon {
        fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
            match input {
                Input::Start | Input::TimerFired { .. } if self.next < self.total => {
                    env.send(
                        GroupId(0),
                        64,
                        1,
                        ProcessingCost::FREE,
                        WireMsg::Data(adamant_proto::wire::DataMsg {
                            seq: self.next,
                            published_at: env.now(),
                            retransmission: false,
                        }),
                    );
                    self.next += 1;
                    env.set_timer(Span::from_millis(1), 1);
                }
                _ => {}
            }
        }
    }

    /// Delivers every data message it hears.
    #[derive(Debug, Default)]
    struct Listener;

    impl ProtocolCore for Listener {
        fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
            if let Input::PacketIn {
                msg: WireMsg::Data(data),
                ..
            } = input
            {
                env.deliver(data.seq, data.published_at, false);
            }
        }
    }

    fn small_mux(workers: usize, seed: u64) -> MuxCluster {
        MuxCluster::bind("127.0.0.1:0", MuxConfig::new(workers).with_seed(seed)).unwrap()
    }

    #[test]
    fn mux_cluster_runs_a_beacon_session_across_workers() {
        let mut cluster = small_mux(3, 7);
        let tx = cluster
            .add_endpoint(NodeId(0), Beacon { next: 0, total: 25 })
            .unwrap();
        let mut listeners = Vec::new();
        for node in 1..8u32 {
            listeners.push(cluster.add_endpoint(NodeId(node), Listener).unwrap());
        }
        cluster.connect_full_mesh().unwrap();
        cluster.run_for(Duration::from_millis(150)).unwrap();
        assert_eq!(cluster.core::<Beacon>(tx).unwrap().next, 25);
        let want: BTreeSet<u64> = (0..25).collect();
        for &id in &listeners {
            assert_eq!(cluster.report(id).unwrap().delivered_seqs(), want);
        }
        let stats = cluster.stats();
        assert_eq!(stats.endpoints, 8);
        assert_eq!(stats.delivered, 25 * 7);
        assert_eq!(stats.decode_errors, 0);
        assert_eq!(stats.unknown_endpoint_drops, 0);
        assert_eq!(stats.header_drops, 0);
        assert_eq!(stats.stale_drops, 0);
    }

    #[test]
    fn more_endpoints_than_sockets_still_all_deliver() {
        // 40 endpoints over 2 workers × 2 sockets: at least 10 endpoints
        // share every socket, so delivery proves the demux key works.
        let cfg = MuxConfig::new(2)
            .with_sockets_per_worker(2)
            .with_batch_size(4)
            .with_seed(9);
        let mut cluster = MuxCluster::bind("127.0.0.1:0", cfg).unwrap();
        let tx = cluster
            .add_endpoint(NodeId(0), Beacon { next: 0, total: 10 })
            .unwrap();
        let mut rx = Vec::new();
        for node in 1..40u32 {
            rx.push(cluster.add_endpoint(NodeId(node), Listener).unwrap());
        }
        cluster.connect_full_mesh().unwrap();
        cluster.run_for(Duration::from_millis(200)).unwrap();
        assert_eq!(cluster.core::<Beacon>(tx).unwrap().next, 10);
        let want: BTreeSet<u64> = (0..10).collect();
        for &id in &rx {
            assert_eq!(cluster.report(id).unwrap().delivered_seqs(), want);
        }
    }

    #[test]
    fn unknown_endpoint_and_truncated_headers_are_typed_drops() {
        let mut cluster = small_mux(2, 3);
        let id = cluster.add_endpoint(NodeId(0), Listener).unwrap();
        let addr = cluster.endpoint_addr(id).unwrap();
        let probe = UdpSocket::bind("127.0.0.1:0").unwrap();

        let msg = WireMsg::Fin(adamant_proto::wire::FinMsg { total: 1 });
        // Demux key naming an endpoint that does not exist.
        let mut unknown = Vec::new();
        FrameHeader {
            src: NodeId(9),
            dst_endpoint: 999,
            dst_incarnation: ANY_INCARNATION,
        }
        .encode(&mut unknown);
        FrameHeader::encode_body_entry(&mut unknown, &msg.to_bytes());
        probe.send_to(&unknown, addr).unwrap();
        // Wildcard key: unroutable on a shared socket.
        let mut wildcard = Vec::new();
        FrameHeader::broadcast(NodeId(9)).encode(&mut wildcard);
        FrameHeader::encode_body_entry(&mut wildcard, &msg.to_bytes());
        probe.send_to(&wildcard, addr).unwrap();
        // Truncated header.
        probe.send_to(&[2, 1, 0], addr).unwrap();
        // Wrong wire version.
        probe.send_to(&[1, 0, 0, 0, 0], addr).unwrap();

        cluster.run_for(Duration::from_millis(50)).unwrap();
        let stats = cluster.stats();
        assert_eq!(stats.unknown_endpoint_drops, 2);
        assert_eq!(stats.header_drops, 2);
        assert_eq!(stats.delivered, 0);
        // Pre-demux failures are attributed to no endpoint.
        assert_eq!(stats.datagrams_received, 0);
    }

    #[test]
    fn cross_incarnation_datagrams_are_stale_drops_after_restart() {
        let mut cluster = small_mux(1, 5);
        let id = cluster.add_endpoint(NodeId(0), Listener).unwrap();
        let addr = cluster.endpoint_addr(id).unwrap();
        cluster.restart_endpoint(id, Listener).unwrap();
        assert_eq!(cluster.incarnation(id).unwrap(), 1);

        let probe = UdpSocket::bind("127.0.0.1:0").unwrap();
        let msg = WireMsg::Data(adamant_proto::wire::DataMsg {
            seq: 4,
            published_at: TimePoint::from_nanos(0),
            retransmission: false,
        });
        // Stamped for incarnation 0: was in flight across the restart.
        let mut stale = Vec::new();
        FrameHeader {
            src: NodeId(9),
            dst_endpoint: 0,
            dst_incarnation: 0,
        }
        .encode(&mut stale);
        FrameHeader::encode_body_entry(&mut stale, &msg.to_bytes());
        probe.send_to(&stale, addr).unwrap();
        // Stamped for the live incarnation: delivered.
        let mut fresh = Vec::new();
        FrameHeader {
            src: NodeId(9),
            dst_endpoint: 0,
            dst_incarnation: 1,
        }
        .encode(&mut fresh);
        FrameHeader::encode_body_entry(&mut fresh, &msg.to_bytes());
        probe.send_to(&fresh, addr).unwrap();

        cluster.run_for(Duration::from_millis(50)).unwrap();
        let stats = cluster.stats();
        assert_eq!(stats.stale_drops, 1);
        assert_eq!(stats.delivered, 1);
        assert_eq!(stats.datagrams_received, 2);
    }

    #[test]
    fn restart_restamps_peer_routes_so_traffic_resumes() {
        let mut cluster = small_mux(2, 11);
        let tx = cluster
            .add_endpoint(NodeId(0), Beacon { next: 0, total: 10 })
            .unwrap();
        let rx = cluster.add_endpoint(NodeId(1), Listener).unwrap();
        cluster.connect_full_mesh().unwrap();
        cluster.run_for(Duration::from_millis(80)).unwrap();
        let before = cluster.report(rx).unwrap().delivered.len();
        assert_eq!(before, 10);

        // Restart the listener, then publish a second stream from a
        // restarted sender. The sender's route to the listener was
        // re-stamped with incarnation 1, so the new core hears everything
        // — no stale drops on live traffic.
        cluster.restart_endpoint(rx, Listener).unwrap();
        cluster
            .restart_endpoint(
                tx,
                Beacon {
                    next: 10,
                    total: 20,
                },
            )
            .unwrap();
        cluster.run_for(Duration::from_millis(80)).unwrap();
        let report = cluster.report(rx).unwrap();
        assert_eq!(report.delivered.len() - before, 10);
        assert_eq!(report.stale_datagrams, 0);
    }

    #[test]
    fn worker_panic_surfaces_as_shard_panicked_and_shard_is_lost() {
        #[derive(Debug)]
        struct Bomb;
        impl ProtocolCore for Bomb {
            fn step(&mut self, input: Input<'_>, _env: &mut Env<'_>) {
                if matches!(input, Input::Start) {
                    panic!("boom");
                }
            }
        }
        let mut cluster = small_mux(2, 1);
        let survivor = cluster.add_endpoint(NodeId(0), Listener).unwrap();
        let bomb = cluster.add_endpoint(NodeId(1), Bomb).unwrap();
        let err = cluster.run_for(Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, RtError::ShardPanicked { shard: 1 }));
        assert!(cluster.report(survivor).is_some());
        assert!(cluster.report(bomb).is_none());
        // The lost shard's sockets died with its worker: adding another
        // endpoint to that shard is a typed error, not a crash.
        cluster.add_endpoint(NodeId(2), Listener).unwrap();
        let err = cluster.add_endpoint(NodeId(3), Listener).unwrap_err();
        assert!(matches!(err, RtError::ShardPanicked { shard: 1 }));
    }

    #[test]
    fn mux_metrics_fold_under_node_and_cluster_keys() {
        let mut cluster = small_mux(2, 9);
        cluster
            .add_endpoint(NodeId(0), Beacon { next: 0, total: 5 })
            .unwrap();
        cluster.add_endpoint(NodeId(1), Listener).unwrap();
        cluster.connect_full_mesh().unwrap();
        cluster.run_for(Duration::from_millis(60)).unwrap();
        let mut registry = MetricsRegistry::new();
        cluster.fold_metrics("udp", &mut registry);
        assert_eq!(registry.counter("udp/node1/delivered"), 5);
        assert_eq!(registry.counter("udp/cluster/delivered"), 5);
        assert_eq!(registry.counter("udp/cluster/endpoints"), 2);
        assert_eq!(registry.counter("udp/cluster/unknown_endpoint_drops"), 0);
    }

    /// The mux worker must also park while idle (the same satellite
    /// guarantee the per-socket cluster test pins, Linux-gated for the
    /// same reason).
    #[cfg(target_os = "linux")]
    #[test]
    fn idle_mux_cluster_parks_instead_of_busy_spinning() {
        let mut cluster = small_mux(4, 2);
        for node in 0..64u32 {
            cluster.add_endpoint(NodeId(node), Listener).unwrap();
        }
        cluster.run_for(Duration::from_millis(300)).unwrap();
        let stats = cluster.stats();
        assert!(
            stats.busy_polls <= 32,
            "idle mux cluster busy-spun: {} no-progress iterations",
            stats.busy_polls
        );
    }
}

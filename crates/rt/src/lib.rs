//! # adamant-rt
//!
//! The real-socket runtime for the sans-I/O protocol cores in
//! `adamant-proto`: where `adamant-netsim` drives a [`ProtocolCore`]
//! inside the deterministic simulator, this crate drives the *same* core
//! over real UDP sockets with a monotonic clock.
//!
//! Two drivers, one stepping engine:
//!
//! * [`Endpoint`] — one socket, one core, one thread; the caller keeps the
//!   core and lends it per [`run_for`](Endpoint::run_for) window.
//! * [`Cluster`] — many cores in one process, sharded across N worker
//!   threads; each worker owns its shard's sockets plus one shared timer
//!   wheel (the same hierarchical calendar queue the simulator schedules
//!   through), batches socket reads/writes per poll iteration, and applies
//!   bounded-outbox backpressure when a core's effect stream outruns its
//!   socket.
//!
//! Every fallible public function returns [`RtError`] (never a bare
//! [`std::io::Error`]). Construction follows one idiom throughout:
//! consuming `with_*` builders for pre-bind configuration, `set_*`/`add_*`
//! mutators for post-bind state.
//!
//! [`ProtocolCore`]: adamant_proto::ProtocolCore

// `deny` instead of `forbid`: the one sanctioned exception is the FFI
// shim in `poller::sys` (epoll + recvmmsg/sendmmsg bindings), which opts
// in explicitly. Everything else in the crate remains safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod cluster;
mod endpoint;
mod error;
mod mux;
mod poller;

pub use clock::MonotonicClock;
pub use cluster::{Cluster, ClusterConfig, ClusterStats, EndpointId};
pub use endpoint::{Endpoint, EndpointReport, RtConfig};
pub use error::RtError;
pub use mux::{MuxCluster, MuxConfig};

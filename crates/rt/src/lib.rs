//! # adamant-rt
//!
//! The real-socket runtime for the sans-I/O protocol cores in
//! `adamant-proto`: where `adamant-netsim` drives a [`ProtocolCore`]
//! inside the deterministic simulator, this crate drives the *same* core
//! over real UDP sockets with a monotonic clock — one socket and one
//! event-loop thread per endpoint, timers kept in a binary heap, wire
//! messages carried as the byte encoding from `adamant_proto::wire`.
//!
//! [`ProtocolCore`]: adamant_proto::ProtocolCore

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod endpoint;

pub use clock::MonotonicClock;
pub use endpoint::{Endpoint, EndpointReport, RtConfig};

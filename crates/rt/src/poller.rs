//! Readiness notification and batched datagram I/O for the runtime's
//! worker loops.
//!
//! Three building blocks, each with a Linux fast path and a portable
//! fallback so the crate builds everywhere the standard library does:
//!
//! * [`Poller`] — an `epoll` instance the worker parks in when it has no
//!   due timers and no pending I/O, with the timeout derived from the
//!   next [`TimerWheel`](adamant_proto::TimerWheel) deadline. Idle
//!   workers therefore consume ~0 CPU instead of spinning a short-sleep
//!   loop. Off Linux, `wait` degrades to a capped `thread::sleep` — the
//!   exact pre-poller behaviour.
//! * [`RecvBatch`] — drains a socket with one `recvmmsg` call per batch
//!   instead of one `recv_from` syscall per datagram.
//! * [`SendBatch`] — flushes a worker's coalesced outbox with one
//!   `sendmmsg` call per batch instead of one `send_to` per datagram.
//!
//! All `unsafe` in this crate lives in the [`sys`] module below: direct
//! `extern "C"` bindings against libc symbols (the workspace carries no
//! external crates, so there is no `libc`/`mio` to lean on). Every
//! syscall result is translated to `io::Error` immediately; nothing
//! outside this file sees a raw return code.
//!
//! ## Timeout precision
//!
//! `epoll_wait` has millisecond granularity while protocol timers are
//! armed at microsecond precision, so [`Poller::wait`] is hybrid: waits
//! shorter than one millisecond use `thread::sleep` (high-resolution,
//! cannot observe I/O readiness — same as the legacy loop), longer waits
//! use `epoll_wait` with the timeout floored to whole milliseconds. A
//! floored wait wakes slightly early, the worker loop re-evaluates its
//! deadlines, and the sub-millisecond remainder is slept exactly.

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::time::Duration;

/// Below this, `Poller::wait` sleeps instead of polling: `epoll_wait`
/// cannot express sub-millisecond timeouts.
const PRECISE_WAIT: Duration = Duration::from_millis(1);

/// Cap on the fallback (non-epoll) sleep, preserving the legacy loop's
/// worst-case reaction latency to datagrams that arrive mid-sleep.
const FALLBACK_SLEEP: Duration = Duration::from_millis(1);

/// Largest UDP payload a batch slot accepts; datagrams beyond this are
/// truncated by the kernel (the codec then rejects the frame).
pub(crate) const DATAGRAM_BUF_BYTES: usize = 65536;

#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod sys {
    //! Direct libc bindings. Struct layouts mirror glibc on Linux; the
    //! `epoll_event` packing is x86_64-specific (other arches use the
    //! natural C layout).

    use std::io;
    use std::net::SocketAddr;

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLLIN: u32 = 0x1;

    pub const AF_INET: u16 = 2;
    pub const AF_INET6: u16 = 10;

    pub const SOL_SOCKET: i32 = 1;
    pub const SO_SNDBUF: i32 = 7;
    pub const SO_RCVBUF: i32 = 8;

    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct IoVec {
        pub base: *mut u8,
        pub len: usize,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct MsgHdr {
        pub name: *mut u8,
        pub namelen: u32,
        pub iov: *mut IoVec,
        pub iovlen: usize,
        pub control: *mut u8,
        pub controllen: usize,
        pub flags: i32,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct MMsgHdr {
        pub hdr: MsgHdr,
        pub len: u32,
    }

    /// Space for a `sockaddr_in` (16 bytes) or `sockaddr_in6` (28
    /// bytes), 8-aligned like the kernel expects.
    #[repr(C, align(8))]
    #[derive(Clone, Copy)]
    pub struct SockAddrStorage {
        pub data: [u8; 28],
        pub len: u32,
    }

    impl SockAddrStorage {
        pub const ZERO: SockAddrStorage = SockAddrStorage {
            data: [0; 28],
            len: 0,
        };

        /// Encodes `addr` into kernel `sockaddr` layout.
        pub fn encode(addr: &SocketAddr) -> SockAddrStorage {
            let mut out = SockAddrStorage::ZERO;
            match addr {
                SocketAddr::V4(v4) => {
                    out.data[0..2].copy_from_slice(&AF_INET.to_ne_bytes());
                    out.data[2..4].copy_from_slice(&v4.port().to_be_bytes());
                    out.data[4..8].copy_from_slice(&v4.ip().octets());
                    out.len = 16;
                }
                SocketAddr::V6(v6) => {
                    out.data[0..2].copy_from_slice(&AF_INET6.to_ne_bytes());
                    out.data[2..4].copy_from_slice(&v6.port().to_be_bytes());
                    out.data[4..8].copy_from_slice(&v6.flowinfo().to_be_bytes());
                    out.data[8..24].copy_from_slice(&v6.ip().octets());
                    out.data[24..28].copy_from_slice(&v6.scope_id().to_ne_bytes());
                    out.len = 28;
                }
            }
            out
        }
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn recvmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32, timeout: *mut u8) -> i32;
        fn sendmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const u8, len: u32) -> i32;
    }

    fn check(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    pub fn epoll_create() -> io::Result<i32> {
        // SAFETY: epoll_create1 takes no pointers.
        check(unsafe { epoll_create1(EPOLL_CLOEXEC) })
    }

    pub fn epoll_add(epfd: i32, fd: i32) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: EPOLLIN,
            data: fd as u64,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        check(unsafe { epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &mut ev) }).map(drop)
    }

    pub fn epoll_poll(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `events` is a live, writable slice; maxevents matches
        // its length (clamped to at least 1 by the caller).
        let n = check(unsafe {
            epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms)
        })?;
        Ok(n as usize)
    }

    pub fn close_fd(fd: i32) {
        // SAFETY: the Poller owns this descriptor exclusively.
        unsafe { close(fd) };
    }

    pub fn recv_mmsg(fd: i32, msgvec: &mut [MMsgHdr]) -> io::Result<usize> {
        // SAFETY: every msghdr's iov/name pointers were populated from
        // live buffers owned by the caller for the duration of the call.
        let n = check(unsafe {
            recvmmsg(
                fd,
                msgvec.as_mut_ptr(),
                msgvec.len() as u32,
                0,
                std::ptr::null_mut(),
            )
        })?;
        Ok(n as usize)
    }

    pub fn send_mmsg(fd: i32, msgvec: &mut [MMsgHdr]) -> io::Result<usize> {
        // SAFETY: as for recv_mmsg — all pointers reference caller-owned
        // buffers that outlive the call.
        let n = check(unsafe { sendmmsg(fd, msgvec.as_mut_ptr(), msgvec.len() as u32, 0) })?;
        Ok(n as usize)
    }

    pub fn set_buf_size(fd: i32, name: i32, bytes: i32) -> io::Result<()> {
        let value = bytes.to_ne_bytes();
        // SAFETY: `value` is a live 4-byte int for the duration of the
        // call, which is the size SO_SNDBUF/SO_RCVBUF expect.
        check(unsafe { setsockopt(fd, SOL_SOCKET, name, value.as_ptr(), value.len() as u32) })
            .map(drop)
    }
}

#[cfg(target_os = "linux")]
use std::os::fd::AsRawFd;

/// Readiness poller a worker parks in while idle.
///
/// On Linux this is an `epoll` instance holding every socket the worker
/// owns; [`wait`](Poller::wait) blocks until a registered socket becomes
/// readable or the timeout elapses. Elsewhere it is a stub whose `wait`
/// sleeps (capped at 1 ms) — functionally the legacy short-sleep loop.
#[derive(Debug)]
pub(crate) struct Poller {
    #[cfg(target_os = "linux")]
    epfd: i32,
    registered: usize,
}

impl Poller {
    /// Creates an empty poller.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            #[cfg(target_os = "linux")]
            epfd: sys::epoll_create()?,
            registered: 0,
        })
    }

    /// Adds a socket to the interest set (read readiness). The socket
    /// must stay alive as long as the poller; deregistration happens
    /// implicitly when the socket closes.
    pub fn register(&mut self, sock: &UdpSocket) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        sys::epoll_add(self.epfd, sock.as_raw_fd())?;
        #[cfg(not(target_os = "linux"))]
        let _ = sock;
        self.registered += 1;
        Ok(())
    }

    /// Blocks until a registered socket is readable or `timeout` passes.
    /// Returns the number of ready sockets (0 on timeout). Sub-millisecond
    /// timeouts are slept rather than polled (see module docs); a wait
    /// interrupted by a signal reports 0 ready.
    pub fn wait(&mut self, timeout: Duration) -> io::Result<usize> {
        if timeout < PRECISE_WAIT || self.registered == 0 {
            if !timeout.is_zero() {
                std::thread::sleep(timeout.min(FALLBACK_SLEEP));
            }
            return Ok(0);
        }
        #[cfg(target_os = "linux")]
        {
            let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
            let mut events =
                vec![sys::EpollEvent { events: 0, data: 0 }; self.registered.clamp(1, 64)];
            match sys::epoll_poll(self.epfd, &mut events, ms) {
                Ok(n) => Ok(n),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
                Err(e) => Err(e),
            }
        }
        #[cfg(not(target_os = "linux"))]
        {
            std::thread::sleep(timeout.min(FALLBACK_SLEEP));
            Ok(0)
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        sys::close_fd(self.epfd);
    }
}

/// A reusable receive batch: one `recvmmsg` call fills up to `batch`
/// datagram slots. The portable fallback loops `recv_from` into the same
/// slots, so callers see identical semantics either way.
pub(crate) struct RecvBatch {
    bufs: Vec<Box<[u8]>>,
    lens: Vec<usize>,
    filled: usize,
    /// ICMP-unreachable noise absorbed while receiving (connection
    /// refused/reset); the caller folds this into its soft-error stat.
    pub soft_errors: u64,
}

impl RecvBatch {
    /// A batch of `batch` slots, each [`DATAGRAM_BUF_BYTES`] long.
    pub fn new(batch: usize) -> RecvBatch {
        let batch = batch.max(1);
        RecvBatch {
            bufs: (0..batch)
                .map(|_| vec![0u8; DATAGRAM_BUF_BYTES].into_boxed_slice())
                .collect(),
            lens: vec![0; batch],
            filled: 0,
            soft_errors: 0,
        }
    }

    /// Drains up to one batch of datagrams from `sock` (which must be
    /// non-blocking). `Ok(0)` means the socket had nothing pending; hard
    /// errors surface as `Err`, ICMP noise is counted and skipped.
    pub fn recv(&mut self, sock: &UdpSocket) -> io::Result<usize> {
        self.filled = 0;
        #[cfg(target_os = "linux")]
        {
            let mut iovs: Vec<sys::IoVec> = self
                .bufs
                .iter_mut()
                .map(|b| sys::IoVec {
                    base: b.as_mut_ptr(),
                    len: b.len(),
                })
                .collect();
            let mut hdrs: Vec<sys::MMsgHdr> = iovs
                .iter_mut()
                .map(|iov| sys::MMsgHdr {
                    hdr: sys::MsgHdr {
                        name: std::ptr::null_mut(),
                        namelen: 0,
                        iov,
                        iovlen: 1,
                        control: std::ptr::null_mut(),
                        controllen: 0,
                        flags: 0,
                    },
                    len: 0,
                })
                .collect();
            loop {
                match sys::recv_mmsg(sock.as_raw_fd(), &mut hdrs) {
                    Ok(n) => {
                        for (i, h) in hdrs[..n].iter().enumerate() {
                            self.lens[i] = h.len as usize;
                        }
                        self.filled = n;
                        return Ok(n);
                    }
                    Err(e) if would_block(&e) => return Ok(0),
                    Err(e) if soft_io_error(&e) => {
                        self.soft_errors += 1;
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        #[cfg(not(target_os = "linux"))]
        {
            while self.filled < self.bufs.len() {
                match sock.recv_from(&mut self.bufs[self.filled]) {
                    Ok((n, _)) => {
                        self.lens[self.filled] = n;
                        self.filled += 1;
                    }
                    Err(e) if would_block(&e) => break,
                    Err(e) if soft_io_error(&e) => self.soft_errors += 1,
                    Err(e) => return Err(e),
                }
            }
            Ok(self.filled)
        }
    }

    /// The datagrams the last [`recv`](RecvBatch::recv) produced.
    pub fn datagrams(&self) -> impl Iterator<Item = &[u8]> {
        self.bufs[..self.filled]
            .iter()
            .zip(&self.lens)
            .map(|(buf, &len)| &buf[..len])
    }
}

/// A reusable send batch: one `sendmmsg` call flushes up to its capacity
/// of `(destination, payload)` pairs from a worker's coalesced outbox.
pub(crate) struct SendBatch {
    capacity: usize,
    #[cfg(target_os = "linux")]
    addrs: Vec<sys::SockAddrStorage>,
    #[cfg(target_os = "linux")]
    iovs: Vec<sys::IoVec>,
    #[cfg(target_os = "linux")]
    hdrs: Vec<sys::MMsgHdr>,
}

impl SendBatch {
    /// A batch flushing at most `batch` datagrams per call.
    pub fn new(batch: usize) -> SendBatch {
        let capacity = batch.max(1);
        SendBatch {
            capacity,
            #[cfg(target_os = "linux")]
            addrs: vec![sys::SockAddrStorage::ZERO; capacity],
            #[cfg(target_os = "linux")]
            iovs: Vec::with_capacity(capacity),
            #[cfg(target_os = "linux")]
            hdrs: Vec::with_capacity(capacity),
        }
    }

    /// How many datagrams one call can flush.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sends the leading prefix of `msgs` (up to capacity) through
    /// `sock`, returning how many datagrams the kernel accepted.
    ///
    /// `Ok(0)` means the socket is flow-blocked — park and retry later.
    /// An `Err` always refers to the *first unsent* message, so a caller
    /// that drops that message and retries makes progress (this is how
    /// ICMP-unreachable noise is absorbed upstream).
    pub fn send(&mut self, sock: &UdpSocket, msgs: &[(SocketAddr, &[u8])]) -> io::Result<usize> {
        if msgs.is_empty() {
            return Ok(0);
        }
        let n = msgs.len().min(self.capacity);
        #[cfg(target_os = "linux")]
        {
            self.iovs.clear();
            self.hdrs.clear();
            for (i, (addr, payload)) in msgs[..n].iter().enumerate() {
                self.addrs[i] = sys::SockAddrStorage::encode(addr);
                self.iovs.push(sys::IoVec {
                    // sendmmsg never writes through the iov; the mut cast
                    // exists only because iovec is shared with recvmmsg.
                    base: payload.as_ptr() as *mut u8,
                    len: payload.len(),
                });
            }
            for i in 0..n {
                self.hdrs.push(sys::MMsgHdr {
                    hdr: sys::MsgHdr {
                        name: self.addrs[i].data.as_mut_ptr(),
                        namelen: self.addrs[i].len,
                        iov: &mut self.iovs[i],
                        iovlen: 1,
                        control: std::ptr::null_mut(),
                        controllen: 0,
                        flags: 0,
                    },
                    len: 0,
                });
            }
            match sys::send_mmsg(sock.as_raw_fd(), &mut self.hdrs) {
                Ok(sent) => Ok(sent),
                Err(e) if would_block(&e) => Ok(0),
                Err(e) => Err(e),
            }
        }
        #[cfg(not(target_os = "linux"))]
        {
            let mut sent = 0;
            for (addr, payload) in &msgs[..n] {
                match sock.send_to(payload, addr) {
                    Ok(_) => sent += 1,
                    Err(e) if would_block(&e) => break,
                    // Partial progress: report what went through; the
                    // error re-surfaces on the retry as message zero.
                    Err(_) if sent > 0 => break,
                    Err(e) => return Err(e),
                }
            }
            Ok(sent)
        }
    }
}

/// Grows `sock`'s kernel send and receive buffers to `bytes` (clamped by
/// `net.core.{r,w}mem_max` — the kernel silently caps, so this is
/// best-effort by construction). A shared socket absorbs whole bursts of
/// multiplexed traffic between drain passes; the ~208 KiB default drops
/// datagrams under exactly the coalesced load the mux runtime generates.
/// No-op off Linux.
pub(crate) fn set_socket_buffers(sock: &UdpSocket, bytes: usize) -> io::Result<()> {
    #[cfg(target_os = "linux")]
    {
        let bytes = bytes.min(i32::MAX as usize) as i32;
        sys::set_buf_size(sock.as_raw_fd(), sys::SO_RCVBUF, bytes)?;
        sys::set_buf_size(sock.as_raw_fd(), sys::SO_SNDBUF, bytes)?;
    }
    #[cfg(not(target_os = "linux"))]
    let _ = (sock, bytes);
    Ok(())
}

/// Flow-control kinds: the socket simply has no room / no data.
pub(crate) fn would_block(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

/// ICMP port-unreachable noise a UDP runtime must absorb, not die on.
pub(crate) fn soft_io_error(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionRefused | io::ErrorKind::ConnectionReset
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn pair() -> (UdpSocket, UdpSocket, SocketAddr) {
        let a = UdpSocket::bind("127.0.0.1:0").unwrap();
        let b = UdpSocket::bind("127.0.0.1:0").unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        let b_addr = b.local_addr().unwrap();
        (a, b, b_addr)
    }

    #[test]
    fn batched_send_and_recv_round_trip() {
        let (tx, rx, rx_addr) = pair();
        let payloads: Vec<Vec<u8>> = (0u8..5).map(|i| vec![i; (i as usize + 1) * 3]).collect();
        let msgs: Vec<(SocketAddr, &[u8])> =
            payloads.iter().map(|p| (rx_addr, p.as_slice())).collect();

        let mut sender = SendBatch::new(8);
        let mut sent = 0;
        while sent < msgs.len() {
            let n = sender.send(&tx, &msgs[sent..]).unwrap();
            assert!(n > 0, "loopback send should not flow-block here");
            sent += n;
        }

        let mut batch = RecvBatch::new(8);
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut got: Vec<Vec<u8>> = Vec::new();
        while got.len() < payloads.len() && Instant::now() < deadline {
            let n = batch.recv(&rx).unwrap();
            if n == 0 {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            got.extend(batch.datagrams().map(<[u8]>::to_vec));
        }
        got.sort();
        let mut want = payloads.clone();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn small_batch_capacity_still_drains_everything() {
        let (tx, rx, rx_addr) = pair();
        let payloads: Vec<Vec<u8>> = (0u8..7).map(|i| vec![i]).collect();
        let msgs: Vec<(SocketAddr, &[u8])> =
            payloads.iter().map(|p| (rx_addr, p.as_slice())).collect();
        let mut sender = SendBatch::new(2);
        assert_eq!(sender.capacity(), 2);
        let mut sent = 0;
        while sent < msgs.len() {
            let n = sender.send(&tx, &msgs[sent..]).unwrap();
            assert!(n <= 2);
            sent += n.max(1);
        }
        let mut batch = RecvBatch::new(3);
        let deadline = Instant::now() + Duration::from_secs(2);
        let mut total = 0;
        while total < payloads.len() && Instant::now() < deadline {
            total += batch.recv(&rx).unwrap();
            if total == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        assert_eq!(total, payloads.len());
    }

    #[test]
    fn poller_wakes_on_readiness_and_times_out_when_idle() {
        let (tx, rx, rx_addr) = pair();
        let mut poller = Poller::new().unwrap();
        poller.register(&rx).unwrap();

        // Idle: a short wait elapses without reporting readiness.
        let start = Instant::now();
        let ready = poller.wait(Duration::from_millis(20)).unwrap();
        #[cfg(target_os = "linux")]
        {
            assert_eq!(ready, 0);
            assert!(start.elapsed() >= Duration::from_millis(15));
        }
        #[cfg(not(target_os = "linux"))]
        let _ = (ready, start);

        // A pending datagram wakes the wait (immediately, on Linux).
        tx.send_to(b"ping", rx_addr).unwrap();
        let woke = Instant::now();
        let ready = poller.wait(Duration::from_secs(5)).unwrap();
        #[cfg(target_os = "linux")]
        {
            assert!(ready > 0, "registered socket with data must be ready");
            assert!(woke.elapsed() < Duration::from_secs(2));
        }
        #[cfg(not(target_os = "linux"))]
        let _ = (ready, woke);
    }

    #[test]
    fn sub_millisecond_waits_sleep_exactly() {
        let mut poller = Poller::new().unwrap();
        let start = Instant::now();
        assert_eq!(poller.wait(Duration::from_micros(200)).unwrap(), 0);
        assert!(start.elapsed() < Duration::from_millis(50));
    }
}

//! A sharded multi-endpoint runtime: many protocol cores, few threads.
//!
//! [`Cluster`] hosts N [`ProtocolCore`] endpoints in one process,
//! partitioned across `workers` threads. Endpoint `i` belongs to shard
//! `i % workers` — a pure function of the add order, so the same
//! construction sequence always yields the same shard layout (the
//! shard-determinism tests rely on this). Each worker owns its shard's
//! sockets outright for the duration of a [`run_for`](Cluster::run_for)
//! window plus **one timer wheel** (the hierarchical calendar queue shared
//! with the simulator) carrying every timer of every core in the shard, so
//! a worker makes one `next_deadline` query per idle sleep no matter how
//! many endpoints it hosts. The wheels live on the cluster between
//! windows, so timers pending when a window closes fire in the next one;
//! timers armed by an endpoint incarnation that has since been restarted
//! ([`Cluster::restart_endpoint`]) are dropped as stale when they pop.
//!
//! Per poll iteration a worker fires all due timers across the shard (in
//! global deadline order), then visits each endpoint once: retry parked
//! sends, then drain the socket until `WouldBlock`. Sends that hit a
//! saturated socket are parked in a bounded per-endpoint outbox
//! (backpressure), preserving per-destination order; only when the outbox
//! itself fills are datagrams shed, and both conditions are counted in the
//! endpoint's [`EndpointReport`].
//!
//! The cluster owns its cores (unlike [`Endpoint`](crate::Endpoint), which
//! borrows one per call) because the cores must travel to worker threads;
//! [`Cluster::core`] downcasts them back for post-run inspection.

use std::any::Any;
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::Duration;

use adamant_metrics::MetricsRegistry;
use adamant_proto::{Clock, Input, NodeId, ProtocolCore, Span, TimePoint, TimerWheel};

use crate::clock::MonotonicClock;
use crate::endpoint::{EndpointReport, RtConfig, Slot, RECV_BUF_BYTES};
use crate::error::RtError;
use crate::poller::Poller;

/// Configuration for a [`Cluster`] (consuming `with_*` builders, same
/// idiom as [`RtConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Worker threads to shard endpoints across (at least 1).
    pub workers: usize,
    /// Base entropy seed; endpoint `i` gets a seed derived from
    /// `(base, i)`, so one cluster seed determines every core's stream.
    pub seed: u64,
    /// Whether cores' trace events are recorded in their reports.
    pub observed: bool,
    /// The wall clock shared by every endpoint of the cluster.
    pub clock: MonotonicClock,
}

impl ClusterConfig {
    /// A config for `workers` threads, seed 0, tracing on, and a clock
    /// anchored now.
    pub fn new(workers: usize) -> Self {
        ClusterConfig {
            workers: workers.max(1),
            seed: 0,
            observed: true,
            clock: MonotonicClock::start(),
        }
    }

    /// Replaces the base entropy seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets whether trace events are recorded (builder-style).
    pub fn with_observed(mut self, observed: bool) -> Self {
        self.observed = observed;
        self
    }

    /// Replaces the shared clock (builder-style).
    pub fn with_clock(mut self, clock: MonotonicClock) -> Self {
        self.clock = clock;
        self
    }
}

/// Handle to one endpoint of a [`Cluster`], returned by
/// [`add_endpoint`](Cluster::add_endpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EndpointId(pub(crate) usize);

impl EndpointId {
    /// The endpoint's index in add order (also determines its shard).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Aggregate counters across every live endpoint of a cluster.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Live endpoints aggregated.
    pub endpoints: usize,
    /// Samples delivered up the stack, summed across endpoints.
    pub delivered: u64,
    /// Delivered samples that arrived through a recovery path.
    pub recovered: u64,
    /// Datagrams written to sockets.
    pub datagrams_sent: u64,
    /// Datagrams read from sockets.
    pub datagrams_received: u64,
    /// Datagrams that failed to parse.
    pub decode_errors: u64,
    /// Sends addressed to nodes with no registered peer address.
    pub unroutable: u64,
    /// Sends parked in an outbox because the socket reported `WouldBlock`.
    pub backpressure_stalls: u64,
    /// Datagrams shed because an outbox was full.
    pub backpressure_drops: u64,
    /// Soft I/O errors absorbed (ICMP-unreachable noise).
    pub soft_io_errors: u64,
    /// Datagrams addressed to a previous incarnation of an endpoint
    /// (in flight across a `restart_endpoint`); dropped, never delivered.
    pub stale_drops: u64,
    /// Datagrams whose demux key named no live endpoint of this runtime
    /// (multiplexed runtime only; a per-socket runtime's socket *is* its
    /// demux, so the field stays 0 there).
    pub unknown_endpoint_drops: u64,
    /// Datagrams dropped before demux because the frame header was
    /// truncated or carried an unknown wire version (multiplexed runtime;
    /// the per-socket runtime attributes these to the receiving
    /// endpoint's `decode_errors` instead).
    pub header_drops: u64,
    /// Worker loop iterations that found no due timer and made no I/O
    /// progress before parking in the poller. An idle cluster accrues a
    /// handful of these per window — not thousands — because workers
    /// sleep in `poll()` until the next timer deadline.
    pub busy_polls: u64,
}

impl ClusterStats {
    /// Folds these aggregates into `registry` as `<protocol>/cluster/<name>`
    /// counters, matching the flat key scheme the trace folder uses.
    pub fn fold_into(&self, protocol: &str, registry: &mut MetricsRegistry) {
        let key = |name: &str| format!("{protocol}/cluster/{name}");
        registry.add(key("endpoints"), self.endpoints as u64);
        registry.add(key("delivered"), self.delivered);
        registry.add(key("recovered"), self.recovered);
        registry.add(key("datagrams_sent"), self.datagrams_sent);
        registry.add(key("datagrams_received"), self.datagrams_received);
        registry.add(key("decode_errors"), self.decode_errors);
        registry.add(key("unroutable"), self.unroutable);
        registry.add(key("backpressure_stalls"), self.backpressure_stalls);
        registry.add(key("backpressure_drops"), self.backpressure_drops);
        registry.add(key("soft_io_errors"), self.soft_io_errors);
        registry.add(key("stale_drops"), self.stale_drops);
        registry.add(key("unknown_endpoint_drops"), self.unknown_endpoint_drops);
        registry.add(key("header_drops"), self.header_drops);
        registry.add(key("busy_polls"), self.busy_polls);
    }
}

/// Counters a worker accrues that belong to the shard rather than any one
/// endpoint: pre-demux drops and idle-loop accounting. Folded into
/// [`ClusterStats`] by both the per-socket and multiplexed runtimes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct WorkerCounters {
    /// Iterations that made no progress before parking in the poller.
    pub busy_polls: u64,
    /// Truncated/unknown-version frame headers (dropped before demux).
    pub header_drops: u64,
    /// Demux keys that named no live endpoint of the shard.
    pub unknown_endpoint_drops: u64,
}

impl WorkerCounters {
    pub(crate) fn absorb(&mut self, other: WorkerCounters) {
        self.busy_polls += other.busy_polls;
        self.header_drops += other.header_drops;
        self.unknown_endpoint_drops += other.unknown_endpoint_drops;
    }
}

/// Object-safe bridge that keeps a boxed core both steppable and
/// downcastable (`ProtocolCore` is `Send + 'static`, so every sized core
/// is `Any`; the explicit methods avoid relying on dyn upcasting).
pub(crate) trait ClusterCore: Send {
    fn as_core(&mut self) -> &mut dyn ProtocolCore;
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: ProtocolCore> ClusterCore for T {
    fn as_core(&mut self) -> &mut dyn ProtocolCore {
        self
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// One endpoint of the cluster: its socket-side slot and its core.
struct Entry {
    slot: Slot,
    core: Box<dyn ClusterCore>,
}

/// A sharded multi-endpoint runtime (see the module docs for the
/// architecture).
///
/// ```no_run
/// use adamant_rt::{Cluster, ClusterConfig, RtError};
/// # use adamant_proto::{Env, Input, NodeId, ProtocolCore};
/// # #[derive(Debug)] struct MyCore;
/// # impl ProtocolCore for MyCore {
/// #     fn step(&mut self, _input: Input<'_>, _env: &mut Env<'_>) {}
/// # }
/// # fn main() -> Result<(), RtError> {
/// let mut cluster = Cluster::new(ClusterConfig::new(4).with_seed(42));
/// for node in 0..64 {
///     cluster.add_endpoint(NodeId(node), "127.0.0.1:0", MyCore)?;
/// }
/// cluster.connect_full_mesh()?;
/// cluster.run_for(std::time::Duration::from_secs(1))?;
/// let stats = cluster.stats();
/// # let _ = stats;
/// # Ok(())
/// # }
/// ```
pub struct Cluster {
    cfg: ClusterConfig,
    /// `None` only for endpoints whose shard was lost to a worker panic.
    entries: Vec<Option<Entry>>,
    /// One timer wheel per worker shard, persisted across
    /// [`run_for`](Cluster::run_for) windows so pending protocol timers
    /// survive window boundaries (a shard lost to a panic gets a fresh
    /// wheel). Lazily sized on the first run.
    wheels: Vec<TimerWheel>,
    /// Shard-level counters accumulated across windows (idle-loop and
    /// pre-demux accounting that belongs to no single endpoint).
    worker: WorkerCounters,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("cfg", &self.cfg)
            .field("endpoints", &self.entries.len())
            .finish()
    }
}

impl Cluster {
    /// An empty cluster; add endpoints, wire them, then run.
    pub fn new(cfg: ClusterConfig) -> Cluster {
        Cluster {
            cfg,
            entries: Vec::new(),
            wheels: Vec::new(),
            worker: WorkerCounters::default(),
        }
    }

    /// Binds a socket at `addr` for `node` and installs `core` on it. The
    /// endpoint's entropy seed is derived deterministically from the
    /// cluster seed and the add index.
    ///
    /// # Errors
    ///
    /// [`RtError::Bind`] when the socket cannot be bound.
    pub fn add_endpoint<C: ProtocolCore>(
        &mut self,
        node: NodeId,
        addr: impl ToSocketAddrs,
        core: C,
    ) -> Result<EndpointId, RtError> {
        let index = self.entries.len();
        let cfg = RtConfig::new(endpoint_seed(self.cfg.seed, index))
            .with_observed(self.cfg.observed)
            .with_clock(self.cfg.clock);
        let mut slot = Slot::bind(node, addr, cfg)?;
        slot.wheel_owner = wheel_owner(index, 0);
        self.entries.push(Some(Entry {
            slot,
            core: Box::new(core),
        }));
        Ok(EndpointId(index))
    }

    /// Restarts endpoint `id` as a fresh incarnation running `core`: the
    /// socket, peer routes, and group table survive (the process came back
    /// on the same port); the core, entropy stream, and in-flight state
    /// are replaced, and timers armed by the previous incarnation are
    /// dropped as stale when they pop from the shard's persistent wheel.
    /// The endpoint's report keeps accumulating across incarnations.
    /// Call between [`run_for`](Cluster::run_for) windows.
    ///
    /// # Errors
    ///
    /// [`RtError::UnknownEndpoint`] for a dead or out-of-range id.
    pub fn restart_endpoint<C: ProtocolCore>(
        &mut self,
        id: EndpointId,
        core: C,
    ) -> Result<(), RtError> {
        let base = self.cfg.seed;
        let entry = self.entry_mut(id)?;
        let incarnation = u64::from(entry.slot.incarnation) + 1;
        // A distinct deterministic stream per (cluster seed, endpoint,
        // incarnation), so a restarted core never replays its predecessor's
        // entropy.
        let seed = endpoint_seed(
            base.wrapping_add(incarnation.wrapping_mul(0xA076_1D64_78BD_642F)),
            id.0,
        );
        entry.slot.restart(seed);
        entry.core = Box::new(core);
        Ok(())
    }

    /// How many times endpoint `id` has been restarted (0 = original
    /// incarnation).
    ///
    /// # Errors
    ///
    /// [`RtError::UnknownEndpoint`] for a dead or out-of-range id.
    pub fn incarnation(&self, id: EndpointId) -> Result<u32, RtError> {
        Ok(self.entry(id)?.slot.incarnation)
    }

    /// Endpoints added so far (including any lost to a shard panic).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no endpoints have been added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The worker shard `id` runs on: `index % workers`, a pure function
    /// of add order and the configured worker count.
    pub fn shard_of(&self, id: EndpointId) -> usize {
        id.0 % self.cfg.workers.max(1)
    }

    /// The bound address of endpoint `id`.
    ///
    /// # Errors
    ///
    /// [`RtError::UnknownEndpoint`] for a dead or out-of-range id,
    /// [`RtError::Addr`] when the OS refuses to report the address.
    pub fn local_addr(&self, id: EndpointId) -> Result<SocketAddr, RtError> {
        self.entry(id)?.slot.local_addr()
    }

    /// The protocol node id of endpoint `id`.
    ///
    /// # Errors
    ///
    /// [`RtError::UnknownEndpoint`] for a dead or out-of-range id.
    pub fn node(&self, id: EndpointId) -> Result<NodeId, RtError> {
        Ok(self.entry(id)?.slot.node)
    }

    /// Registers where endpoint `id` should send datagrams for `peer`.
    ///
    /// # Errors
    ///
    /// [`RtError::UnknownEndpoint`] for a dead or out-of-range id.
    pub fn add_peer(
        &mut self,
        id: EndpointId,
        peer: NodeId,
        addr: SocketAddr,
    ) -> Result<(), RtError> {
        self.entry_mut(id)?.slot.peers.insert(peer, addr);
        Ok(())
    }

    /// Replaces endpoint `id`'s group-membership table (index = group id).
    ///
    /// # Errors
    ///
    /// [`RtError::UnknownEndpoint`] for a dead or out-of-range id.
    pub fn set_groups(&mut self, id: EndpointId, groups: Vec<Vec<NodeId>>) -> Result<(), RtError> {
        *self.entry_mut(id)?.slot.host.groups_mut() = groups;
        Ok(())
    }

    /// Wires every endpoint to every other (peer routes both ways) and
    /// installs group 0 containing all nodes on each — the all-to-all
    /// session shape the paper's scenarios use.
    ///
    /// # Errors
    ///
    /// [`RtError::Addr`] when a bound address cannot be read.
    pub fn connect_full_mesh(&mut self) -> Result<(), RtError> {
        let mut routes = Vec::with_capacity(self.entries.len());
        let mut all_nodes = Vec::with_capacity(self.entries.len());
        for entry in self.entries.iter().flatten() {
            routes.push((entry.slot.node, entry.slot.local_addr()?));
            all_nodes.push(entry.slot.node);
        }
        for entry in self.entries.iter_mut().flatten() {
            for &(node, addr) in &routes {
                if node != entry.slot.node {
                    entry.slot.peers.insert(node, addr);
                }
            }
            *entry.slot.host.groups_mut() = vec![all_nodes.clone()];
        }
        Ok(())
    }

    /// Runs every endpoint's event loop for `wall` of real time across the
    /// configured worker threads. The first window feeds each core
    /// [`Input::Start`]; later windows resume. Reports keep accumulating
    /// across windows.
    ///
    /// # Errors
    ///
    /// [`RtError::ShardPanicked`] when a worker thread panicked (that
    /// shard's endpoints are lost); otherwise the first hard socket error
    /// any worker hit. Surviving shards' state is retained either way.
    pub fn run_for(&mut self, wall: Duration) -> Result<(), RtError> {
        if self.entries.is_empty() {
            return Ok(());
        }
        let workers = self.cfg.workers.max(1);
        let clock = self.cfg.clock;
        let deadline = clock.now() + Span::from_nanos(wall.as_nanos() as u64);

        // Deal the endpoints out to their shards. Workers take their shard
        // by value (sockets, cores, and the shard's persistent timer wheel
        // move to the thread) and hand it back when the window closes.
        let mut shards: Vec<Vec<(usize, Entry)>> = (0..workers).map(|_| Vec::new()).collect();
        for (index, cell) in self.entries.iter_mut().enumerate() {
            if let Some(entry) = cell.take() {
                shards[index % workers].push((index, entry));
            }
        }
        self.wheels.resize_with(workers, TimerWheel::new);
        let wheels: Vec<TimerWheel> = self.wheels.drain(..).collect();

        let mut first_error: Option<RtError> = None;
        let mut panicked: Option<usize> = None;
        self.wheels.resize_with(workers, TimerWheel::new);
        let joined: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .into_iter()
                .zip(wheels)
                .map(|(shard, wheel)| scope.spawn(move || run_shard(shard, wheel, clock, deadline)))
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });
        for (shard_index, outcome) in joined.into_iter().enumerate() {
            match outcome {
                Ok((shard, wheel, counters, error)) => {
                    for (index, entry) in shard {
                        self.entries[index] = Some(entry);
                    }
                    self.wheels[shard_index] = wheel;
                    self.worker.absorb(counters);
                    if first_error.is_none() {
                        first_error = error;
                    }
                }
                // The panicked shard's wheel stays the fresh one installed
                // above — its endpoints are gone, so their timers are too.
                Err(_) => panicked = panicked.or(Some(shard_index)),
            }
        }
        if let Some(shard) = panicked {
            return Err(RtError::ShardPanicked { shard });
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// The report of endpoint `id`, if it is still live.
    pub fn report(&self, id: EndpointId) -> Option<&EndpointReport> {
        self.entries.get(id.0)?.as_ref().map(|e| &e.slot.report)
    }

    /// Iterates `(id, node, report)` over every live endpoint, in add
    /// order.
    pub fn reports(&self) -> impl Iterator<Item = (EndpointId, NodeId, &EndpointReport)> {
        self.entries.iter().enumerate().filter_map(|(i, cell)| {
            cell.as_ref()
                .map(|e| (EndpointId(i), e.slot.node, &e.slot.report))
        })
    }

    /// Downcasts endpoint `id`'s core back to its concrete type for
    /// post-run inspection (`None` on a dead id or type mismatch).
    pub fn core<C: ProtocolCore>(&self, id: EndpointId) -> Option<&C> {
        self.entries
            .get(id.0)?
            .as_ref()?
            .core
            .as_any()
            .downcast_ref::<C>()
    }

    /// Mutable variant of [`core`](Cluster::core).
    pub fn core_mut<C: ProtocolCore>(&mut self, id: EndpointId) -> Option<&mut C> {
        self.entries
            .get_mut(id.0)?
            .as_mut()?
            .core
            .as_any_mut()
            .downcast_mut::<C>()
    }

    /// Aggregate counters across every live endpoint.
    pub fn stats(&self) -> ClusterStats {
        let mut stats = ClusterStats::default();
        for (_, _, report) in self.reports() {
            stats.endpoints += 1;
            stats.delivered += report.delivered.len() as u64;
            stats.recovered += report.recovered_count();
            stats.datagrams_sent += report.datagrams_sent;
            stats.datagrams_received += report.datagrams_received;
            stats.decode_errors += report.decode_errors;
            stats.unroutable += report.unroutable;
            stats.backpressure_stalls += report.backpressure_stalls;
            stats.backpressure_drops += report.backpressure_drops;
            stats.soft_io_errors += report.soft_io_errors;
            stats.stale_drops += report.stale_datagrams;
        }
        stats.busy_polls = self.worker.busy_polls;
        stats.header_drops = self.worker.header_drops;
        stats.unknown_endpoint_drops = self.worker.unknown_endpoint_drops;
        stats
    }

    /// Folds per-endpoint counters (`<protocol>/node<i>/<name>`) and the
    /// [`stats`](Cluster::stats) aggregates (`<protocol>/cluster/<name>`)
    /// into `registry`, the same flat key scheme `adamant-metrics` uses
    /// for simulator traces.
    pub fn fold_metrics(&self, protocol: &str, registry: &mut MetricsRegistry) {
        for (_, node, report) in self.reports() {
            let key = |name: &str| MetricsRegistry::node_key(protocol, node, name);
            registry.add(key("delivered"), report.delivered.len() as u64);
            registry.add(key("recovered"), report.recovered_count());
            registry.add(key("datagrams_sent"), report.datagrams_sent);
            registry.add(key("datagrams_received"), report.datagrams_received);
            registry.add(key("decode_errors"), report.decode_errors);
            registry.add(key("unroutable"), report.unroutable);
            registry.add(key("backpressure_stalls"), report.backpressure_stalls);
            registry.add(key("backpressure_drops"), report.backpressure_drops);
            registry.add(key("stale_datagrams"), report.stale_datagrams);
        }
        self.stats().fold_into(protocol, registry);
    }

    fn entry(&self, id: EndpointId) -> Result<&Entry, RtError> {
        self.entries
            .get(id.0)
            .and_then(Option::as_ref)
            .ok_or(RtError::UnknownEndpoint { index: id.0 })
    }

    fn entry_mut(&mut self, id: EndpointId) -> Result<&mut Entry, RtError> {
        self.entries
            .get_mut(id.0)
            .and_then(Option::as_mut)
            .ok_or(RtError::UnknownEndpoint { index: id.0 })
    }
}

/// Deterministic per-endpoint seed: SplitMix64-style stream derivation
/// from the cluster seed and the add index.
pub(crate) fn endpoint_seed(base: u64, index: usize) -> u64 {
    let mut z = base.wrapping_add((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The owner code endpoint `index` arms timers under during `incarnation`:
/// the index in the high bits, the incarnation (mod 256) in the low byte,
/// so a restarted endpoint's stale timers are distinguishable when they
/// pop from the shard's persistent wheel.
pub(crate) fn wheel_owner(index: usize, incarnation: u32) -> u32 {
    ((index as u32) << 8) | (incarnation & 0xFF)
}

/// One worker's event loop: drives every endpoint of `shard` against the
/// shard's persistent timer wheel until `deadline`, then returns the shard
/// and wheel (errors are carried out-of-band so the endpoints always come
/// home).
fn run_shard(
    mut shard: Vec<(usize, Entry)>,
    mut wheel: TimerWheel,
    clock: MonotonicClock,
    deadline: TimePoint,
) -> (
    Vec<(usize, Entry)>,
    TimerWheel,
    WorkerCounters,
    Option<RtError>,
) {
    let mut buf = vec![0u8; RECV_BUF_BYTES];
    let mut counters = WorkerCounters::default();
    let result = drive_shard(
        &mut shard,
        &mut wheel,
        &mut buf,
        clock,
        deadline,
        &mut counters,
    );
    (shard, wheel, counters, result.err())
}

fn drive_shard(
    shard: &mut [(usize, Entry)],
    wheel: &mut TimerWheel,
    buf: &mut [u8],
    clock: MonotonicClock,
    deadline: TimePoint,
    counters: &mut WorkerCounters,
) -> Result<(), RtError> {
    // Readiness poller over every socket of the shard: the idle branch
    // parks here until the next timer deadline or an incoming datagram,
    // so an idle shard costs ~0 CPU instead of a 1 ms spin loop.
    let mut poller = Poller::new().map_err(RtError::Io)?;
    for (_, entry) in shard.iter() {
        poller.register(&entry.slot.socket).map_err(RtError::Io)?;
    }
    // Global endpoint index → position in this shard slice, for routing
    // timer fires back to their slot.
    let positions: std::collections::BTreeMap<usize, usize> = shard
        .iter()
        .enumerate()
        .map(|(pos, (index, _))| (*index, pos))
        .collect();
    for (_, entry) in shard.iter_mut() {
        let Entry { slot, core } = entry;
        let owner = slot.wheel_owner;
        slot.start(core.as_core(), wheel, owner)?;
    }
    loop {
        // Fire everything due across the shard, in global deadline order.
        while let Some(fire) = wheel.pop_due(clock.now()) {
            let index = (fire.owner >> 8) as usize;
            let Some(&pos) = positions.get(&index) else {
                continue; // endpoint no longer in this shard
            };
            let (_, entry) = &mut shard[pos];
            let Entry { slot, core } = entry;
            if fire.owner != slot.wheel_owner {
                continue; // armed by a dead incarnation: drop as stale
            }
            slot.step(
                core.as_core(),
                Input::TimerFired {
                    token: fire.token,
                    tag: fire.tag,
                },
                wheel,
                fire.owner,
            )?;
        }
        if clock.now() >= deadline {
            break;
        }
        // One batched I/O pass over the shard: retry parked sends, then
        // drain each socket until `WouldBlock`.
        let mut progressed = false;
        for (_, entry) in shard.iter_mut() {
            let Entry { slot, core } = entry;
            let owner = slot.wheel_owner;
            progressed |= slot.flush_outbox()? > 0;
            progressed |= slot.drain_socket(core.as_core(), buf, wheel, owner)?;
        }
        if !progressed {
            counters.busy_polls += 1;
            let next = wheel
                .next_deadline()
                .unwrap_or(TimePoint::MAX)
                .min(deadline);
            let mut wait = Duration::from_nanos(next.saturating_since(clock.now()).as_nanos());
            if shard.iter().any(|(_, e)| !e.slot.outbox.is_empty()) {
                // The poller only watches readability; parked sends need
                // a bounded retry cadence, not a timer-length nap.
                wait = wait.min(Duration::from_millis(1));
            }
            if !wait.is_zero() {
                poller.wait(wait).map_err(RtError::Io)?;
            }
        }
    }
    for (_, entry) in shard.iter_mut() {
        entry.slot.flush_outbox()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_proto::{Env, GroupId, ProcessingCost, WireMsg};
    use std::collections::BTreeSet;

    /// Publishes `total` sequenced messages into group 0 on a short timer.
    #[derive(Debug)]
    struct Beacon {
        next: u64,
        total: u64,
    }

    impl ProtocolCore for Beacon {
        fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
            match input {
                Input::Start | Input::TimerFired { .. } if self.next < self.total => {
                    env.send(
                        GroupId(0),
                        64,
                        1,
                        ProcessingCost::FREE,
                        WireMsg::Data(adamant_proto::wire::DataMsg {
                            seq: self.next,
                            published_at: env.now(),
                            retransmission: false,
                        }),
                    );
                    self.next += 1;
                    env.set_timer(Span::from_millis(1), 1);
                }
                _ => {}
            }
        }
    }

    /// Delivers every data message it hears.
    #[derive(Debug, Default)]
    struct Listener;

    impl ProtocolCore for Listener {
        fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
            if let Input::PacketIn {
                msg: WireMsg::Data(data),
                ..
            } = input
            {
                env.deliver(data.seq, data.published_at, false);
            }
        }
    }

    #[test]
    fn cluster_runs_a_beacon_session_across_workers() {
        let mut cluster = Cluster::new(ClusterConfig::new(3).with_seed(7));
        let tx = cluster
            .add_endpoint(NodeId(0), "127.0.0.1:0", Beacon { next: 0, total: 25 })
            .unwrap();
        let mut listeners = Vec::new();
        for node in 1..8u32 {
            listeners.push(
                cluster
                    .add_endpoint(NodeId(node), "127.0.0.1:0", Listener)
                    .unwrap(),
            );
        }
        cluster.connect_full_mesh().unwrap();
        cluster.run_for(Duration::from_millis(150)).unwrap();
        assert_eq!(cluster.core::<Beacon>(tx).unwrap().next, 25);
        let want: BTreeSet<u64> = (0..25).collect();
        for &id in &listeners {
            assert_eq!(cluster.report(id).unwrap().delivered_seqs(), want);
        }
        let stats = cluster.stats();
        assert_eq!(stats.endpoints, 8);
        assert_eq!(stats.delivered, 25 * 7);
        assert_eq!(stats.decode_errors, 0);
        assert_eq!(stats.unroutable, 0);
    }

    #[test]
    fn timers_pending_at_a_window_boundary_fire_in_the_next_window() {
        // The beacon publishes on a 1 ms timer; splitting the run into two
        // windows must not strand the timer armed at the first window's
        // close (the wheel persists on the cluster between windows).
        let mut cluster = Cluster::new(ClusterConfig::new(2).with_seed(11));
        let tx = cluster
            .add_endpoint(NodeId(0), "127.0.0.1:0", Beacon { next: 0, total: 40 })
            .unwrap();
        let rx = cluster
            .add_endpoint(NodeId(1), "127.0.0.1:0", Listener)
            .unwrap();
        cluster.connect_full_mesh().unwrap();
        cluster.run_for(Duration::from_millis(25)).unwrap();
        let mid = cluster.core::<Beacon>(tx).unwrap().next;
        assert!(mid < 40, "first window should end mid-stream, got {mid}");
        cluster.run_for(Duration::from_millis(60)).unwrap();
        assert_eq!(
            cluster.core::<Beacon>(tx).unwrap().next,
            40,
            "publication must resume after the window boundary"
        );
        assert_eq!(
            cluster.report(rx).unwrap().delivered_seqs(),
            (0..40).collect::<BTreeSet<u64>>()
        );
    }

    #[test]
    fn restart_endpoint_swaps_the_core_and_drops_stale_timers() {
        /// Counts its own timer fires, forever.
        #[derive(Debug, Default)]
        struct Ticker {
            fires: u64,
        }
        impl ProtocolCore for Ticker {
            fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
                match input {
                    Input::Start => {
                        env.set_timer(Span::from_millis(1), 1);
                    }
                    Input::TimerFired { .. } => {
                        self.fires += 1;
                        env.set_timer(Span::from_millis(1), 1);
                    }
                    _ => {}
                }
            }
        }
        let mut cluster = Cluster::new(ClusterConfig::new(1).with_seed(5));
        let id = cluster
            .add_endpoint(NodeId(0), "127.0.0.1:0", Ticker::default())
            .unwrap();
        let addr = cluster.local_addr(id).unwrap();
        cluster.run_for(Duration::from_millis(30)).unwrap();
        let before = cluster.core::<Ticker>(id).unwrap().fires;
        assert!(before > 0);
        assert_eq!(cluster.incarnation(id).unwrap(), 0);

        cluster.restart_endpoint(id, Ticker::default()).unwrap();
        assert_eq!(cluster.incarnation(id).unwrap(), 1);
        assert_eq!(cluster.local_addr(id).unwrap(), addr, "socket survives");
        cluster.run_for(Duration::from_millis(30)).unwrap();
        let after = cluster.core::<Ticker>(id).unwrap().fires;
        // The fresh core restarted its count; the dead incarnation's
        // pending timer was dropped as stale rather than double-driving
        // the new core.
        assert!(
            after > 0 && after <= 35,
            "restarted ticker fired {after} times"
        );
    }

    #[test]
    fn shard_assignment_is_index_mod_workers() {
        let mut cluster = Cluster::new(ClusterConfig::new(4));
        let mut ids = Vec::new();
        for node in 0..10u32 {
            ids.push(
                cluster
                    .add_endpoint(NodeId(node), "127.0.0.1:0", Listener)
                    .unwrap(),
            );
        }
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(id.index(), i);
            assert_eq!(cluster.shard_of(id), i % 4);
        }
    }

    #[test]
    fn worker_panic_surfaces_as_shard_panicked() {
        #[derive(Debug)]
        struct Bomb;
        impl ProtocolCore for Bomb {
            fn step(&mut self, input: Input<'_>, _env: &mut Env<'_>) {
                if matches!(input, Input::Start) {
                    panic!("boom");
                }
            }
        }
        let mut cluster = Cluster::new(ClusterConfig::new(2));
        let survivor = cluster
            .add_endpoint(NodeId(0), "127.0.0.1:0", Listener)
            .unwrap();
        let bomb = cluster
            .add_endpoint(NodeId(1), "127.0.0.1:0", Bomb)
            .unwrap();
        let err = cluster.run_for(Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, RtError::ShardPanicked { shard: 1 }));
        // The surviving shard's endpoint came home; the bomb's did not.
        assert!(cluster.report(survivor).is_some());
        assert!(cluster.report(bomb).is_none());
        assert!(matches!(
            cluster.local_addr(bomb),
            Err(RtError::UnknownEndpoint { index: 1 })
        ));
    }

    #[test]
    fn restart_endpoint_out_of_range_is_a_typed_error() {
        let mut cluster = Cluster::new(ClusterConfig::new(1));
        let err = cluster
            .restart_endpoint(EndpointId(0), Listener)
            .unwrap_err();
        assert!(matches!(err, RtError::UnknownEndpoint { index: 0 }));

        cluster
            .add_endpoint(NodeId(0), "127.0.0.1:0", Listener)
            .unwrap();
        let err = cluster
            .restart_endpoint(EndpointId(99), Listener)
            .unwrap_err();
        assert!(matches!(err, RtError::UnknownEndpoint { index: 99 }));
    }

    #[test]
    fn restart_endpoint_after_shard_panic_is_unknown_endpoint() {
        #[derive(Debug)]
        struct Bomb;
        impl ProtocolCore for Bomb {
            fn step(&mut self, input: Input<'_>, _env: &mut Env<'_>) {
                if matches!(input, Input::Start) {
                    panic!("boom");
                }
            }
        }
        let mut cluster = Cluster::new(ClusterConfig::new(2));
        let survivor = cluster
            .add_endpoint(NodeId(0), "127.0.0.1:0", Listener)
            .unwrap();
        let bomb = cluster
            .add_endpoint(NodeId(1), "127.0.0.1:0", Bomb)
            .unwrap();
        let err = cluster.run_for(Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, RtError::ShardPanicked { shard: 1 }));

        // The endpoint lost with the panicked shard cannot be restarted —
        // its socket died with the worker — and says so as a typed error
        // rather than panicking or silently re-adding.
        let err = cluster.restart_endpoint(bomb, Listener).unwrap_err();
        assert!(matches!(err, RtError::UnknownEndpoint { index: 1 }));
        // The surviving shard's endpoint is unaffected.
        cluster.restart_endpoint(survivor, Listener).unwrap();
        assert_eq!(cluster.incarnation(survivor).unwrap(), 1);
    }

    #[test]
    fn double_restart_yields_distinct_incarnations() {
        let mut cluster = Cluster::new(ClusterConfig::new(1).with_seed(3));
        let id = cluster
            .add_endpoint(NodeId(0), "127.0.0.1:0", Listener)
            .unwrap();
        let addr = cluster.local_addr(id).unwrap();
        // Back-to-back restarts with no run_for in between must both
        // succeed: each bumps the incarnation (staling the previous
        // incarnation's timers) and keeps the bound socket.
        cluster.restart_endpoint(id, Listener).unwrap();
        cluster.restart_endpoint(id, Listener).unwrap();
        assert_eq!(cluster.incarnation(id).unwrap(), 2);
        assert_eq!(cluster.local_addr(id).unwrap(), addr);
        cluster.run_for(Duration::from_millis(5)).unwrap();
        assert_eq!(cluster.incarnation(id).unwrap(), 2);
    }

    #[test]
    fn metrics_fold_under_node_and_cluster_keys() {
        let mut cluster = Cluster::new(ClusterConfig::new(2).with_seed(9));
        cluster
            .add_endpoint(NodeId(0), "127.0.0.1:0", Beacon { next: 0, total: 5 })
            .unwrap();
        cluster
            .add_endpoint(NodeId(1), "127.0.0.1:0", Listener)
            .unwrap();
        cluster.connect_full_mesh().unwrap();
        cluster.run_for(Duration::from_millis(60)).unwrap();
        let mut registry = MetricsRegistry::new();
        cluster.fold_metrics("udp", &mut registry);
        assert_eq!(registry.counter("udp/node1/delivered"), 5);
        assert_eq!(registry.counter("udp/cluster/delivered"), 5);
        assert_eq!(registry.counter("udp/cluster/endpoints"), 2);
        assert_eq!(
            registry.counter("udp/cluster/datagrams_sent"),
            registry.counter("udp/node0/datagrams_sent")
                + registry.counter("udp/node1/datagrams_sent")
        );
    }

    /// Satellite of the readiness-notification rework: an idle cluster
    /// must park its workers in `poll()` until the window deadline, not
    /// spin a short-sleep loop. Before the poller, 4 workers over 300 ms
    /// accrued ~1200 no-progress iterations; now each worker parks once
    /// (plus at most a couple of early wakes from epoll's millisecond
    /// timeout floor). Linux-gated: the portable fallback deliberately
    /// keeps the legacy capped-sleep cadence.
    #[cfg(target_os = "linux")]
    #[test]
    fn idle_cluster_parks_instead_of_busy_spinning() {
        let mut cluster = Cluster::new(ClusterConfig::new(4).with_seed(1));
        for node in 0..64u32 {
            cluster
                .add_endpoint(NodeId(node), "127.0.0.1:0", Listener)
                .unwrap();
        }
        cluster.run_for(Duration::from_millis(300)).unwrap();
        let stats = cluster.stats();
        assert!(
            stats.busy_polls <= 32,
            "idle cluster busy-spun: {} no-progress iterations",
            stats.busy_polls
        );
        assert_eq!(stats.datagrams_received, 0);
    }

    #[test]
    fn endpoint_seeds_are_stable_and_distinct() {
        let seeds: Vec<u64> = (0..16).map(|i| endpoint_seed(42, i)).collect();
        let distinct: BTreeSet<u64> = seeds.iter().copied().collect();
        assert_eq!(distinct.len(), seeds.len());
        assert_eq!(
            seeds,
            (0..16).map(|i| endpoint_seed(42, i)).collect::<Vec<_>>()
        );
    }
}

//! Typed errors for the real-UDP runtime.

use std::fmt;
use std::io;

/// Everything that can go wrong inside the real-UDP runtime.
///
/// Every public fallible function in `adamant-rt` returns this instead of
/// a bare [`io::Error`], so callers can tell a failed bind from a dead
/// socket from a crashed worker without string-matching. The underlying
/// [`io::Error`] (where there is one) is preserved as the
/// [`source`](std::error::Error::source).
#[derive(Debug)]
#[non_exhaustive]
pub enum RtError {
    /// Binding the UDP socket failed.
    Bind(io::Error),
    /// Reading the socket's bound address failed.
    Addr(io::Error),
    /// Writing a datagram failed with a hard error (anything other than
    /// flow-control or ICMP-unreachable noise, which the runtime absorbs).
    Send(io::Error),
    /// Reading from the socket failed with a hard error.
    Recv(io::Error),
    /// A cluster worker thread panicked; the endpoints of that shard and
    /// their reports are lost.
    ShardPanicked {
        /// Index of the worker that panicked (0-based).
        shard: usize,
    },
    /// A cluster endpoint id did not resolve to a live endpoint (out of
    /// range, or its shard was lost to a panic).
    UnknownEndpoint {
        /// The index that failed to resolve.
        index: usize,
    },
    /// An I/O error outside the bind/send/recv paths (catch-all used by
    /// the blanket [`From<io::Error>`] conversion).
    Io(io::Error),
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::Bind(e) => write!(f, "binding UDP socket: {e}"),
            RtError::Addr(e) => write!(f, "reading bound socket address: {e}"),
            RtError::Send(e) => write!(f, "sending datagram: {e}"),
            RtError::Recv(e) => write!(f, "receiving datagram: {e}"),
            RtError::ShardPanicked { shard } => {
                write!(f, "cluster worker {shard} panicked; its shard is lost")
            }
            RtError::UnknownEndpoint { index } => {
                write!(f, "no live endpoint at index {index}")
            }
            RtError::Io(e) => write!(f, "runtime I/O: {e}"),
        }
    }
}

impl std::error::Error for RtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RtError::Bind(e)
            | RtError::Addr(e)
            | RtError::Send(e)
            | RtError::Recv(e)
            | RtError::Io(e) => Some(e),
            RtError::ShardPanicked { .. } | RtError::UnknownEndpoint { .. } => None,
        }
    }
}

impl From<io::Error> for RtError {
    fn from(e: io::Error) -> Self {
        RtError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn displays_carry_context_and_sources() {
        let e = RtError::Bind(io::Error::new(io::ErrorKind::AddrInUse, "taken"));
        assert!(e.to_string().contains("binding"));
        assert!(e.source().is_some());
        let p = RtError::ShardPanicked { shard: 3 };
        assert!(p.to_string().contains("worker 3"));
        assert!(p.source().is_none());
    }

    #[test]
    fn io_errors_convert_via_from() {
        let e: RtError = io::Error::other("x").into();
        assert!(matches!(e, RtError::Io(_)));
    }
}

//! Slingshot: time-critical multicast with proactive unicast replication,
//! after Balakrishnan, Pleisch, and Birman (NCA 2005) — the predecessor of
//! Ricochet that the paper cites for its end-host loss observation.
//!
//! Where Ricochet XORs `R` packets into one repair, Slingshot receivers
//! simply forward a *copy* of each received packet to `c` randomly chosen
//! peers. Recovery latency is even lower (no window to fill, no decode
//! dependency), paid for with `c×` repair bandwidth and no coding gain —
//! the trade Ricochet's LEC was invented to improve. Included as an ANT
//! baseline; it is not one of the paper's six ANN candidates.
//!
//! Forwarded copies travel as [`WireMsg::Forwarded`], which keeps them
//! distinguishable from originals for statistics; the wire contents are
//! identical to a data packet.

use adamant_metrics::{Delivery, DenseReceptionLog};
use adamant_proto::wire::DataMsg;
use adamant_proto::{
    Env, GroupId, Input, NodeId, ProcessingCost, ProtoEvent, ProtocolCore, Span, WireMsg,
};

use crate::config::Tuning;
use crate::profile::{AppSpec, StackProfile};
use crate::publisher::PublisherCore;
use crate::receiver::DataReader;
use crate::tags::{DATA_HEADER_BYTES, FRAMING_BYTES, TAG_REPAIR};

/// Sender side of Slingshot: publish-only, like Ricochet's sender.
#[derive(Debug)]
pub struct SlingshotSender {
    core: PublisherCore,
}

impl SlingshotSender {
    /// Creates a sender publishing `app` into `group`.
    pub fn new(app: AppSpec, profile: StackProfile, tuning: Tuning, group: GroupId) -> Self {
        SlingshotSender {
            core: PublisherCore::new(app, profile, tuning, group, false, true),
        }
    }

    /// Samples published so far.
    pub fn published(&self) -> u64 {
        self.core.published()
    }
}

impl ProtocolCore for SlingshotSender {
    fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
        match input {
            Input::Start => self.core.start(env),
            Input::TimerFired { tag, .. } => {
                self.core.handle_timer(env, tag);
            }
            Input::PacketIn { .. } | Input::Tick => {}
        }
    }
}

/// Receiver side of Slingshot: deliver immediately, forward a copy of each
/// received packet to `c` random peers.
#[derive(Debug)]
pub struct SlingshotReceiver {
    sender: NodeId,
    group: GroupId,
    c: usize,
    tuning: Tuning,
    drop_probability: f64,
    payload_bytes: u32,
    log: DenseReceptionLog,
    dropped: u64,
    duplicates: u64,
    copies_sent: u64,
    copies_received: u64,
    recovered_via_copy: u64,
}

impl SlingshotReceiver {
    /// Creates a receiver expecting `expected` samples of `payload_bytes`
    /// from `sender` in `group`, forwarding each packet to `c` peers.
    pub fn new(
        sender: NodeId,
        group: GroupId,
        expected: u64,
        payload_bytes: u32,
        c: u8,
        tuning: Tuning,
        drop_probability: f64,
    ) -> Self {
        SlingshotReceiver {
            sender,
            group,
            c: c.max(1) as usize,
            tuning,
            drop_probability,
            payload_bytes,
            log: DenseReceptionLog::with_capacity(expected),
            dropped: 0,
            duplicates: 0,
            copies_sent: 0,
            copies_received: 0,
            recovered_via_copy: 0,
        }
    }

    /// Copies forwarded to peers.
    pub fn copies_sent(&self) -> u64 {
        self.copies_sent
    }

    /// Copies received from peers.
    pub fn copies_received(&self) -> u64 {
        self.copies_received
    }

    /// Samples whose only delivery came through a forwarded copy.
    pub fn recovered_via_copy(&self) -> u64 {
        self.recovered_via_copy
    }

    /// Duplicate data copies discarded.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    fn forward(&mut self, env: &mut Env<'_>, data: DataMsg) {
        let me = env.node();
        let peers: Vec<NodeId> = env
            .members(self.group)
            .iter()
            .copied()
            .filter(|&n| n != me && n != self.sender)
            .collect();
        if peers.is_empty() {
            return;
        }
        let chosen = env.rng().sample_indices(peers.len(), self.c);
        let size = FRAMING_BYTES + DATA_HEADER_BYTES + self.payload_bytes;
        let os = Span::from_micros_f64(self.tuning.os_packet_cost_us);
        let copies = chosen.len() as u32;
        for &peer_idx in &chosen {
            env.send(
                peers[peer_idx],
                size,
                TAG_REPAIR,
                ProcessingCost::symmetric(os),
                WireMsg::Forwarded(data),
            );
            self.copies_sent += 1;
        }
        env.emit(|| ProtoEvent::RepairSent { copies, span: 1 });
    }

    fn learn(&mut self, env: &mut Env<'_>, data: DataMsg, via_copy: bool) {
        if self.log.contains(data.seq) {
            self.duplicates += 1;
            let seq = data.seq;
            env.emit(|| ProtoEvent::SampleDuplicate { seq });
            return;
        }
        let delivery = Delivery {
            seq: data.seq,
            published_at: data.published_at,
            delivered_at: env.now(),
            recovered: via_copy,
        };
        if self.log.record(delivery) {
            env.deliver(delivery.seq, delivery.published_at, via_copy);
            env.emit(|| ProtoEvent::SampleAccepted {
                seq: delivery.seq,
                published_ns: delivery.published_at.as_nanos(),
                delivered_ns: delivery.delivered_at.as_nanos(),
                recovered: via_copy,
            });
        }
        if via_copy {
            self.recovered_via_copy += 1;
        }
    }
}

impl DataReader for SlingshotReceiver {
    fn log(&self) -> &DenseReceptionLog {
        &self.log
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn duplicates(&self) -> u64 {
        SlingshotReceiver::duplicates(self)
    }

    fn protocol_stats(&self) -> crate::ProtocolStats {
        crate::ProtocolStats {
            repairs_sent: self.copies_sent,
            repairs_received: self.copies_received,
            recovered: self.recovered_via_copy,
            duplicates: SlingshotReceiver::duplicates(self),
            dropped: self.dropped,
            ..crate::ProtocolStats::default()
        }
    }
}

impl ProtocolCore for SlingshotReceiver {
    fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
        match input {
            Input::PacketIn {
                msg: WireMsg::Data(data),
                ..
            } => {
                let data = *data;
                if env.rng().bernoulli(self.drop_probability) {
                    self.dropped += 1;
                    return;
                }
                self.learn(env, data, false);
                self.forward(env, data);
            }
            Input::PacketIn {
                msg: WireMsg::Forwarded(copy),
                ..
            } => {
                let data = *copy;
                self.copies_received += 1;
                self.learn(env, data, true);
            }
            Input::Start | Input::PacketIn { .. } | Input::TimerFired { .. } | Input::Tick => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_netsim::{Bandwidth, HostConfig, MachineClass, SimDriver, SimTime, Simulation};

    fn run_session(
        samples: u64,
        receivers: usize,
        drop: f64,
        c: u8,
        seed: u64,
    ) -> (Simulation, Vec<NodeId>) {
        let mut sim = Simulation::new(seed);
        let cfg = HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1);
        let app = AppSpec::at_rate(samples, 200.0, 12);
        let tuning = Tuning::default();
        let group = sim.create_group(&[]);
        let tx = sim.add_node(
            cfg,
            SimDriver::new(SlingshotSender::new(
                app,
                StackProfile::new(10.0, 48),
                tuning,
                group,
            )),
        );
        sim.join_group(group, tx);
        let mut rxs = Vec::new();
        for _ in 0..receivers {
            let rx = sim.add_node(
                cfg,
                SimDriver::new(SlingshotReceiver::new(
                    tx, group, samples, 12, c, tuning, drop,
                )),
            );
            sim.join_group(group, rx);
            rxs.push(rx);
        }
        sim.run_until(SimTime::from_secs(samples / 200 + 5));
        (sim, rxs)
    }

    #[test]
    fn lossless_run_forwards_but_recovers_nothing() {
        let (sim, rxs) = run_session(300, 3, 0.0, 2, 3);
        for rx in rxs {
            let r = sim.agent::<SlingshotReceiver>(rx).unwrap();
            assert_eq!(r.log().delivered_count(), 300);
            assert_eq!(r.recovered_via_copy(), 0);
            assert!(r.copies_sent() > 0);
            assert!(r.duplicates() > 0, "copies of already-held packets");
        }
    }

    #[test]
    fn lossy_run_recovers_via_copies_quickly() {
        let (sim, rxs) = run_session(1_000, 4, 0.05, 2, 7);
        for rx in rxs {
            let r = sim.agent::<SlingshotReceiver>(rx).unwrap();
            let reliability = r.log().delivered_count() as f64 / 1_000.0;
            assert!(reliability > 0.985, "reliability {reliability}");
            assert!(r.recovered_via_copy() > 0);
            // Recovery is one forward hop: microseconds, not milliseconds.
            let rec: Vec<f64> = r
                .log()
                .deliveries()
                .iter()
                .filter(|d| d.recovered)
                .map(|d| d.latency().as_micros_f64())
                .collect();
            let avg = rec.iter().sum::<f64>() / rec.len() as f64;
            assert!(avg < 2_000.0, "copy recovery too slow: {avg} µs");
        }
    }

    #[test]
    fn bandwidth_cost_scales_with_c() {
        let copies = |c: u8| {
            let (sim, rxs) = run_session(500, 4, 0.0, c, 11);
            let r = sim.agent::<SlingshotReceiver>(rxs[0]).unwrap();
            r.copies_sent()
        };
        let one = copies(1);
        let three = copies(3);
        assert!(
            (2.8..=3.2).contains(&(three as f64 / one as f64)),
            "c=3 should forward ~3× c=1: {three} vs {one}"
        );
    }

    #[test]
    fn faster_than_ricochet_recovery_but_heavier_on_the_wire() {
        use crate::ricochet::{RicochetReceiver, RicochetSender};
        // Same workload over both protocols; compare recovered-packet
        // latency and repair bytes.
        let samples = 2_000u64;
        let drop = 0.05;

        let (sling_sim, sling_rxs) = run_session(samples, 4, drop, 3, 13);
        let sling = sling_sim.agent::<SlingshotReceiver>(sling_rxs[0]).unwrap();
        let sling_rec_avg = {
            let rec: Vec<f64> = sling
                .log()
                .deliveries()
                .iter()
                .filter(|d| d.recovered)
                .map(|d| d.latency().as_micros_f64())
                .collect();
            rec.iter().sum::<f64>() / rec.len() as f64
        };
        let sling_repair_bytes = sling_sim.stats().tag(TAG_REPAIR).bytes_sent;

        let mut ric_sim = Simulation::new(13);
        let cfg = HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1);
        let app = AppSpec::at_rate(samples, 200.0, 12);
        let tuning = Tuning::default();
        let group = ric_sim.create_group(&[]);
        let tx = ric_sim.add_node(
            cfg,
            SimDriver::new(RicochetSender::new(
                app,
                StackProfile::new(10.0, 48),
                tuning,
                group,
            )),
        );
        ric_sim.join_group(group, tx);
        let mut ric_rx = None;
        for _ in 0..4 {
            let rx = ric_sim.add_node(
                cfg,
                SimDriver::new(RicochetReceiver::new(
                    tx, group, samples, 12, 4, 3, tuning, drop,
                )),
            );
            ric_sim.join_group(group, rx);
            ric_rx.get_or_insert(rx);
        }
        ric_sim.run_until(SimTime::from_secs(samples / 200 + 5));
        let ric = ric_sim.agent::<RicochetReceiver>(ric_rx.unwrap()).unwrap();
        let ric_rec_avg = {
            let rec: Vec<f64> = ric
                .log()
                .deliveries()
                .iter()
                .filter(|d| d.recovered)
                .map(|d| d.latency().as_micros_f64())
                .collect();
            rec.iter().sum::<f64>() / rec.len() as f64
        };

        assert!(
            sling_rec_avg < ric_rec_avg,
            "Slingshot's one-hop copies ({sling_rec_avg} µs) should beat \
             Ricochet's windowed repairs ({ric_rec_avg} µs)"
        );
        // And the price: every packet forwarded c times, far more repair
        // traffic than one XOR per window.
        assert!(sling_repair_bytes > 0);
    }
}

//! Shared sender-side machinery: periodic publication, session heartbeats,
//! end-of-stream marking, and retransmission history.

use adamant_netsim::{Ctx, GroupId, NodeId, OutPacket, ProcessingCost, SimDuration, SimTime};

use crate::config::Tuning;
use crate::profile::{AppSpec, StackProfile};
use crate::tags::{
    CONTROL_BYTES, DATA_HEADER_BYTES, FRAMING_BYTES, TAG_DATA, TAG_FIN, TAG_HEARTBEAT,
    TAG_RETRANSMIT,
};
use crate::wire::{DataMsg, FinMsg, HeartbeatMsg};

/// Timer tag for the next publication tick.
pub(crate) const TIMER_PUBLISH: u64 = 1;
/// Timer tag for the next session heartbeat.
pub(crate) const TIMER_HEARTBEAT: u64 = 2;

/// The sender-side core shared by every protocol: publishes `app.total_samples`
/// data samples at the configured rate into a multicast group, optionally
/// emitting session heartbeats (for NAK/ACK gap detection) and a FIN marker.
///
/// Protocol senders embed one of these and forward their timer callbacks to
/// [`PublisherCore::handle_timer`].
#[derive(Debug)]
pub(crate) struct PublisherCore {
    app: AppSpec,
    profile: StackProfile,
    tuning: Tuning,
    group: GroupId,
    heartbeats: bool,
    send_fin: bool,
    extra_data_rx: SimDuration,
    next_seq: u64,
    history: Vec<SimTime>,
    finished: bool,
}

impl PublisherCore {
    pub fn new(
        app: AppSpec,
        profile: StackProfile,
        tuning: Tuning,
        group: GroupId,
        heartbeats: bool,
        send_fin: bool,
    ) -> Self {
        PublisherCore {
            app,
            profile,
            tuning,
            group,
            heartbeats,
            send_fin,
            extra_data_rx: SimDuration::ZERO,
            next_seq: 0,
            history: Vec::with_capacity(app.total_samples as usize),
            finished: false,
        }
    }

    /// Declares extra receiver-side CPU work per data packet (protocol
    /// bookkeeping such as Ricochet's XOR-buffer maintenance).
    pub fn with_extra_data_rx(mut self, extra: SimDuration) -> Self {
        self.extra_data_rx = extra;
        self
    }

    /// Wire size of one data packet.
    pub fn data_packet_bytes(&self) -> u32 {
        FRAMING_BYTES + DATA_HEADER_BYTES + self.profile.header_bytes + self.app.payload_bytes
    }

    /// Processing cost of one data packet (OS + middleware + protocol).
    pub fn data_cost(&self) -> ProcessingCost {
        let os = SimDuration::from_micros_f64(self.tuning.os_packet_cost_us);
        ProcessingCost::new(os, os + self.extra_data_rx).plus(self.profile.per_packet)
    }

    /// Processing cost of a small control packet (OS path only).
    pub fn control_cost(&self) -> ProcessingCost {
        let os = SimDuration::from_micros_f64(self.tuning.os_packet_cost_us);
        ProcessingCost::symmetric(os)
    }

    /// Sequence numbers published so far.
    pub fn published(&self) -> u64 {
        self.next_seq
    }

    /// The publication time of `seq`, if already published.
    pub fn published_at(&self, seq: u64) -> Option<SimTime> {
        self.history.get(seq as usize).copied()
    }

    /// Whether the final sample has been published.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Adopts a predecessor's publication history so this core continues
    /// the stream where the predecessor stopped: the next publication uses
    /// sequence `history.len()`, and retransmission requests for earlier
    /// sequences are answered from the adopted history. Used by warm
    /// standbys promoting after a sender crash.
    pub fn resume_from(&mut self, history: Vec<SimTime>) {
        self.next_seq = history.len() as u64;
        self.finished = self.next_seq >= self.app.total_samples;
        self.history = history;
    }

    /// Must be called from the embedding agent's `on_start`.
    pub fn start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::ZERO, TIMER_PUBLISH);
        if self.heartbeats {
            // Desynchronise the heartbeat grid from the publication grid:
            // a random phase keeps gap-detection delay realistic instead of
            // letting aligned timers detect losses instantly.
            let interval = self.tuning.heartbeat_interval.as_nanos();
            let phase = SimDuration::from_nanos(ctx.rng().next_below(interval.max(1)));
            ctx.set_timer(phase, TIMER_HEARTBEAT);
        }
    }

    /// Handles publisher timers. Returns `true` if the tag belonged to the
    /// core (so protocol senders can route their own timers otherwise).
    pub fn handle_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) -> bool {
        match tag {
            TIMER_PUBLISH => {
                self.publish_one(ctx);
                true
            }
            TIMER_HEARTBEAT => {
                if !self.finished {
                    self.send_heartbeat(ctx);
                    ctx.set_timer(self.tuning.heartbeat_interval, TIMER_HEARTBEAT);
                }
                true
            }
            _ => false,
        }
    }

    fn publish_one(&mut self, ctx: &mut Ctx<'_>) {
        if self.next_seq >= self.app.total_samples {
            return;
        }
        let seq = self.next_seq;
        let now = ctx.now();
        self.history.push(now);
        self.next_seq += 1;
        ctx.send(
            self.group,
            OutPacket::new(
                self.data_packet_bytes(),
                DataMsg {
                    seq,
                    published_at: now,
                    retransmission: false,
                },
            )
            .tag(TAG_DATA)
            .cost(self.data_cost()),
        );
        if self.next_seq < self.app.total_samples {
            ctx.set_timer(self.app.interval, TIMER_PUBLISH);
        } else {
            self.finished = true;
            if self.send_fin {
                self.announce_fin(ctx);
            }
        }
    }

    /// Multicasts the end-of-stream marker. Called automatically after the
    /// last publication; standbys promoting into an already-complete
    /// stream call it directly so receivers can close their gap detection.
    pub fn announce_fin(&mut self, ctx: &mut Ctx<'_>) {
        ctx.send(
            self.group,
            OutPacket::new(
                FRAMING_BYTES + CONTROL_BYTES,
                FinMsg {
                    total: self.app.total_samples,
                },
            )
            .tag(TAG_FIN)
            .cost(self.control_cost()),
        );
    }

    fn send_heartbeat(&mut self, ctx: &mut Ctx<'_>) {
        ctx.send(
            self.group,
            OutPacket::new(
                FRAMING_BYTES + CONTROL_BYTES,
                HeartbeatMsg {
                    highest_seq: self.next_seq.checked_sub(1),
                },
            )
            .tag(TAG_HEARTBEAT)
            .cost(self.control_cost()),
        );
    }

    /// Unicasts a retransmission of `seq` to `to`. Returns `false` if `seq`
    /// has not been published yet.
    pub fn retransmit(&mut self, ctx: &mut Ctx<'_>, to: NodeId, seq: u64) -> bool {
        let Some(published_at) = self.published_at(seq) else {
            return false;
        };
        ctx.send(
            to,
            OutPacket::new(
                self.data_packet_bytes(),
                DataMsg {
                    seq,
                    published_at,
                    retransmission: true,
                },
            )
            .tag(TAG_RETRANSMIT)
            .cost(self.data_cost()),
        );
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_netsim::{Agent, Bandwidth, HostConfig, MachineClass, Packet, Simulation};
    use std::any::Any;

    struct CoreSender {
        core: PublisherCore,
    }

    impl Agent for CoreSender {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.core.start(ctx);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: adamant_netsim::TimerId, tag: u64) {
            self.core.handle_timer(ctx, tag);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct Sink {
        data: Vec<DataMsg>,
        heartbeats: u32,
        fins: u32,
    }

    impl Agent for Sink {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, pkt: Packet) {
            if let Some(d) = pkt.payload_as::<DataMsg>() {
                self.data.push(*d);
            } else if pkt.payload_as::<HeartbeatMsg>().is_some() {
                self.heartbeats += 1;
            } else if pkt.payload_as::<FinMsg>().is_some() {
                self.fins += 1;
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn build(heartbeats: bool, fin: bool) -> (Simulation, adamant_netsim::NodeId) {
        let mut sim = Simulation::new(3);
        let cfg = HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1);
        let rx = sim.add_node(
            cfg,
            Sink {
                data: vec![],
                heartbeats: 0,
                fins: 0,
            },
        );
        let group = sim.create_group(&[rx]);
        let app = AppSpec::at_rate(10, 100.0, 12);
        let core = PublisherCore::new(
            app,
            StackProfile::new(10.0, 48),
            Tuning::default(),
            group,
            heartbeats,
            fin,
        );
        let tx = sim.add_node(cfg, CoreSender { core });
        sim.join_group(group, tx);
        (sim, rx)
    }

    #[test]
    fn publishes_all_samples_in_order_at_rate() {
        let (mut sim, rx) = build(false, false);
        sim.run();
        let sink = sim.agent::<Sink>(rx).unwrap();
        assert_eq!(sink.data.len(), 10);
        let seqs: Vec<u64> = sink.data.iter().map(|d| d.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
        // Publications are 10 ms apart.
        let gap = sink.data[1].published_at - sink.data[0].published_at;
        assert_eq!(gap, SimDuration::from_millis(10));
        assert_eq!(sink.fins, 0);
        assert_eq!(sink.heartbeats, 0);
    }

    #[test]
    fn fin_follows_last_sample() {
        let (mut sim, rx) = build(false, true);
        sim.run();
        let sink = sim.agent::<Sink>(rx).unwrap();
        assert_eq!(sink.fins, 1);
    }

    #[test]
    fn heartbeats_flow_until_finished() {
        let (mut sim, rx) = build(true, false);
        sim.run();
        let sink = sim.agent::<Sink>(rx).unwrap();
        // 10 samples at 100 Hz = 90 ms of publishing; heartbeats every
        // 30 ms (default tuning, random phase) fire ~3 times before the
        // stream finishes.
        assert!(
            (1..=5).contains(&sink.heartbeats),
            "got {} heartbeats",
            sink.heartbeats
        );
    }

    #[test]
    fn packet_sizing_and_costs() {
        let app = AppSpec::at_rate(1, 10.0, 12);
        let core = PublisherCore::new(
            app,
            StackProfile::new(25.0, 48),
            Tuning::default(),
            adamant_netsim::Simulation::new(0).create_group(&[]),
            false,
            false,
        );
        assert_eq!(core.data_packet_bytes(), 42 + 16 + 48 + 12);
        let cost = core.data_cost();
        // 15 µs OS + 25 µs middleware on each side.
        assert_eq!(cost.tx, SimDuration::from_micros(40));
        assert_eq!(cost.rx, SimDuration::from_micros(40));
    }
}

//! Shared sender-side machinery: periodic publication, session heartbeats,
//! end-of-stream marking, and retransmission history.
//!
//! Runtime-agnostic: everything here speaks the sans-I/O [`Env`] from
//! `adamant-proto`, so the same publisher drives the simulator and the
//! real-UDP runtime.

use adamant_proto::wire::{DataMsg, FinMsg, HeartbeatMsg};
use adamant_proto::{Env, GroupId, HistoryCache, NodeId, ProcessingCost, Span, TimePoint, WireMsg};

use crate::config::Tuning;
use crate::profile::{AppSpec, StackProfile};
use crate::tags::{
    CONTROL_BYTES, DATA_HEADER_BYTES, FRAMING_BYTES, TAG_DATA, TAG_FIN, TAG_HEARTBEAT,
    TAG_RETRANSMIT,
};

/// Timer tag for the next publication tick.
pub(crate) const TIMER_PUBLISH: u64 = 1;
/// Timer tag for the next session heartbeat.
pub(crate) const TIMER_HEARTBEAT: u64 = 2;

/// The sender-side core shared by every protocol: publishes `app.total_samples`
/// data samples at the configured rate into a multicast group, optionally
/// emitting session heartbeats (for NAK/ACK gap detection) and a FIN marker.
///
/// Protocol senders embed one of these and forward their timer inputs to
/// [`PublisherCore::handle_timer`].
#[derive(Debug, Clone)]
pub(crate) struct PublisherCore {
    app: AppSpec,
    profile: StackProfile,
    tuning: Tuning,
    group: GroupId,
    heartbeats: bool,
    send_fin: bool,
    extra_data_rx: Span,
    next_seq: u64,
    history: HistoryCache,
    finished: bool,
}

impl PublisherCore {
    pub fn new(
        app: AppSpec,
        profile: StackProfile,
        tuning: Tuning,
        group: GroupId,
        heartbeats: bool,
        send_fin: bool,
    ) -> Self {
        PublisherCore {
            app,
            profile,
            tuning,
            group,
            heartbeats,
            send_fin,
            extra_data_rx: Span::ZERO,
            next_seq: 0,
            history: HistoryCache::unbounded(),
            finished: false,
        }
    }

    /// Declares extra receiver-side CPU work per data packet (protocol
    /// bookkeeping such as Ricochet's XOR-buffer maintenance).
    pub fn with_extra_data_rx(mut self, extra: Span) -> Self {
        self.extra_data_rx = extra;
        self
    }

    /// Bounds the retransmission history to `depth` samples (unbounded by
    /// default); requests below the retained window go unanswered.
    pub fn with_history_depth(mut self, depth: usize) -> Self {
        self.history = HistoryCache::bounded(depth);
        self
    }

    /// Wire size of one data packet.
    pub fn data_packet_bytes(&self) -> u32 {
        FRAMING_BYTES + DATA_HEADER_BYTES + self.profile.header_bytes + self.app.payload_bytes
    }

    /// Processing cost of one data packet (OS + middleware + protocol).
    pub fn data_cost(&self) -> ProcessingCost {
        let os = Span::from_micros_f64(self.tuning.os_packet_cost_us);
        ProcessingCost::new(os, os + self.extra_data_rx).plus(self.profile.per_packet)
    }

    /// Processing cost of a small control packet (OS path only).
    pub fn control_cost(&self) -> ProcessingCost {
        let os = Span::from_micros_f64(self.tuning.os_packet_cost_us);
        ProcessingCost::symmetric(os)
    }

    /// Sequence numbers published so far.
    pub fn published(&self) -> u64 {
        self.next_seq
    }

    /// The publication time of `seq`, if published and still retained.
    pub fn published_at(&self, seq: u64) -> Option<TimePoint> {
        self.history.get(seq)
    }

    /// Whether the final sample has been published.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Adopts a predecessor's publication history so this core continues
    /// the stream where the predecessor stopped: the next publication uses
    /// sequence `history.len()`, and retransmission requests for earlier
    /// sequences are answered from the adopted history. Used by warm
    /// standbys promoting after a sender crash.
    pub fn resume_from(&mut self, history: Vec<TimePoint>) {
        self.next_seq = history.len() as u64;
        self.finished = self.next_seq >= self.app.total_samples;
        let mut cache = match self.history.depth() {
            Some(depth) => HistoryCache::bounded(depth),
            None => HistoryCache::unbounded(),
        };
        for (seq, at) in history.into_iter().enumerate() {
            cache.push(seq as u64, at);
        }
        self.history = cache;
    }

    /// Must be called from the embedding core's `Start` input.
    pub fn start(&mut self, env: &mut Env<'_>) {
        env.set_timer(Span::ZERO, TIMER_PUBLISH);
        if self.heartbeats {
            // Desynchronise the heartbeat grid from the publication grid:
            // a random phase keeps gap-detection delay realistic instead of
            // letting aligned timers detect losses instantly.
            let interval = self.tuning.heartbeat_interval.as_nanos();
            let phase = Span::from_nanos(env.rng().next_below(interval.max(1)));
            env.set_timer(phase, TIMER_HEARTBEAT);
        }
    }

    /// Handles publisher timers. Returns `true` if the tag belonged to the
    /// core (so protocol senders can route their own timers otherwise).
    pub fn handle_timer(&mut self, env: &mut Env<'_>, tag: u64) -> bool {
        match tag {
            TIMER_PUBLISH => {
                self.publish_one(env);
                true
            }
            TIMER_HEARTBEAT => {
                if !self.finished {
                    self.send_heartbeat(env);
                    env.set_timer(self.tuning.heartbeat_interval, TIMER_HEARTBEAT);
                }
                true
            }
            _ => false,
        }
    }

    fn publish_one(&mut self, env: &mut Env<'_>) {
        if self.next_seq >= self.app.total_samples {
            return;
        }
        let seq = self.next_seq;
        let now = env.now();
        self.history.push(seq, now);
        self.next_seq += 1;
        env.send(
            self.group,
            self.data_packet_bytes(),
            TAG_DATA,
            self.data_cost(),
            WireMsg::Data(DataMsg {
                seq,
                published_at: now,
                retransmission: false,
            }),
        );
        if self.next_seq < self.app.total_samples {
            env.set_timer(self.app.interval, TIMER_PUBLISH);
        } else {
            self.finished = true;
            if self.send_fin {
                self.announce_fin(env);
            }
        }
    }

    /// Multicasts the end-of-stream marker. Called automatically after the
    /// last publication; standbys promoting into an already-complete
    /// stream call it directly so receivers can close their gap detection.
    pub fn announce_fin(&mut self, env: &mut Env<'_>) {
        env.send(
            self.group,
            FRAMING_BYTES + CONTROL_BYTES,
            TAG_FIN,
            self.control_cost(),
            WireMsg::Fin(FinMsg {
                total: self.app.total_samples,
            }),
        );
    }

    fn send_heartbeat(&mut self, env: &mut Env<'_>) {
        env.send(
            self.group,
            FRAMING_BYTES + CONTROL_BYTES,
            TAG_HEARTBEAT,
            self.control_cost(),
            WireMsg::Heartbeat(HeartbeatMsg {
                highest_seq: self.next_seq.checked_sub(1),
            }),
        );
    }

    /// Unicasts a retransmission of `seq` to `to`. Returns `false` if `seq`
    /// has not been published yet.
    pub fn retransmit(&mut self, env: &mut Env<'_>, to: NodeId, seq: u64) -> bool {
        let Some(published_at) = self.published_at(seq) else {
            return false;
        };
        env.send(
            to,
            self.data_packet_bytes(),
            TAG_RETRANSMIT,
            self.data_cost(),
            WireMsg::Data(DataMsg {
                seq,
                published_at,
                retransmission: true,
            }),
        );
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_netsim::{
        Agent, Bandwidth, Ctx, HostConfig, MachineClass, Packet, SimDriver, Simulation,
    };
    use adamant_proto::{Input, ProtocolCore};
    use std::any::Any;

    /// Minimal protocol core embedding a bare publisher.
    struct CoreSender {
        core: PublisherCore,
    }

    impl ProtocolCore for CoreSender {
        fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
            match input {
                Input::Start => self.core.start(env),
                Input::TimerFired { tag, .. } => {
                    self.core.handle_timer(env, tag);
                }
                _ => {}
            }
        }
    }

    struct Sink {
        data: Vec<DataMsg>,
        heartbeats: u32,
        fins: u32,
    }

    impl Agent for Sink {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, pkt: Packet) {
            match pkt.payload_as::<WireMsg>() {
                Some(WireMsg::Data(d)) => self.data.push(*d),
                Some(WireMsg::Heartbeat(_)) => self.heartbeats += 1,
                Some(WireMsg::Fin(_)) => self.fins += 1,
                _ => {}
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn build(heartbeats: bool, fin: bool) -> (Simulation, adamant_netsim::NodeId) {
        let mut sim = Simulation::new(3);
        let cfg = HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1);
        let rx = sim.add_node(
            cfg,
            Sink {
                data: vec![],
                heartbeats: 0,
                fins: 0,
            },
        );
        let group = sim.create_group(&[rx]);
        let app = AppSpec::at_rate(10, 100.0, 12);
        let core = PublisherCore::new(
            app,
            StackProfile::new(10.0, 48),
            Tuning::default(),
            group,
            heartbeats,
            fin,
        );
        let tx = sim.add_node(cfg, SimDriver::new(CoreSender { core }));
        sim.join_group(group, tx);
        (sim, rx)
    }

    #[test]
    fn publishes_all_samples_in_order_at_rate() {
        let (mut sim, rx) = build(false, false);
        sim.run();
        let sink = sim.agent::<Sink>(rx).unwrap();
        assert_eq!(sink.data.len(), 10);
        let seqs: Vec<u64> = sink.data.iter().map(|d| d.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
        // Publications are 10 ms apart.
        let gap = sink.data[1].published_at - sink.data[0].published_at;
        assert_eq!(gap, Span::from_millis(10));
        assert_eq!(sink.fins, 0);
        assert_eq!(sink.heartbeats, 0);
    }

    #[test]
    fn fin_follows_last_sample() {
        let (mut sim, rx) = build(false, true);
        sim.run();
        let sink = sim.agent::<Sink>(rx).unwrap();
        assert_eq!(sink.fins, 1);
    }

    #[test]
    fn heartbeats_flow_until_finished() {
        let (mut sim, rx) = build(true, false);
        sim.run();
        let sink = sim.agent::<Sink>(rx).unwrap();
        // 10 samples at 100 Hz = 90 ms of publishing; heartbeats every
        // 30 ms (default tuning, random phase) fire ~3 times before the
        // stream finishes.
        assert!(
            (1..=5).contains(&sink.heartbeats),
            "got {} heartbeats",
            sink.heartbeats
        );
    }

    #[test]
    fn packet_sizing_and_costs() {
        let app = AppSpec::at_rate(1, 10.0, 12);
        let core = PublisherCore::new(
            app,
            StackProfile::new(25.0, 48),
            Tuning::default(),
            adamant_netsim::Simulation::new(0).create_group(&[]),
            false,
            false,
        );
        assert_eq!(core.data_packet_bytes(), 42 + 16 + 48 + 12);
        let cost = core.data_cost();
        // 15 µs OS + 25 µs middleware on each side.
        assert_eq!(cost.tx, Span::from_micros(40));
        assert_eq!(cost.rx, Span::from_micros(40));
    }
}

//! Transport protocol selection and tuning: the configuration surface the
//! ANT framework (and ADAMANT's machine-learning selector) operates on.

use std::fmt;

use adamant_netsim::SimDuration;

/// Which transport protocol a pub/sub session uses, with its parameters.
///
/// These are the QoS mechanisms the ADAMANT paper evaluates: NAKcast with
/// four NAK-timeout settings and Ricochet with two `(R, C)` settings, plus
/// plain UDP multicast and an ACK-based reliable multicast as baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Best-effort UDP multicast: no recovery at all.
    Udp,
    /// NAK-based reliable ordered multicast. A receiver that detects a gap
    /// waits `timeout` before NAKing the sender, which retransmits.
    Nakcast {
        /// Delay between detecting a missing packet and sending the NAK.
        timeout: SimDuration,
    },
    /// Ricochet-style lateral error correction. Every receiver XORs each
    /// window of `r` received packets into a repair packet sent to `c`
    /// other receivers, which can reconstruct a single missing packet per
    /// repair.
    Ricochet {
        /// Packets received before a repair packet is emitted.
        r: u8,
        /// Receivers each repair packet is sent to.
        c: u8,
    },
    /// ACK-based reliable multicast: receivers ACK in windows; the sender
    /// retransmits anything unacknowledged after `rto`.
    Ackcast {
        /// Sender retransmission timeout.
        rto: SimDuration,
    },
    /// Slingshot-style proactive replication (Balakrishnan et al., NCA
    /// 2005): receivers forward a copy of every received packet to `c`
    /// random peers. Lowest recovery latency, highest repair bandwidth.
    Slingshot {
        /// Peers each packet copy is forwarded to.
        c: u8,
    },
    /// TCP-like reliable ordered stream for WAN/cross-AZ paths: receiver-
    /// initiated connection handshake, cumulative ACKs, sender RTO from a
    /// Jacobson RTT estimator with fast retransmit, and a send window of
    /// `window` packets.
    StreamCast {
        /// Send window in packets (per-receiver unacknowledged budget).
        window: u32,
    },
    /// Same-host shared-memory fast path: a zero-loss bounded queue of
    /// `queue` slots with credit-based backpressure, bypassing the OS
    /// network stack entirely.
    ShmCast {
        /// Bounded queue capacity in packets per receiver.
        queue: u32,
    },
}

impl ProtocolKind {
    /// The six candidate configurations the paper's ANN chooses between
    /// (§4.2): NAKcast with 50 ms, 25 ms, 10 ms, and 1 ms timeouts, and
    /// Ricochet with `R=4,C=3` and `R=8,C=3`.
    pub fn paper_candidates() -> [ProtocolKind; 6] {
        [
            ProtocolKind::Nakcast {
                timeout: SimDuration::from_millis(50),
            },
            ProtocolKind::Nakcast {
                timeout: SimDuration::from_millis(25),
            },
            ProtocolKind::Nakcast {
                timeout: SimDuration::from_millis(10),
            },
            ProtocolKind::Nakcast {
                timeout: SimDuration::from_millis(1),
            },
            ProtocolKind::Ricochet { r: 4, c: 3 },
            ProtocolKind::Ricochet { r: 8, c: 3 },
        ]
    }

    /// Short stable identifier (used in datasets and reports).
    pub fn label(&self) -> String {
        match self {
            ProtocolKind::Udp => "udp".to_owned(),
            ProtocolKind::Nakcast { timeout } => {
                format!("nakcast-{:.3}s", timeout.as_secs_f64())
            }
            ProtocolKind::Ricochet { r, c } => format!("ricochet-r{r}c{c}"),
            ProtocolKind::Ackcast { rto } => format!("ackcast-{:.3}s", rto.as_secs_f64()),
            ProtocolKind::Slingshot { c } => format!("slingshot-c{c}"),
            ProtocolKind::StreamCast { window } => format!("streamcast-w{window}"),
            ProtocolKind::ShmCast { queue } => format!("shmcast-q{queue}"),
        }
    }

    /// Packs this configuration into a single integer for trace events.
    ///
    /// The top byte discriminates the protocol family; the low 56 bits
    /// carry its parameters (nanosecond timeouts fit comfortably — the
    /// paper's settings are all under a second). The encoding is stable so
    /// golden traces survive refactors, and [`ProtocolKind::from_code`]
    /// round-trips it.
    pub fn code(&self) -> u64 {
        match self {
            ProtocolKind::Udp => 0,
            ProtocolKind::Nakcast { timeout } => (1 << 56) | timeout.as_nanos(),
            ProtocolKind::Ricochet { r, c } => (2 << 56) | (u64::from(*r) << 8) | u64::from(*c),
            ProtocolKind::Ackcast { rto } => (3 << 56) | rto.as_nanos(),
            ProtocolKind::Slingshot { c } => (4 << 56) | u64::from(*c),
            ProtocolKind::StreamCast { window } => (5 << 56) | u64::from(*window),
            ProtocolKind::ShmCast { queue } => (6 << 56) | u64::from(*queue),
        }
    }

    /// Inverse of [`ProtocolKind::code`]; `None` for unknown encodings.
    pub fn from_code(code: u64) -> Option<ProtocolKind> {
        let payload = code & ((1 << 56) - 1);
        match code >> 56 {
            0 if payload == 0 => Some(ProtocolKind::Udp),
            1 => Some(ProtocolKind::Nakcast {
                timeout: SimDuration::from_nanos(payload),
            }),
            2 => Some(ProtocolKind::Ricochet {
                r: ((payload >> 8) & 0xff) as u8,
                c: (payload & 0xff) as u8,
            }),
            3 => Some(ProtocolKind::Ackcast {
                rto: SimDuration::from_nanos(payload),
            }),
            4 => Some(ProtocolKind::Slingshot {
                c: (payload & 0xff) as u8,
            }),
            5 => Some(ProtocolKind::StreamCast {
                window: (payload & 0xffff_ffff) as u32,
            }),
            6 => Some(ProtocolKind::ShmCast {
                queue: (payload & 0xffff_ffff) as u32,
            }),
            _ => None,
        }
    }

    /// The ANT protocol properties this configuration composes.
    pub fn properties(&self) -> ProtocolProperties {
        match self {
            ProtocolKind::Udp => ProtocolProperties {
                multicast: true,
                ..ProtocolProperties::default()
            },
            ProtocolKind::Nakcast { .. } => ProtocolProperties {
                multicast: true,
                packet_tracking: true,
                nak_reliability: true,
                ordered_delivery: true,
                group_membership: true,
                ..ProtocolProperties::default()
            },
            ProtocolKind::Ricochet { .. } => ProtocolProperties {
                multicast: true,
                packet_tracking: true,
                lateral_error_correction: true,
                group_membership: true,
                fault_detection: true,
                ..ProtocolProperties::default()
            },
            ProtocolKind::Ackcast { .. } => ProtocolProperties {
                multicast: true,
                packet_tracking: true,
                ack_reliability: true,
                flow_control: true,
                group_membership: true,
                ..ProtocolProperties::default()
            },
            ProtocolKind::Slingshot { .. } => ProtocolProperties {
                multicast: true,
                packet_tracking: true,
                lateral_error_correction: true,
                group_membership: true,
                ..ProtocolProperties::default()
            },
            ProtocolKind::StreamCast { .. } => ProtocolProperties {
                multicast: true,
                packet_tracking: true,
                ack_reliability: true,
                ordered_delivery: true,
                flow_control: true,
                ..ProtocolProperties::default()
            },
            ProtocolKind::ShmCast { .. } => ProtocolProperties {
                multicast: true,
                packet_tracking: true,
                ordered_delivery: true,
                flow_control: true,
                lossless_path: true,
                ..ProtocolProperties::default()
            },
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolKind::Udp => write!(f, "UDP multicast"),
            ProtocolKind::Nakcast { timeout } => {
                write!(f, "NAKcast {:.3}", timeout.as_secs_f64())
            }
            ProtocolKind::Ricochet { r, c } => write!(f, "Ricochet R{r} C{c}"),
            ProtocolKind::Ackcast { rto } => write!(f, "ACKcast {:.3}", rto.as_secs_f64()),
            ProtocolKind::Slingshot { c } => write!(f, "Slingshot C{c}"),
            ProtocolKind::StreamCast { window } => write!(f, "StreamCast W{window}"),
            ProtocolKind::ShmCast { queue } => write!(f, "ShmCast Q{queue}"),
        }
    }
}

/// The transport-property vocabulary of the ANT framework (§3.1 of the
/// paper): orthogonal capabilities that protocols compose at configuration
/// time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProtocolProperties {
    /// Uses IP-multicast-style fan-out.
    pub multicast: bool,
    /// Tracks per-packet sequence state at receivers.
    pub packet_tracking: bool,
    /// Recovers losses with receiver-driven NAKs.
    pub nak_reliability: bool,
    /// Recovers losses with sender-driven ACK windows.
    pub ack_reliability: bool,
    /// Recovers losses with receiver-to-receiver XOR repairs.
    pub lateral_error_correction: bool,
    /// Delivers samples to the application in publication order.
    pub ordered_delivery: bool,
    /// Rate-limits the sender.
    pub flow_control: bool,
    /// Maintains a group-membership view.
    pub group_membership: bool,
    /// Detects unresponsive members via heartbeats.
    pub fault_detection: bool,
    /// Runs over a path that drops nothing (same-host shared memory), so
    /// reliability holds without any recovery machinery.
    pub lossless_path: bool,
}

/// Engineering constants of the protocol implementations.
///
/// Defaults are calibrated so the simulated protocols reproduce the
/// *relative* behaviour measured in the paper (see DESIGN.md §3); every
/// value is overridable for ablation studies — either through the
/// consuming `with_*` builders (the repo-wide pre-bind construction
/// idiom, shared with `RtConfig` and [`TransportConfig`]) or via struct
/// update syntax on [`Tuning::default()`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tuning {
    /// Interval between sender session heartbeats (carrying the highest
    /// sequence sent) that bound NAKcast/ACKcast gap-detection delay.
    pub heartbeat_interval: SimDuration,
    /// Give-up bound on NAK retries per missing packet.
    pub nak_max_retries: u32,
    /// Ricochet flushes a partially filled repair window after this long,
    /// so low-rate flows still repair promptly.
    pub ricochet_flush: SimDuration,
    /// How many recent packets a Ricochet receiver retains for XOR
    /// reconstruction.
    pub ricochet_store: usize,
    /// How many unresolved repair packets a Ricochet receiver retains for
    /// iterative decoding.
    pub ricochet_pending_repairs: usize,
    /// ACKcast window size (samples per ACK round).
    pub ack_window: u32,
    /// ACKcast retransmission flow control: token-bucket burst size.
    pub ack_retx_burst: f64,
    /// ACKcast retransmission flow control: sustained tokens per second.
    pub ack_retx_rate_per_sec: f64,
    /// Interval between receiver membership heartbeats (Ricochet failure
    /// detection); heartbeats stop once the stream ends.
    pub membership_interval: SimDuration,
    /// A peer is suspected dead after missing this many heartbeat periods.
    pub membership_timeout_factor: u32,
    /// Reference CPU cost (pc3000) of the OS/UDP path per packet, each side.
    pub os_packet_cost_us: f64,
    /// Extra reference receive cost per data packet for NAKcast tracking.
    pub nak_tracking_cost_us: f64,
    /// Extra reference receive cost per data packet for Ricochet XOR-buffer
    /// maintenance (the LEC bookkeeping runs on every packet).
    pub fec_data_cost_us: f64,
    /// Reference cost to construct and send one repair packet.
    pub fec_repair_tx_cost_us: f64,
    /// Reference cost to process one received repair packet (XOR decode
    /// attempt against the packet store).
    pub fec_repair_rx_cost_us: f64,
    /// Every this many data packets, the LEC packet store performs
    /// maintenance (compaction / rebuild of the XOR window index), stalling
    /// the receive path once.
    pub fec_maintenance_every: u64,
    /// Reference cost of one LEC store-maintenance stall.
    pub fec_maintenance_cost_us: f64,
    /// Probability that a decodable repair actually reconstructs its
    /// missing packet. Models the XOR-window collisions and receive-buffer
    /// slot reuse of the real LEC implementation, which this simplified
    /// single-group decoder would otherwise not exhibit.
    pub repair_efficacy: f64,
    /// StreamCast: interval between connection-request (SYN) retries while
    /// a receiver waits for the sender's SYN-ACK.
    pub stream_syn_retry: SimDuration,
    /// StreamCast: floor on the adaptive retransmission timeout, so a few
    /// low-RTT samples cannot collapse the RTO into spurious retransmits.
    pub stream_rto_min: SimDuration,
    /// StreamCast: ceiling on the adaptive retransmission timeout under
    /// exponential backoff.
    pub stream_rto_max: SimDuration,
    /// StreamCast: duplicate cumulative ACKs of the same value that
    /// trigger a fast retransmit ahead of the RTO.
    pub stream_dupack_threshold: u32,
    /// ShmCast: reference per-packet cost of the shared-memory path, both
    /// sides. Replaces `os_packet_cost_us` — a same-host enqueue touches a
    /// ring buffer, not the OS network stack.
    pub shm_packet_cost_us: f64,
}

impl Tuning {
    /// Replaces the sender heartbeat interval (builder-style).
    pub fn with_heartbeat_interval(mut self, interval: SimDuration) -> Self {
        self.heartbeat_interval = interval;
        self
    }

    /// Replaces the NAK retry give-up bound (builder-style).
    pub fn with_nak_max_retries(mut self, retries: u32) -> Self {
        self.nak_max_retries = retries;
        self
    }

    /// Replaces the Ricochet partial-window flush delay (builder-style).
    pub fn with_ricochet_flush(mut self, flush: SimDuration) -> Self {
        self.ricochet_flush = flush;
        self
    }

    /// Replaces the ACKcast window size (builder-style).
    pub fn with_ack_window(mut self, window: u32) -> Self {
        self.ack_window = window;
        self
    }

    /// Replaces the receiver membership-heartbeat interval (builder-style).
    pub fn with_membership_interval(mut self, interval: SimDuration) -> Self {
        self.membership_interval = interval;
        self
    }

    /// Replaces the modelled repair efficacy (builder-style).
    pub fn with_repair_efficacy(mut self, efficacy: f64) -> Self {
        self.repair_efficacy = efficacy;
        self
    }

    /// Replaces the StreamCast SYN retry interval (builder-style).
    pub fn with_stream_syn_retry(mut self, interval: SimDuration) -> Self {
        self.stream_syn_retry = interval;
        self
    }

    /// Replaces the StreamCast RTO clamp range (builder-style).
    pub fn with_stream_rto_range(mut self, min: SimDuration, max: SimDuration) -> Self {
        self.stream_rto_min = min;
        self.stream_rto_max = max;
        self
    }

    /// Replaces the ShmCast per-packet reference cost (builder-style).
    pub fn with_shm_packet_cost_us(mut self, cost: f64) -> Self {
        self.shm_packet_cost_us = cost;
        self
    }
}

impl Default for Tuning {
    fn default() -> Self {
        Tuning {
            heartbeat_interval: SimDuration::from_millis(30),
            nak_max_retries: 20,
            ricochet_flush: SimDuration::from_millis(5),
            ricochet_store: 1024,
            ricochet_pending_repairs: 64,
            ack_window: 16,
            ack_retx_burst: 32.0,
            ack_retx_rate_per_sec: 2_000.0,
            membership_interval: SimDuration::from_millis(500),
            membership_timeout_factor: 3,
            os_packet_cost_us: 15.0,
            nak_tracking_cost_us: 4.0,
            fec_data_cost_us: 45.0,
            fec_repair_tx_cost_us: 60.0,
            fec_repair_rx_cost_us: 90.0,
            fec_maintenance_every: 128,
            fec_maintenance_cost_us: 12_000.0,
            repair_efficacy: 0.7,
            stream_syn_retry: SimDuration::from_millis(10),
            stream_rto_min: SimDuration::from_millis(5),
            stream_rto_max: SimDuration::from_secs(2),
            stream_dupack_threshold: 3,
            shm_packet_cost_us: 0.8,
        }
    }
}

/// A complete transport configuration: protocol choice plus tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransportConfig {
    /// The protocol and its parameters.
    pub kind: ProtocolKind,
    /// Implementation tuning constants.
    pub tuning: Tuning,
}

impl TransportConfig {
    /// A configuration of `kind` with default tuning.
    pub fn new(kind: ProtocolKind) -> Self {
        TransportConfig {
            kind,
            tuning: Tuning::default(),
        }
    }

    /// Overrides the tuning constants.
    pub fn with_tuning(mut self, tuning: Tuning) -> Self {
        self.tuning = tuning;
        self
    }
}

impl From<ProtocolKind> for TransportConfig {
    fn from(kind: ProtocolKind) -> Self {
        TransportConfig::new(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_candidates_match_section_4_2() {
        let c = ProtocolKind::paper_candidates();
        assert_eq!(c.len(), 6);
        assert_eq!(
            c[3],
            ProtocolKind::Nakcast {
                timeout: SimDuration::from_millis(1)
            }
        );
        assert_eq!(c[4], ProtocolKind::Ricochet { r: 4, c: 3 });
        // All labels distinct.
        let mut labels: Vec<String> = c.iter().map(|k| k.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(ProtocolKind::Udp.label(), "udp");
        assert_eq!(
            ProtocolKind::Nakcast {
                timeout: SimDuration::from_millis(1)
            }
            .label(),
            "nakcast-0.001s"
        );
        assert_eq!(
            ProtocolKind::Ricochet { r: 4, c: 3 }.to_string(),
            "Ricochet R4 C3"
        );
        assert_eq!(
            ProtocolKind::Ackcast {
                rto: SimDuration::from_millis(20)
            }
            .label(),
            "ackcast-0.020s"
        );
    }

    #[test]
    fn properties_compose_sensibly() {
        let nak = ProtocolKind::Nakcast {
            timeout: SimDuration::from_millis(1),
        }
        .properties();
        assert!(nak.multicast && nak.nak_reliability && nak.ordered_delivery);
        assert!(!nak.lateral_error_correction);

        let ric = ProtocolKind::Ricochet { r: 4, c: 3 }.properties();
        assert!(ric.lateral_error_correction && !ric.ordered_delivery);

        let udp = ProtocolKind::Udp.properties();
        assert!(udp.multicast && !udp.packet_tracking);

        let ack = ProtocolKind::Ackcast {
            rto: SimDuration::from_millis(20),
        }
        .properties();
        assert!(ack.ack_reliability && ack.flow_control);
    }

    #[test]
    fn code_round_trips_every_kind() {
        let kinds = [
            ProtocolKind::Udp,
            ProtocolKind::Nakcast {
                timeout: SimDuration::from_millis(25),
            },
            ProtocolKind::Ricochet { r: 8, c: 3 },
            ProtocolKind::Ackcast {
                rto: SimDuration::from_millis(20),
            },
            ProtocolKind::Slingshot { c: 2 },
            ProtocolKind::StreamCast { window: 64 },
            ProtocolKind::ShmCast { queue: 256 },
        ];
        let mut codes: Vec<u64> = kinds.iter().map(|k| k.code()).collect();
        for kind in kinds {
            assert_eq!(ProtocolKind::from_code(kind.code()), Some(kind));
        }
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 7, "codes must be distinct");
        assert_eq!(ProtocolKind::from_code(99 << 56), None);
        // Family codes are pinned: discovery ads and golden traces carry
        // them, so they must never shift between releases.
        assert_eq!(
            ProtocolKind::StreamCast { window: 64 }.code(),
            (5 << 56) | 64
        );
        assert_eq!(ProtocolKind::ShmCast { queue: 256 }.code(), (6 << 56) | 256);
    }

    #[test]
    fn stream_and_shm_labels_and_properties() {
        assert_eq!(
            ProtocolKind::StreamCast { window: 64 }.label(),
            "streamcast-w64"
        );
        assert_eq!(ProtocolKind::ShmCast { queue: 256 }.label(), "shmcast-q256");
        assert_eq!(
            ProtocolKind::StreamCast { window: 8 }.to_string(),
            "StreamCast W8"
        );
        assert_eq!(
            ProtocolKind::ShmCast { queue: 16 }.to_string(),
            "ShmCast Q16"
        );

        let stream = ProtocolKind::StreamCast { window: 64 }.properties();
        assert!(stream.ack_reliability && stream.ordered_delivery && stream.flow_control);
        assert!(!stream.nak_reliability && !stream.lateral_error_correction);

        let shm = ProtocolKind::ShmCast { queue: 256 }.properties();
        assert!(shm.ordered_delivery && shm.flow_control);
        assert!(!shm.ack_reliability && !shm.nak_reliability);
    }

    #[test]
    fn config_construction() {
        let cfg: TransportConfig = ProtocolKind::Udp.into();
        assert_eq!(cfg.kind, ProtocolKind::Udp);
        assert_eq!(cfg.tuning, Tuning::default());
        let custom = TransportConfig::new(ProtocolKind::Udp).with_tuning(Tuning {
            heartbeat_interval: SimDuration::from_millis(5),
            ..Tuning::default()
        });
        assert_eq!(
            custom.tuning.heartbeat_interval,
            SimDuration::from_millis(5)
        );
    }
}

//! # adamant-transport
//!
//! ANT (*Adaptive Network Transports*)-style composable transport protocols
//! over the [`adamant-netsim`](adamant_netsim) simulator, reproducing the
//! protocol substrate of the ADAMANT paper (Hoffert, Schmidt, Gokhale —
//! Middleware 2010, §3.1):
//!
//! * [`Ricochet`](RicochetReceiver) — time-critical multicast with lateral
//!   error correction, tunable `R`/`C` (Balakrishnan et al., NSDI'07).
//! * [`NAKcast`](NakcastReceiver) — NAK-based reliable ordered multicast
//!   with a tunable NAK timeout.
//! * [`UDP multicast`](UdpReceiver) — the best-effort baseline.
//! * [`ACKcast`](AckcastReceiver) — an ACK-window reliable multicast
//!   baseline.
//! * [`StreamCast`](StreamCastReceiver) — a TCP-like reliable ordered
//!   byte-stream transport (handshake, cumulative ACKs, adaptive RTO,
//!   windowed flow control) for lossy wide-area paths.
//! * [`ShmCast`](ShmCastReceiver) — a same-host shared-memory bounded
//!   queue with credit-based backpressure and zero loss.
//!
//! The protocols compose the ANT property set ([`ProtocolProperties`]):
//! multicast, packet tracking, NAK/ACK reliability, lateral error
//! correction, ordered delivery, flow control, group membership, and
//! heartbeat fault detection.
//!
//! Use [`ant::install`] to stand up a complete session from a
//! [`TransportConfig`] and [`ant::collect_report`] to pool the resulting
//! QoS measurements.
//!
//! ## Example
//!
//! ```
//! use adamant_netsim::{Bandwidth, HostConfig, MachineClass, SimTime, Simulation};
//! use adamant_transport::{ant, AppSpec, ProtocolKind, SessionSpec, StackProfile, TransportConfig};
//!
//! let host = HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1);
//! let spec = SessionSpec {
//!     transport: TransportConfig::new(ProtocolKind::Ricochet { r: 4, c: 3 }),
//!     app: AppSpec::at_rate(200, 100.0, 12),
//!     stack: StackProfile::new(20.0, 48),
//!     sender_host: host,
//!     receiver_hosts: vec![host; 3],
//!     drop_probability: 0.05,
//! };
//! let mut sim = Simulation::new(42);
//! let handles = ant::install(&mut sim, &spec);
//! sim.run_until(SimTime::from_secs(10));
//! let report = ant::collect_report(&sim, &handles);
//! assert!(report.reliability() > 0.95);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ackcast;
pub mod ant;
mod config;
mod failover;
mod flow;
mod nakcast;
mod profile;
mod publisher;
mod receiver;
mod ricochet;
mod shmcast;
mod slingshot;
mod streamcast;
pub mod tags;
mod udp;

pub use ackcast::{AckcastReceiver, AckcastSender};
pub use ant::{SessionHandles, SessionSpec};
pub use config::{ProtocolKind, ProtocolProperties, TransportConfig, Tuning};
pub use failover::NakcastStandby;
pub use flow::TokenBucket;
pub use nakcast::{nakcast_recovery_bound, NakcastReceiver, NakcastSender};
pub use profile::{AppSpec, StackProfile};
pub use receiver::{DataReader, ProtocolStats};
pub use ricochet::{RicochetReceiver, RicochetSender};
pub use shmcast::{ShmCastReceiver, ShmCastSender, SHM_FRAMING_BYTES};
pub use slingshot::{SlingshotReceiver, SlingshotSender};
pub use streamcast::{StreamCastReceiver, StreamCastSender};
pub use udp::{UdpReceiver, UdpSender};

//! Warm-standby sender failover for NAKcast sessions.
//!
//! A [`NakcastStandby`] sits in the session's multicast group next to the
//! primary sender, passively recording the stream it overhears (sequence
//! numbers and publication times) and the last instant it heard *any*
//! session traffic. Heartbeat silence longer than the detection timeout is
//! treated as a primary crash: the standby promotes itself, adopts the
//! overheard publication history, and continues the stream from the next
//! unpublished sequence — answering NAKs for the predecessor's samples
//! from the adopted history. Receivers re-target their NAKs automatically
//! when they hear session traffic from the new source (see
//! [`NakcastReceiver::sender_changes`](crate::NakcastReceiver::sender_changes)).

use std::collections::BTreeMap;

use adamant_proto::{Env, GroupId, Input, ProtoEvent, ProtocolCore, Span, TimePoint, WireMsg};

use crate::config::Tuning;
use crate::profile::{AppSpec, StackProfile};
use crate::publisher::PublisherCore;

/// Timer tag for the standby's periodic liveness check.
const TIMER_FAILCHECK: u64 = 40;

/// A passive replica of a NAKcast sender that promotes itself when the
/// primary falls silent.
#[derive(Debug)]
pub struct NakcastStandby {
    core: PublisherCore,
    /// Heartbeat silence that counts as a primary failure.
    detect_timeout: Span,
    /// How often the standby checks for silence.
    check_interval: Span,
    /// Overheard publications: sequence → publication time.
    observed: BTreeMap<u64, TimePoint>,
    /// Highest sequence advertised by heartbeats/FIN (may exceed what the
    /// standby itself received).
    highest_advertised: Option<u64>,
    last_heard: Option<TimePoint>,
    started_at: TimePoint,
    promoted: bool,
    promoted_at: Option<TimePoint>,
    retransmissions_sent: u64,
}

impl NakcastStandby {
    /// Creates a standby for a session publishing `app` into `group`. The
    /// standby declares the primary failed after `detect_timeout` of
    /// silence; pick a multiple of the heartbeat interval so an isolated
    /// heartbeat loss does not trigger a spurious promotion.
    pub fn new(
        app: AppSpec,
        profile: StackProfile,
        tuning: Tuning,
        group: GroupId,
        detect_timeout: Span,
    ) -> Self {
        let check_interval = Span::from_nanos((detect_timeout.as_nanos() / 4).max(1));
        NakcastStandby {
            core: PublisherCore::new(app, profile, tuning, group, true, true),
            detect_timeout,
            check_interval,
            observed: BTreeMap::new(),
            highest_advertised: None,
            last_heard: None,
            started_at: TimePoint::ZERO,
            promoted: false,
            promoted_at: None,
            retransmissions_sent: 0,
        }
    }

    /// Whether the standby has taken over the stream.
    pub fn is_promoted(&self) -> bool {
        self.promoted
    }

    /// When the standby promoted itself, if it has.
    pub fn promoted_at(&self) -> Option<TimePoint> {
        self.promoted_at
    }

    /// Distinct publications overheard while passive.
    pub fn observed_count(&self) -> u64 {
        self.observed.len() as u64
    }

    /// Unicast retransmissions answered since promotion.
    pub fn retransmissions_sent(&self) -> u64 {
        self.retransmissions_sent
    }

    /// Samples published by this standby's own incarnation of the stream
    /// (includes the adopted predecessor history after promotion).
    pub fn published(&self) -> u64 {
        self.core.published()
    }

    fn note_heard(&mut self, now: TimePoint) {
        self.last_heard = Some(now);
    }

    fn note_advertised(&mut self, seq: u64) {
        self.highest_advertised = Some(self.highest_advertised.map_or(seq, |h| h.max(seq)));
    }

    /// Adopts the overheard history and takes over the stream.
    fn promote(&mut self, env: &mut Env<'_>) {
        self.promoted = true;
        self.promoted_at = Some(env.now());
        env.emit(|| ProtoEvent::FailoverPromoted);
        let high = match (self.observed.keys().next_back(), self.highest_advertised) {
            (Some(&o), Some(a)) => Some(o.max(a)),
            (Some(&o), None) => Some(o),
            (None, a) => a,
        };
        let history = match high {
            None => Vec::new(),
            Some(high) => {
                // Hole-fill publication times the standby never heard
                // (copies lost on its own link) with the nearest earlier
                // known time: latency accounting for those retransmissions
                // stays conservative, and the data itself is regenerable
                // from the application model.
                let mut history = Vec::with_capacity(high as usize + 1);
                let mut last = self.started_at;
                for seq in 0..=high {
                    let at = self.observed.get(&seq).copied().unwrap_or(last);
                    last = at;
                    history.push(at);
                }
                history
            }
        };
        self.core.resume_from(history);
        if self.core.is_finished() {
            // The primary died after its last publication: receivers may
            // still be missing the FIN (and tail samples, which they will
            // NAK from us).
            self.core.announce_fin(env);
        } else {
            self.core.start(env);
        }
    }
}

impl ProtocolCore for NakcastStandby {
    fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
        match input {
            Input::Start => {
                self.started_at = env.now();
                env.set_timer(self.check_interval, TIMER_FAILCHECK);
            }
            Input::PacketIn { src, msg } => {
                if self.promoted {
                    if let WireMsg::Nak(nak) = msg {
                        for &seq in &nak.seqs {
                            if self.core.retransmit(env, src, seq) {
                                self.retransmissions_sent += 1;
                                env.emit(|| ProtoEvent::Retransmitted { seq });
                            }
                        }
                    }
                    return;
                }
                let now = env.now();
                match msg {
                    WireMsg::Data(data) => {
                        self.note_heard(now);
                        self.note_advertised(data.seq);
                        self.observed.insert(data.seq, data.published_at);
                    }
                    WireMsg::Heartbeat(hb) => {
                        self.note_heard(now);
                        if let Some(high) = hb.highest_seq {
                            self.note_advertised(high);
                        }
                    }
                    WireMsg::Fin(fin) => {
                        self.note_heard(now);
                        if fin.total > 0 {
                            self.note_advertised(fin.total - 1);
                        }
                    }
                    _ => {}
                }
            }
            Input::TimerFired { tag, .. } => {
                if tag != TIMER_FAILCHECK {
                    if self.promoted {
                        self.core.handle_timer(env, tag);
                    }
                    return;
                }
                if self.promoted {
                    return;
                }
                let silent_since = self.last_heard.unwrap_or(self.started_at);
                if env.now().saturating_since(silent_since) >= self.detect_timeout {
                    self.promote(env);
                } else {
                    env.set_timer(self.check_interval, TIMER_FAILCHECK);
                }
            }
            Input::Tick => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nakcast::{NakcastReceiver, NakcastSender};
    use crate::receiver::DataReader;
    use adamant_netsim::{
        Bandwidth, FaultPlan, HostConfig, MachineClass, NodeId, SimDriver, SimTime, Simulation,
    };

    fn cfg() -> HostConfig {
        HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1)
    }

    struct Session {
        sim: Simulation,
        tx: NodeId,
        standby: NodeId,
        rxs: Vec<NodeId>,
    }

    fn build(samples: u64, rate_hz: f64, receivers: usize, drop_p: f64, seed: u64) -> Session {
        let mut sim = Simulation::new(seed);
        let app = AppSpec::at_rate(samples, rate_hz, 12);
        let profile = StackProfile::new(10.0, 48);
        let tuning = Tuning::default();
        let group = sim.create_group(&[]);
        let tx = sim.add_node(
            cfg(),
            SimDriver::new(NakcastSender::new(app, profile, tuning, group)),
        );
        sim.join_group(group, tx);
        let standby = sim.add_node(
            cfg(),
            SimDriver::new(NakcastStandby::new(
                app,
                profile,
                tuning,
                group,
                Span::from_millis(100),
            )),
        );
        sim.join_group(group, standby);
        let mut rxs = Vec::new();
        for _ in 0..receivers {
            let rx = sim.add_node(
                cfg(),
                SimDriver::new(NakcastReceiver::new(
                    tx,
                    samples,
                    Span::from_millis(1),
                    tuning,
                    drop_p,
                )),
            );
            sim.join_group(group, rx);
            rxs.push(rx);
        }
        Session {
            sim,
            tx,
            standby,
            rxs,
        }
    }

    #[test]
    fn standby_stays_passive_while_primary_lives() {
        let mut s = build(100, 100.0, 2, 0.0, 3);
        s.sim.run_until(SimTime::from_millis(500));
        let standby = s.sim.agent::<NakcastStandby>(s.standby).unwrap();
        assert!(!standby.is_promoted());
        assert!(standby.observed_count() >= 45);
        for &rx in &s.rxs {
            let r = s.sim.agent::<NakcastReceiver>(rx).unwrap();
            assert_eq!(r.sender_changes(), 0);
        }
    }

    #[test]
    fn failover_continues_stream_to_full_delivery() {
        // 500 samples at 100 Hz = 5 s of publishing; crash the primary
        // mid-stream and let the standby finish the job.
        let mut s = build(500, 100.0, 3, 0.02, 11);
        let mut plan = FaultPlan::new().crash_at(SimTime::from_secs(2), s.tx);
        plan.run_until(&mut s.sim, SimTime::from_secs(12));
        let standby = s.sim.agent::<NakcastStandby>(s.standby).unwrap();
        assert!(standby.is_promoted());
        // Detection happened within the timeout plus one check interval.
        let detected = standby.promoted_at().unwrap();
        assert!(
            detected < SimTime::from_millis(2_200),
            "slow detection: {detected:?}"
        );
        assert_eq!(standby.published(), 500);
        for &rx in &s.rxs {
            let r = s.sim.agent::<NakcastReceiver>(rx).unwrap();
            assert_eq!(
                r.log().delivered_count(),
                500,
                "receiver missed samples across the failover (naks={}, give_ups={})",
                r.naks_sent(),
                r.give_ups()
            );
            assert_eq!(r.sender_changes(), 1);
            assert_eq!(r.sender(), s.standby);
        }
    }

    #[test]
    fn late_crash_promotes_standby_to_answer_tail_naks() {
        // Crash right after the final publication: the FIN and tail
        // samples may be unrecovered at some receivers, which must NAK
        // the promoted standby instead of the dead primary.
        let mut s = build(200, 100.0, 2, 0.05, 17);
        let mut plan = FaultPlan::new().crash_at(SimTime::from_millis(1_995), s.tx);
        plan.run_until(&mut s.sim, SimTime::from_secs(10));
        let standby = s.sim.agent::<NakcastStandby>(s.standby).unwrap();
        assert!(standby.is_promoted());
        for &rx in &s.rxs {
            let r = s.sim.agent::<NakcastReceiver>(rx).unwrap();
            assert_eq!(r.log().delivered_count(), 200);
        }
    }

    #[test]
    fn failover_is_deterministic() {
        let run = |seed: u64| {
            let mut s = build(300, 100.0, 2, 0.05, seed);
            let mut plan = FaultPlan::new().crash_at(SimTime::from_millis(1_500), s.tx);
            plan.run_until(&mut s.sim, SimTime::from_secs(10));
            let standby = s.sim.agent::<NakcastStandby>(s.standby).unwrap();
            let mut out = vec![(standby.published(), standby.retransmissions_sent())];
            for &rx in &s.rxs {
                let r = s.sim.agent::<NakcastReceiver>(rx).unwrap();
                out.push((r.log().delivered_count(), r.naks_sent()));
            }
            out
        };
        assert_eq!(run(23), run(23));
    }
}

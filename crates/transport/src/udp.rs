//! Best-effort UDP multicast: the no-recovery baseline.

use adamant_metrics::{Delivery, DenseReceptionLog};
use adamant_proto::{Env, GroupId, Input, ProtoEvent, ProtocolCore, WireMsg};

use crate::config::Tuning;
use crate::profile::{AppSpec, StackProfile};
use crate::publisher::PublisherCore;
use crate::receiver::DataReader;

/// Sender side of plain UDP multicast: publishes and nothing else.
#[derive(Debug)]
pub struct UdpSender {
    core: PublisherCore,
}

impl UdpSender {
    /// Creates a sender publishing `app` into `group`.
    pub fn new(app: AppSpec, profile: StackProfile, tuning: Tuning, group: GroupId) -> Self {
        UdpSender {
            core: PublisherCore::new(app, profile, tuning, group, false, false),
        }
    }

    /// Samples published so far.
    pub fn published(&self) -> u64 {
        self.core.published()
    }
}

impl ProtocolCore for UdpSender {
    fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
        match input {
            Input::Start => self.core.start(env),
            Input::TimerFired { tag, .. } => {
                self.core.handle_timer(env, tag);
            }
            Input::PacketIn { .. } | Input::Tick => {}
        }
    }
}

/// Receiver side of plain UDP multicast: records whatever arrives and
/// survives the end-host drop stage.
#[derive(Debug)]
pub struct UdpReceiver {
    log: DenseReceptionLog,
    drop_probability: f64,
    dropped: u64,
}

impl UdpReceiver {
    /// Creates a receiver expecting `expected` samples, dropping incoming
    /// data with probability `drop_probability` (the paper's end-host loss
    /// injection).
    pub fn new(expected: u64, drop_probability: f64) -> Self {
        UdpReceiver {
            log: DenseReceptionLog::with_capacity(expected),
            drop_probability,
            dropped: 0,
        }
    }
}

impl DataReader for UdpReceiver {
    fn log(&self) -> &DenseReceptionLog {
        &self.log
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl ProtocolCore for UdpReceiver {
    fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
        let Input::PacketIn {
            msg: WireMsg::Data(data),
            ..
        } = input
        else {
            return;
        };
        if env.rng().bernoulli(self.drop_probability) {
            self.dropped += 1;
            return;
        }
        let delivery = Delivery {
            seq: data.seq,
            published_at: data.published_at,
            delivered_at: env.now(),
            recovered: false,
        };
        if self.log.record(delivery) {
            env.deliver(delivery.seq, delivery.published_at, false);
            env.emit(|| ProtoEvent::SampleAccepted {
                seq: delivery.seq,
                published_ns: delivery.published_at.as_nanos(),
                delivered_ns: delivery.delivered_at.as_nanos(),
                recovered: false,
            });
        } else {
            let seq = data.seq;
            env.emit(|| ProtoEvent::SampleDuplicate { seq });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::DataReader;
    use adamant_netsim::{Bandwidth, HostConfig, MachineClass, SimDriver, Simulation};

    fn run(drop_probability: f64) -> (u64, u64) {
        let mut sim = Simulation::new(11);
        let cfg = HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1);
        let rx = sim.add_node(
            cfg,
            SimDriver::new(UdpReceiver::new(1_000, drop_probability)),
        );
        let group = sim.create_group(&[rx]);
        let app = AppSpec::at_rate(1_000, 1_000.0, 12);
        let tx = sim.add_node(
            cfg,
            SimDriver::new(UdpSender::new(
                app,
                StackProfile::new(10.0, 48),
                Tuning::default(),
                group,
            )),
        );
        sim.join_group(group, tx);
        sim.run();
        let r = sim.agent::<UdpReceiver>(rx).unwrap();
        (r.log().delivered_count(), r.dropped())
    }

    #[test]
    fn lossless_delivers_everything() {
        let (delivered, dropped) = run(0.0);
        assert_eq!(delivered, 1_000);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn drop_stage_loses_about_p() {
        let (delivered, dropped) = run(0.05);
        assert_eq!(delivered + dropped, 1_000);
        assert!((30..=70).contains(&dropped), "dropped {dropped}");
    }

    #[test]
    fn sender_reports_published() {
        let mut sim = Simulation::new(1);
        let cfg = HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1);
        let group = sim.create_group(&[]);
        let tx = sim.add_node(
            cfg,
            SimDriver::new(UdpSender::new(
                AppSpec::at_rate(5, 100.0, 12),
                StackProfile::default(),
                Tuning::default(),
                group,
            )),
        );
        sim.run();
        assert_eq!(sim.agent::<UdpSender>(tx).unwrap().published(), 5);
    }
}

//! Flow control: a token-bucket pacer, the ANT `flow_control` property.
//!
//! ACKcast uses it to cap retransmission bursts: a receiver reporting a
//! long missing list after an outage would otherwise trigger a
//! retransmission storm that competes with live data for the sender's CPU
//! and egress link.

use adamant_netsim::{SimDuration, SimTime};

/// A deterministic token bucket over simulated time.
///
/// The bucket holds at most `burst` tokens and refills at `rate_per_sec`.
/// Each admitted packet consumes one token.
///
/// # Examples
///
/// ```
/// use adamant_netsim::SimTime;
/// use adamant_transport::TokenBucket;
///
/// let mut bucket = TokenBucket::new(2.0, 10.0);
/// let t0 = SimTime::ZERO;
/// assert!(bucket.admit(t0));
/// assert!(bucket.admit(t0));
/// assert!(!bucket.admit(t0), "burst exhausted");
/// // 100 ms later one token has refilled.
/// assert!(bucket.admit(SimTime::from_millis(100)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenBucket {
    burst: f64,
    rate_per_sec: f64,
    tokens: f64,
    last_refill: SimTime,
}

impl TokenBucket {
    /// Creates a bucket with `burst` capacity refilling at `rate_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive and finite.
    pub fn new(burst: f64, rate_per_sec: f64) -> Self {
        assert!(
            burst > 0.0 && burst.is_finite(),
            "burst must be positive and finite"
        );
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "rate must be positive and finite"
        );
        TokenBucket {
            burst,
            rate_per_sec,
            tokens: burst,
            last_refill: SimTime::ZERO,
        }
    }

    fn refill(&mut self, now: SimTime) {
        let elapsed = now.saturating_since(self.last_refill);
        self.tokens = (self.tokens + elapsed.as_secs_f64() * self.rate_per_sec).min(self.burst);
        self.last_refill = self.last_refill.max(now);
    }

    /// Tokens currently available at `now`.
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// Attempts to admit one packet at `now`; returns whether it may pass.
    pub fn admit(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// How long from `now` until the next token is available (zero if one
    /// is available already).
    pub fn next_available(&mut self, now: SimTime) -> SimDuration {
        self.refill(now);
        if self.tokens >= 1.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64((1.0 - self.tokens) / self.rate_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_paced() {
        let mut bucket = TokenBucket::new(3.0, 100.0);
        let t0 = SimTime::ZERO;
        assert_eq!(bucket.available(t0), 3.0);
        assert!(bucket.admit(t0));
        assert!(bucket.admit(t0));
        assert!(bucket.admit(t0));
        assert!(!bucket.admit(t0));
        // 100 tokens/s → one per 10 ms.
        assert_eq!(bucket.next_available(t0), SimDuration::from_millis(10));
        assert!(bucket.admit(SimTime::from_millis(10)));
        assert!(!bucket.admit(SimTime::from_millis(10)));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut bucket = TokenBucket::new(5.0, 1_000.0);
        for _ in 0..5 {
            assert!(bucket.admit(SimTime::ZERO));
        }
        // A long idle period refills to exactly `burst`, not beyond.
        assert_eq!(bucket.available(SimTime::from_secs(60)), 5.0);
    }

    #[test]
    fn sustained_rate_is_respected() {
        let mut bucket = TokenBucket::new(1.0, 50.0);
        let mut admitted = 0;
        // Offer a packet every millisecond for one simulated second.
        for ms in 0..1_000u64 {
            if bucket.admit(SimTime::from_millis(ms)) {
                admitted += 1;
            }
        }
        // 50/s sustained plus the initial burst token.
        assert!(
            (50..=52).contains(&admitted),
            "admitted {admitted}, expected ~51"
        );
    }

    #[test]
    fn time_never_runs_backwards() {
        let mut bucket = TokenBucket::new(2.0, 10.0);
        assert!(bucket.admit(SimTime::from_secs(10)));
        // An out-of-order (earlier) timestamp must not panic or mint tokens.
        let before = bucket.available(SimTime::from_secs(5));
        assert!(before <= 2.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        TokenBucket::new(1.0, 0.0);
    }
}

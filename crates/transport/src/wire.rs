//! Message payloads exchanged by the transport protocols.

use adamant_netsim::SimTime;

/// An application data sample (original multicast or unicast retransmission).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataMsg {
    /// Dense sequence number assigned by the publisher, starting at 0.
    pub seq: u64,
    /// When the application published the sample (for latency accounting;
    /// a real implementation carries this inside the marshalled payload).
    pub published_at: SimTime,
    /// Whether this copy is a recovery retransmission.
    pub retransmission: bool,
}

/// A negative acknowledgement listing missing sequence numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NakMsg {
    /// The sequence numbers the receiver is missing.
    pub seqs: Vec<u64>,
}

/// A Ricochet lateral repair packet.
///
/// A real repair carries `XOR(payloads of entries)`; a receiver holding all
/// but one of the covered packets reconstructs the missing one. The
/// simulation carries the covered `(seq, published_at)` pairs — exactly the
/// information a successful XOR reconstruction would yield.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairMsg {
    /// The packets folded into this repair, as `(seq, published_at)`.
    pub entries: Vec<(u64, SimTime)>,
}

/// A sender session heartbeat advertising the highest sequence sent, which
/// bounds gap-detection delay for NAK/ACK protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatMsg {
    /// Highest sequence number published so far, if any.
    pub highest_seq: Option<u64>,
}

/// End-of-stream marker: the stream contains sequences `0..total`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FinMsg {
    /// Total number of samples in the stream.
    pub total: u64,
}

/// A cumulative acknowledgement with an explicit missing list (ACKcast).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AckMsg {
    /// All sequences below this are delivered except those in `missing`.
    pub below: u64,
    /// Sequences below `below` not yet received.
    pub missing: Vec<u64>,
}

/// A group-membership heartbeat from a receiver (failure detection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipMsg {
    /// Monotone heartbeat counter.
    pub epoch: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payloads_round_trip_through_any() {
        use std::any::Any;
        let msg: Box<dyn Any> = Box::new(DataMsg {
            seq: 9,
            published_at: SimTime::from_micros(5),
            retransmission: false,
        });
        let back = msg.downcast_ref::<DataMsg>().unwrap();
        assert_eq!(back.seq, 9);
    }

    #[test]
    fn repair_entries_carry_timestamps() {
        let r = RepairMsg {
            entries: vec![(1, SimTime::from_micros(10)), (2, SimTime::from_micros(20))],
        };
        assert_eq!(r.entries.len(), 2);
    }
}

//! Message payloads exchanged by the transport protocols.
//!
//! The canonical definitions moved to `adamant_proto::wire` when the
//! protocols became sans-I/O cores (the real-UDP runtime needs the byte
//! codec that lives there); this module re-exports them so existing
//! `adamant_transport::wire::DataMsg` paths keep working.

pub use adamant_proto::wire::{
    AckMsg, DataMsg, FinMsg, HeartbeatMsg, MembershipMsg, NakMsg, RepairMsg,
};

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_proto::TimePoint;

    #[test]
    fn payloads_round_trip_through_any() {
        use std::any::Any;
        let msg: Box<dyn Any> = Box::new(DataMsg {
            seq: 9,
            published_at: TimePoint::from_micros(5),
            retransmission: false,
        });
        let back = msg.downcast_ref::<DataMsg>().unwrap();
        assert_eq!(back.seq, 9);
    }

    #[test]
    fn repair_entries_carry_timestamps() {
        let r = RepairMsg {
            entries: vec![
                (1, TimePoint::from_micros(10)),
                (2, TimePoint::from_micros(20)),
            ],
        };
        assert_eq!(r.entries.len(), 2);
    }
}

//! Ricochet: time-critical multicast with lateral error correction (LEC),
//! after Balakrishnan et al. (NSDI'07), parameterised by `R` and `C` as in
//! the ADAMANT paper.
//!
//! The sender multicasts data and never retransmits. Every receiver XORs
//! each window of `R` received packets into a *repair packet* and unicasts
//! it to `C` randomly chosen peer receivers. A receiver holding all but one
//! of a repair's covered packets reconstructs the missing one — low-latency,
//! receiver-to-receiver recovery with *probabilistic* delivery guarantees:
//! some losses are never repaired, so Ricochet trades a little reliability
//! for consistently low latency and jitter. Delivery is unordered and
//! immediate.
//!
//! A flush timer bounds repair latency at low data rates (a real LEC
//! implementation must flush partial XOR windows or slow flows would never
//! repair), and a periodic store-maintenance stall models the packet-store
//! compaction cost of the reference implementation, which grows on slower
//! machines.

use std::collections::{BTreeMap, HashMap, VecDeque};

use adamant_metrics::{Delivery, DenseReceptionLog};
use adamant_proto::wire::{DataMsg, MembershipMsg, RepairMsg};
use adamant_proto::{
    Env, GroupId, Input, NodeId, ProcessingCost, ProtoEvent, ProtocolCore, Span, TimePoint,
    TimerToken, WireMsg,
};

use crate::config::Tuning;
use crate::profile::{AppSpec, StackProfile};
use crate::publisher::PublisherCore;
use crate::receiver::DataReader;
use crate::tags::{
    CONTROL_BYTES, FRAMING_BYTES, REPAIR_BASE_BYTES, REPAIR_PER_SEQ_BYTES, TAG_MEMBERSHIP,
    TAG_REPAIR,
};

/// Timer tag for the repair-window flush.
const TIMER_FLUSH: u64 = 20;
/// Timer tag for membership heartbeats.
const TIMER_MEMBERSHIP: u64 = 21;

/// Sender side of Ricochet: publish-only (recovery is lateral), with a FIN
/// so receivers flush their final repair windows.
#[derive(Debug)]
pub struct RicochetSender {
    core: PublisherCore,
}

impl RicochetSender {
    /// Creates a sender publishing `app` into `group`.
    pub fn new(app: AppSpec, profile: StackProfile, tuning: Tuning, group: GroupId) -> Self {
        let fec_rx = Span::from_micros_f64(tuning.fec_data_cost_us);
        RicochetSender {
            core: PublisherCore::new(app, profile, tuning, group, false, true)
                .with_extra_data_rx(fec_rx),
        }
    }

    /// Samples published so far.
    pub fn published(&self) -> u64 {
        self.core.published()
    }
}

impl ProtocolCore for RicochetSender {
    fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
        match input {
            Input::Start => self.core.start(env),
            Input::TimerFired { tag, .. } => {
                self.core.handle_timer(env, tag);
            }
            Input::PacketIn { .. } | Input::Tick => {}
        }
    }
}

/// Receiver side of Ricochet: immediate delivery, XOR repair generation,
/// lateral recovery, and heartbeat-based peer failure detection.
#[derive(Debug)]
pub struct RicochetReceiver {
    sender: NodeId,
    group: GroupId,
    r: usize,
    c: usize,
    tuning: Tuning,
    drop_probability: f64,
    payload_bytes: u32,
    log: DenseReceptionLog,
    dropped: u64,
    duplicates: u64,
    /// Received/recovered packets retained for XOR reconstruction.
    store: BTreeMap<u64, TimePoint>,
    /// The repair window currently being accumulated.
    window: Vec<(u64, TimePoint)>,
    flush_timer: Option<TimerToken>,
    /// Repairs that could not be decoded yet (≥ 2 unknowns).
    pending: VecDeque<RepairMsg>,
    /// Peer liveness from membership heartbeats.
    last_seen: HashMap<NodeId, TimePoint>,
    started_at: TimePoint,
    epoch: u64,
    stream_active: bool,
    data_packets: u64,
    repairs_sent: u64,
    repairs_received: u64,
    recovered_via_repair: u64,
}

impl RicochetReceiver {
    /// Creates a receiver expecting `expected` samples of `payload_bytes`
    /// from `sender` in `group`, running LEC with parameters `r` and `c`,
    /// with end-host drop probability `drop_probability`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        sender: NodeId,
        group: GroupId,
        expected: u64,
        payload_bytes: u32,
        r: u8,
        c: u8,
        tuning: Tuning,
        drop_probability: f64,
    ) -> Self {
        RicochetReceiver {
            sender,
            group,
            r: r.max(1) as usize,
            c: c.max(1) as usize,
            tuning,
            drop_probability,
            payload_bytes,
            log: DenseReceptionLog::with_capacity(expected),
            dropped: 0,
            duplicates: 0,
            store: BTreeMap::new(),
            window: Vec::new(),
            flush_timer: None,
            pending: VecDeque::new(),
            last_seen: HashMap::new(),
            started_at: TimePoint::ZERO,
            epoch: 0,
            stream_active: true,
            data_packets: 0,
            repairs_sent: 0,
            repairs_received: 0,
            recovered_via_repair: 0,
        }
    }

    /// Repair packets sent (each counted once per targeted peer).
    pub fn repairs_sent(&self) -> u64 {
        self.repairs_sent
    }

    /// Repair packets received from peers.
    pub fn repairs_received(&self) -> u64 {
        self.repairs_received
    }

    /// Samples reconstructed from repairs.
    pub fn recovered_via_repair(&self) -> u64 {
        self.recovered_via_repair
    }

    /// Duplicate data copies discarded.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    fn control_cost(&self) -> ProcessingCost {
        ProcessingCost::symmetric(Span::from_micros_f64(self.tuning.os_packet_cost_us))
    }

    /// Whether `peer` is currently believed alive by the failure detector.
    fn peer_alive(&self, peer: NodeId, now: TimePoint) -> bool {
        let grace = self.tuning.membership_interval * self.tuning.membership_timeout_factor as u64;
        match self.last_seen.get(&peer) {
            Some(&t) => now.saturating_since(t) < grace,
            // Never heard from: alive during the initial grace period.
            None => now.saturating_since(self.started_at) < grace,
        }
    }

    fn prune_store(&mut self) {
        while self.store.len() > self.tuning.ricochet_store {
            let oldest = *self.store.keys().next().expect("store not empty");
            self.store.remove(&oldest);
        }
    }

    /// Sends the current window as a repair packet to `c` live peers.
    fn flush_window(&mut self, env: &mut Env<'_>) {
        if self.window.is_empty() {
            return;
        }
        let entries = std::mem::take(&mut self.window);
        let now = env.now();
        let me = env.node();
        let peers: Vec<NodeId> = env
            .members(self.group)
            .iter()
            .copied()
            .filter(|&n| n != me && n != self.sender && self.peer_alive(n, now))
            .collect();
        if peers.is_empty() {
            return;
        }
        let chosen = env.rng().sample_indices(peers.len(), self.c);
        let size = FRAMING_BYTES
            + REPAIR_BASE_BYTES
            + REPAIR_PER_SEQ_BYTES * entries.len() as u32
            + self.payload_bytes;
        let os = Span::from_micros_f64(self.tuning.os_packet_cost_us);
        let construct = Span::from_micros_f64(self.tuning.fec_repair_tx_cost_us);
        let decode = Span::from_micros_f64(self.tuning.fec_repair_rx_cost_us);
        let msg = RepairMsg { entries };
        let span = msg.entries.len() as u32;
        let copies = chosen.len() as u32;
        for (i, &peer_idx) in chosen.iter().enumerate() {
            // XOR construction happens once; the extra copies pay only the
            // OS send path.
            let tx = if i == 0 { os + construct } else { os };
            env.send(
                peers[peer_idx],
                size,
                TAG_REPAIR,
                ProcessingCost::new(tx, os + decode),
                WireMsg::Repair(msg.clone()),
            );
            self.repairs_sent += 1;
        }
        env.emit(|| ProtoEvent::RepairSent { copies, span });
    }

    /// Registers a newly available packet and re-runs pending repairs to a
    /// fixpoint (iterative decoding).
    fn learn(
        &mut self,
        env: &mut Env<'_>,
        now: TimePoint,
        seq: u64,
        published_at: TimePoint,
        recovered: bool,
    ) {
        if self.log.contains(seq) {
            self.store.insert(seq, published_at);
            return;
        }
        if self.log.record(Delivery {
            seq,
            published_at,
            delivered_at: now,
            recovered,
        }) {
            env.deliver(seq, published_at, recovered);
            env.emit(|| ProtoEvent::SampleAccepted {
                seq,
                published_ns: published_at.as_nanos(),
                delivered_ns: now.as_nanos(),
                recovered,
            });
            if recovered {
                env.emit(|| ProtoEvent::RepairDecoded { seq });
            }
        }
        if recovered {
            self.recovered_via_repair += 1;
        }
        self.store.insert(seq, published_at);
        self.prune_store();
    }

    fn decode_pending(&mut self, env: &mut Env<'_>, now: TimePoint) {
        loop {
            let mut progress = false;
            let mut remaining = VecDeque::with_capacity(self.pending.len());
            while let Some(repair) = self.pending.pop_front() {
                match self.try_decode(&repair) {
                    DecodeOutcome::Recovered(seq, published_at) => {
                        if env.rng().bernoulli(self.tuning.repair_efficacy) {
                            self.learn(env, now, seq, published_at, true);
                        }
                        // Decoded or collided: either way this repair is
                        // spent.
                        progress = true;
                    }
                    DecodeOutcome::Useless => progress = true,
                    DecodeOutcome::Blocked => remaining.push_back(repair),
                }
            }
            self.pending = remaining;
            if !progress || self.pending.is_empty() {
                break;
            }
        }
        while self.pending.len() > self.tuning.ricochet_pending_repairs {
            self.pending.pop_front();
        }
    }

    fn try_decode(&self, repair: &RepairMsg) -> DecodeOutcome {
        let mut unknown: Option<(u64, TimePoint)> = None;
        for &(seq, published_at) in &repair.entries {
            if !self.store.contains_key(&seq) {
                if unknown.is_some() {
                    return DecodeOutcome::Blocked;
                }
                unknown = Some((seq, published_at));
            }
        }
        match unknown {
            Some((seq, published_at)) => DecodeOutcome::Recovered(seq, published_at),
            None => DecodeOutcome::Useless,
        }
    }

    fn on_data(&mut self, env: &mut Env<'_>, data: &DataMsg) {
        if env.rng().bernoulli(self.drop_probability) {
            self.dropped += 1;
            return;
        }
        if self.log.contains(data.seq) {
            self.duplicates += 1;
            let seq = data.seq;
            env.emit(|| ProtoEvent::SampleDuplicate { seq });
            return;
        }
        self.data_packets += 1;
        // Periodic LEC packet-store maintenance stalls the receive path;
        // the stall scales with the machine's CPU factor and is visible to
        // the application as delayed delivery.
        let mut now = env.now();
        if self.tuning.fec_maintenance_every > 0
            && self
                .data_packets
                .is_multiple_of(self.tuning.fec_maintenance_every)
        {
            let stall =
                Span::from_micros_f64(self.tuning.fec_maintenance_cost_us).scale(env.cpu_scale());
            now += stall;
        }
        self.learn(env, now, data.seq, data.published_at, false);
        self.window.push((data.seq, data.published_at));
        self.decode_pending(env, now);
        if self.window.len() >= self.r {
            self.flush_window(env);
            if let Some(token) = self.flush_timer.take() {
                env.cancel_timer(token);
            }
        } else if self.flush_timer.is_none() {
            self.flush_timer = Some(env.set_timer(self.tuning.ricochet_flush, TIMER_FLUSH));
        }
    }

    fn on_repair(&mut self, env: &mut Env<'_>, repair: &RepairMsg) {
        self.repairs_received += 1;
        let now = env.now();
        match self.try_decode(repair) {
            DecodeOutcome::Recovered(seq, published_at) => {
                // The XOR reconstruction succeeds with `repair_efficacy`
                // probability: real LEC windows collide with concurrent
                // losses and receive-buffer slot reuse, which the
                // simplified single-group decoder does not otherwise see.
                if env.rng().bernoulli(self.tuning.repair_efficacy) {
                    self.learn(env, now, seq, published_at, true);
                    self.decode_pending(env, now);
                }
            }
            DecodeOutcome::Useless => {}
            DecodeOutcome::Blocked => {
                self.pending.push_back(repair.clone());
                while self.pending.len() > self.tuning.ricochet_pending_repairs {
                    self.pending.pop_front();
                }
            }
        }
    }
}

enum DecodeOutcome {
    /// Exactly one covered packet is unknown: it can be reconstructed.
    Recovered(u64, TimePoint),
    /// Everything covered is already held.
    Useless,
    /// Two or more unknowns: keep for iterative decoding.
    Blocked,
}

impl DataReader for RicochetReceiver {
    fn log(&self) -> &DenseReceptionLog {
        &self.log
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn duplicates(&self) -> u64 {
        RicochetReceiver::duplicates(self)
    }

    fn protocol_stats(&self) -> crate::ProtocolStats {
        crate::ProtocolStats {
            repairs_sent: self.repairs_sent,
            repairs_received: self.repairs_received,
            recovered: self.recovered_via_repair,
            duplicates: RicochetReceiver::duplicates(self),
            dropped: self.dropped,
            ..crate::ProtocolStats::default()
        }
    }
}

impl ProtocolCore for RicochetReceiver {
    fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
        match input {
            Input::Start => {
                self.started_at = env.now();
                // Random phase: membership heartbeats from different
                // receivers must not collide in lockstep bursts.
                let interval = self.tuning.membership_interval.as_nanos();
                let phase = Span::from_nanos(env.rng().next_below(interval.max(1)));
                env.set_timer(phase, TIMER_MEMBERSHIP);
            }
            Input::PacketIn { src, msg } => match msg {
                WireMsg::Data(data) => {
                    let data = *data;
                    self.on_data(env, &data);
                }
                WireMsg::Repair(repair) => {
                    let repair = repair.clone();
                    self.on_repair(env, &repair);
                }
                WireMsg::Fin(_) => {
                    self.stream_active = false;
                    self.flush_window(env);
                    if let Some(token) = self.flush_timer.take() {
                        env.cancel_timer(token);
                    }
                }
                WireMsg::Membership(_) => {
                    self.last_seen.insert(src, env.now());
                }
                _ => {}
            },
            Input::TimerFired { tag, .. } => match tag {
                TIMER_FLUSH => {
                    self.flush_timer = None;
                    self.flush_window(env);
                }
                TIMER_MEMBERSHIP if self.stream_active => {
                    self.epoch += 1;
                    env.send(
                        self.group,
                        FRAMING_BYTES + CONTROL_BYTES,
                        TAG_MEMBERSHIP,
                        self.control_cost(),
                        WireMsg::Membership(MembershipMsg { epoch: self.epoch }),
                    );
                    env.set_timer(self.tuning.membership_interval, TIMER_MEMBERSHIP);
                }
                _ => {}
            },
            Input::Tick => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_netsim::{Bandwidth, HostConfig, MachineClass, SimDriver, Simulation};

    fn cfg() -> HostConfig {
        HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1)
    }

    fn run_session(
        samples: u64,
        rate_hz: f64,
        receivers: usize,
        drop_probability: f64,
        r: u8,
        c: u8,
        seed: u64,
    ) -> (Simulation, Vec<NodeId>) {
        let mut sim = Simulation::new(seed);
        let app = AppSpec::at_rate(samples, rate_hz, 12);
        let profile = StackProfile::new(10.0, 48);
        let tuning = Tuning::default();
        let group = sim.create_group(&[]);
        let tx = sim.add_node(
            cfg(),
            SimDriver::new(RicochetSender::new(app, profile, tuning, group)),
        );
        sim.join_group(group, tx);
        let mut rx_nodes = Vec::new();
        for _ in 0..receivers {
            let rx = sim.add_node(
                cfg(),
                SimDriver::new(RicochetReceiver::new(
                    tx,
                    group,
                    samples,
                    12,
                    r,
                    c,
                    tuning,
                    drop_probability,
                )),
            );
            sim.join_group(group, rx);
            rx_nodes.push(rx);
        }
        sim.run_until(adamant_netsim::SimTime::from_secs(
            (samples as f64 / rate_hz) as u64 + 5,
        ));
        (sim, rx_nodes)
    }

    #[test]
    fn lossless_run_delivers_everything_without_recovery() {
        let (sim, rxs) = run_session(300, 100.0, 3, 0.0, 4, 3, 7);
        for rx in rxs {
            let r = sim.agent::<RicochetReceiver>(rx).unwrap();
            assert_eq!(r.log().delivered_count(), 300);
            assert_eq!(r.recovered_via_repair(), 0);
            assert!(r.repairs_sent() > 0, "repairs flow even without loss");
        }
    }

    #[test]
    fn lossy_run_recovers_most_losses_laterally() {
        let (sim, rxs) = run_session(2_000, 100.0, 3, 0.05, 4, 3, 13);
        for rx in rxs {
            let r = sim.agent::<RicochetReceiver>(rx).unwrap();
            let reliability = r.log().delivered_count() as f64 / 2_000.0;
            assert!(
                reliability > 0.985,
                "LEC should repair most of the 5% loss, got {reliability}"
            );
            assert!(
                reliability < 1.0,
                "Ricochet gives probabilistic, not perfect, delivery"
            );
            assert!(r.recovered_via_repair() > 0);
        }
    }

    #[test]
    fn unordered_immediate_delivery() {
        // At 1 kHz the inter-arrival (1 ms) is shorter than the repair
        // flush, so recovered packets land after their successors.
        let (sim, rxs) = run_session(2_000, 1_000.0, 3, 0.05, 4, 3, 17);
        let r = sim.agent::<RicochetReceiver>(rxs[0]).unwrap();
        // Losses are recovered later than their successors arrive, so
        // delivery order is not fully sorted.
        let seqs: Vec<u64> = r.log().deliveries().iter().map(|d| d.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_ne!(seqs, sorted, "recovered packets arrive out of order");
    }

    #[test]
    fn recovery_is_fast_relative_to_nak_style() {
        let (sim, rxs) = run_session(2_000, 100.0, 3, 0.05, 4, 3, 23);
        let r = sim.agent::<RicochetReceiver>(rxs[0]).unwrap();
        let recovered: Vec<f64> = r
            .log()
            .deliveries()
            .iter()
            .filter(|d| d.recovered)
            .map(|d| d.latency().as_micros_f64())
            .collect();
        assert!(!recovered.is_empty());
        let avg = recovered.iter().sum::<f64>() / recovered.len() as f64;
        // Bounded by roughly flush (5 ms) + a window of packets + transit.
        assert!(
            avg < 60_000.0,
            "lateral recovery should be millisecond-scale, got {avg} µs"
        );
    }

    #[test]
    fn larger_r_sends_fewer_repairs_at_high_rate() {
        let repairs = |r: u8| {
            let (sim, rxs) = run_session(2_000, 1_000.0, 3, 0.0, r, 3, 29);
            let a = sim.agent::<RicochetReceiver>(rxs[0]).unwrap();
            a.repairs_sent()
        };
        let r4 = repairs(4);
        let r8 = repairs(8);
        assert!(
            r8 < r4,
            "R=8 windows flush half as often as R=4: {r8} vs {r4}"
        );
    }

    #[test]
    fn flush_timer_repairs_low_rate_flows() {
        // At 10 Hz the 5 ms flush fires long before a 4-packet window fills,
        // so losses are still repaired promptly.
        let (sim, rxs) = run_session(200, 10.0, 3, 0.08, 4, 3, 31);
        for rx in rxs {
            let r = sim.agent::<RicochetReceiver>(rx).unwrap();
            let reliability = r.log().delivered_count() as f64 / 200.0;
            assert!(reliability > 0.97, "got {reliability}");
        }
    }

    #[test]
    fn crashed_peer_is_excluded_from_repair_targets() {
        let mut sim = Simulation::new(41);
        let app = AppSpec::at_rate(3_000, 100.0, 12);
        let tuning = Tuning::default();
        let group = sim.create_group(&[]);
        let tx = sim.add_node(
            cfg(),
            SimDriver::new(RicochetSender::new(
                app,
                StackProfile::new(10.0, 48),
                tuning,
                group,
            )),
        );
        sim.join_group(group, tx);
        let mut rxs = Vec::new();
        for _ in 0..4 {
            let rx = sim.add_node(
                cfg(),
                SimDriver::new(RicochetReceiver::new(
                    tx, group, 3_000, 12, 4, 2, tuning, 0.05,
                )),
            );
            sim.join_group(group, rx);
            rxs.push(rx);
        }
        // Let the run start, then crash one receiver.
        sim.run_until(adamant_netsim::SimTime::from_secs(5));
        sim.crash_node(rxs[3]);
        sim.run_until(adamant_netsim::SimTime::from_secs(40));
        // Survivors keep repairing one another.
        for &rx in &rxs[..3] {
            let r = sim.agent::<RicochetReceiver>(rx).unwrap();
            let reliability = r.log().delivered_count() as f64 / 3_000.0;
            assert!(reliability > 0.98, "got {reliability}");
            // Failure detection kicked in: the dead peer stopped being
            // chosen once its heartbeats aged out.
            assert!(r.repairs_received() > 0);
        }
    }
}

//! What the layers above the transport contribute to every packet: the
//! middleware stack profile and the application's traffic specification.

use adamant_netsim::{ProcessingCost, SimDuration};

/// Per-packet contribution of the middleware stack above the transport
/// (marshalling cost and header bytes). The DDS layer supplies one of these
/// per DDS implementation profile.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StackProfile {
    /// Reference CPU cost (pc3000) the middleware adds on each side of
    /// every data packet.
    pub per_packet: ProcessingCost,
    /// Header bytes the middleware adds to every data packet.
    pub header_bytes: u32,
}

impl StackProfile {
    /// A profile with symmetric per-packet cost of `us` microseconds and
    /// `header_bytes` of framing.
    pub fn new(us: f64, header_bytes: u32) -> Self {
        StackProfile {
            per_packet: ProcessingCost::symmetric(SimDuration::from_micros_f64(us)),
            header_bytes,
        }
    }
}

/// The application traffic of one experiment run: a single data writer
/// publishing fixed-size samples at a fixed rate (§4.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppSpec {
    /// Number of samples to publish.
    pub total_samples: u64,
    /// Interval between samples (the inverse of the sending rate).
    pub interval: SimDuration,
    /// Application payload bytes per sample (12 in the paper).
    pub payload_bytes: u32,
}

impl AppSpec {
    /// Creates a spec publishing `total_samples` samples of
    /// `payload_bytes` at `rate_hz`.
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is not positive or `total_samples` is zero (an
    /// empty stream would leave session timers re-arming forever).
    pub fn at_rate(total_samples: u64, rate_hz: f64, payload_bytes: u32) -> Self {
        assert!(rate_hz > 0.0, "sending rate must be positive");
        assert!(
            total_samples > 0,
            "a stream must contain at least one sample"
        );
        AppSpec {
            total_samples,
            interval: SimDuration::from_secs_f64(1.0 / rate_hz),
            payload_bytes,
        }
    }

    /// The paper's workload: 12-byte samples, 20 000 of them, at `rate_hz`.
    pub fn paper_workload(rate_hz: f64) -> Self {
        AppSpec::at_rate(20_000, rate_hz, 12)
    }

    /// The sending rate in hertz.
    pub fn rate_hz(&self) -> f64 {
        1.0 / self.interval.as_secs_f64()
    }

    /// How long the publishing phase lasts.
    pub fn publish_span(&self) -> SimDuration {
        self.interval * self.total_samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_profile_costs() {
        let p = StackProfile::new(25.0, 48);
        assert_eq!(p.per_packet.tx, SimDuration::from_micros(25));
        assert_eq!(p.per_packet.rx, SimDuration::from_micros(25));
        assert_eq!(p.header_bytes, 48);
    }

    #[test]
    fn app_spec_rates() {
        let app = AppSpec::at_rate(100, 25.0, 12);
        assert_eq!(app.interval, SimDuration::from_millis(40));
        assert!((app.rate_hz() - 25.0).abs() < 1e-9);
        assert_eq!(app.publish_span(), SimDuration::from_secs(4));
    }

    #[test]
    fn paper_workload_matches_section_4_2() {
        let app = AppSpec::paper_workload(50.0);
        assert_eq!(app.total_samples, 20_000);
        assert_eq!(app.payload_bytes, 12);
        assert_eq!(app.interval, SimDuration::from_millis(20));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        AppSpec::at_rate(1, 0.0, 12);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_stream_rejected() {
        AppSpec::at_rate(0, 10.0, 12);
    }
}

//! ACKcast: a window-based ACK-reliable multicast baseline.
//!
//! Receivers positively acknowledge in windows, attaching an explicit list
//! of missing sequences; the sender retransmits anything reported missing.
//! An `rto` timer re-sends the acknowledgement while gaps remain. Delivery
//! is unordered and immediate. ACKcast demonstrates the ANT framework's
//! ACK-reliability and flow-control properties; it is not one of the
//! paper's measured protocols.

use std::collections::BTreeMap;

use adamant_metrics::{Delivery, DenseReceptionLog};
use adamant_proto::wire::{AckMsg, DataMsg};
use adamant_proto::{
    Env, GroupId, Input, NodeId, ProcessingCost, ProtoEvent, ProtocolCore, Span, WireMsg,
};

use crate::config::Tuning;
use crate::flow::TokenBucket;
use crate::profile::{AppSpec, StackProfile};
use crate::publisher::PublisherCore;
use crate::receiver::DataReader;
use crate::tags::{FRAMING_BYTES, NAK_BASE_BYTES, NAK_PER_SEQ_BYTES, TAG_ACK};

/// Timer tag for the receiver's ACK/retry cycle.
const TIMER_ACK: u64 = 30;

/// Sender side of ACKcast.
#[derive(Debug)]
pub struct AckcastSender {
    core: PublisherCore,
    retx_bucket: TokenBucket,
    retransmissions_sent: u64,
    retransmissions_deferred: u64,
}

impl AckcastSender {
    /// Creates a sender publishing `app` into `group`.
    pub fn new(app: AppSpec, profile: StackProfile, tuning: Tuning, group: GroupId) -> Self {
        AckcastSender {
            core: PublisherCore::new(app, profile, tuning, group, true, true),
            retx_bucket: TokenBucket::new(tuning.ack_retx_burst, tuning.ack_retx_rate_per_sec),
            retransmissions_sent: 0,
            retransmissions_deferred: 0,
        }
    }

    /// Samples published so far.
    pub fn published(&self) -> u64 {
        self.core.published()
    }

    /// Unicast retransmissions sent in response to ACK gap reports.
    pub fn retransmissions_sent(&self) -> u64 {
        self.retransmissions_sent
    }

    /// Gap reports deferred by flow control (the receiver's RTO cycle will
    /// re-request them).
    pub fn retransmissions_deferred(&self) -> u64 {
        self.retransmissions_deferred
    }
}

impl ProtocolCore for AckcastSender {
    fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
        match input {
            Input::Start => self.core.start(env),
            Input::TimerFired { tag, .. } => {
                self.core.handle_timer(env, tag);
            }
            Input::PacketIn {
                src,
                msg: WireMsg::Ack(ack),
            } => {
                for &seq in &ack.missing {
                    // Flow control: a long missing list must not turn into a
                    // retransmission storm; deferred gaps come back on the
                    // receiver's next RTO cycle.
                    if !self.retx_bucket.admit(env.now()) {
                        self.retransmissions_deferred += 1;
                        continue;
                    }
                    if self.core.retransmit(env, src, seq) {
                        self.retransmissions_sent += 1;
                        env.emit(|| ProtoEvent::Retransmitted { seq });
                    }
                }
            }
            Input::PacketIn { .. } | Input::Tick => {}
        }
    }
}

/// Receiver side of ACKcast.
#[derive(Debug)]
pub struct AckcastReceiver {
    sender: NodeId,
    rto: Span,
    tuning: Tuning,
    drop_probability: f64,
    log: DenseReceptionLog,
    dropped: u64,
    duplicates: u64,
    /// Missing sequences with their retry counts.
    missing: BTreeMap<u64, u32>,
    highest_advertised: Option<u64>,
    since_last_ack: u32,
    ack_timer_armed: bool,
    acks_sent: u64,
    give_ups: u64,
}

impl AckcastReceiver {
    /// Creates a receiver expecting `expected` samples from `sender`,
    /// re-ACKing unfilled gaps every `rto`.
    pub fn new(
        sender: NodeId,
        expected: u64,
        rto: Span,
        tuning: Tuning,
        drop_probability: f64,
    ) -> Self {
        AckcastReceiver {
            sender,
            rto,
            tuning,
            drop_probability,
            log: DenseReceptionLog::with_capacity(expected),
            dropped: 0,
            duplicates: 0,
            missing: BTreeMap::new(),
            highest_advertised: None,
            since_last_ack: 0,
            ack_timer_armed: false,
            acks_sent: 0,
            give_ups: 0,
        }
    }

    /// Acknowledgement packets sent.
    pub fn acks_sent(&self) -> u64 {
        self.acks_sent
    }

    /// Sequences abandoned after exhausting retries.
    pub fn give_ups(&self) -> u64 {
        self.give_ups
    }

    /// Duplicate data copies discarded.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    fn note_advertised_upto(&mut self, upto: u64) {
        let start = match self.highest_advertised {
            Some(h) if h >= upto => return,
            Some(h) => h + 1,
            None => 0,
        };
        for seq in start..=upto {
            if !self.log.contains(seq) {
                self.missing.entry(seq).or_insert(0);
            }
        }
        self.highest_advertised = Some(upto);
    }

    fn send_ack(&mut self, env: &mut Env<'_>) {
        let mut exhausted = Vec::new();
        let mut report = Vec::new();
        for (&seq, retries) in self.missing.iter_mut() {
            if *retries >= self.tuning.nak_max_retries {
                exhausted.push(seq);
            } else {
                *retries += 1;
                report.push(seq);
            }
        }
        for seq in exhausted {
            self.missing.remove(&seq);
            self.give_ups += 1;
            env.emit(|| ProtoEvent::NakGiveUp { seq });
        }
        let below = self.highest_advertised.map_or(0, |h| h + 1);
        let missing_count = report.len() as u32;
        let size = FRAMING_BYTES + NAK_BASE_BYTES + NAK_PER_SEQ_BYTES * missing_count;
        let os = Span::from_micros_f64(self.tuning.os_packet_cost_us);
        env.send(
            self.sender,
            size,
            TAG_ACK,
            ProcessingCost::symmetric(os),
            WireMsg::Ack(AckMsg {
                below,
                missing: report,
            }),
        );
        self.acks_sent += 1;
        env.emit(|| ProtoEvent::NakSent {
            count: missing_count,
        });
        self.since_last_ack = 0;
        if !self.missing.is_empty() && !self.ack_timer_armed {
            env.set_timer(self.rto, TIMER_ACK);
            self.ack_timer_armed = true;
        }
    }

    fn on_data(&mut self, env: &mut Env<'_>, data: &DataMsg) {
        if env.rng().bernoulli(self.drop_probability) {
            self.dropped += 1;
            return;
        }
        if data.seq > 0 {
            self.note_advertised_upto(data.seq - 1);
        }
        self.highest_advertised = Some(
            self.highest_advertised
                .map_or(data.seq, |h| h.max(data.seq)),
        );
        self.missing.remove(&data.seq);
        let delivery = Delivery {
            seq: data.seq,
            published_at: data.published_at,
            delivered_at: env.now(),
            recovered: data.retransmission,
        };
        let fresh = self.log.record(delivery);
        if fresh {
            env.deliver(delivery.seq, delivery.published_at, delivery.recovered);
            env.emit(|| ProtoEvent::SampleAccepted {
                seq: delivery.seq,
                published_ns: delivery.published_at.as_nanos(),
                delivered_ns: delivery.delivered_at.as_nanos(),
                recovered: delivery.recovered,
            });
        } else {
            self.duplicates += 1;
            let seq = data.seq;
            env.emit(|| ProtoEvent::SampleDuplicate { seq });
        }
        self.since_last_ack += 1;
        if self.since_last_ack >= self.tuning.ack_window && !self.missing.is_empty() {
            self.send_ack(env);
        } else if !self.missing.is_empty() && !self.ack_timer_armed {
            env.set_timer(self.rto, TIMER_ACK);
            self.ack_timer_armed = true;
        }
    }
}

impl DataReader for AckcastReceiver {
    fn log(&self) -> &DenseReceptionLog {
        &self.log
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn duplicates(&self) -> u64 {
        AckcastReceiver::duplicates(self)
    }

    fn protocol_stats(&self) -> crate::ProtocolStats {
        crate::ProtocolStats {
            acks_sent: self.acks_sent,
            recovered: self.log.recovered_count(),
            give_ups: self.give_ups,
            duplicates: AckcastReceiver::duplicates(self),
            dropped: self.dropped,
            ..crate::ProtocolStats::default()
        }
    }
}

impl ProtocolCore for AckcastReceiver {
    fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
        match input {
            Input::PacketIn { msg, .. } => match msg {
                WireMsg::Data(data) => {
                    let data = *data;
                    self.on_data(env, &data);
                }
                WireMsg::Heartbeat(hb) => {
                    if let Some(high) = hb.highest_seq {
                        self.note_advertised_upto(high);
                        if !self.missing.is_empty() && !self.ack_timer_armed {
                            env.set_timer(self.rto, TIMER_ACK);
                            self.ack_timer_armed = true;
                        }
                    }
                }
                WireMsg::Fin(fin) if fin.total > 0 => {
                    self.note_advertised_upto(fin.total - 1);
                    if !self.missing.is_empty() {
                        self.send_ack(env);
                    }
                }
                _ => {}
            },
            Input::TimerFired { tag: TIMER_ACK, .. } => {
                self.ack_timer_armed = false;
                if !self.missing.is_empty() {
                    self.send_ack(env);
                }
            }
            Input::Start | Input::TimerFired { .. } | Input::Tick => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_netsim::{Bandwidth, HostConfig, MachineClass, SimDriver, Simulation};

    fn run_session(samples: u64, drop_probability: f64, seed: u64) -> (Simulation, Vec<NodeId>) {
        let mut sim = Simulation::new(seed);
        let cfg = HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1);
        let app = AppSpec::at_rate(samples, 100.0, 12);
        let tuning = Tuning::default();
        let group = sim.create_group(&[]);
        let tx = sim.add_node(
            cfg,
            SimDriver::new(AckcastSender::new(
                app,
                StackProfile::new(10.0, 48),
                tuning,
                group,
            )),
        );
        sim.join_group(group, tx);
        let mut rxs = Vec::new();
        for _ in 0..3 {
            let rx = sim.add_node(
                cfg,
                SimDriver::new(AckcastReceiver::new(
                    tx,
                    samples,
                    Span::from_millis(20),
                    tuning,
                    drop_probability,
                )),
            );
            sim.join_group(group, rx);
            rxs.push(rx);
        }
        sim.run_until(adamant_netsim::SimTime::from_secs(samples / 100 + 5));
        (sim, rxs)
    }

    #[test]
    fn lossless_run_sends_no_gap_reports() {
        let (sim, rxs) = run_session(300, 0.0, 3);
        for rx in rxs {
            let r = sim.agent::<AckcastReceiver>(rx).unwrap();
            assert_eq!(r.log().delivered_count(), 300);
            assert_eq!(r.give_ups(), 0);
        }
    }

    #[test]
    fn retransmission_storms_are_paced() {
        // Tiny bucket: a burst of gap reports must be deferred, yet the
        // RTO retry loop still converges to full reliability.
        let mut sim = Simulation::new(21);
        let cfg = HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1);
        let tuning = Tuning {
            ack_retx_burst: 2.0,
            ack_retx_rate_per_sec: 200.0,
            ..Tuning::default()
        };
        let app = AppSpec::at_rate(600, 200.0, 12);
        let group = sim.create_group(&[]);
        let tx = sim.add_node(
            cfg,
            SimDriver::new(AckcastSender::new(
                app,
                StackProfile::new(10.0, 48),
                tuning,
                group,
            )),
        );
        sim.join_group(group, tx);
        let rx = sim.add_node(
            cfg,
            SimDriver::new(AckcastReceiver::new(
                tx,
                600,
                Span::from_millis(20),
                tuning,
                0.2,
            )),
        );
        sim.join_group(group, rx);
        sim.run_until(adamant_netsim::SimTime::from_secs(30));
        let s = sim.agent::<AckcastSender>(tx).unwrap();
        assert!(
            s.retransmissions_deferred() > 0,
            "the tiny bucket should have deferred something"
        );
        let r = sim.agent::<AckcastReceiver>(rx).unwrap();
        assert_eq!(r.log().delivered_count(), 600, "RTO retries still converge");
    }

    #[test]
    fn lossy_run_recovers_fully() {
        let (sim, rxs) = run_session(1_000, 0.05, 7);
        for rx in rxs {
            let r = sim.agent::<AckcastReceiver>(rx).unwrap();
            assert_eq!(
                r.log().delivered_count(),
                1_000,
                "dropped={} acks={} give_ups={}",
                r.dropped(),
                r.acks_sent(),
                r.give_ups()
            );
            assert!(r.acks_sent() > 0);
        }
        let s = sim.agent::<AckcastSender>(NodeId::from_index(0)).unwrap();
        assert!(s.retransmissions_sent() > 0);
    }
}

//! NAKcast: NAK-based reliable *ordered* multicast with a tunable NAK
//! timeout, as evaluated in the paper.
//!
//! The sender multicasts data and short session heartbeats advertising the
//! highest sequence sent; receivers detect gaps from later packets or
//! heartbeats, wait `timeout` (the protocol's tunable parameter — 50, 25,
//! 10, or 1 ms in the paper), then NAK the sender, which retransmits via
//! unicast. Delivery to the application is in publication order: a missing
//! packet holds back its successors until it is recovered or abandoned,
//! which is where NAKcast pays latency and jitter under loss.
//!
//! Both sides are sans-I/O [`ProtocolCore`]s: the simulator drives them
//! through `adamant_netsim::SimDriver`, the real-UDP runtime through
//! `adamant-rt`.

use std::collections::{BTreeMap, BTreeSet};

use adamant_metrics::{Delivery, DenseReceptionLog};
use adamant_proto::wire::{DataMsg, NakMsg};
use adamant_proto::{
    Env, GroupId, Input, LiveJoin, NodeId, ProcessingCost, ProtoEvent, ProtocolCore, Span,
    TimePoint, TimerToken, WireMsg,
};

use crate::config::Tuning;
use crate::profile::{AppSpec, StackProfile};
use crate::publisher::PublisherCore;
use crate::receiver::DataReader;
use crate::tags::{FRAMING_BYTES, NAK_BASE_BYTES, NAK_PER_SEQ_BYTES, TAG_NAK};

/// Timer tag for the receiver's NAK scan.
const TIMER_SCAN: u64 = 10;

/// Base wait after a NAK before re-NAKing the same sequence (covers the
/// LAN retransmission round trip); doubles with each retry up to
/// [`RENAK_MAX`], so high-RTT paths (e.g. a satellite hop) do not trigger
/// duplicate-retransmission storms while the first answer is in flight.
const RENAK_EXTRA: Span = Span::from_millis(5);
/// Upper bound of the exponential re-NAK backoff.
const RENAK_MAX: Span = Span::from_secs(2);

/// The re-NAK backoff after `retries` attempts.
fn renak_backoff(retries: u32) -> Span {
    let doubled = RENAK_EXTRA * 2u64.saturating_pow(retries.min(16));
    doubled.min(RENAK_MAX)
}

/// A conservative upper bound on how long a NAKcast receiver can take to
/// deliver a recovered sample after its publication: one heartbeat interval
/// to detect the gap, then the full NAK retry schedule (`timeout` plus the
/// exponential re-NAK backoff, for every permitted retry). Any recovered
/// delivery slower than this means the receiver kept waiting on a sequence
/// it should have abandoned — the invariant the runtime-verification
/// checker enforces.
pub fn nakcast_recovery_bound(timeout: Span, tuning: &Tuning) -> Span {
    let mut bound = tuning.heartbeat_interval;
    for retries in 0..=tuning.nak_max_retries {
        bound = bound + timeout + renak_backoff(retries);
    }
    bound
}

/// Sender side of NAKcast: publishes, heartbeats, and answers NAKs with
/// unicast retransmissions.
#[derive(Debug, Clone)]
pub struct NakcastSender {
    core: PublisherCore,
    retransmissions_sent: u64,
}

impl NakcastSender {
    /// Creates a sender publishing `app` into `group`.
    pub fn new(app: AppSpec, profile: StackProfile, tuning: Tuning, group: GroupId) -> Self {
        NakcastSender {
            core: PublisherCore::new(app, profile, tuning, group, true, true),
            retransmissions_sent: 0,
        }
    }

    /// Unicast retransmissions sent in response to NAKs.
    pub fn retransmissions_sent(&self) -> u64 {
        self.retransmissions_sent
    }

    /// Sequence numbers published so far.
    pub fn published(&self) -> u64 {
        self.core.published()
    }

    /// Bounds the retransmission history retained for NAK replays
    /// (builder-style); unbounded by default.
    pub fn with_history_depth(mut self, depth: usize) -> Self {
        self.core = self.core.with_history_depth(depth);
        self
    }
}

impl LiveJoin for NakcastSender {}

impl ProtocolCore for NakcastSender {
    fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
        match input {
            Input::Start => self.core.start(env),
            Input::TimerFired { tag, .. } => {
                self.core.handle_timer(env, tag);
            }
            Input::PacketIn {
                src,
                msg: WireMsg::Nak(nak),
            } => {
                for &seq in &nak.seqs {
                    if self.core.retransmit(env, src, seq) {
                        self.retransmissions_sent += 1;
                        env.emit(|| ProtoEvent::Retransmitted { seq });
                    }
                }
            }
            Input::PacketIn { .. } | Input::Tick => {}
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingSample {
    published_at: TimePoint,
    recovered: bool,
}

#[derive(Debug, Clone, Copy)]
struct MissingState {
    nak_at: TimePoint,
    retries: u32,
}

/// Receiver side of NAKcast.
#[derive(Debug, Clone)]
pub struct NakcastReceiver {
    sender: NodeId,
    timeout: Span,
    tuning: Tuning,
    drop_probability: f64,
    log: DenseReceptionLog,
    dropped: u64,
    duplicates: u64,
    next_deliver: u64,
    /// Live-join floor: sequences below this predate the join and are
    /// ignored outright (a durable wrapper recovers them instead).
    floor: u64,
    buffer: BTreeMap<u64, PendingSample>,
    missing: BTreeMap<u64, MissingState>,
    abandoned: BTreeSet<u64>,
    highest_advertised: Option<u64>,
    scan_timer: Option<(TimerToken, TimePoint)>,
    naks_sent: u64,
    give_ups: u64,
    sender_changes: u64,
}

impl NakcastReceiver {
    /// Creates a receiver expecting `expected` samples from `sender`,
    /// NAKing after `timeout`, with end-host drop probability
    /// `drop_probability`.
    pub fn new(
        sender: NodeId,
        expected: u64,
        timeout: Span,
        tuning: Tuning,
        drop_probability: f64,
    ) -> Self {
        NakcastReceiver {
            sender,
            timeout,
            tuning,
            drop_probability,
            log: DenseReceptionLog::with_capacity(expected),
            dropped: 0,
            duplicates: 0,
            next_deliver: 0,
            floor: 0,
            buffer: BTreeMap::new(),
            missing: BTreeMap::new(),
            abandoned: BTreeSet::new(),
            highest_advertised: None,
            scan_timer: None,
            naks_sent: 0,
            give_ups: 0,
            sender_changes: 0,
        }
    }

    /// Re-targets NAKs at whoever is currently speaking for the stream:
    /// hearing session traffic from a new source means a standby was
    /// promoted after a sender failover.
    fn note_sender(&mut self, src: NodeId) {
        if src != self.sender {
            self.sender = src;
            self.sender_changes += 1;
        }
    }

    /// The node this receiver currently NAKs (the original sender, or the
    /// promoted standby after a failover).
    pub fn sender(&self) -> NodeId {
        self.sender
    }

    /// How many times the receiver re-targeted to a different sender.
    pub fn sender_changes(&self) -> u64 {
        self.sender_changes
    }

    /// NAK packets sent.
    pub fn naks_sent(&self) -> u64 {
        self.naks_sent
    }

    /// Sequences abandoned after exhausting NAK retries.
    pub fn give_ups(&self) -> u64 {
        self.give_ups
    }

    /// Duplicate data copies discarded.
    pub fn duplicates(&self) -> u64 {
        self.duplicates + self.log.duplicate_count()
    }

    fn is_known(&self, seq: u64) -> bool {
        self.log.contains(seq)
            || self.buffer.contains_key(&seq)
            || self.abandoned.contains(&seq)
            || self.missing.contains_key(&seq)
    }

    /// Marks every unseen sequence `<= upto` missing and advances the
    /// advertised high-water mark.
    fn note_advertised_upto(&mut self, now: TimePoint, upto: u64) {
        let start = match self.highest_advertised {
            Some(h) if h >= upto => return,
            Some(h) => h + 1,
            None => 0,
        };
        for seq in start..=upto {
            if !self.is_known(seq) {
                self.missing.insert(
                    seq,
                    MissingState {
                        nak_at: now + self.timeout,
                        retries: 0,
                    },
                );
            }
        }
        self.highest_advertised = Some(upto);
    }

    /// Delivers the contiguous prefix available in the hold-back buffer,
    /// skipping abandoned sequences.
    fn try_deliver(&mut self, env: &mut Env<'_>) {
        let now = env.now();
        loop {
            if self.abandoned.contains(&self.next_deliver) {
                self.next_deliver += 1;
                continue;
            }
            let Some(sample) = self.buffer.remove(&self.next_deliver) else {
                break;
            };
            let delivery = Delivery {
                seq: self.next_deliver,
                published_at: sample.published_at,
                delivered_at: now,
                recovered: sample.recovered,
            };
            if self.log.record(delivery) {
                env.deliver(delivery.seq, delivery.published_at, delivery.recovered);
                env.emit(|| ProtoEvent::SampleAccepted {
                    seq: delivery.seq,
                    published_ns: delivery.published_at.as_nanos(),
                    delivered_ns: delivery.delivered_at.as_nanos(),
                    recovered: delivery.recovered,
                });
            }
            self.next_deliver += 1;
        }
    }

    /// (Re-)arms the scan timer for the earliest pending NAK deadline.
    fn reschedule_scan(&mut self, env: &mut Env<'_>) {
        let Some(min_at) = self.missing.values().map(|m| m.nak_at).min() else {
            return;
        };
        if let Some((token, at)) = self.scan_timer {
            if at <= min_at {
                return;
            }
            env.cancel_timer(token);
        }
        let delay = min_at.saturating_since(env.now());
        let token = env.set_timer(delay, TIMER_SCAN);
        self.scan_timer = Some((token, min_at));
    }

    fn on_scan(&mut self, env: &mut Env<'_>) {
        self.scan_timer = None;
        let now = env.now();
        let mut due = Vec::new();
        let mut exhausted = Vec::new();
        for (&seq, state) in &self.missing {
            if state.nak_at <= now {
                if state.retries >= self.tuning.nak_max_retries {
                    exhausted.push(seq);
                } else {
                    due.push(seq);
                }
            }
        }
        for seq in exhausted {
            self.missing.remove(&seq);
            self.abandoned.insert(seq);
            self.give_ups += 1;
            env.emit(|| ProtoEvent::NakGiveUp { seq });
        }
        if !due.is_empty() {
            let size = FRAMING_BYTES + NAK_BASE_BYTES + NAK_PER_SEQ_BYTES * due.len() as u32;
            let os = Span::from_micros_f64(self.tuning.os_packet_cost_us);
            env.send(
                self.sender,
                size,
                TAG_NAK,
                ProcessingCost::symmetric(os),
                WireMsg::Nak(NakMsg { seqs: due.clone() }),
            );
            self.naks_sent += 1;
            env.emit(|| ProtoEvent::NakSent {
                count: due.len() as u32,
            });
            for seq in due {
                if let Some(state) = self.missing.get_mut(&seq) {
                    state.nak_at = now + self.timeout + renak_backoff(state.retries);
                    state.retries += 1;
                }
            }
        }
        self.try_deliver(env);
        self.reschedule_scan(env);
    }

    fn on_data(&mut self, env: &mut Env<'_>, data: &DataMsg) {
        if data.seq < self.floor {
            // Pre-join history: never buffered or NAKed here — a durable
            // wrapper owns recovery below the join floor.
            return;
        }
        if env.rng().bernoulli(self.drop_probability) {
            self.dropped += 1;
            return;
        }
        let now = env.now();
        if data.seq > 0 {
            self.note_advertised_upto(now, data.seq - 1);
        }
        self.highest_advertised = Some(
            self.highest_advertised
                .map_or(data.seq, |h| h.max(data.seq)),
        );
        self.missing.remove(&data.seq);
        if self.abandoned.remove(&data.seq) {
            // Late arrival of an abandoned sequence: deliver out of order
            // rather than discard, so reliability reflects it.
            let delivery = Delivery {
                seq: data.seq,
                published_at: data.published_at,
                delivered_at: now,
                recovered: true,
            };
            if self.log.record(delivery) {
                env.deliver(delivery.seq, delivery.published_at, true);
                env.emit(|| ProtoEvent::SampleAccepted {
                    seq: delivery.seq,
                    published_ns: delivery.published_at.as_nanos(),
                    delivered_ns: delivery.delivered_at.as_nanos(),
                    recovered: true,
                });
            }
        } else if self.log.contains(data.seq) || self.buffer.contains_key(&data.seq) {
            self.duplicates += 1;
            let seq = data.seq;
            env.emit(|| ProtoEvent::SampleDuplicate { seq });
        } else {
            self.buffer.insert(
                data.seq,
                PendingSample {
                    published_at: data.published_at,
                    recovered: data.retransmission,
                },
            );
        }
        self.try_deliver(env);
        self.reschedule_scan(env);
    }
}

impl LiveJoin for NakcastReceiver {
    /// Positions the receiver at the live edge: in-order delivery resumes
    /// at `next`, nothing below it is ever marked missing, and the
    /// advertised high-water mark starts just below the join point.
    fn join_at(&mut self, next: u64) {
        self.next_deliver = next;
        self.floor = next;
        self.highest_advertised = next.checked_sub(1);
    }
}

impl DataReader for NakcastReceiver {
    fn log(&self) -> &DenseReceptionLog {
        &self.log
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn duplicates(&self) -> u64 {
        NakcastReceiver::duplicates(self)
    }

    fn protocol_stats(&self) -> crate::ProtocolStats {
        crate::ProtocolStats {
            naks_sent: self.naks_sent,
            recovered: self.log.recovered_count(),
            give_ups: self.give_ups,
            duplicates: NakcastReceiver::duplicates(self),
            dropped: self.dropped,
            ..crate::ProtocolStats::default()
        }
    }
}

impl ProtocolCore for NakcastReceiver {
    fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
        match input {
            Input::PacketIn { src, msg } => match msg {
                WireMsg::Data(data) => {
                    let data = *data;
                    self.note_sender(src);
                    self.on_data(env, &data);
                }
                WireMsg::Heartbeat(hb) => {
                    self.note_sender(src);
                    if let Some(high) = hb.highest_seq {
                        self.note_advertised_upto(env.now(), high);
                        self.reschedule_scan(env);
                    }
                }
                WireMsg::Fin(fin) => {
                    self.note_sender(src);
                    if fin.total > 0 {
                        self.note_advertised_upto(env.now(), fin.total - 1);
                        self.reschedule_scan(env);
                    }
                }
                _ => {}
            },
            Input::TimerFired {
                tag: TIMER_SCAN, ..
            } => self.on_scan(env),
            Input::Start | Input::TimerFired { .. } | Input::Tick => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_netsim::{Bandwidth, HostConfig, MachineClass, SimDriver, Simulation};

    fn cfg() -> HostConfig {
        HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1)
    }

    fn run_session(
        samples: u64,
        rate_hz: f64,
        receivers: usize,
        drop_probability: f64,
        timeout: Span,
        seed: u64,
    ) -> (Simulation, Vec<NodeId>) {
        let mut sim = Simulation::new(seed);
        let app = AppSpec::at_rate(samples, rate_hz, 12);
        let profile = StackProfile::new(10.0, 48);
        let tuning = Tuning::default();
        let group = sim.create_group(&[]);
        let tx = sim.add_node(
            cfg(),
            SimDriver::new(NakcastSender::new(app, profile, tuning, group)),
        );
        sim.join_group(group, tx);
        let mut rx_nodes = Vec::new();
        for _ in 0..receivers {
            let rx = sim.add_node(
                cfg(),
                SimDriver::new(NakcastReceiver::new(
                    tx,
                    samples,
                    timeout,
                    tuning,
                    drop_probability,
                )),
            );
            sim.join_group(group, rx);
            rx_nodes.push(rx);
        }
        sim.run_until(adamant_netsim::SimTime::from_secs(
            (samples as f64 / rate_hz) as u64 + 5,
        ));
        (sim, rx_nodes)
    }

    #[test]
    fn lossless_run_delivers_everything_in_order() {
        let (sim, rxs) = run_session(200, 100.0, 2, 0.0, Span::from_millis(1), 7);
        for rx in rxs {
            let r = sim.agent::<NakcastReceiver>(rx).unwrap();
            assert_eq!(r.log().delivered_count(), 200);
            assert_eq!(r.naks_sent(), 0);
            // In-order delivery: sequence numbers ascend.
            let seqs: Vec<u64> = r.log().deliveries().iter().map(|d| d.seq).collect();
            let mut sorted = seqs.clone();
            sorted.sort_unstable();
            assert_eq!(seqs, sorted);
        }
    }

    #[test]
    fn lossy_run_recovers_to_full_reliability() {
        let (sim, rxs) = run_session(500, 100.0, 3, 0.05, Span::from_millis(1), 13);
        for rx in rxs {
            let r = sim.agent::<NakcastReceiver>(rx).unwrap();
            assert_eq!(
                r.log().delivered_count(),
                500,
                "NAKcast should recover all losses (dropped={}, naks={}, give_ups={})",
                r.dropped(),
                r.naks_sent(),
                r.give_ups()
            );
            assert!(r.dropped() > 0, "loss injection should have fired");
            assert!(r.naks_sent() > 0);
            assert!(r.log().recovered_count() > 0);
        }
    }

    #[test]
    fn recovered_packets_pay_recovery_latency() {
        let (sim, rxs) = run_session(500, 100.0, 1, 0.05, Span::from_millis(1), 17);
        let r = sim.agent::<NakcastReceiver>(rxs[0]).unwrap();
        let (rec, orig): (Vec<_>, Vec<_>) = r.log().deliveries().iter().partition(|d| d.recovered);
        assert!(!rec.is_empty());
        let avg = |v: &[&Delivery]| {
            v.iter().map(|d| d.latency().as_micros_f64()).sum::<f64>() / v.len() as f64
        };
        let orig_refs: Vec<&Delivery> = orig.to_vec();
        let rec_refs: Vec<&Delivery> = rec.to_vec();
        assert!(
            avg(&rec_refs) > 5.0 * avg(&orig_refs),
            "recovery should cost detection + timeout + RTT: rec {} vs orig {}",
            avg(&rec_refs),
            avg(&orig_refs)
        );
    }

    #[test]
    fn larger_timeout_means_slower_recovery() {
        let avg_latency = |timeout_ms: u64| {
            let (sim, rxs) = run_session(500, 100.0, 1, 0.05, Span::from_millis(timeout_ms), 23);
            let r = sim.agent::<NakcastReceiver>(rxs[0]).unwrap();
            let lat = r.log().latencies_us();
            lat.iter().sum::<f64>() / lat.len() as f64
        };
        let fast = avg_latency(1);
        let slow = avg_latency(50);
        assert!(
            slow > fast + 500.0,
            "50 ms timeout should be visibly slower: {slow} vs {fast}"
        );
    }

    #[test]
    fn renak_backoff_is_exponential_and_capped() {
        assert_eq!(renak_backoff(0), Span::from_millis(5));
        assert_eq!(renak_backoff(1), Span::from_millis(10));
        assert_eq!(renak_backoff(3), Span::from_millis(40));
        assert_eq!(renak_backoff(16), Span::from_secs(2));
        assert_eq!(renak_backoff(60), Span::from_secs(2));
    }

    #[test]
    fn recovery_bound_covers_full_retry_schedule() {
        let tuning = Tuning::default();
        let lazy = nakcast_recovery_bound(Span::from_millis(50), &tuning);
        let eager = nakcast_recovery_bound(Span::from_millis(1), &tuning);
        assert!(eager < lazy);
        // 21 rounds of timeout + exponential backoff capped at 2 s: the
        // bound is loose but finite.
        assert!(lazy > Span::from_secs(10));
        assert!(lazy < Span::from_secs(60));
    }

    #[test]
    fn satellite_rtt_does_not_storm_naks() {
        // A 250 ms uplink makes the NAK→retransmission round trip ~500 ms;
        // with exponential backoff the duplicate-NAK amplification stays
        // bounded and reliability still converges.
        let mut sim = Simulation::new(7);
        let dc = cfg();
        let ground = cfg().with_uplink_delay(Span::from_millis(250));
        let app = AppSpec::at_rate(300, 50.0, 12);
        let tuning = Tuning::default();
        let group = sim.create_group(&[]);
        let tx = sim.add_node(
            ground,
            SimDriver::new(NakcastSender::new(
                app,
                StackProfile::new(10.0, 48),
                tuning,
                group,
            )),
        );
        sim.join_group(group, tx);
        let rx = sim.add_node(
            dc,
            SimDriver::new(NakcastReceiver::new(
                tx,
                300,
                Span::from_millis(1),
                tuning,
                0.1,
            )),
        );
        sim.join_group(group, rx);
        sim.run_until(adamant_netsim::SimTime::from_secs(30));
        let r = sim.agent::<NakcastReceiver>(rx).unwrap();
        assert_eq!(r.log().delivered_count(), 300);
        // ~30 losses × ~8 backoff attempts before the 500 ms round trip
        // completes ≈ 200 NAKs. Without backoff the fixed 6 ms re-NAK
        // cycle would send ~80 NAKs per loss (~2500 total).
        assert!(
            r.naks_sent() < 350,
            "NAK amplification too high: {}",
            r.naks_sent()
        );
        let s = sim.agent::<NakcastSender>(tx).unwrap();
        assert!(
            s.retransmissions_sent() < 350,
            "retransmission amplification too high: {}",
            s.retransmissions_sent()
        );
    }

    #[test]
    fn tail_loss_recovered_via_fin() {
        // Tiny stream at low rate: losses in the tail can only be detected
        // through heartbeat/FIN advertisement.
        let (sim, rxs) = run_session(20, 10.0, 1, 0.3, Span::from_millis(1), 29);
        let r = sim.agent::<NakcastReceiver>(rxs[0]).unwrap();
        assert_eq!(r.log().delivered_count(), 20);
    }

    #[test]
    fn partitioned_receiver_reconverges_after_heal() {
        // Partition one receiver away from the sender mid-stream, heal
        // before the stream ends, and require NAK recovery to reconverge
        // to full reliability — the blackout window's losses are repaired
        // through the heartbeat-advertised high-water mark.
        let mut sim = Simulation::new(19);
        let samples = 400u64;
        let app = AppSpec::at_rate(samples, 100.0, 12);
        let tuning = Tuning::default();
        let group = sim.create_group(&[]);
        let tx = sim.add_node(
            cfg(),
            SimDriver::new(NakcastSender::new(
                app,
                StackProfile::new(10.0, 48),
                tuning,
                group,
            )),
        );
        sim.join_group(group, tx);
        let near = sim.add_node(
            cfg(),
            SimDriver::new(NakcastReceiver::new(
                tx,
                samples,
                Span::from_millis(1),
                tuning,
                0.0,
            )),
        );
        sim.join_group(group, near);
        let far = sim.add_node(
            cfg(),
            SimDriver::new(NakcastReceiver::new(
                tx,
                samples,
                Span::from_millis(1),
                tuning,
                0.0,
            )),
        );
        sim.join_group(group, far);

        let mut plan = adamant_netsim::FaultPlan::new()
            .partition_at(
                adamant_netsim::SimTime::from_secs(1),
                vec![vec![tx, near], vec![far]],
            )
            .heal_at(adamant_netsim::SimTime::from_secs(2));
        plan.run_until(&mut sim, adamant_netsim::SimTime::from_secs(10));

        assert!(
            sim.stats().tag(crate::tags::TAG_DATA).partition_drops > 50,
            "the partition should have blacked out ~100 data packets"
        );
        for (name, rx) in [("near", near), ("far", far)] {
            let r = sim.agent::<NakcastReceiver>(rx).unwrap();
            assert_eq!(
                r.log().delivered_count(),
                samples,
                "{name} receiver failed to reconverge (naks={}, give_ups={})",
                r.naks_sent(),
                r.give_ups()
            );
        }
        // The far receiver did the recovering.
        let far_r = sim.agent::<NakcastReceiver>(far).unwrap();
        assert!(far_r.naks_sent() > 0);
        assert!(far_r.log().recovered_count() > 50);
    }

    #[test]
    fn sender_counts_retransmissions() {
        let (sim, _) = run_session(500, 100.0, 2, 0.05, Span::from_millis(1), 31);
        let tx_node = NodeId::from_index(0);
        let s = sim.agent::<NakcastSender>(tx_node).unwrap();
        assert!(s.retransmissions_sent() > 0);
    }
}

//! StreamCast: a TCP-like reliable ordered stream for WAN and cross-AZ
//! paths.
//!
//! Receivers open a connection with a SYN/SYN-ACK handshake, then send a
//! cumulative acknowledgement for every data packet. The sender keeps at
//! most `window` unacknowledged packets in flight per receiver, estimates
//! the RTT with the Jacobson/Karels filter (honouring Karn's rule), and
//! recovers losses sender-side: three duplicate cumulative ACKs trigger a
//! fast retransmit, and an adaptive RTO with exponential backoff covers
//! everything else — including tail losses, which NAK-based protocols can
//! only catch through extra heartbeat traffic. Because every recovery
//! decision is the sender's, StreamCast keeps working when the *reverse*
//! path is lossy too: a lost cumulative ACK is subsumed by the next one.
//!
//! Delivery is ordered: receivers hold back out-of-order packets until the
//! gap fills, exactly like a TCP byte stream segmented into samples.

use std::collections::{BTreeMap, BTreeSet};

use adamant_metrics::{Delivery, DenseReceptionLog};
use adamant_proto::wire::{DataMsg, FinMsg, StreamAckMsg, StreamSynAckMsg, StreamSynMsg};
use adamant_proto::{
    Env, GroupId, Input, NodeId, ProcessingCost, ProtoEvent, ProtocolCore, Span, TimePoint, WireMsg,
};

use adamant_proto::HistoryCache;

use crate::config::Tuning;
use crate::profile::{AppSpec, StackProfile};
use crate::receiver::DataReader;
use crate::tags::{
    CONTROL_BYTES, DATA_HEADER_BYTES, FRAMING_BYTES, TAG_DATA, TAG_FIN, TAG_RETRANSMIT,
    TAG_STREAM_ACK, TAG_STREAM_SYN,
};

/// Timer tag for the sender's retransmission timeout.
const TIMER_RTO: u64 = 40;
/// Timer tag for the receiver's SYN retry cycle.
const TIMER_SYN: u64 = 41;
/// Timer tag for the sender's next publication tick.
const TIMER_PUBLISH: u64 = 42;

/// Initial RTO before the first RTT sample (clamped into the tuned range).
const INITIAL_RTO: Span = Span::from_millis(100);

/// Per-receiver connection state on the sender.
#[derive(Debug, Clone, Copy)]
struct PeerState {
    /// Everything below this is acknowledged in order.
    cum_ack: u64,
    /// The receiver's advertised window in packets.
    window: u32,
    /// Consecutive duplicate cumulative ACKs at `cum_ack`.
    dup_acks: u32,
    /// Whether the peer stopped making progress for long enough that the
    /// sender abandoned retransmitting to it.
    abandoned: bool,
}

/// Sender side of StreamCast.
#[derive(Debug, Clone)]
pub struct StreamCastSender {
    app: AppSpec,
    profile: StackProfile,
    tuning: Tuning,
    group: GroupId,
    window: u32,
    next_seq: u64,
    history: HistoryCache,
    finished: bool,
    started: bool,
    stalled: bool,
    peers: BTreeMap<NodeId, PeerState>,
    /// Sequences ever retransmitted — excluded from RTT sampling (Karn).
    retx_seqs: BTreeSet<u64>,
    srtt: Option<Span>,
    rttvar: Span,
    rto_backoff: u32,
    /// Consecutive RTO fires without any cumulative-ACK progress.
    rto_retries: u32,
    /// High-water mark of the lowest cumulative ACK across peers. The
    /// RTO deadline restarts only when this lagging edge advances — a
    /// healthy peer's progress must not mask a stalled one.
    acked_floor: u64,
    last_progress: TimePoint,
    rto_armed: bool,
    stalls: u64,
    retransmissions_sent: u64,
    fast_retransmits: u64,
    rto_fires: u64,
    give_ups: u64,
}

impl StreamCastSender {
    /// Creates a sender publishing `app` into `group` with a send window
    /// of `window` packets.
    pub fn new(
        app: AppSpec,
        profile: StackProfile,
        tuning: Tuning,
        group: GroupId,
        window: u32,
    ) -> Self {
        StreamCastSender {
            app,
            profile,
            tuning,
            group,
            window: window.max(1),
            next_seq: 0,
            history: HistoryCache::unbounded(),
            finished: false,
            started: false,
            stalled: false,
            peers: BTreeMap::new(),
            retx_seqs: BTreeSet::new(),
            srtt: None,
            rttvar: Span::ZERO,
            rto_backoff: 0,
            rto_retries: 0,
            acked_floor: 0,
            last_progress: TimePoint::ZERO,
            rto_armed: false,
            stalls: 0,
            retransmissions_sent: 0,
            fast_retransmits: 0,
            rto_fires: 0,
            give_ups: 0,
        }
    }

    /// Pre-provisions `node` as a connected peer with receive window
    /// `window` (builder-style).
    ///
    /// ADAMANT deployments know their receiver set at configuration time
    /// (the service agreement fixes it), so membership can be installed
    /// up front instead of discovered through the SYN handshake. A
    /// pre-provisioned sender starts publishing at `Start` rather than
    /// on the first SYN; late SYNs from provisioned peers still get a
    /// SYN-ACK, so dynamically joining receivers mix freely with static
    /// ones.
    pub fn with_peer(mut self, node: NodeId, window: u32) -> Self {
        self.peers.insert(
            node,
            PeerState {
                cum_ack: 0,
                window,
                dup_acks: 0,
                abandoned: false,
            },
        );
        self.started = true;
        self
    }

    /// Samples published so far.
    pub fn published(&self) -> u64 {
        self.next_seq
    }

    /// Whether the final sample has been published.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Retransmissions sent (fast retransmit + RTO).
    pub fn retransmissions_sent(&self) -> u64 {
        self.retransmissions_sent
    }

    /// Retransmissions triggered by duplicate cumulative ACKs.
    pub fn fast_retransmits(&self) -> u64 {
        self.fast_retransmits
    }

    /// RTO expirations that actually retransmitted.
    pub fn rto_fires(&self) -> u64 {
        self.rto_fires
    }

    /// Publication ticks deferred because the send window was closed.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Peers abandoned after the RTO retry budget ran out.
    pub fn give_ups(&self) -> u64 {
        self.give_ups
    }

    /// The smoothed round-trip time estimate, once at least one clean
    /// sample has been taken.
    pub fn srtt(&self) -> Option<Span> {
        self.srtt
    }

    fn data_packet_bytes(&self) -> u32 {
        FRAMING_BYTES + DATA_HEADER_BYTES + self.profile.header_bytes + self.app.payload_bytes
    }

    fn data_cost(&self) -> ProcessingCost {
        let os = Span::from_micros_f64(self.tuning.os_packet_cost_us);
        ProcessingCost::new(os, os).plus(self.profile.per_packet)
    }

    fn control_cost(&self) -> ProcessingCost {
        let os = Span::from_micros_f64(self.tuning.os_packet_cost_us);
        ProcessingCost::symmetric(os)
    }

    /// The current retransmission timeout, with backoff applied.
    fn rto(&self) -> Span {
        let base = match self.srtt {
            Some(srtt) => Span::from_nanos(
                srtt.as_nanos()
                    .saturating_add(self.rttvar.as_nanos().saturating_mul(4)),
            ),
            None => INITIAL_RTO,
        };
        let clamped = base
            .max(self.tuning.stream_rto_min)
            .min(self.tuning.stream_rto_max);
        let scaled = clamped
            .as_nanos()
            .saturating_mul(1u64 << self.rto_backoff.min(16));
        Span::from_nanos(scaled).min(self.tuning.stream_rto_max)
    }

    fn sample_rtt(&mut self, rtt: Span) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = Span::from_nanos(rtt.as_nanos() / 2);
            }
            Some(srtt) => {
                // Jacobson/Karels in nanoseconds: RTTVAR = 3/4 RTTVAR +
                // 1/4 |SRTT - RTT|; SRTT = 7/8 SRTT + 1/8 RTT.
                let err = srtt.as_nanos().abs_diff(rtt.as_nanos());
                self.rttvar = Span::from_nanos(self.rttvar.as_nanos() * 3 / 4 + err / 4);
                self.srtt = Some(Span::from_nanos(
                    srtt.as_nanos() * 7 / 8 + rtt.as_nanos() / 8,
                ));
            }
        }
    }

    /// The lowest cumulative ACK across live peers, or `next_seq` when
    /// every peer (if any) is fully caught up.
    fn min_cum_ack(&self) -> u64 {
        self.peers
            .values()
            .filter(|p| !p.abandoned)
            .map(|p| p.cum_ack)
            .min()
            .unwrap_or(self.next_seq)
    }

    fn window_open(&self) -> bool {
        self.peers
            .values()
            .filter(|p| !p.abandoned)
            .all(|p| self.next_seq < p.cum_ack + u64::from(self.window.min(p.window.max(1))))
    }

    fn outstanding(&self) -> bool {
        self.min_cum_ack() < self.next_seq
    }

    fn arm_rto(&mut self, env: &mut Env<'_>) {
        if !self.rto_armed && self.outstanding() {
            env.set_timer(self.rto(), TIMER_RTO);
            self.rto_armed = true;
        }
    }

    fn publish_tick(&mut self, env: &mut Env<'_>) {
        if self.finished || !self.started {
            return;
        }
        if !self.window_open() {
            // Window closed: stall until a cumulative ACK reopens it. The
            // backlog drains ACK-clocked, one publication per advance.
            self.stalled = true;
            self.stalls += 1;
            return;
        }
        self.stalled = false;
        let seq = self.next_seq;
        let now = env.now();
        if !self.outstanding() {
            // Everything sent so far is acknowledged: this send restarts
            // the retransmission deadline, exactly like TCP restarting
            // its timer when data enters an empty pipe.
            self.last_progress = now;
        }
        self.history.push(seq, now);
        self.next_seq += 1;
        env.send(
            self.group,
            self.data_packet_bytes(),
            TAG_DATA,
            self.data_cost(),
            WireMsg::Data(DataMsg {
                seq,
                published_at: now,
                retransmission: false,
            }),
        );
        if self.next_seq < self.app.total_samples {
            env.set_timer(self.app.interval, TIMER_PUBLISH);
        } else {
            self.finished = true;
            env.send(
                self.group,
                FRAMING_BYTES + CONTROL_BYTES,
                TAG_FIN,
                self.control_cost(),
                WireMsg::Fin(FinMsg {
                    total: self.app.total_samples,
                }),
            );
        }
        self.arm_rto(env);
    }

    fn retransmit(&mut self, env: &mut Env<'_>, to: NodeId, seq: u64) {
        let Some(published_at) = self.history.get(seq) else {
            return;
        };
        self.retx_seqs.insert(seq);
        self.retransmissions_sent += 1;
        env.send(
            to,
            self.data_packet_bytes(),
            TAG_RETRANSMIT,
            self.data_cost(),
            WireMsg::Data(DataMsg {
                seq,
                published_at,
                retransmission: true,
            }),
        );
        env.emit(|| ProtoEvent::Retransmitted { seq });
    }

    fn on_syn(&mut self, env: &mut Env<'_>, src: NodeId, syn: StreamSynMsg) {
        self.peers.entry(src).or_insert(PeerState {
            cum_ack: 0,
            window: syn.window,
            dup_acks: 0,
            abandoned: false,
        });
        env.send(
            src,
            FRAMING_BYTES + CONTROL_BYTES,
            TAG_STREAM_SYN,
            self.control_cost(),
            WireMsg::StreamSynAck(StreamSynAckMsg {
                window: self.window,
            }),
        );
        if !self.started {
            // The stream starts flowing once the first receiver connects.
            self.started = true;
            self.last_progress = env.now();
            env.set_timer(Span::ZERO, TIMER_PUBLISH);
        }
    }

    fn on_ack(&mut self, env: &mut Env<'_>, src: NodeId, ack: StreamAckMsg) {
        let next_seq = self.next_seq;
        let Some(peer) = self.peers.get_mut(&src) else {
            return;
        };
        peer.abandoned = false;
        peer.window = ack.window;
        if ack.cum_ack > peer.cum_ack {
            peer.cum_ack = ack.cum_ack;
            peer.dup_acks = 0;
            // Karn's rule: only sequences never retransmitted produce RTT
            // samples; the newest acknowledged one is representative.
            let newest = ack.cum_ack - 1;
            if !self.retx_seqs.contains(&newest) {
                if let Some(sent_at) = self.history.get(newest) {
                    let rtt = env.now() - sent_at;
                    self.sample_rtt(rtt);
                }
            }
            let floor = self.min_cum_ack();
            if floor > self.acked_floor {
                // Only the lagging edge moving counts as progress for
                // the retransmission deadline; otherwise two healthy
                // receivers keep the RTO from ever covering a third.
                self.acked_floor = floor;
                self.rto_backoff = 0;
                self.rto_retries = 0;
                self.last_progress = env.now();
            }
            self.retx_seqs = self.retx_seqs.split_off(&floor);
            if self.stalled {
                self.publish_tick(env);
            }
        } else if ack.cum_ack == peer.cum_ack && ack.cum_ack < next_seq {
            peer.dup_acks += 1;
            if peer.dup_acks >= self.tuning.stream_dupack_threshold {
                peer.dup_acks = 0;
                let seq = ack.cum_ack;
                self.fast_retransmits += 1;
                self.retransmit(env, src, seq);
            }
        }
        self.arm_rto(env);
    }

    fn on_rto(&mut self, env: &mut Env<'_>) {
        self.rto_armed = false;
        if !self.outstanding() {
            return;
        }
        // The timer restarts whenever progress is made; only an expiry
        // that really is `rto` past the last progress retransmits.
        let deadline = self.last_progress + self.rto();
        if env.now() < deadline {
            env.set_timer(deadline - env.now(), TIMER_RTO);
            self.rto_armed = true;
            return;
        }
        if self.rto_retries >= self.tuning.nak_max_retries {
            // Retry budget exhausted: abandon the peers that stopped
            // progressing so the stream can finish for everyone else.
            let next_seq = self.next_seq;
            for peer in self.peers.values_mut() {
                if !peer.abandoned && peer.cum_ack < next_seq {
                    peer.abandoned = true;
                    self.give_ups += 1;
                }
            }
            if self.stalled {
                self.publish_tick(env);
            }
            self.arm_rto(env);
            return;
        }
        self.rto_fires += 1;
        self.rto_retries += 1;
        // Recover every lagging peer at its own cumulative ACK, not just
        // the ones pinned at the floor. A peer above the floor may still
        // have had its in-flight data lost — the model checker found the
        // schedule: one receiver's ACKs delayed (defining the floor), the
        // other missing a dropped segment above it; a floor-only resend
        // starves the second receiver for a full extra RTO.
        let next_seq = self.next_seq;
        let lagging: Vec<(NodeId, u64)> = self
            .peers
            .iter()
            .filter(|(_, p)| !p.abandoned && p.cum_ack < next_seq)
            .map(|(&node, p)| (node, p.cum_ack))
            .collect();
        for (node, seq) in lagging {
            self.retransmit(env, node, seq);
        }
        self.rto_backoff = (self.rto_backoff + 1).min(16);
        self.last_progress = env.now();
        self.arm_rto(env);
    }
}

impl ProtocolCore for StreamCastSender {
    fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
        match input {
            Input::PacketIn { src, msg } => match msg {
                WireMsg::StreamSyn(syn) => {
                    let syn = *syn;
                    self.on_syn(env, src, syn);
                }
                WireMsg::StreamAck(ack) => {
                    let ack = *ack;
                    self.on_ack(env, src, ack);
                }
                _ => {}
            },
            Input::TimerFired { tag, .. } => match tag {
                TIMER_PUBLISH => self.publish_tick(env),
                TIMER_RTO => self.on_rto(env),
                _ => {}
            },
            Input::Start => {
                // With a pre-provisioned membership the stream flows
                // immediately; a dynamic sender waits for the first SYN.
                if self.started {
                    self.last_progress = env.now();
                    env.set_timer(Span::ZERO, TIMER_PUBLISH);
                }
            }
            Input::Tick => {}
        }
    }
}

/// Receiver side of StreamCast.
#[derive(Debug, Clone)]
pub struct StreamCastReceiver {
    sender: NodeId,
    window: u32,
    tuning: Tuning,
    drop_probability: f64,
    log: DenseReceptionLog,
    dropped: u64,
    duplicates: u64,
    /// Everything below this has been delivered in order.
    cum_ack: u64,
    /// Out-of-order hold-back buffer: `seq -> (published_at, recovered)`.
    buffer: BTreeMap<u64, (TimePoint, bool)>,
    connected: bool,
    syns_sent: u64,
    acks_sent: u64,
    window_overflows: u64,
}

impl StreamCastReceiver {
    /// Creates a receiver expecting `expected` samples from `sender`,
    /// buffering at most `window` out-of-order packets.
    pub fn new(
        sender: NodeId,
        expected: u64,
        window: u32,
        tuning: Tuning,
        drop_probability: f64,
    ) -> Self {
        StreamCastReceiver {
            sender,
            window: window.max(1),
            tuning,
            drop_probability,
            log: DenseReceptionLog::with_capacity(expected),
            dropped: 0,
            duplicates: 0,
            cum_ack: 0,
            buffer: BTreeMap::new(),
            connected: false,
            syns_sent: 0,
            acks_sent: 0,
            window_overflows: 0,
        }
    }

    /// Marks the connection as already established (builder-style): the
    /// receiver side of a pre-provisioned membership (see
    /// [`StreamCastSender::with_peer`]). No SYN is sent and no retry
    /// timer runs; data is acknowledged as usual.
    pub fn with_connected(mut self) -> Self {
        self.connected = true;
        self
    }

    /// Whether the SYN/SYN-ACK handshake has completed.
    pub fn is_connected(&self) -> bool {
        self.connected
    }

    /// Connection requests sent (>1 means the retry timer fired).
    pub fn syns_sent(&self) -> u64 {
        self.syns_sent
    }

    /// Cumulative acknowledgements sent.
    pub fn acks_sent(&self) -> u64 {
        self.acks_sent
    }

    /// Duplicate data copies discarded.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Packets refused because they landed beyond the receive window.
    pub fn window_overflows(&self) -> u64 {
        self.window_overflows
    }

    fn control_cost(&self) -> ProcessingCost {
        let os = Span::from_micros_f64(self.tuning.os_packet_cost_us);
        ProcessingCost::symmetric(os)
    }

    fn send_syn(&mut self, env: &mut Env<'_>) {
        self.syns_sent += 1;
        env.send(
            self.sender,
            FRAMING_BYTES + CONTROL_BYTES,
            TAG_STREAM_SYN,
            self.control_cost(),
            WireMsg::StreamSyn(StreamSynMsg {
                window: self.window,
            }),
        );
        env.set_timer(self.tuning.stream_syn_retry, TIMER_SYN);
    }

    fn send_ack(&mut self, env: &mut Env<'_>) {
        self.acks_sent += 1;
        let remaining = self.window.saturating_sub(self.buffer.len() as u32).max(1);
        env.send(
            self.sender,
            FRAMING_BYTES + CONTROL_BYTES,
            TAG_STREAM_ACK,
            self.control_cost(),
            WireMsg::StreamAck(StreamAckMsg {
                cum_ack: self.cum_ack,
                window: remaining,
            }),
        );
    }

    fn on_data(&mut self, env: &mut Env<'_>, data: &DataMsg) {
        if env.rng().bernoulli(self.drop_probability) {
            self.dropped += 1;
            return;
        }
        if data.seq < self.cum_ack || self.buffer.contains_key(&data.seq) {
            self.duplicates += 1;
            let seq = data.seq;
            env.emit(|| ProtoEvent::SampleDuplicate { seq });
            self.send_ack(env);
            return;
        }
        if data.seq >= self.cum_ack + u64::from(self.window) {
            // Beyond the advertised window: a well-behaved sender never
            // lands here; refuse rather than buffer without bound.
            self.window_overflows += 1;
            self.send_ack(env);
            return;
        }
        self.buffer
            .insert(data.seq, (data.published_at, data.retransmission));
        // Ordered delivery: drain the contiguous prefix.
        while let Some((published_at, recovered)) = self.buffer.remove(&self.cum_ack) {
            let delivery = Delivery {
                seq: self.cum_ack,
                published_at,
                delivered_at: env.now(),
                recovered,
            };
            if self.log.record(delivery) {
                env.deliver(delivery.seq, delivery.published_at, delivery.recovered);
                env.emit(|| ProtoEvent::SampleAccepted {
                    seq: delivery.seq,
                    published_ns: delivery.published_at.as_nanos(),
                    delivered_ns: delivery.delivered_at.as_nanos(),
                    recovered: delivery.recovered,
                });
            }
            self.cum_ack += 1;
        }
        self.send_ack(env);
    }
}

impl DataReader for StreamCastReceiver {
    fn log(&self) -> &DenseReceptionLog {
        &self.log
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }

    fn duplicates(&self) -> u64 {
        StreamCastReceiver::duplicates(self)
    }

    fn protocol_stats(&self) -> crate::ProtocolStats {
        crate::ProtocolStats {
            acks_sent: self.acks_sent,
            recovered: self.log.recovered_count(),
            duplicates: StreamCastReceiver::duplicates(self),
            dropped: self.dropped,
            ..crate::ProtocolStats::default()
        }
    }
}

impl ProtocolCore for StreamCastReceiver {
    fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
        match input {
            Input::Start => {
                if !self.connected {
                    self.send_syn(env);
                }
            }
            Input::PacketIn { msg, .. } => match msg {
                WireMsg::Data(data) => {
                    let data = *data;
                    self.on_data(env, &data);
                }
                WireMsg::StreamSynAck(_) => self.connected = true,
                _ => {}
            },
            Input::TimerFired { tag: TIMER_SYN, .. } => {
                if !self.connected {
                    self.send_syn(env);
                }
            }
            Input::TimerFired { .. } | Input::Tick => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_netsim::{
        Bandwidth, HostConfig, LossModel, MachineClass, NetworkConfig, SimDriver, SimDuration,
        Simulation,
    };

    fn build_session(
        samples: u64,
        window: u32,
        drop_probability: f64,
        seed: u64,
        network: Option<NetworkConfig>,
    ) -> (Simulation, NodeId, Vec<NodeId>) {
        let mut sim = Simulation::new(seed);
        if let Some(network) = network {
            sim.set_network(network);
        }
        let cfg = HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1);
        let app = AppSpec::at_rate(samples, 100.0, 12);
        let tuning = Tuning::default();
        let group = sim.create_group(&[]);
        let tx = sim.add_node(
            cfg,
            SimDriver::new(StreamCastSender::new(
                app,
                StackProfile::new(10.0, 48),
                tuning,
                group,
                window,
            )),
        );
        sim.join_group(group, tx);
        let mut rxs = Vec::new();
        for _ in 0..3 {
            let rx = sim.add_node(
                cfg,
                SimDriver::new(StreamCastReceiver::new(
                    tx,
                    samples,
                    window,
                    tuning,
                    drop_probability,
                )),
            );
            sim.join_group(group, rx);
            rxs.push(rx);
        }
        (sim, tx, rxs)
    }

    fn run_session(
        samples: u64,
        window: u32,
        drop_probability: f64,
        seed: u64,
        network: Option<NetworkConfig>,
    ) -> (Simulation, NodeId, Vec<NodeId>) {
        let (mut sim, tx, rxs) = build_session(samples, window, drop_probability, seed, network);
        sim.run_until(adamant_netsim::SimTime::from_secs(samples / 100 + 10));
        (sim, tx, rxs)
    }

    #[test]
    fn lossless_run_delivers_everything_in_order_without_retransmissions() {
        let (sim, tx, rxs) = run_session(300, 64, 0.0, 3, None);
        for rx in rxs {
            let r = sim.agent::<StreamCastReceiver>(rx).unwrap();
            assert!(r.is_connected());
            assert_eq!(r.log().delivered_count(), 300);
            assert_eq!(r.duplicates(), 0);
        }
        let s = sim.agent::<StreamCastSender>(tx).unwrap();
        assert_eq!(s.retransmissions_sent(), 0);
        assert!(
            s.srtt().is_some(),
            "per-packet ACKs must feed the estimator"
        );
    }

    #[test]
    fn end_host_loss_recovers_fully_and_in_order() {
        let (sim, tx, rxs) = run_session(1_000, 64, 0.05, 7, None);
        for rx in rxs {
            let r = sim.agent::<StreamCastReceiver>(rx).unwrap();
            assert_eq!(
                r.log().delivered_count(),
                1_000,
                "dropped={} acks={}",
                r.dropped(),
                r.acks_sent()
            );
        }
        let s = sim.agent::<StreamCastSender>(tx).unwrap();
        assert!(s.retransmissions_sent() > 0);
        assert!(s.fast_retransmits() > 0, "dup-ACKs should trigger recovery");
        assert_eq!(s.give_ups(), 0);
    }

    #[test]
    fn network_level_loss_hits_control_traffic_too_and_still_recovers() {
        // Bernoulli loss inside the network drops ACKs and SYNs as well as
        // data — the WAN regime. Cumulative ACKs absorb lost ACKs and the
        // SYN retry timer absorbs lost handshakes.
        let network = NetworkConfig {
            propagation: SimDuration::from_millis(25),
            loss: LossModel::Bernoulli(0.05),
        };
        let (sim, tx, rxs) = run_session(500, 64, 0.0, 11, Some(network));
        let mut syns = 0;
        for rx in rxs {
            let r = sim.agent::<StreamCastReceiver>(rx).unwrap();
            assert_eq!(r.log().delivered_count(), 500, "acks={}", r.acks_sent());
            syns += r.syns_sent();
        }
        assert!(syns >= 3);
        let s = sim.agent::<StreamCastSender>(tx).unwrap();
        assert!(s.retransmissions_sent() > 0);
        assert!(
            s.srtt() >= Some(Span::from_millis(50)),
            "srtt sees the WAN RTT"
        );
    }

    #[test]
    fn closed_window_stalls_the_sender_until_acks_reopen_it() {
        // 25 ms one-way propagation and a 4-packet window against a
        // 100 Hz publisher: the pipe needs ~RTT×rate ≈ 5 packets, so the
        // window must close at least once — yet everything still arrives.
        let network = NetworkConfig {
            propagation: SimDuration::from_millis(25),
            loss: LossModel::NONE,
        };
        let (sim, tx, rxs) = run_session(200, 4, 0.0, 5, Some(network));
        let s = sim.agent::<StreamCastSender>(tx).unwrap();
        assert!(s.stalls() > 0, "window never closed");
        assert!(s.is_finished());
        for rx in rxs {
            let r = sim.agent::<StreamCastReceiver>(rx).unwrap();
            assert_eq!(r.log().delivered_count(), 200);
        }
    }

    #[test]
    fn same_schedule_replays_bit_identically() {
        let collect = || {
            let (sim, tx, rxs) = run_session(400, 64, 0.05, 13, None);
            let s = sim.agent::<StreamCastSender>(tx).unwrap();
            let mut summary = vec![
                s.retransmissions_sent(),
                s.fast_retransmits(),
                s.rto_fires(),
                s.stalls(),
            ];
            for rx in rxs {
                let r = sim.agent::<StreamCastReceiver>(rx).unwrap();
                summary.push(r.log().delivered_count());
                summary.push(r.acks_sent());
                summary.push(r.dropped());
            }
            summary
        };
        assert_eq!(collect(), collect());
    }
}

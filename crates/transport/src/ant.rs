//! The ANT (Adaptive Network Transports) framework: builds a complete
//! pub/sub transport session — sender, receivers, multicast group — from a
//! [`TransportConfig`], and collects QoS results afterwards.
//!
//! This is the configuration seam ADAMANT drives: the machine-learning
//! selector picks a [`ProtocolKind`]; `install` composes the corresponding
//! protocol properties into concrete agents on simulated hosts.

use adamant_metrics::QosReport;
use adamant_netsim::{Agent, GroupId, HostConfig, NodeId, SimDriver, SimDuration, Simulation};

use crate::ackcast::{AckcastReceiver, AckcastSender};
use crate::config::{ProtocolKind, TransportConfig};
use crate::failover::NakcastStandby;
use crate::nakcast::{NakcastReceiver, NakcastSender};
use crate::profile::{AppSpec, StackProfile};
use crate::receiver::DataReader;
use crate::ricochet::{RicochetReceiver, RicochetSender};
use crate::shmcast::{ShmCastReceiver, ShmCastSender};
use crate::slingshot::{SlingshotReceiver, SlingshotSender};
use crate::streamcast::{StreamCastReceiver, StreamCastSender};
use crate::tags;
use crate::udp::{UdpReceiver, UdpSender};

/// Everything needed to set up one experiment session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// Transport protocol and tuning.
    pub transport: TransportConfig,
    /// Publication workload.
    pub app: AppSpec,
    /// Middleware stack contribution (from the DDS profile).
    pub stack: StackProfile,
    /// Host running the data writer.
    pub sender_host: HostConfig,
    /// Hosts running the data readers (one reader per host).
    pub receiver_hosts: Vec<HostConfig>,
    /// End-host drop probability applied to data packets at each reader.
    pub drop_probability: f64,
}

/// Node handles of an installed session.
#[derive(Debug, Clone)]
pub struct SessionHandles {
    /// The protocol that was installed.
    pub kind: ProtocolKind,
    /// The data-writer node.
    pub sender: NodeId,
    /// The data-reader nodes.
    pub receivers: Vec<NodeId>,
    /// The multicast group connecting them.
    pub group: GroupId,
    /// Samples the writer will publish.
    pub expected_samples: u64,
}

/// Builds the sender agent for `spec`'s protocol, publishing into `group`.
/// Protocol cores are sans-I/O state machines; here they are mounted on the
/// simulator via [`SimDriver`] (the real-UDP runtime mounts the same cores
/// on sockets instead — see `adamant-rt`).
fn sender_agent(spec: &SessionSpec, group: GroupId) -> Box<dyn Agent> {
    let tuning = spec.transport.tuning;
    let app = spec.app;
    let stack = spec.stack;
    match spec.transport.kind {
        ProtocolKind::Udp => Box::new(SimDriver::new(UdpSender::new(app, stack, tuning, group))),
        ProtocolKind::Nakcast { .. } => Box::new(SimDriver::new(NakcastSender::new(
            app, stack, tuning, group,
        ))),
        ProtocolKind::Ricochet { .. } => Box::new(SimDriver::new(RicochetSender::new(
            app, stack, tuning, group,
        ))),
        ProtocolKind::Ackcast { .. } => Box::new(SimDriver::new(AckcastSender::new(
            app, stack, tuning, group,
        ))),
        ProtocolKind::Slingshot { .. } => Box::new(SimDriver::new(SlingshotSender::new(
            app, stack, tuning, group,
        ))),
        ProtocolKind::StreamCast { window } => Box::new(SimDriver::new(StreamCastSender::new(
            app, stack, tuning, group, window,
        ))),
        ProtocolKind::ShmCast { queue } => Box::new(SimDriver::new(ShmCastSender::new(
            app, stack, tuning, group, queue,
        ))),
    }
}

/// Builds a receiver agent for `spec`'s protocol, expecting the stream
/// from `sender` on `group`.
fn receiver_agent(spec: &SessionSpec, sender: NodeId, group: GroupId) -> Box<dyn Agent> {
    let tuning = spec.transport.tuning;
    let app = spec.app;
    match spec.transport.kind {
        ProtocolKind::Udp => Box::new(SimDriver::new(UdpReceiver::new(
            app.total_samples,
            spec.drop_probability,
        ))),
        ProtocolKind::Nakcast { timeout } => Box::new(SimDriver::new(NakcastReceiver::new(
            sender,
            app.total_samples,
            timeout,
            tuning,
            spec.drop_probability,
        ))),
        ProtocolKind::Ricochet { r, c } => Box::new(SimDriver::new(RicochetReceiver::new(
            sender,
            group,
            app.total_samples,
            app.payload_bytes,
            r,
            c,
            tuning,
            spec.drop_probability,
        ))),
        ProtocolKind::Ackcast { rto } => Box::new(SimDriver::new(AckcastReceiver::new(
            sender,
            app.total_samples,
            rto,
            tuning,
            spec.drop_probability,
        ))),
        ProtocolKind::Slingshot { c } => Box::new(SimDriver::new(SlingshotReceiver::new(
            sender,
            group,
            app.total_samples,
            app.payload_bytes,
            c,
            tuning,
            spec.drop_probability,
        ))),
        ProtocolKind::StreamCast { window } => Box::new(SimDriver::new(StreamCastReceiver::new(
            sender,
            app.total_samples,
            window,
            tuning,
            spec.drop_probability,
        ))),
        ProtocolKind::ShmCast { queue } => Box::new(SimDriver::new(ShmCastReceiver::new(
            sender,
            app.total_samples,
            queue,
            tuning,
        ))),
    }
}

/// Installs a complete session described by `spec` into `sim`.
///
/// Creates the sender host, one host per receiver, the multicast group, and
/// the protocol agents for `spec.transport.kind`.
pub fn install(sim: &mut Simulation, spec: &SessionSpec) -> SessionHandles {
    tags::register_all(sim);
    let group = sim.create_group(&[]);

    // Node ids are assigned sequentially, so the sender's id is known
    // before its agent (which doesn't need it) is built.
    let sender = sim.add_boxed_node(spec.sender_host, sender_agent(spec, group));
    sim.join_group(group, sender);

    let mut receivers = Vec::with_capacity(spec.receiver_hosts.len());
    for &host in &spec.receiver_hosts {
        let node = sim.add_boxed_node(host, receiver_agent(spec, sender, group));
        sim.join_group(group, node);
        receivers.push(node);
    }

    SessionHandles {
        kind: spec.transport.kind,
        sender,
        receivers,
        group,
        expected_samples: spec.app.total_samples,
    }
}

/// Restarts receiver `index` of an installed session after a crash, with a
/// fresh agent of the session's protocol (same node id, host, and group
/// membership). The new incarnation starts with an empty reception log and
/// catches up on the stream through the protocol's own recovery machinery
/// (e.g. NAKcast's heartbeat-advertised high-water mark).
///
/// # Panics
///
/// Panics if the receiver is not currently crashed.
pub fn rejoin_receiver(
    sim: &mut Simulation,
    spec: &SessionSpec,
    handles: &SessionHandles,
    index: usize,
) {
    let node = handles.receivers[index];
    let agent = receiver_agent(spec, handles.sender, handles.group);
    sim.restart_node(node, agent);
    sim.join_group(handles.group, node);
}

/// Adds a warm-standby sender to an installed NAKcast session on `host`.
/// The standby overhears the group, detects primary silence after
/// `detect_timeout`, and promotes itself to continue the stream.
///
/// # Panics
///
/// Panics if the session's protocol is not NAKcast (other protocols have
/// no standby implementation).
pub fn install_standby(
    sim: &mut Simulation,
    spec: &SessionSpec,
    handles: &SessionHandles,
    host: HostConfig,
    detect_timeout: SimDuration,
) -> NodeId {
    assert!(
        matches!(spec.transport.kind, ProtocolKind::Nakcast { .. }),
        "warm standby is only implemented for NAKcast, not {}",
        spec.transport.kind
    );
    let standby = sim.add_node(
        host,
        SimDriver::new(NakcastStandby::new(
            spec.app,
            spec.stack,
            spec.transport.tuning,
            handles.group,
            detect_timeout,
        )),
    );
    sim.join_group(handles.group, standby);
    standby
}

/// Tears down a running session's agents and installs `spec`'s protocol on
/// the same nodes and group — a live mid-stream protocol switch. Every
/// node keeps its id, host configuration, and group membership; the old
/// agents' reception logs are discarded, so callers that need continuity
/// must harvest deliveries *before* switching (see the self-healing layer
/// in `adamant-core`).
///
/// `spec.app.total_samples` should be the *remaining* sample count; the
/// new sender starts a fresh stream numbered from zero.
pub fn reinstall(
    sim: &mut Simulation,
    spec: &SessionSpec,
    handles: &SessionHandles,
) -> SessionHandles {
    let sender = handles.sender;
    if !sim.is_crashed(sender) {
        sim.crash_node(sender);
    }
    sim.restart_node(sender, sender_agent(spec, handles.group));
    for &node in &handles.receivers {
        if !sim.is_crashed(node) {
            sim.crash_node(node);
        }
        sim.restart_node(node, receiver_agent(spec, sender, handles.group));
        sim.join_group(handles.group, node);
    }
    SessionHandles {
        kind: spec.transport.kind,
        sender,
        receivers: handles.receivers.clone(),
        group: handles.group,
        expected_samples: spec.app.total_samples,
    }
}

/// Samples published so far by an installed session's sender.
///
/// # Panics
///
/// Panics if the sender node does not carry `handles`' protocol (e.g. it
/// crashed or was reinstalled under different handles).
pub fn published_count(sim: &Simulation, handles: &SessionHandles) -> u64 {
    let node = handles.sender;
    match handles.kind {
        ProtocolKind::Udp => sim.agent::<UdpSender>(node).expect("sender").published(),
        ProtocolKind::Nakcast { .. } => sim
            .agent::<NakcastSender>(node)
            .expect("sender")
            .published(),
        ProtocolKind::Ricochet { .. } => sim
            .agent::<RicochetSender>(node)
            .expect("sender")
            .published(),
        ProtocolKind::Ackcast { .. } => sim
            .agent::<AckcastSender>(node)
            .expect("sender")
            .published(),
        ProtocolKind::Slingshot { .. } => sim
            .agent::<SlingshotSender>(node)
            .expect("sender")
            .published(),
        ProtocolKind::StreamCast { .. } => sim
            .agent::<StreamCastSender>(node)
            .expect("sender")
            .published(),
        ProtocolKind::ShmCast { .. } => sim
            .agent::<ShmCastSender>(node)
            .expect("sender")
            .published(),
    }
}

/// Returns the [`DataReader`] view of receiver `node` in an installed
/// session.
///
/// # Panics
///
/// Panics if `node` is not a receiver of `handles`' protocol kind (e.g. a
/// crashed/removed node).
pub fn reader<'a>(
    sim: &'a Simulation,
    handles: &SessionHandles,
    node: NodeId,
) -> &'a dyn DataReader {
    fn get<T: DataReader + 'static>(sim: &Simulation, node: NodeId) -> &dyn DataReader {
        sim.agent::<T>(node)
            .expect("node is not a receiver of this session") as &dyn DataReader
    }
    match handles.kind {
        ProtocolKind::Udp => get::<UdpReceiver>(sim, node),
        ProtocolKind::Nakcast { .. } => get::<NakcastReceiver>(sim, node),
        ProtocolKind::Ricochet { .. } => get::<RicochetReceiver>(sim, node),
        ProtocolKind::Ackcast { .. } => get::<AckcastReceiver>(sim, node),
        ProtocolKind::Slingshot { .. } => get::<SlingshotReceiver>(sim, node),
        ProtocolKind::StreamCast { .. } => get::<StreamCastReceiver>(sim, node),
        ProtocolKind::ShmCast { .. } => get::<ShmCastReceiver>(sim, node),
    }
}

/// Collects every receiver's unified protocol counters (aligned with
/// `handles.receivers`).
pub fn collect_protocol_stats(
    sim: &Simulation,
    handles: &SessionHandles,
) -> Vec<crate::ProtocolStats> {
    handles
        .receivers
        .iter()
        .map(|&node| reader(sim, handles, node).protocol_stats())
        .collect()
}

/// Builds the pooled [`QosReport`] for a finished session.
pub fn collect_report(sim: &Simulation, handles: &SessionHandles) -> QosReport {
    let mut builder = QosReport::builder(handles.expected_samples, handles.receivers.len() as u32);
    for &node in &handles.receivers {
        let r = reader(sim, handles, node);
        builder.add_receiver(r.log().deliveries(), r.duplicates());
    }
    builder
        .wire(
            sim.stats().bytes_per_second(),
            sim.stats().total_bytes_delivered(),
        )
        .duration_secs(sim.now().as_secs_f64());
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_netsim::{Bandwidth, MachineClass, SimDuration, SimTime};

    fn spec(kind: ProtocolKind) -> SessionSpec {
        let host = HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1);
        SessionSpec {
            transport: TransportConfig::new(kind),
            app: AppSpec::at_rate(500, 100.0, 12),
            stack: StackProfile::new(20.0, 48),
            sender_host: host,
            receiver_hosts: vec![host; 3],
            drop_probability: 0.05,
        }
    }

    fn run(kind: ProtocolKind, seed: u64) -> QosReport {
        let mut sim = Simulation::new(seed);
        let handles = install(&mut sim, &spec(kind));
        sim.run_until(SimTime::from_secs(10));
        collect_report(&sim, &handles)
    }

    #[test]
    fn installs_and_runs_every_protocol() {
        for kind in [
            ProtocolKind::Udp,
            ProtocolKind::Nakcast {
                timeout: SimDuration::from_millis(1),
            },
            ProtocolKind::Ricochet { r: 4, c: 3 },
            ProtocolKind::Ackcast {
                rto: SimDuration::from_millis(20),
            },
        ] {
            let report = run(kind, 3);
            assert_eq!(report.receivers, 3);
            assert!(
                report.reliability() > 0.9,
                "{kind}: reliability {}",
                report.reliability()
            );
            assert!(report.avg_latency_us > 0.0);
        }
    }

    #[test]
    fn reliability_ordering_matches_protocol_guarantees() {
        let udp = run(ProtocolKind::Udp, 5);
        let nak = run(
            ProtocolKind::Nakcast {
                timeout: SimDuration::from_millis(1),
            },
            5,
        );
        let ric = run(ProtocolKind::Ricochet { r: 4, c: 3 }, 5);
        assert!(nak.reliability() >= ric.reliability());
        assert!(nak.reliability() > 0.9999);
        assert!(ric.reliability() > udp.reliability());
        assert!((udp.reliability() - 0.95).abs() < 0.02);
    }

    #[test]
    fn wire_stats_flow_into_report() {
        let report = run(ProtocolKind::Ricochet { r: 4, c: 3 }, 9);
        assert!(report.wire_bytes > 0);
        assert!(report.avg_bandwidth_bytes_per_sec > 0.0);
        assert!(report.duration_secs > 0.0);
    }

    #[test]
    fn protocol_stats_reflect_each_protocol_mechanism() {
        let nak = {
            let mut sim = Simulation::new(5);
            let handles = install(
                &mut sim,
                &spec(ProtocolKind::Nakcast {
                    timeout: SimDuration::from_millis(1),
                }),
            );
            sim.run_until(SimTime::from_secs(10));
            collect_protocol_stats(&sim, &handles)
        };
        assert_eq!(nak.len(), 3);
        for s in &nak {
            assert!(s.naks_sent > 0, "NAKcast should have NAKed: {s:?}");
            assert!(s.recovered > 0);
            assert_eq!(s.repairs_sent, 0);
        }

        let ric = {
            let mut sim = Simulation::new(5);
            let handles = install(&mut sim, &spec(ProtocolKind::Ricochet { r: 4, c: 3 }));
            sim.run_until(SimTime::from_secs(10));
            collect_protocol_stats(&sim, &handles)
        };
        for s in &ric {
            assert!(s.repairs_sent > 0, "Ricochet should have repaired: {s:?}");
            assert!(s.repairs_received > 0);
            assert_eq!(s.naks_sent, 0);
        }

        let udp = {
            let mut sim = Simulation::new(5);
            let handles = install(&mut sim, &spec(ProtocolKind::Udp));
            sim.run_until(SimTime::from_secs(10));
            collect_protocol_stats(&sim, &handles)
        };
        for s in &udp {
            assert_eq!(s.naks_sent, 0);
            assert_eq!(s.repairs_sent, 0);
            assert_eq!(s.recovered, 0);
            assert!(s.dropped > 0);
        }
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let a = run(
            ProtocolKind::Nakcast {
                timeout: SimDuration::from_millis(10),
            },
            11,
        );
        let b = run(
            ProtocolKind::Nakcast {
                timeout: SimDuration::from_millis(10),
            },
            11,
        );
        assert_eq!(a, b);
    }
}

//! The ANT (Adaptive Network Transports) framework: builds a complete
//! pub/sub transport session — sender, receivers, multicast group — from a
//! [`TransportConfig`], and collects QoS results afterwards.
//!
//! This is the configuration seam ADAMANT drives: the machine-learning
//! selector picks a [`ProtocolKind`]; `install` composes the corresponding
//! protocol properties into concrete agents on simulated hosts.

use adamant_metrics::QosReport;
use adamant_netsim::{GroupId, HostConfig, NodeId, Simulation};
use serde::{Deserialize, Serialize};

use crate::ackcast::{AckcastReceiver, AckcastSender};
use crate::config::{ProtocolKind, TransportConfig};
use crate::nakcast::{NakcastReceiver, NakcastSender};
use crate::profile::{AppSpec, StackProfile};
use crate::receiver::DataReader;
use crate::ricochet::{RicochetReceiver, RicochetSender};
use crate::slingshot::{SlingshotReceiver, SlingshotSender};
use crate::tags;
use crate::udp::{UdpReceiver, UdpSender};

/// Everything needed to set up one experiment session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSpec {
    /// Transport protocol and tuning.
    pub transport: TransportConfig,
    /// Publication workload.
    pub app: AppSpec,
    /// Middleware stack contribution (from the DDS profile).
    pub stack: StackProfile,
    /// Host running the data writer.
    pub sender_host: HostConfig,
    /// Hosts running the data readers (one reader per host).
    pub receiver_hosts: Vec<HostConfig>,
    /// End-host drop probability applied to data packets at each reader.
    pub drop_probability: f64,
}

/// Node handles of an installed session.
#[derive(Debug, Clone)]
pub struct SessionHandles {
    /// The protocol that was installed.
    pub kind: ProtocolKind,
    /// The data-writer node.
    pub sender: NodeId,
    /// The data-reader nodes.
    pub receivers: Vec<NodeId>,
    /// The multicast group connecting them.
    pub group: GroupId,
    /// Samples the writer will publish.
    pub expected_samples: u64,
}

/// Installs a complete session described by `spec` into `sim`.
///
/// Creates the sender host, one host per receiver, the multicast group, and
/// the protocol agents for `spec.transport.kind`.
pub fn install(sim: &mut Simulation, spec: &SessionSpec) -> SessionHandles {
    tags::register_all(sim);
    let group = sim.create_group(&[]);
    let tuning = spec.transport.tuning;
    let app = spec.app;
    let stack = spec.stack;

    let sender = match spec.transport.kind {
        ProtocolKind::Udp => sim.add_node(
            spec.sender_host,
            UdpSender::new(app, stack, tuning, group),
        ),
        ProtocolKind::Nakcast { .. } => sim.add_node(
            spec.sender_host,
            NakcastSender::new(app, stack, tuning, group),
        ),
        ProtocolKind::Ricochet { .. } => sim.add_node(
            spec.sender_host,
            RicochetSender::new(app, stack, tuning, group),
        ),
        ProtocolKind::Ackcast { .. } => sim.add_node(
            spec.sender_host,
            AckcastSender::new(app, stack, tuning, group),
        ),
        ProtocolKind::Slingshot { .. } => sim.add_node(
            spec.sender_host,
            SlingshotSender::new(app, stack, tuning, group),
        ),
    };
    sim.join_group(group, sender);

    let mut receivers = Vec::with_capacity(spec.receiver_hosts.len());
    for &host in &spec.receiver_hosts {
        let node = match spec.transport.kind {
            ProtocolKind::Udp => sim.add_node(
                host,
                UdpReceiver::new(app.total_samples, spec.drop_probability),
            ),
            ProtocolKind::Nakcast { timeout } => sim.add_node(
                host,
                NakcastReceiver::new(
                    sender,
                    app.total_samples,
                    timeout,
                    tuning,
                    spec.drop_probability,
                ),
            ),
            ProtocolKind::Ricochet { r, c } => sim.add_node(
                host,
                RicochetReceiver::new(
                    sender,
                    group,
                    app.total_samples,
                    app.payload_bytes,
                    r,
                    c,
                    tuning,
                    spec.drop_probability,
                ),
            ),
            ProtocolKind::Ackcast { rto } => sim.add_node(
                host,
                AckcastReceiver::new(
                    sender,
                    app.total_samples,
                    rto,
                    tuning,
                    spec.drop_probability,
                ),
            ),
            ProtocolKind::Slingshot { c } => sim.add_node(
                host,
                SlingshotReceiver::new(
                    sender,
                    group,
                    app.total_samples,
                    app.payload_bytes,
                    c,
                    tuning,
                    spec.drop_probability,
                ),
            ),
        };
        sim.join_group(group, node);
        receivers.push(node);
    }

    SessionHandles {
        kind: spec.transport.kind,
        sender,
        receivers,
        group,
        expected_samples: app.total_samples,
    }
}

/// Returns the [`DataReader`] view of receiver `node` in an installed
/// session.
///
/// # Panics
///
/// Panics if `node` is not a receiver of `handles`' protocol kind (e.g. a
/// crashed/removed node).
pub fn reader<'a>(
    sim: &'a Simulation,
    handles: &SessionHandles,
    node: NodeId,
) -> &'a dyn DataReader {
    fn get<T: DataReader + 'static>(sim: &Simulation, node: NodeId) -> &dyn DataReader {
        sim.agent::<T>(node)
            .expect("node is not a receiver of this session") as &dyn DataReader
    }
    match handles.kind {
        ProtocolKind::Udp => get::<UdpReceiver>(sim, node),
        ProtocolKind::Nakcast { .. } => get::<NakcastReceiver>(sim, node),
        ProtocolKind::Ricochet { .. } => get::<RicochetReceiver>(sim, node),
        ProtocolKind::Ackcast { .. } => get::<AckcastReceiver>(sim, node),
        ProtocolKind::Slingshot { .. } => get::<SlingshotReceiver>(sim, node),
    }
}

/// Collects every receiver's unified protocol counters (aligned with
/// `handles.receivers`).
pub fn collect_protocol_stats(
    sim: &Simulation,
    handles: &SessionHandles,
) -> Vec<crate::ProtocolStats> {
    handles
        .receivers
        .iter()
        .map(|&node| reader(sim, handles, node).protocol_stats())
        .collect()
}

/// Builds the pooled [`QosReport`] for a finished session.
pub fn collect_report(sim: &Simulation, handles: &SessionHandles) -> QosReport {
    let mut builder = QosReport::builder(
        handles.expected_samples,
        handles.receivers.len() as u32,
    );
    for &node in &handles.receivers {
        let r = reader(sim, handles, node);
        builder.add_receiver(r.log().deliveries(), r.duplicates());
    }
    builder
        .wire(
            sim.stats().bytes_per_second(),
            sim.stats().total_bytes_delivered(),
        )
        .duration_secs(sim.now().as_secs_f64());
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_netsim::{Bandwidth, MachineClass, SimDuration, SimTime};

    fn spec(kind: ProtocolKind) -> SessionSpec {
        let host = HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1);
        SessionSpec {
            transport: TransportConfig::new(kind),
            app: AppSpec::at_rate(500, 100.0, 12),
            stack: StackProfile::new(20.0, 48),
            sender_host: host,
            receiver_hosts: vec![host; 3],
            drop_probability: 0.05,
        }
    }

    fn run(kind: ProtocolKind, seed: u64) -> QosReport {
        let mut sim = Simulation::new(seed);
        let handles = install(&mut sim, &spec(kind));
        sim.run_until(SimTime::from_secs(10));
        collect_report(&sim, &handles)
    }

    #[test]
    fn installs_and_runs_every_protocol() {
        for kind in [
            ProtocolKind::Udp,
            ProtocolKind::Nakcast {
                timeout: SimDuration::from_millis(1),
            },
            ProtocolKind::Ricochet { r: 4, c: 3 },
            ProtocolKind::Ackcast {
                rto: SimDuration::from_millis(20),
            },
        ] {
            let report = run(kind, 3);
            assert_eq!(report.receivers, 3);
            assert!(
                report.reliability() > 0.9,
                "{kind}: reliability {}",
                report.reliability()
            );
            assert!(report.avg_latency_us > 0.0);
        }
    }

    #[test]
    fn reliability_ordering_matches_protocol_guarantees() {
        let udp = run(ProtocolKind::Udp, 5);
        let nak = run(
            ProtocolKind::Nakcast {
                timeout: SimDuration::from_millis(1),
            },
            5,
        );
        let ric = run(ProtocolKind::Ricochet { r: 4, c: 3 }, 5);
        assert!(nak.reliability() >= ric.reliability());
        assert!(nak.reliability() > 0.9999);
        assert!(ric.reliability() > udp.reliability());
        assert!((udp.reliability() - 0.95).abs() < 0.02);
    }

    #[test]
    fn wire_stats_flow_into_report() {
        let report = run(ProtocolKind::Ricochet { r: 4, c: 3 }, 9);
        assert!(report.wire_bytes > 0);
        assert!(report.avg_bandwidth_bytes_per_sec > 0.0);
        assert!(report.duration_secs > 0.0);
    }

    #[test]
    fn protocol_stats_reflect_each_protocol_mechanism() {
        let nak = {
            let mut sim = Simulation::new(5);
            let handles = install(
                &mut sim,
                &spec(ProtocolKind::Nakcast {
                    timeout: SimDuration::from_millis(1),
                }),
            );
            sim.run_until(SimTime::from_secs(10));
            collect_protocol_stats(&sim, &handles)
        };
        assert_eq!(nak.len(), 3);
        for s in &nak {
            assert!(s.naks_sent > 0, "NAKcast should have NAKed: {s:?}");
            assert!(s.recovered > 0);
            assert_eq!(s.repairs_sent, 0);
        }

        let ric = {
            let mut sim = Simulation::new(5);
            let handles = install(&mut sim, &spec(ProtocolKind::Ricochet { r: 4, c: 3 }));
            sim.run_until(SimTime::from_secs(10));
            collect_protocol_stats(&sim, &handles)
        };
        for s in &ric {
            assert!(s.repairs_sent > 0, "Ricochet should have repaired: {s:?}");
            assert!(s.repairs_received > 0);
            assert_eq!(s.naks_sent, 0);
        }

        let udp = {
            let mut sim = Simulation::new(5);
            let handles = install(&mut sim, &spec(ProtocolKind::Udp));
            sim.run_until(SimTime::from_secs(10));
            collect_protocol_stats(&sim, &handles)
        };
        for s in &udp {
            assert_eq!(s.naks_sent, 0);
            assert_eq!(s.repairs_sent, 0);
            assert_eq!(s.recovered, 0);
            assert!(s.dropped > 0);
        }
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let a = run(ProtocolKind::Nakcast { timeout: SimDuration::from_millis(10) }, 11);
        let b = run(ProtocolKind::Nakcast { timeout: SimDuration::from_millis(10) }, 11);
        assert_eq!(a, b);
    }
}

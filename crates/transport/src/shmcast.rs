//! ShmCast: the same-host shared-memory fast path.
//!
//! When writer and readers share a machine, the OS network stack is pure
//! overhead: a bounded single-producer ring per reader replaces it. The
//! model is a zero-loss in-order queue with credit-based backpressure —
//! each receiver grants the sender credit for its queue capacity up front
//! and re-grants as it consumes, so the sender can never overrun a slow
//! reader. There is no recovery machinery at all: the same-host path drops
//! nothing, which is exactly why the autonomic selector should pick it
//! when the environment descriptor says both ends are co-located.
//!
//! Costs are charged per packet like every other core, but through
//! [`Tuning::shm_packet_cost_us`] (a ring-buffer enqueue, ~sub-µs) instead
//! of the OS/UDP path cost, and with a minimal framing header instead of
//! Ethernet+IP+UDP.

use std::collections::BTreeMap;

use adamant_metrics::{Delivery, DenseReceptionLog};
use adamant_proto::wire::{DataMsg, FinMsg, ShmCreditMsg};
use adamant_proto::{
    Env, GroupId, Input, NodeId, ProcessingCost, ProtoEvent, ProtocolCore, Span, WireMsg,
};

use crate::config::Tuning;
use crate::profile::{AppSpec, StackProfile};
use crate::receiver::DataReader;
use crate::tags::{DATA_HEADER_BYTES, TAG_DATA, TAG_FIN, TAG_SHM_CREDIT};

/// Timer tag for the sender's next publication tick.
const TIMER_PUBLISH: u64 = 50;

/// Framing bytes of a shared-memory ring slot header: no Ethernet, IP, or
/// UDP — just a slot length + flags word.
pub const SHM_FRAMING_BYTES: u32 = 8;

/// Sender side of ShmCast.
#[derive(Debug, Clone)]
pub struct ShmCastSender {
    app: AppSpec,
    profile: StackProfile,
    tuning: Tuning,
    group: GroupId,
    queue: u32,
    next_seq: u64,
    finished: bool,
    stalled: bool,
    /// Per-receiver credit: the sender may publish sequences `< granted`.
    credits: BTreeMap<NodeId, u64>,
    stalls: u64,
}

impl ShmCastSender {
    /// Creates a sender publishing `app` into `group` against receivers
    /// with bounded queues of `queue` slots.
    pub fn new(
        app: AppSpec,
        profile: StackProfile,
        tuning: Tuning,
        group: GroupId,
        queue: u32,
    ) -> Self {
        ShmCastSender {
            app,
            profile,
            tuning,
            group,
            queue: queue.max(1),
            next_seq: 0,
            finished: false,
            stalled: false,
            credits: BTreeMap::new(),
            stalls: 0,
        }
    }

    /// Samples published so far.
    pub fn published(&self) -> u64 {
        self.next_seq
    }

    /// Whether the final sample has been published.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Publication ticks deferred for want of receiver credit.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// The ring capacity (in slots) each receiver is assumed to run.
    pub fn queue(&self) -> u32 {
        self.queue
    }

    fn data_packet_bytes(&self) -> u32 {
        SHM_FRAMING_BYTES + DATA_HEADER_BYTES + self.profile.header_bytes + self.app.payload_bytes
    }

    fn shm_cost(&self) -> ProcessingCost {
        let slot = Span::from_micros_f64(self.tuning.shm_packet_cost_us);
        ProcessingCost::symmetric(slot)
    }

    fn data_cost(&self) -> ProcessingCost {
        self.shm_cost().plus(self.profile.per_packet)
    }

    /// The lowest credit grant across attached receivers; publication is
    /// gated on it. No receivers attached yet means no credit.
    fn credit_limit(&self) -> u64 {
        self.credits.values().copied().min().unwrap_or(0)
    }

    fn publish_tick(&mut self, env: &mut Env<'_>) {
        if self.finished {
            return;
        }
        if self.next_seq >= self.credit_limit() {
            // Out of credit: a receiver's ring is full (or none attached
            // yet). The next grant resumes the stream.
            self.stalled = true;
            self.stalls += 1;
            return;
        }
        self.stalled = false;
        let seq = self.next_seq;
        let now = env.now();
        self.next_seq += 1;
        env.send(
            self.group,
            self.data_packet_bytes(),
            TAG_DATA,
            self.data_cost(),
            WireMsg::Data(DataMsg {
                seq,
                published_at: now,
                retransmission: false,
            }),
        );
        if self.next_seq < self.app.total_samples {
            env.set_timer(self.app.interval, TIMER_PUBLISH);
        } else {
            self.finished = true;
            env.send(
                self.group,
                SHM_FRAMING_BYTES + 8,
                TAG_FIN,
                self.shm_cost(),
                WireMsg::Fin(FinMsg {
                    total: self.app.total_samples,
                }),
            );
        }
    }

    fn on_credit(&mut self, env: &mut Env<'_>, src: NodeId, credit: ShmCreditMsg) {
        let entry = self.credits.entry(src).or_insert(0);
        // Grants are cumulative; a stale (reordered) grant never shrinks.
        if credit.upto > *entry {
            *entry = credit.upto;
        }
        if self.stalled {
            self.publish_tick(env);
        }
    }
}

impl ProtocolCore for ShmCastSender {
    fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
        match input {
            Input::Start => {
                env.set_timer(Span::ZERO, TIMER_PUBLISH);
            }
            Input::TimerFired {
                tag: TIMER_PUBLISH, ..
            } => self.publish_tick(env),
            Input::PacketIn {
                src,
                msg: WireMsg::ShmCredit(credit),
            } => {
                let credit = *credit;
                self.on_credit(env, src, credit);
            }
            Input::PacketIn { .. } | Input::TimerFired { .. } | Input::Tick => {}
        }
    }
}

/// Receiver side of ShmCast.
#[derive(Debug, Clone)]
pub struct ShmCastReceiver {
    sender: NodeId,
    queue: u32,
    tuning: Tuning,
    log: DenseReceptionLog,
    duplicates: u64,
    /// Samples consumed (drives credit re-grants).
    consumed: u64,
    /// Credit granted so far (sequences `< granted` may be sent).
    granted: u64,
    credits_sent: u64,
}

impl ShmCastReceiver {
    /// Creates a receiver expecting `expected` samples from `sender`
    /// through a bounded queue of `queue` slots.
    pub fn new(sender: NodeId, expected: u64, queue: u32, tuning: Tuning) -> Self {
        ShmCastReceiver {
            sender,
            queue: queue.max(1),
            tuning,
            log: DenseReceptionLog::with_capacity(expected),
            duplicates: 0,
            consumed: 0,
            granted: 0,
            credits_sent: 0,
        }
    }

    /// Credit grants sent.
    pub fn credits_sent(&self) -> u64 {
        self.credits_sent
    }

    /// Duplicate copies discarded.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    fn send_credit(&mut self, env: &mut Env<'_>) {
        self.granted = self.consumed + u64::from(self.queue);
        self.credits_sent += 1;
        let slot = Span::from_micros_f64(self.tuning.shm_packet_cost_us);
        env.send(
            self.sender,
            SHM_FRAMING_BYTES + 8,
            TAG_SHM_CREDIT,
            ProcessingCost::symmetric(slot),
            WireMsg::ShmCredit(ShmCreditMsg { upto: self.granted }),
        );
    }

    fn on_data(&mut self, env: &mut Env<'_>, data: &DataMsg) {
        let delivery = Delivery {
            seq: data.seq,
            published_at: data.published_at,
            delivered_at: env.now(),
            recovered: data.retransmission,
        };
        if self.log.record(delivery) {
            self.consumed += 1;
            env.deliver(delivery.seq, delivery.published_at, delivery.recovered);
            env.emit(|| ProtoEvent::SampleAccepted {
                seq: delivery.seq,
                published_ns: delivery.published_at.as_nanos(),
                delivered_ns: delivery.delivered_at.as_nanos(),
                recovered: delivery.recovered,
            });
            // Re-grant once half the ring has been consumed, batching
            // credit traffic instead of ping-ponging per sample.
            if self.granted - self.consumed <= u64::from(self.queue) / 2 {
                self.send_credit(env);
            }
        } else {
            self.duplicates += 1;
            let seq = data.seq;
            env.emit(|| ProtoEvent::SampleDuplicate { seq });
        }
    }
}

impl DataReader for ShmCastReceiver {
    fn log(&self) -> &DenseReceptionLog {
        &self.log
    }

    fn dropped(&self) -> u64 {
        0
    }

    fn duplicates(&self) -> u64 {
        ShmCastReceiver::duplicates(self)
    }

    fn protocol_stats(&self) -> crate::ProtocolStats {
        crate::ProtocolStats {
            acks_sent: self.credits_sent,
            recovered: self.log.recovered_count(),
            duplicates: ShmCastReceiver::duplicates(self),
            ..crate::ProtocolStats::default()
        }
    }
}

impl ProtocolCore for ShmCastReceiver {
    fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
        match input {
            // Attach: grant the full ring up front.
            Input::Start => self.send_credit(env),
            Input::PacketIn {
                msg: WireMsg::Data(data),
                ..
            } => {
                let data = *data;
                self.on_data(env, &data);
            }
            Input::PacketIn { .. } | Input::TimerFired { .. } | Input::Tick => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_netsim::{
        Bandwidth, HostConfig, LossModel, MachineClass, NetworkConfig, SimDriver, SimDuration,
        Simulation,
    };

    fn same_host_network() -> NetworkConfig {
        NetworkConfig {
            propagation: SimDuration::from_micros(1),
            loss: LossModel::NONE,
        }
    }

    fn run_session(
        samples: u64,
        queue: u32,
        rate_hz: f64,
        seed: u64,
    ) -> (Simulation, NodeId, Vec<NodeId>) {
        let mut sim = Simulation::new(seed);
        sim.set_network(same_host_network());
        let cfg = HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1);
        let app = AppSpec::at_rate(samples, rate_hz, 12);
        let tuning = Tuning::default();
        let group = sim.create_group(&[]);
        let tx = sim.add_node(
            cfg,
            SimDriver::new(ShmCastSender::new(
                app,
                StackProfile::new(10.0, 48),
                tuning,
                group,
                queue,
            )),
        );
        sim.join_group(group, tx);
        let mut rxs = Vec::new();
        for _ in 0..3 {
            let rx = sim.add_node(
                cfg,
                SimDriver::new(ShmCastReceiver::new(tx, samples, queue, tuning)),
            );
            sim.join_group(group, rx);
            rxs.push(rx);
        }
        sim.run_until(adamant_netsim::SimTime::from_secs(30));
        (sim, tx, rxs)
    }

    #[test]
    fn delivers_everything_in_order_with_microsecond_latency() {
        let (sim, tx, rxs) = run_session(500, 256, 100.0, 3);
        for rx in rxs {
            let r = sim.agent::<ShmCastReceiver>(rx).unwrap();
            assert_eq!(r.log().delivered_count(), 500);
            assert_eq!(r.duplicates(), 0);
            for d in r.log().deliveries() {
                let latency = d.delivered_at - d.published_at;
                assert!(
                    latency < Span::from_micros(60),
                    "seq {} took {latency}",
                    d.seq
                );
            }
        }
        let s = sim.agent::<ShmCastSender>(tx).unwrap();
        assert!(s.is_finished());
    }

    #[test]
    fn tiny_ring_backpressures_the_sender_without_losing_anything() {
        // 4-slot ring against a 10 kHz publisher: the sender must stall on
        // credit, yet the grant cycle keeps the stream moving to the end.
        let (sim, tx, rxs) = run_session(2_000, 4, 10_000.0, 9);
        let s = sim.agent::<ShmCastSender>(tx).unwrap();
        assert!(s.stalls() > 0, "credit never ran out");
        assert!(s.is_finished());
        for rx in rxs {
            let r = sim.agent::<ShmCastReceiver>(rx).unwrap();
            assert_eq!(r.log().delivered_count(), 2_000);
            assert!(r.credits_sent() > 1);
        }
    }

    #[test]
    fn no_attached_receiver_means_no_publication() {
        let mut sim = Simulation::new(1);
        sim.set_network(same_host_network());
        let cfg = HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1);
        let group = sim.create_group(&[]);
        let tx = sim.add_node(
            cfg,
            SimDriver::new(ShmCastSender::new(
                AppSpec::at_rate(10, 100.0, 12),
                StackProfile::new(10.0, 48),
                Tuning::default(),
                group,
                8,
            )),
        );
        sim.join_group(group, tx);
        sim.run_until(adamant_netsim::SimTime::from_secs(2));
        let s = sim.agent::<ShmCastSender>(tx).unwrap();
        assert_eq!(s.published(), 0, "no credit, no stream");
        assert!(s.stalls() > 0);
    }

    #[test]
    fn same_schedule_replays_bit_identically() {
        let collect = || {
            let (sim, tx, rxs) = run_session(800, 16, 1_000.0, 17);
            let s = sim.agent::<ShmCastSender>(tx).unwrap();
            let mut summary = vec![s.published(), s.stalls()];
            for rx in rxs {
                let r = sim.agent::<ShmCastReceiver>(rx).unwrap();
                summary.push(r.log().delivered_count());
                summary.push(r.credits_sent());
            }
            summary
        };
        assert_eq!(collect(), collect());
    }
}

//! Wire tags and framing-size constants shared by all protocols.

/// Tag for original multicast data packets.
pub const TAG_DATA: u16 = 1;
/// Tag for unicast retransmissions of lost data (NAKcast / ACKcast).
pub const TAG_RETRANSMIT: u16 = 2;
/// Tag for negative acknowledgements (receiver → sender).
pub const TAG_NAK: u16 = 3;
/// Tag for Ricochet lateral repair packets (receiver → receiver).
pub const TAG_REPAIR: u16 = 4;
/// Tag for positive acknowledgements (ACKcast).
pub const TAG_ACK: u16 = 5;
/// Tag for sender session heartbeats.
pub const TAG_HEARTBEAT: u16 = 6;
/// Tag for end-of-stream markers.
pub const TAG_FIN: u16 = 7;
/// Tag for group-membership heartbeats.
pub const TAG_MEMBERSHIP: u16 = 8;
/// Tag for StreamCast connection-handshake packets (SYN and SYN-ACK).
pub const TAG_STREAM_SYN: u16 = 9;
/// Tag for StreamCast cumulative acknowledgements.
pub const TAG_STREAM_ACK: u16 = 10;
/// Tag for ShmCast flow-control credit grants.
pub const TAG_SHM_CREDIT: u16 = 11;

/// Registers human-readable labels for every tag on a simulation.
pub fn register_all(sim: &mut adamant_netsim::Simulation) {
    sim.register_tag(TAG_DATA, "data");
    sim.register_tag(TAG_RETRANSMIT, "retransmit");
    sim.register_tag(TAG_NAK, "nak");
    sim.register_tag(TAG_REPAIR, "repair");
    sim.register_tag(TAG_ACK, "ack");
    sim.register_tag(TAG_HEARTBEAT, "heartbeat");
    sim.register_tag(TAG_FIN, "fin");
    sim.register_tag(TAG_MEMBERSHIP, "membership");
    sim.register_tag(TAG_STREAM_SYN, "stream-syn");
    sim.register_tag(TAG_STREAM_ACK, "stream-ack");
    sim.register_tag(TAG_SHM_CREDIT, "shm-credit");
}

/// Ethernet + IP + UDP framing bytes charged to every packet.
pub const FRAMING_BYTES: u32 = 42;
/// Transport-protocol data header (sequence number, timestamps, flags).
pub const DATA_HEADER_BYTES: u32 = 16;
/// Base size of a NAK (plus 8 bytes per requested sequence number).
pub const NAK_BASE_BYTES: u32 = 12;
/// Bytes per sequence number listed in a NAK.
pub const NAK_PER_SEQ_BYTES: u32 = 8;
/// Base size of a Ricochet repair packet (header + XOR metadata).
pub const REPAIR_BASE_BYTES: u32 = 20;
/// Bytes per covered packet in a repair (sequence + bookkeeping).
pub const REPAIR_PER_SEQ_BYTES: u32 = 8;
/// Size of heartbeat / FIN / ACK control messages.
pub const CONTROL_BYTES: u32 = 20;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_distinct() {
        let tags = [
            TAG_DATA,
            TAG_RETRANSMIT,
            TAG_NAK,
            TAG_REPAIR,
            TAG_ACK,
            TAG_HEARTBEAT,
            TAG_FIN,
            TAG_MEMBERSHIP,
            TAG_STREAM_SYN,
            TAG_STREAM_ACK,
            TAG_SHM_CREDIT,
        ];
        let mut sorted = tags.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), tags.len());
    }

    #[test]
    fn register_all_labels() {
        let mut sim = adamant_netsim::Simulation::new(0);
        register_all(&mut sim);
        assert_eq!(sim.stats().tag_label(TAG_DATA), Some("data"));
        assert_eq!(sim.stats().tag_label(TAG_REPAIR), Some("repair"));
    }
}

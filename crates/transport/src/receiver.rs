//! Receiver-side shared vocabulary.

use adamant_metrics::DenseReceptionLog;

/// Per-receiver protocol activity counters, unified across protocols so
/// harnesses can report recovery behaviour without downcasting. Fields a
/// protocol does not use stay zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProtocolStats {
    /// NAK packets sent (NAKcast).
    pub naks_sent: u64,
    /// ACK packets sent (ACKcast).
    pub acks_sent: u64,
    /// Repair/copy packets sent to peers (Ricochet, Slingshot).
    pub repairs_sent: u64,
    /// Repair/copy packets received from peers (Ricochet, Slingshot).
    pub repairs_received: u64,
    /// Samples delivered through a recovery path.
    pub recovered: u64,
    /// Sequences abandoned after exhausting retries (NAK/ACK protocols).
    pub give_ups: u64,
    /// Duplicate data copies discarded.
    pub duplicates: u64,
    /// Data packets discarded by the end-host loss stage.
    pub dropped: u64,
}

/// Common read-out interface of every protocol's receiving agent, used by
/// the experiment harness to collect results after a run.
pub trait DataReader {
    /// The samples this reader delivered to the application.
    fn log(&self) -> &DenseReceptionLog;

    /// How many incoming data packets the end-host loss stage discarded.
    fn dropped(&self) -> u64;

    /// Duplicate data copies discarded by the protocol.
    fn duplicates(&self) -> u64 {
        self.log().duplicate_count()
    }

    /// Unified protocol activity counters.
    fn protocol_stats(&self) -> ProtocolStats {
        ProtocolStats {
            recovered: self.log().recovered_count(),
            duplicates: self.duplicates(),
            dropped: self.dropped(),
            ..ProtocolStats::default()
        }
    }
}

//! Determinism property: a `ProtocolCore` is a pure state machine. Feeding
//! an identical input schedule (same timestamps, same packets, same timer
//! firings, same entropy seed) to two fresh instances must produce
//! bit-identical effect streams — no hidden clocks, no ambient randomness,
//! no iteration-order leaks. This is what makes the simulator replay and
//! the real-UDP driver trustworthy as two views of one protocol.

use adamant_proto::wire::{DataMsg, FinMsg, HeartbeatMsg};
use adamant_proto::{
    DetRng, Effect, EnvHost, Input, NodeId, ProtocolCore, Span, TimePoint, TimerToken, WireMsg,
};
use adamant_transport::{NakcastReceiver, Tuning, UdpReceiver};

const SCHEDULES: u64 = 1_000;
const STEPS_PER_SCHEDULE: u64 = 40;

/// One recorded input: enough to replay the schedule exactly.
#[derive(Debug, Clone)]
enum Scripted {
    Start,
    Packet(WireMsg),
    Timer { token: TimerToken, tag: u64 },
}

/// Generates a schedule adaptively against a live core (so timer firings
/// use real tokens), recording every input, and returns the script plus
/// the effect stream the generation run produced.
fn generate<C: ProtocolCore>(
    core: &mut C,
    host: &mut EnvHost,
    schedule_seed: u64,
) -> (Vec<(TimePoint, Scripted)>, Vec<Effect>) {
    let mut rng = DetRng::seed_from_u64(schedule_seed);
    let mut now = TimePoint::ZERO;
    let mut script = Vec::new();
    let mut all_effects = Vec::new();
    let mut pending: Vec<(TimerToken, u64)> = Vec::new();

    let apply = |core: &mut C,
                 host: &mut EnvHost,
                 now: TimePoint,
                 input: Scripted,
                 script: &mut Vec<(TimePoint, Scripted)>,
                 pending: &mut Vec<(TimerToken, u64)>,
                 all: &mut Vec<Effect>| {
        script.push((now, input.clone()));
        let effects = match &input {
            Scripted::Start => host.step(core, now, Input::Start),
            Scripted::Packet(msg) => host.step(
                core,
                now,
                Input::PacketIn {
                    src: NodeId(0),
                    msg,
                },
            ),
            Scripted::Timer { token, tag } => host.step(
                core,
                now,
                Input::TimerFired {
                    token: *token,
                    tag: *tag,
                },
            ),
        };
        for e in &effects {
            match e {
                Effect::SetTimer { token, tag, .. } => pending.push((*token, *tag)),
                Effect::CancelTimer { token } => pending.retain(|(t, _)| t != token),
                _ => {}
            }
        }
        all.extend(effects);
    };

    apply(
        core,
        host,
        now,
        Scripted::Start,
        &mut script,
        &mut pending,
        &mut all_effects,
    );
    for _ in 0..STEPS_PER_SCHEDULE {
        now += Span::from_micros(rng.next_below(5_000));
        let fire_timer = !pending.is_empty() && rng.next_below(10) < 4;
        let input = if fire_timer {
            let idx = rng.next_below(pending.len() as u64) as usize;
            let (token, tag) = pending.remove(idx);
            Scripted::Timer { token, tag }
        } else {
            let seq = rng.next_below(50);
            let msg = match rng.next_below(4) {
                0 => WireMsg::Heartbeat(HeartbeatMsg {
                    highest_seq: Some(seq),
                }),
                1 => WireMsg::Fin(FinMsg { total: seq + 1 }),
                n => WireMsg::Data(DataMsg {
                    seq,
                    published_at: TimePoint::from_micros(rng.next_below(1_000_000)),
                    retransmission: n == 3,
                }),
            };
            Scripted::Packet(msg)
        };
        apply(
            core,
            host,
            now,
            input,
            &mut script,
            &mut pending,
            &mut all_effects,
        );
    }
    (script, all_effects)
}

/// Replays a recorded script against a fresh core and returns its effects.
fn replay<C: ProtocolCore>(
    core: &mut C,
    host: &mut EnvHost,
    script: &[(TimePoint, Scripted)],
) -> Vec<Effect> {
    let mut all = Vec::new();
    for (now, input) in script {
        let effects = match input {
            Scripted::Start => host.step(core, *now, Input::Start),
            Scripted::Packet(msg) => host.step(
                core,
                *now,
                Input::PacketIn {
                    src: NodeId(0),
                    msg,
                },
            ),
            Scripted::Timer { token, tag } => host.step(
                core,
                *now,
                Input::TimerFired {
                    token: *token,
                    tag: *tag,
                },
            ),
        };
        all.extend(effects);
    }
    all
}

fn assert_deterministic<C: ProtocolCore>(mut make: impl FnMut() -> C, entropy_seed: u64) {
    for schedule in 0..SCHEDULES {
        let mut first = make();
        let mut host_a = EnvHost::new(NodeId(1), entropy_seed);
        let (script, effects_a) = generate(&mut first, &mut host_a, schedule);

        let mut second = make();
        let mut host_b = EnvHost::new(NodeId(1), entropy_seed);
        let effects_b = replay(&mut second, &mut host_b, &script);

        assert_eq!(
            effects_a, effects_b,
            "schedule {schedule}: effect streams diverged"
        );
    }
}

#[test]
fn nakcast_receiver_is_bit_deterministic_over_1k_schedules() {
    // 30% injected loss maximises entropy consumption (drop draws) and
    // NAK-path branching — the hardest case for hidden-state leaks.
    assert_deterministic(
        || NakcastReceiver::new(NodeId(0), 50, Span::from_millis(1), Tuning::default(), 0.3),
        0xDEC0DE,
    );
}

#[test]
fn udp_receiver_is_bit_deterministic_over_1k_schedules() {
    assert_deterministic(|| UdpReceiver::new(50, 0.3), 0xFEED);
}

//! Property-style tests of protocol invariants under seeded randomized
//! workloads and loss rates.

use adamant_metrics::QosReport;
use adamant_netsim::{Bandwidth, HostConfig, MachineClass, SimDuration, SimTime, Simulation};
use adamant_transport::{ant, AppSpec, ProtocolKind, SessionSpec, StackProfile, TransportConfig};

/// Splitmix-style case generator.
struct CaseRng(u64);

impl CaseRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn run(
    kind: ProtocolKind,
    samples: u64,
    rate_hz: f64,
    receivers: usize,
    drop: f64,
    seed: u64,
) -> QosReport {
    let host = HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1);
    let spec = SessionSpec {
        transport: TransportConfig::new(kind),
        app: AppSpec::at_rate(samples, rate_hz, 12),
        stack: StackProfile::new(20.0, 48),
        sender_host: host,
        receiver_hosts: vec![host; receivers],
        drop_probability: drop,
    };
    let mut sim = Simulation::new(seed);
    let handles = ant::install(&mut sim, &spec);
    let span = samples as f64 / rate_hz;
    sim.run_until(SimTime::from_secs(span as u64 + 5));
    ant::collect_report(&sim, &handles)
}

/// NAKcast recovers to full (or near-full) reliability for any loss
/// rate in a wide band, and never delivers more than was sent.
#[test]
fn nakcast_reliability_invariant() {
    let mut rng = CaseRng(31);
    for _ in 0..12 {
        let drop = rng.unit() * 0.25;
        let receivers = rng.range_u64(1, 5) as usize;
        let seed = rng.range_u64(0, 100);
        let report = run(
            ProtocolKind::Nakcast {
                timeout: SimDuration::from_millis(1),
            },
            300,
            100.0,
            receivers,
            drop,
            seed,
        );
        assert!(
            report.reliability() > 0.999,
            "reliability {}",
            report.reliability()
        );
        assert!(report.delivered <= report.samples_sent * report.receivers as u64);
    }
}

/// Ricochet reliability is never below the raw no-recovery floor
/// `(1 - p)` (repairs only add deliveries) and never above 1.
#[test]
fn ricochet_reliability_bounds() {
    let mut rng = CaseRng(32);
    for _ in 0..12 {
        let drop = rng.unit() * 0.2;
        let seed = rng.range_u64(0, 100);
        let report = run(
            ProtocolKind::Ricochet { r: 4, c: 3 },
            400,
            100.0,
            3,
            drop,
            seed,
        );
        // Allow binomial slack below the mean floor.
        let floor = (1.0 - drop) - 3.0 * (drop * (1.0 - drop) / 1200.0).sqrt() - 0.01;
        assert!(
            report.reliability() >= floor.max(0.0),
            "reliability {} below floor {} at p={}",
            report.reliability(),
            floor,
            drop
        );
        assert!(report.reliability() <= 1.0);
    }
}

/// UDP reliability tracks (1 - p) within statistical error, and its
/// latency is unaffected by the loss rate.
#[test]
fn udp_matches_bernoulli_loss() {
    let mut rng = CaseRng(33);
    for _ in 0..12 {
        let drop = rng.unit() * 0.5;
        let seed = rng.range_u64(0, 50);
        let report = run(ProtocolKind::Udp, 500, 200.0, 2, drop, seed);
        let n = 1_000.0;
        let sigma = (drop * (1.0 - drop) / n).sqrt();
        assert!((report.reliability() - (1.0 - drop)).abs() < 4.0 * sigma + 0.01);
        assert_eq!(report.recovered, 0);
    }
}

/// Every protocol's report is internally consistent.
#[test]
fn report_consistency() {
    let mut rng = CaseRng(34);
    for kind_idx in 0usize..4 {
        for _ in 0..3 {
            let drop = rng.unit() * 0.1;
            let seed = rng.range_u64(0, 50);
            let kind = [
                ProtocolKind::Udp,
                ProtocolKind::Nakcast {
                    timeout: SimDuration::from_millis(10),
                },
                ProtocolKind::Ricochet { r: 4, c: 3 },
                ProtocolKind::Ackcast {
                    rto: SimDuration::from_millis(20),
                },
            ][kind_idx];
            let report = run(kind, 200, 100.0, 3, drop, seed);
            assert_eq!(report.samples_sent, 200);
            assert_eq!(report.receivers, 3);
            assert!(report.delivered <= 600);
            assert!(report.recovered <= report.delivered);
            assert!(report.avg_latency_us >= 0.0);
            assert!(report.jitter_us >= 0.0);
            if report.delivered > 0 {
                assert!(report.avg_latency_us > 0.0, "latency must be positive");
            }
        }
    }
}
/// Ricochet delivers each sequence at most once per receiver, whatever the
/// loss pattern (deterministic seeds, several cases).
#[test]
fn ricochet_no_duplicate_deliveries() {
    for seed in 0..5u64 {
        let host = HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1);
        let spec = SessionSpec {
            transport: TransportConfig::new(ProtocolKind::Ricochet { r: 4, c: 3 }),
            app: AppSpec::at_rate(500, 200.0, 12),
            stack: StackProfile::new(20.0, 48),
            sender_host: host,
            receiver_hosts: vec![host; 4],
            drop_probability: 0.1,
        };
        let mut sim = Simulation::new(seed);
        let handles = ant::install(&mut sim, &spec);
        sim.run_until(SimTime::from_secs(10));
        for &node in &handles.receivers {
            let reader = ant::reader(&sim, &handles, node);
            let mut seqs: Vec<u64> = reader.log().deliveries().iter().map(|d| d.seq).collect();
            let before = seqs.len();
            seqs.sort_unstable();
            seqs.dedup();
            assert_eq!(before, seqs.len(), "duplicate delivery at seed {seed}");
        }
    }
}

/// Deterministic edge-case scenarios beyond the property sweeps.
mod edge_cases {
    use super::*;
    use adamant_metrics::MetricKind;
    use adamant_netsim::SimDuration;
    use adamant_transport::{DataReader, NakcastReceiver, RicochetReceiver, Tuning};

    fn host() -> HostConfig {
        HostConfig::new(MachineClass::Pc3000, Bandwidth::GBPS_1)
    }

    /// With retries exhausted quickly under extreme loss, NAKcast abandons
    /// sequences instead of stalling forever — and late copies still count.
    #[test]
    fn nakcast_gives_up_after_max_retries() {
        let tuning = Tuning {
            nak_max_retries: 1,
            ..Tuning::default()
        };
        let spec = SessionSpec {
            transport: TransportConfig::new(ProtocolKind::Nakcast {
                timeout: SimDuration::from_millis(1),
            })
            .with_tuning(tuning),
            app: AppSpec::at_rate(500, 200.0, 12),
            stack: StackProfile::new(20.0, 48),
            sender_host: host(),
            receiver_hosts: vec![host(); 2],
            drop_probability: 0.5, // retransmissions also drop 50%
        };
        let mut sim = Simulation::new(5);
        let handles = ant::install(&mut sim, &spec);
        sim.run_until(SimTime::from_secs(20));
        let mut total_give_ups = 0;
        for &node in &handles.receivers {
            let r = sim.agent::<NakcastReceiver>(node).unwrap();
            total_give_ups += r.give_ups();
            // Delivery made progress despite abandonment (no deadlock).
            assert!(r.log().delivered_count() > 300);
        }
        assert!(total_give_ups > 0, "50% loss with 1 retry must abandon");
        let report = ant::collect_report(&sim, &handles);
        assert!(report.reliability() < 1.0);
        assert!(MetricKind::ReLate2.score(&report).is_finite());
    }

    /// The Ricochet pending-repair buffer is bounded: flooding it with
    /// undecodable repairs cannot grow memory without limit.
    #[test]
    fn ricochet_pending_repairs_are_capped() {
        let tuning = Tuning {
            ricochet_pending_repairs: 4,
            ..Tuning::default()
        };
        let spec = SessionSpec {
            transport: TransportConfig::new(ProtocolKind::Ricochet { r: 4, c: 3 })
                .with_tuning(tuning),
            app: AppSpec::at_rate(2_000, 1_000.0, 12),
            stack: StackProfile::new(20.0, 48),
            sender_host: host(),
            receiver_hosts: vec![host(); 4],
            drop_probability: 0.3,
        };
        let mut sim = Simulation::new(9);
        let handles = ant::install(&mut sim, &spec);
        sim.run_until(SimTime::from_secs(10));
        // The run completes and recovery still functions with a tiny cap.
        let report = ant::collect_report(&sim, &handles);
        assert!(report.reliability() > 0.7);
        assert!(report.recovered > 0);
    }

    /// A crashed Ricochet peer stops being chosen as a repair target once
    /// its membership heartbeats age out, so repair fan-out concentrates
    /// on the survivors (observable as sustained lateral recovery).
    #[test]
    fn membership_aging_redirects_repairs() {
        let tuning = Tuning {
            membership_interval: SimDuration::from_millis(200),
            membership_timeout_factor: 2,
            ..Tuning::default()
        };
        let spec = SessionSpec {
            transport: TransportConfig::new(ProtocolKind::Ricochet { r: 4, c: 2 })
                .with_tuning(tuning),
            app: AppSpec::at_rate(4_000, 200.0, 12),
            stack: StackProfile::new(20.0, 48),
            sender_host: host(),
            receiver_hosts: vec![host(); 4],
            drop_probability: 0.05,
        };
        let mut sim = Simulation::new(31);
        let handles = ant::install(&mut sim, &spec);
        sim.run_until(SimTime::from_secs(4));
        sim.crash_node(handles.receivers[3]);
        sim.run_until(SimTime::from_secs(25));
        // Survivors keep healing: late-stream losses (after the crash and
        // the aging window) are still recovered laterally.
        for &node in &handles.receivers[..3] {
            let r = sim.agent::<RicochetReceiver>(node).unwrap();
            let late_recoveries = r
                .log()
                .deliveries()
                .iter()
                .filter(|d| d.recovered && d.published_at > SimTime::from_secs(6))
                .count();
            assert!(
                late_recoveries > 0,
                "survivor {node} stopped recovering after the crash"
            );
            let reliability = r.log().delivered_count() as f64 / 4_000.0;
            assert!(reliability > 0.98, "reliability {reliability}");
        }
    }

    /// Duplicate suppression: overlapping NAK retransmissions never reach
    /// the application twice.
    #[test]
    fn nakcast_duplicates_are_suppressed() {
        // A very short re-NAK window forces duplicate retransmissions.
        let spec = SessionSpec {
            transport: TransportConfig::new(ProtocolKind::Nakcast {
                timeout: SimDuration::from_millis(1),
            }),
            app: AppSpec::at_rate(1_000, 500.0, 12),
            stack: StackProfile::new(20.0, 48),
            sender_host: host(),
            receiver_hosts: vec![host(); 3],
            drop_probability: 0.1,
        };
        let mut sim = Simulation::new(13);
        let handles = ant::install(&mut sim, &spec);
        sim.run_until(SimTime::from_secs(15));
        for &node in &handles.receivers {
            let r = ant::reader(&sim, &handles, node);
            let mut seqs: Vec<u64> = r.log().deliveries().iter().map(|d| d.seq).collect();
            let n = seqs.len();
            seqs.sort_unstable();
            seqs.dedup();
            assert_eq!(n, seqs.len(), "application saw a duplicate");
        }
    }
}

//! Small statistics helpers: online mean/variance and percentiles.

/// Online mean and variance accumulator (Welford's algorithm).
///
/// Numerically stable for long latency streams; used for latency, jitter,
/// and burstiness computations.
///
/// # Examples
///
/// ```
/// use adamant_metrics::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 5.0);
/// assert_eq!(w.population_stddev(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (zero for fewer than two observations).
    pub fn population_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    ///
    /// The paper's *jitter* is the standard deviation of packet latency and
    /// its *burstiness* the standard deviation of per-second bandwidth; both
    /// use the population form.
    pub fn population_stddev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample variance (Bessel-corrected; zero for fewer than two samples).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
    }
}

impl Extend<f64> for Welford {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Welford {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut w = Welford::new();
        w.extend(iter);
        w
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of `values` by linear interpolation.
///
/// Returns `None` for an empty slice. `values` need not be sorted.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or any value is NaN.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator_is_zero() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.population_stddev(), 0.0);
        assert_eq!(w.sample_stddev(), 0.0);
    }

    #[test]
    fn single_value_has_zero_variance() {
        let mut w = Welford::new();
        w.push(42.0);
        assert_eq!(w.mean(), 42.0);
        assert_eq!(w.population_variance(), 0.0);
    }

    #[test]
    fn known_dataset() {
        let w: Welford = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.population_stddev() - 2.0).abs() < 1e-12);
        assert!((w.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_sequential() {
        let all: Welford = (0..100).map(|i| (i as f64) * 0.7 - 3.0).collect();
        let mut a: Welford = (0..37).map(|i| (i as f64) * 0.7 - 3.0).collect();
        let b: Welford = (37..100).map(|i| (i as f64) * 0.7 - 3.0).collect();
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.population_variance() - all.population_variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut empty = Welford::new();
        let data: Welford = [1.0, 2.0, 3.0].into_iter().collect();
        empty.merge(&data);
        assert_eq!(empty.mean(), 2.0);
        let mut data2 = data;
        data2.merge(&Welford::new());
        assert_eq!(data2.count(), 3);
    }

    #[test]
    fn percentile_basics() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 1.0), Some(5.0));
        assert_eq!(percentile(&v, 0.5), Some(3.0));
        assert_eq!(percentile(&v, 0.25), Some(2.0));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0];
        assert_eq!(percentile(&v, 0.5), Some(15.0));
        assert_eq!(percentile(&v, 0.75), Some(17.5));
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn percentile_rejects_bad_q() {
        percentile(&[1.0], 1.5);
    }
}

//! The composite QoS metric family (ReLate2 and friends).
//!
//! A composite metric folds several QoS concerns into one objective number
//! so that transport protocols can be ranked per environment (lower is
//! better). The paper's evaluation uses **ReLate2** (reliability + average
//! latency) and **ReLate2Jit** (+ jitter); the authors' prior work also
//! defines burstiness and network-usage variants, included here for
//! ablation studies.

use std::fmt;

use crate::report::QosReport;

/// A composite QoS metric. Lower scores are better.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MetricKind {
    /// Average latency × (1 + lost fraction): a mild loss penalty.
    ReLate,
    /// Average latency (µs) × (percent loss + 1): the paper's headline
    /// metric. 9% loss with equal latency scores 10× worse than 0% loss.
    ReLate2,
    /// ReLate2 × jitter (µs): adds latency predictability.
    ReLate2Jit,
    /// ReLate2 × burstiness (stddev of bytes/s): adds bandwidth smoothness.
    ReLate2Burst,
    /// ReLate2 × average network bandwidth usage (KB/s): adds total network
    /// cost.
    ReLate2Net,
}

adamant_json::impl_json_unit_enum!(MetricKind {
    ReLate,
    ReLate2,
    ReLate2Jit,
    ReLate2Burst,
    ReLate2Net,
});

impl MetricKind {
    /// The two metrics the paper trains and evaluates the ANN on.
    pub fn paper_metrics() -> [MetricKind; 2] {
        [MetricKind::ReLate2, MetricKind::ReLate2Jit]
    }

    /// Every metric in the family.
    pub fn all() -> [MetricKind; 5] {
        [
            MetricKind::ReLate,
            MetricKind::ReLate2,
            MetricKind::ReLate2Jit,
            MetricKind::ReLate2Burst,
            MetricKind::ReLate2Net,
        ]
    }

    /// Scores `report` under this metric. Lower is better.
    ///
    /// # Examples
    ///
    /// ```
    /// use adamant_metrics::{MetricKind, QosReport};
    ///
    /// // 1000 µs average latency with 0% loss → ReLate2 = 1000.
    /// let mut b = QosReport::builder(1, 1);
    /// # use adamant_metrics::Delivery;
    /// # use adamant_netsim::SimTime;
    /// b.add_receiver(&[Delivery {
    ///     seq: 0,
    ///     published_at: SimTime::ZERO,
    ///     delivered_at: SimTime::from_micros(1000),
    ///     recovered: false,
    /// }], 0);
    /// let report = b.finish();
    /// assert_eq!(MetricKind::ReLate2.score(&report), 1000.0);
    /// ```
    pub fn score(self, report: &QosReport) -> f64 {
        let relate2 = report.avg_latency_us * (report.percent_loss() + 1.0);
        match self {
            MetricKind::ReLate => report.avg_latency_us * (1.0 + (1.0 - report.reliability())),
            MetricKind::ReLate2 => relate2,
            MetricKind::ReLate2Jit => relate2 * report.jitter_us,
            MetricKind::ReLate2Burst => relate2 * report.burstiness,
            MetricKind::ReLate2Net => relate2 * (report.avg_bandwidth_bytes_per_sec / 1024.0),
        }
    }

    /// Picks the index of the best (lowest-scoring) report.
    ///
    /// Returns `None` for an empty slice. Ties break toward the earliest
    /// index, making selection deterministic.
    pub fn best_of(self, reports: &[QosReport]) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, r) in reports.iter().enumerate() {
            let s = self.score(r);
            match best {
                Some((_, b)) if s >= b => {}
                _ => best = Some((i, s)),
            }
        }
        best.map(|(i, _)| i)
    }
}

impl fmt::Display for MetricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricKind::ReLate => write!(f, "ReLate"),
            MetricKind::ReLate2 => write!(f, "ReLate2"),
            MetricKind::ReLate2Jit => write!(f, "ReLate2Jit"),
            MetricKind::ReLate2Burst => write!(f, "ReLate2Burst"),
            MetricKind::ReLate2Net => write!(f, "ReLate2Net"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Delivery;
    use adamant_netsim::SimTime;

    /// Builds a report with `sent` samples to one receiver, `delivered` of
    /// them arriving with the given per-sample latency.
    fn report(sent: u64, delivered: u64, latency_us: u64) -> QosReport {
        let mut b = QosReport::builder(sent, 1);
        let deliveries: Vec<Delivery> = (0..delivered)
            .map(|seq| Delivery {
                seq,
                published_at: SimTime::ZERO,
                delivered_at: SimTime::from_micros(latency_us),
                recovered: false,
            })
            .collect();
        b.add_receiver(&deliveries, 0);
        b.finish()
    }

    #[test]
    fn relate2_matches_paper_example() {
        // Paper §4.1: 1000 µs average latency, 0% loss → 1000; 9% loss →
        // 10_000; 19% loss → 20_000.
        let zero_loss = report(100, 100, 1000);
        assert!((MetricKind::ReLate2.score(&zero_loss) - 1_000.0).abs() < 1e-9);

        let nine_pct = report(100, 91, 1000);
        assert!((MetricKind::ReLate2.score(&nine_pct) - 10_000.0).abs() < 1e-9);

        let nineteen_pct = report(100, 81, 1000);
        assert!((MetricKind::ReLate2.score(&nineteen_pct) - 20_000.0).abs() < 1e-9);
    }

    #[test]
    fn relate_penalizes_loss_mildly() {
        let lossy = report(100, 50, 1000);
        assert!((MetricKind::ReLate.score(&lossy) - 1_500.0).abs() < 1e-9);
    }

    #[test]
    fn relate2jit_multiplies_jitter() {
        // Two deliveries, latencies 100 and 300 → mean 200, jitter 100,
        // loss 0 → ReLate2 = 200, ReLate2Jit = 20_000.
        let mut b = QosReport::builder(2, 1);
        b.add_receiver(
            &[
                Delivery {
                    seq: 0,
                    published_at: SimTime::ZERO,
                    delivered_at: SimTime::from_micros(100),
                    recovered: false,
                },
                Delivery {
                    seq: 1,
                    published_at: SimTime::ZERO,
                    delivered_at: SimTime::from_micros(300),
                    recovered: false,
                },
            ],
            0,
        );
        let r = b.finish();
        assert!((MetricKind::ReLate2Jit.score(&r) - 20_000.0).abs() < 1e-9);
    }

    #[test]
    fn burst_and_net_variants_use_wire_stats() {
        let mut b = QosReport::builder(1, 1);
        b.add_receiver(
            &[Delivery {
                seq: 0,
                published_at: SimTime::ZERO,
                delivered_at: SimTime::from_micros(1000),
                recovered: false,
            }],
            0,
        );
        b.wire(&[1024, 3072], 4096);
        let r = b.finish();
        // ReLate2 = 1000; burstiness = 1024; avg bw = 2048 B/s = 2 KB/s.
        assert!((MetricKind::ReLate2Burst.score(&r) - 1_024_000.0).abs() < 1e-6);
        assert!((MetricKind::ReLate2Net.score(&r) - 2_000.0).abs() < 1e-9);
    }

    #[test]
    fn best_of_prefers_lowest_and_breaks_ties_early() {
        let a = report(10, 10, 500);
        let b = report(10, 10, 300);
        let c = report(10, 10, 300);
        assert_eq!(MetricKind::ReLate2.best_of(&[a.clone(), b, c]), Some(1));
        assert_eq!(MetricKind::ReLate2.best_of(&[]), None);
        assert_eq!(MetricKind::ReLate2.best_of(&[a]), Some(0));
    }

    #[test]
    fn lower_reliability_never_improves_relate2() {
        for delivered in [100, 95, 90, 50, 10] {
            let better = report(100, delivered, 1000);
            let worse = report(100, delivered - 5, 1000);
            assert!(
                MetricKind::ReLate2.score(&worse) > MetricKind::ReLate2.score(&better),
                "loss should monotonically worsen ReLate2"
            );
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(MetricKind::ReLate2.to_string(), "ReLate2");
        assert_eq!(MetricKind::ReLate2Jit.to_string(), "ReLate2Jit");
        assert_eq!(MetricKind::all().len(), 5);
        assert_eq!(MetricKind::paper_metrics().len(), 2);
    }
}

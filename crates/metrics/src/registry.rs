//! Per-run metrics registry: counters, gauges, and latency histograms keyed
//! by `protocol × node`, folded from a structured observability trace and
//! rendered to a JSON report artifact.
//!
//! Keys are flat strings of the form `<protocol>/<scope>/<name>` (for
//! example `nakcast-0.050s/node3/naks_sent`), so the JSON output stays a
//! simple object and diffing two runs is a line-level operation.

use std::collections::BTreeMap;

use adamant_json::{Json, ToJson};
use adamant_netsim::{DropReason, NodeId, ObsEvent, TracedEvent};

use crate::histogram::LatencyHistogram;

/// A per-run metrics store: monotonic counters, last-value gauges, and
/// latency histograms, all keyed by flat strings.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LatencyHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Builds a `<protocol>/node<i>/<name>` key.
    pub fn node_key(protocol: &str, node: NodeId, name: &str) -> String {
        format!("{protocol}/node{}/{name}", node.index())
    }

    /// Adds `n` to a counter, creating it at zero first.
    pub fn add(&mut self, key: impl Into<String>, n: u64) {
        *self.counters.entry(key.into()).or_insert(0) += n;
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, key: impl Into<String>) {
        self.add(key, 1);
    }

    /// Reads a counter (zero when never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Sets a gauge to its latest value.
    pub fn set_gauge(&mut self, key: impl Into<String>, value: f64) {
        self.gauges.insert(key.into(), value);
    }

    /// Reads a gauge.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// Records one latency observation (microseconds) into a histogram.
    pub fn observe_us(&mut self, key: impl Into<String>, us: f64) {
        self.histograms.entry(key.into()).or_default().record_us(us);
    }

    /// Reads a histogram.
    pub fn histogram(&self, key: &str) -> Option<&LatencyHistogram> {
        self.histograms.get(key)
    }

    /// Sums every counter whose key ends with `/<name>` — the cross-node
    /// total for one metric.
    pub fn total(&self, name: &str) -> u64 {
        let suffix = format!("/{name}");
        self.counters
            .iter()
            .filter(|(k, _)| k.ends_with(&suffix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

impl ToJson for MetricsRegistry {
    fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, &v)| (k.clone(), Json::Num(v as f64)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(k, &v)| (k.clone(), Json::Num(v)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    let mut o = vec![("count".to_owned(), Json::Num(h.count() as f64))];
                    if let (Some(min), Some(p50), Some(p99), Some(max)) = (
                        h.min_us(),
                        h.percentile(0.5),
                        h.percentile(0.99),
                        h.max_us(),
                    ) {
                        o.push(("min_us".to_owned(), Json::Num(min)));
                        o.push(("p50_us".to_owned(), Json::Num(p50)));
                        o.push(("p99_us".to_owned(), Json::Num(p99)));
                        o.push(("max_us".to_owned(), Json::Num(max)));
                    }
                    (k.clone(), Json::Obj(o))
                })
                .collect(),
        );
        Json::Obj(vec![
            ("counters".to_owned(), counters),
            ("gauges".to_owned(), gauges),
            ("histograms".to_owned(), histograms),
        ])
    }
}

/// Folds a structured trace into a [`MetricsRegistry`] under `protocol`'s
/// key prefix.
///
/// Every event variant maps to at least one counter, so the registry's
/// totals double as a coverage check on the trace itself; sample latencies
/// land in per-node histograms.
pub fn registry_from_trace(protocol: &str, events: &[TracedEvent]) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    let key = |node: NodeId, name: &str| MetricsRegistry::node_key(protocol, node, name);
    let run = |name: &str| format!("{protocol}/run/{name}");
    let dur = |name: &str| format!("{protocol}/durability/{name}");
    // Restart instants, so catch-up completions fold into a recovery-latency
    // histogram (time from the restart to full history recovery).
    let mut restarted_at: BTreeMap<usize, u64> = BTreeMap::new();
    for te in events {
        match te.event {
            ObsEvent::PacketSent {
                node, size_bytes, ..
            } => {
                reg.inc(key(node, "packets_sent"));
                reg.add(key(node, "bytes_sent"), u64::from(size_bytes));
            }
            ObsEvent::PacketEnqueued { node, .. } => reg.inc(key(node, "packets_enqueued")),
            ObsEvent::PacketDelivered {
                node, size_bytes, ..
            } => {
                reg.inc(key(node, "packets_delivered"));
                reg.add(key(node, "bytes_delivered"), u64::from(size_bytes));
            }
            ObsEvent::PacketDropped { node, reason, .. } => {
                let name = match reason {
                    DropReason::Link => "drops_link",
                    DropReason::Crash => "drops_crash",
                    DropReason::Partition => "drops_partition",
                };
                reg.inc(key(node, name));
            }
            ObsEvent::EpochDropped { node } => reg.inc(key(node, "epoch_drops")),
            ObsEvent::NodeCrashed { node, .. } => reg.inc(key(node, "crashes")),
            ObsEvent::NodeRestarted { node, .. } => {
                reg.inc(key(node, "restarts"));
                restarted_at.insert(node.index(), te.time.as_nanos());
            }
            ObsEvent::PartitionChanged { .. } => reg.inc(run("partition_changes")),
            ObsEvent::NetworkChanged { .. } => reg.inc(run("network_changes")),
            ObsEvent::BandwidthChanged { node, .. } => reg.inc(key(node, "bandwidth_changes")),
            ObsEvent::ContentionChanged { node, .. } => reg.inc(key(node, "contention_changes")),
            ObsEvent::SampleAccepted {
                node,
                published_ns,
                delivered_ns,
                recovered,
                ..
            } => {
                reg.inc(key(node, "samples_accepted"));
                if recovered {
                    reg.inc(key(node, "samples_recovered"));
                }
                let us = delivered_ns.saturating_sub(published_ns) as f64 / 1_000.0;
                reg.observe_us(key(node, "latency"), us);
            }
            ObsEvent::SampleDuplicate { node, .. } => reg.inc(key(node, "duplicates")),
            ObsEvent::NakSent { node, count } => {
                reg.inc(key(node, "nak_rounds"));
                reg.add(key(node, "naks_sent"), u64::from(count));
            }
            ObsEvent::NakGiveUp { node, .. } => reg.inc(key(node, "nak_give_ups")),
            ObsEvent::Retransmitted { node, .. } => reg.inc(key(node, "retransmissions")),
            ObsEvent::RepairSent { node, copies, .. } => {
                reg.inc(key(node, "repairs_sent"));
                reg.add(key(node, "repair_copies"), u64::from(copies));
            }
            ObsEvent::RepairDecoded { node, .. } => reg.inc(key(node, "repairs_decoded")),
            ObsEvent::FailoverPromoted { node } => reg.inc(key(node, "failover_promotions")),
            ObsEvent::HistoryRetained { node, retained, .. } => {
                reg.inc(key(node, "history_retained"));
                reg.set_gauge(dur("retained_samples"), retained as f64);
            }
            ObsEvent::HistoryEvicted { node, .. } => {
                reg.inc(key(node, "history_evicted"));
                reg.inc(dur("evicted_samples"));
            }
            ObsEvent::CatchUpNakSent { node, count } => {
                reg.inc(key(node, "catch_up_nak_rounds"));
                reg.add(dur("catch_up_naks"), u64::from(count));
            }
            ObsEvent::DurableReplayed { node, .. } => {
                reg.inc(key(node, "durable_replays"));
                reg.inc(dur("replayed_samples"));
            }
            ObsEvent::CatchUpCompleted { node, recovered } => {
                reg.inc(key(node, "catch_ups_completed"));
                reg.add(dur("recovered_samples"), recovered);
                if let Some(&t0) = restarted_at.get(&node.index()) {
                    let us = te.time.as_nanos().saturating_sub(t0) as f64 / 1_000.0;
                    reg.observe_us(dur("recovery_latency"), us);
                }
            }
            ObsEvent::CatchUpAbandoned { node, count } => {
                reg.inc(key(node, "catch_ups_abandoned"));
                reg.add(dur("abandoned_samples"), u64::from(count));
            }
            ObsEvent::HealAlarm { .. } => reg.inc(run("heal_alarms")),
            ObsEvent::HealProbe { .. } => reg.inc(run("heal_probes")),
            ObsEvent::HealDecision { .. } => reg.inc(run("heal_decisions")),
            ObsEvent::HealSwitch { .. } => reg.inc(run("heal_switches")),
            ObsEvent::HealSuppressed { .. } => reg.inc(run("heal_suppressed")),
        }
    }
    reg.set_gauge(run("trace_events"), events.len() as f64);
    if let (Some(first), Some(last)) = (events.first(), events.last()) {
        reg.set_gauge(
            run("trace_span_secs"),
            (last.time.as_nanos().saturating_sub(first.time.as_nanos())) as f64 / 1e9,
        );
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_netsim::SimTime;

    fn ev(time_us: u64, event: ObsEvent) -> TracedEvent {
        TracedEvent {
            time: SimTime::from_micros(time_us),
            event,
        }
    }

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let mut reg = MetricsRegistry::new();
        assert!(reg.is_empty());
        reg.inc("p/node0/x");
        reg.add("p/node0/x", 4);
        reg.set_gauge("p/run/g", 2.5);
        reg.observe_us("p/node0/latency", 100.0);
        reg.observe_us("p/node0/latency", 300.0);
        assert_eq!(reg.counter("p/node0/x"), 5);
        assert_eq!(reg.counter("p/node0/missing"), 0);
        assert_eq!(reg.gauge("p/run/g"), Some(2.5));
        assert_eq!(reg.histogram("p/node0/latency").unwrap().count(), 2);
        let json = reg.to_json();
        assert_eq!(
            json.get("counters").unwrap().field::<u64>("p/node0/x"),
            Ok(5)
        );
        let hist = json.get("histograms").unwrap().get("p/node0/latency");
        assert_eq!(hist.unwrap().field::<u64>("count"), Ok(2));
    }

    #[test]
    fn durability_events_fold_into_run_scope_keys() {
        let writer = NodeId::from_index(0);
        let reader = NodeId::from_index(1);
        let trace = vec![
            ev(
                0,
                ObsEvent::HistoryRetained {
                    node: writer,
                    seq: 0,
                    retained: 1,
                },
            ),
            ev(
                10,
                ObsEvent::HistoryRetained {
                    node: writer,
                    seq: 1,
                    retained: 2,
                },
            ),
            ev(
                20,
                ObsEvent::HistoryEvicted {
                    node: writer,
                    seq: 0,
                },
            ),
            ev(
                30_000,
                ObsEvent::NodeRestarted {
                    node: reader,
                    epoch: 1,
                },
            ),
            ev(
                31_000,
                ObsEvent::CatchUpNakSent {
                    node: reader,
                    count: 3,
                },
            ),
            ev(
                31_500,
                ObsEvent::DurableReplayed {
                    node: writer,
                    seq: 1,
                },
            ),
            ev(
                32_000,
                ObsEvent::CatchUpCompleted {
                    node: reader,
                    recovered: 3,
                },
            ),
            ev(
                40_000,
                ObsEvent::CatchUpAbandoned {
                    node: reader,
                    count: 1,
                },
            ),
        ];
        let reg = registry_from_trace("durable", &trace);
        assert_eq!(reg.gauge("durable/durability/retained_samples"), Some(2.0));
        assert_eq!(reg.counter("durable/durability/evicted_samples"), 1);
        assert_eq!(reg.counter("durable/durability/catch_up_naks"), 3);
        assert_eq!(reg.counter("durable/durability/replayed_samples"), 1);
        assert_eq!(reg.counter("durable/durability/recovered_samples"), 3);
        assert_eq!(reg.counter("durable/durability/abandoned_samples"), 1);
        assert_eq!(reg.counter("durable/node1/catch_ups_completed"), 1);
        // Recovery latency = completion (32 ms) minus restart (30 ms).
        let h = reg
            .histogram("durable/durability/recovery_latency")
            .unwrap();
        assert_eq!(h.count(), 1);
        assert!((1_900.0..=2_100.0).contains(&h.percentile(0.5).unwrap()));
    }

    #[test]
    fn trace_folds_into_protocol_node_keys() {
        let rx = NodeId::from_index(1);
        let trace = vec![
            ev(
                0,
                ObsEvent::PacketSent {
                    node: NodeId::from_index(0),
                    tag: 1,
                    wire_id: 0,
                    size_bytes: 60,
                },
            ),
            ev(
                5,
                ObsEvent::PacketDropped {
                    node: rx,
                    tag: 1,
                    wire_id: 0,
                    reason: DropReason::Link,
                },
            ),
            ev(9, ObsEvent::NakSent { node: rx, count: 2 }),
            ev(
                20,
                ObsEvent::SampleAccepted {
                    node: rx,
                    seq: 0,
                    published_ns: 0,
                    delivered_ns: 20_000,
                    recovered: true,
                },
            ),
        ];
        let reg = registry_from_trace("nakcast-0.050s", &trace);
        assert_eq!(reg.counter("nakcast-0.050s/node0/packets_sent"), 1);
        assert_eq!(reg.counter("nakcast-0.050s/node1/drops_link"), 1);
        assert_eq!(reg.counter("nakcast-0.050s/node1/naks_sent"), 2);
        assert_eq!(reg.counter("nakcast-0.050s/node1/samples_recovered"), 1);
        assert_eq!(reg.total("samples_accepted"), 1);
        assert_eq!(reg.gauge("nakcast-0.050s/run/trace_events"), Some(4.0));
        let h = reg.histogram("nakcast-0.050s/node1/latency").unwrap();
        assert_eq!(h.count(), 1);
        assert!((15.0..=25.0).contains(&h.percentile(0.5).unwrap()));
    }
}

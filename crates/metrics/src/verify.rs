//! Runtime verification: replay a captured observability trace against the
//! invariants the protocols and engine are supposed to uphold.
//!
//! The checker is deliberately independent of the engine — it sees only the
//! flat event stream a [`TraceSink`](adamant_netsim::TraceSink) captured,
//! so a bug that corrupts both the engine state *and* its own report still
//! trips here unless it also forges a self-consistent trace.
//!
//! Invariants checked:
//!
//! 1. **No delivery after crash** — no packet or sample reaches a node
//!    between its `NodeCrashed` and the next `NodeRestarted`.
//! 2. **At-most-once** — each (receiver, incarnation, sequence) is accepted
//!    at most once; the reception logs suppress duplicates, so a second
//!    `SampleAccepted` is a transport bug.
//! 3. **Recovery latency bound** — every recovered delivery lands within
//!    the configured bound (for NAKcast, derive it from
//!    `nakcast_recovery_bound` in `adamant-transport`).
//! 4. **ReLate2 consistency** — ReLate2 recomputed from the trace's
//!    accepted samples equals the engine-reported value within tolerance.
//! 5. **No gap after catch-up** — a durable (TransientLocal) reader's
//!    acceptances, unioned across every incarnation, cover all published
//!    samples by the end of the trace: crash-restart loses nothing.
//! 6. **Cross-incarnation at-most-once** — a durable reader never accepts
//!    the same sequence in two incarnations (restart dedupe works).
//! 7. **Catch-up latency bound** — a restarted durable reader completes
//!    catch-up within the configured bound, and always completes.

use std::collections::{BTreeMap, BTreeSet};

use adamant_json::{Json, ToJson};
use adamant_netsim::{ObsEvent, SimDuration, TracedEvent};

use crate::stats::Welford;

/// Which invariant a violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvariantKind {
    /// Delivery to a node currently in a crash epoch.
    NoDeliveryAfterCrash,
    /// Second acceptance of the same (receiver, incarnation, sequence).
    AtMostOnce,
    /// Recovered delivery slower than the recovery schedule allows.
    RecoveryLatencyBound,
    /// Trace-recomputed ReLate2 disagrees with the engine's report.
    Relate2Consistency,
    /// A durable reader's union of acceptances across incarnations misses
    /// published samples at the end of the trace.
    NoGapAfterCatchUp,
    /// A durable reader accepted the same sequence in two incarnations.
    CrossIncarnationAtMostOnce,
    /// A restarted durable reader finished catch-up too late, or never.
    CatchUpLatencyBound,
}

adamant_json::impl_json_unit_enum!(InvariantKind {
    NoDeliveryAfterCrash,
    AtMostOnce,
    RecoveryLatencyBound,
    Relate2Consistency,
    NoGapAfterCatchUp,
    CrossIncarnationAtMostOnce,
    CatchUpLatencyBound,
});

impl std::fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            InvariantKind::NoDeliveryAfterCrash => "no-delivery-after-crash",
            InvariantKind::AtMostOnce => "at-most-once",
            InvariantKind::RecoveryLatencyBound => "recovery-latency-bound",
            InvariantKind::Relate2Consistency => "relate2-consistency",
            InvariantKind::NoGapAfterCatchUp => "no-gap-after-catch-up",
            InvariantKind::CrossIncarnationAtMostOnce => "cross-incarnation-at-most-once",
            InvariantKind::CatchUpLatencyBound => "catch-up-latency-bound",
        };
        write!(f, "{name}")
    }
}

/// One invariant violation found in a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The invariant that failed.
    pub invariant: InvariantKind,
    /// Trace time of the offending event (nanoseconds; 0 for run-level
    /// violations).
    pub time_ns: u64,
    /// Human-readable description of what went wrong.
    pub detail: String,
}

impl ToJson for Violation {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("invariant".to_owned(), self.invariant.to_json()),
            ("time_ns".to_owned(), Json::Num(self.time_ns as f64)),
            ("detail".to_owned(), Json::Str(self.detail.clone())),
        ])
    }
}

/// What the checker needs to know about the run beyond the trace itself.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifySpec {
    /// Samples the writer published.
    pub samples_sent: u64,
    /// Number of data readers.
    pub receivers: u32,
    /// The engine's reported ReLate2, when checking consistency.
    pub reported_relate2: Option<f64>,
    /// Upper bound on recovered-delivery latency, when checking recovery.
    pub recovery_bound: Option<SimDuration>,
    /// Absolute tolerance for the ReLate2 comparison.
    pub tolerance: f64,
    /// Nodes holding durable (TransientLocal) readers: their acceptances
    /// must union to every published sample across incarnations, exactly
    /// once per sequence.
    pub durable_nodes: BTreeSet<usize>,
    /// Upper bound on restart-to-catch-up-completion latency for durable
    /// nodes (derive it from `adamant_proto::catch_up_bound`).
    pub catch_up_bound: Option<SimDuration>,
}

impl VerifySpec {
    /// A spec checking only the structural invariants (crash hygiene and
    /// at-most-once) for a run of `samples_sent × receivers`.
    pub fn new(samples_sent: u64, receivers: u32) -> Self {
        VerifySpec {
            samples_sent,
            receivers,
            reported_relate2: None,
            recovery_bound: None,
            tolerance: 1e-9,
            durable_nodes: BTreeSet::new(),
            catch_up_bound: None,
        }
    }

    /// Marks `nodes` as durable readers whose crash-restart recovery the
    /// checker must prove (invariants 5–7).
    pub fn with_durable_nodes(mut self, nodes: impl IntoIterator<Item = usize>) -> Self {
        self.durable_nodes.extend(nodes);
        self
    }

    /// Also bound restart-to-catch-up-completion latency by `bound`.
    pub fn with_catch_up_bound(mut self, bound: SimDuration) -> Self {
        self.catch_up_bound = Some(bound);
        self
    }

    /// Also check the trace-recomputed ReLate2 against `reported`.
    pub fn with_reported_relate2(mut self, reported: f64) -> Self {
        self.reported_relate2 = Some(reported);
        self
    }

    /// Also bound recovered-delivery latency by `bound`.
    pub fn with_recovery_bound(mut self, bound: SimDuration) -> Self {
        self.recovery_bound = Some(bound);
        self
    }

    /// Overrides the ReLate2 comparison tolerance.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }
}

/// The checker's result: violations plus the quantities it recomputed.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// Events examined.
    pub events: usize,
    /// Unique samples accepted across receivers.
    pub accepted: u64,
    /// Of those, how many arrived through a recovery path.
    pub recovered: u64,
    /// ReLate2 recomputed from the trace alone.
    pub recomputed_relate2: f64,
    /// Every invariant violation, in trace order.
    pub violations: Vec<Violation>,
}

impl VerifyReport {
    /// Whether the trace satisfied every checked invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violations of one particular invariant.
    pub fn violations_of(&self, kind: InvariantKind) -> usize {
        self.violations
            .iter()
            .filter(|v| v.invariant == kind)
            .count()
    }
}

impl ToJson for VerifyReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("events".to_owned(), Json::Num(self.events as f64)),
            ("accepted".to_owned(), Json::Num(self.accepted as f64)),
            ("recovered".to_owned(), Json::Num(self.recovered as f64)),
            (
                "recomputed_relate2".to_owned(),
                Json::Num(self.recomputed_relate2),
            ),
            ("violations".to_owned(), self.violations.to_json()),
        ])
    }
}

/// Replays `events` against the declared invariants.
///
/// The ReLate2 recomputation mirrors the engine exactly: latencies pool
/// into one Welford accumulator per run, grouped by receiver in node order
/// (the order `ant::collect_report` visits readers), preserving each
/// receiver's acceptance order — so with a faithful trace the recomputed
/// value is bit-identical, not merely close.
pub fn verify_trace(events: &[TracedEvent], spec: &VerifySpec) -> VerifyReport {
    verify_inner(events, spec, true)
}

/// Replays `events` as a *prefix* of a longer run: only prefix-closed
/// invariants are checked.
///
/// A prefix-closed invariant is one a clean run can never violate partway
/// through — no-delivery-after-crash, at-most-once, recovery/catch-up
/// latency, cross-incarnation dedupe. End-of-trace completeness checks
/// (durable union covers every sample, every restart reached catch-up,
/// ReLate2 agreement) are skipped because an honest partial schedule fails
/// them trivially. The model checker in `adamant-mc` calls this on every
/// explored path and reserves [`verify_trace`] for quiescent terminal
/// states.
pub fn verify_trace_prefix(events: &[TracedEvent], spec: &VerifySpec) -> VerifyReport {
    verify_inner(events, spec, false)
}

fn verify_inner(events: &[TracedEvent], spec: &VerifySpec, end_of_trace: bool) -> VerifyReport {
    let mut crashed: BTreeSet<usize> = BTreeSet::new();
    let mut incarnation: BTreeMap<usize, u64> = BTreeMap::new();
    let mut seen: BTreeSet<(usize, u64, u64)> = BTreeSet::new();
    let mut latencies: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
    let mut violations = Vec::new();
    let mut accepted = 0u64;
    let mut recovered_count = 0u64;
    // Durable bookkeeping: per-node acceptance union across incarnations,
    // restart instants, and restarts still awaiting a CatchUpCompleted.
    let mut durable_union: BTreeMap<usize, BTreeSet<u64>> = spec
        .durable_nodes
        .iter()
        .map(|&n| (n, BTreeSet::new()))
        .collect();
    let mut restarted_at: BTreeMap<usize, u64> = BTreeMap::new();
    let mut pending_catch_up: BTreeSet<usize> = BTreeSet::new();

    for te in events {
        let time_ns = te.time.as_nanos();
        match te.event {
            ObsEvent::NodeCrashed { node, .. } => {
                crashed.insert(node.index());
            }
            ObsEvent::NodeRestarted { node, .. } => {
                crashed.remove(&node.index());
                *incarnation.entry(node.index()).or_insert(0) += 1;
                if spec.durable_nodes.contains(&node.index()) {
                    restarted_at.insert(node.index(), time_ns);
                    pending_catch_up.insert(node.index());
                }
            }
            ObsEvent::CatchUpCompleted { node, .. } => {
                let idx = node.index();
                pending_catch_up.remove(&idx);
                if let (Some(&t0), Some(bound)) = (restarted_at.get(&idx), spec.catch_up_bound) {
                    let elapsed = time_ns.saturating_sub(t0);
                    if elapsed > bound.as_nanos() {
                        violations.push(Violation {
                            invariant: InvariantKind::CatchUpLatencyBound,
                            time_ns,
                            detail: format!(
                                "{node} completed catch-up {elapsed} ns after restart \
                                 (bound {} ns)",
                                bound.as_nanos()
                            ),
                        });
                    }
                }
            }
            ObsEvent::PacketDelivered { node, wire_id, .. } if crashed.contains(&node.index()) => {
                violations.push(Violation {
                    invariant: InvariantKind::NoDeliveryAfterCrash,
                    time_ns,
                    detail: format!("packet {wire_id} delivered to crashed {node}"),
                });
            }
            ObsEvent::SampleAccepted {
                node,
                seq,
                published_ns,
                delivered_ns,
                recovered,
            } => {
                let idx = node.index();
                if crashed.contains(&idx) {
                    violations.push(Violation {
                        invariant: InvariantKind::NoDeliveryAfterCrash,
                        time_ns,
                        detail: format!("sample {seq} accepted by crashed {node}"),
                    });
                }
                let inc = incarnation.get(&idx).copied().unwrap_or(0);
                if !seen.insert((idx, inc, seq)) {
                    violations.push(Violation {
                        invariant: InvariantKind::AtMostOnce,
                        time_ns,
                        detail: format!("sample {seq} accepted twice by {node} (epoch {inc})"),
                    });
                    continue;
                }
                if let Some(union) = durable_union.get_mut(&idx) {
                    if !union.insert(seq) {
                        violations.push(Violation {
                            invariant: InvariantKind::CrossIncarnationAtMostOnce,
                            time_ns,
                            detail: format!("sample {seq} accepted by {node} in two incarnations"),
                        });
                        continue;
                    }
                }
                accepted += 1;
                let latency_ns = delivered_ns.saturating_sub(published_ns);
                latencies
                    .entry(idx)
                    .or_default()
                    .push(latency_ns as f64 / 1_000.0);
                if recovered {
                    recovered_count += 1;
                    if let Some(bound) = spec.recovery_bound {
                        if latency_ns > bound.as_nanos() {
                            violations.push(Violation {
                                invariant: InvariantKind::RecoveryLatencyBound,
                                time_ns,
                                detail: format!(
                                    "sample {seq} recovered by {node} after {latency_ns} ns \
                                     (bound {} ns)",
                                    bound.as_nanos()
                                ),
                            });
                        }
                    }
                }
            }
            _ => {}
        }
    }

    let end_ns = events.last().map_or(0, |e| e.time.as_nanos());
    if !end_of_trace {
        pending_catch_up.clear();
        durable_union.clear();
    }
    for &idx in &pending_catch_up {
        violations.push(Violation {
            invariant: InvariantKind::CatchUpLatencyBound,
            time_ns: end_ns,
            detail: format!("node{idx} restarted but never completed catch-up"),
        });
    }
    for (&idx, union) in &durable_union {
        let missing: Vec<u64> = (0..spec.samples_sent)
            .filter(|seq| !union.contains(seq))
            .collect();
        if !missing.is_empty() {
            violations.push(Violation {
                invariant: InvariantKind::NoGapAfterCatchUp,
                time_ns: end_ns,
                detail: format!(
                    "node{idx} missing {} of {} samples across incarnations (first gap: {})",
                    missing.len(),
                    spec.samples_sent,
                    missing[0]
                ),
            });
        }
    }

    let mut welford = Welford::new();
    for lat in latencies.values().flatten() {
        welford.push(*lat);
    }
    let expected = spec.samples_sent.saturating_mul(u64::from(spec.receivers));
    let reliability = if expected == 0 {
        0.0
    } else {
        accepted as f64 / expected as f64
    };
    let recomputed_relate2 = welford.mean() * ((1.0 - reliability) * 100.0 + 1.0);
    if let Some(reported) = spec.reported_relate2.filter(|_| end_of_trace) {
        if (recomputed_relate2 - reported).abs() > spec.tolerance {
            violations.push(Violation {
                invariant: InvariantKind::Relate2Consistency,
                time_ns: events.last().map_or(0, |e| e.time.as_nanos()),
                detail: format!(
                    "trace ReLate2 {recomputed_relate2} vs reported {reported} \
                     (tolerance {})",
                    spec.tolerance
                ),
            });
        }
    }

    VerifyReport {
        events: events.len(),
        accepted,
        recovered: recovered_count,
        recomputed_relate2,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_netsim::{NodeId, SimTime};

    fn ev(time_us: u64, event: ObsEvent) -> TracedEvent {
        TracedEvent {
            time: SimTime::from_micros(time_us),
            event,
        }
    }

    fn accept(time_us: u64, node: usize, seq: u64, recovered: bool) -> TracedEvent {
        ev(
            time_us,
            ObsEvent::SampleAccepted {
                node: NodeId::from_index(node),
                seq,
                published_ns: 0,
                delivered_ns: time_us * 1_000,
                recovered,
            },
        )
    }

    #[test]
    fn clean_trace_passes_and_recomputes_relate2() {
        // 2 samples × 1 receiver, both delivered at 1000 µs → ReLate2 1000.
        let trace = vec![accept(1_000, 1, 0, false), accept(1_000, 1, 1, false)];
        let spec = VerifySpec::new(2, 1).with_reported_relate2(1_000.0);
        let report = verify_trace(&trace, &spec);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(report.accepted, 2);
        assert_eq!(report.recomputed_relate2, 1_000.0);
    }

    #[test]
    fn double_acceptance_is_flagged() {
        let trace = vec![accept(10, 1, 0, false), accept(20, 1, 0, false)];
        let report = verify_trace(&trace, &VerifySpec::new(2, 1));
        assert_eq!(report.violations_of(InvariantKind::AtMostOnce), 1);
        assert_eq!(report.accepted, 1, "duplicate must not count as accepted");
    }

    #[test]
    fn restart_opens_a_new_incarnation() {
        let node = NodeId::from_index(1);
        let trace = vec![
            accept(10, 1, 0, false),
            ev(20, ObsEvent::NodeCrashed { node, epoch: 1 }),
            ev(30, ObsEvent::NodeRestarted { node, epoch: 2 }),
            accept(40, 1, 0, false), // fresh incarnation may re-accept seq 0
        ];
        let report = verify_trace(&trace, &VerifySpec::new(1, 1));
        assert_eq!(report.violations_of(InvariantKind::AtMostOnce), 0);
    }

    #[test]
    fn delivery_during_crash_epoch_is_flagged() {
        let node = NodeId::from_index(1);
        let trace = vec![
            ev(10, ObsEvent::NodeCrashed { node, epoch: 1 }),
            accept(20, 1, 0, false),
            ev(
                25,
                ObsEvent::PacketDelivered {
                    node,
                    tag: 1,
                    wire_id: 7,
                    size_bytes: 60,
                },
            ),
            ev(30, ObsEvent::NodeRestarted { node, epoch: 2 }),
            accept(40, 1, 1, false),
        ];
        let report = verify_trace(&trace, &VerifySpec::new(2, 1));
        assert_eq!(report.violations_of(InvariantKind::NoDeliveryAfterCrash), 2);
    }

    #[test]
    fn slow_recovery_breaks_the_bound() {
        let trace = vec![accept(5_000, 1, 0, true)];
        let spec = VerifySpec::new(1, 1).with_recovery_bound(SimDuration::from_millis(1));
        let report = verify_trace(&trace, &spec);
        assert_eq!(report.violations_of(InvariantKind::RecoveryLatencyBound), 1);
        assert_eq!(report.recovered, 1);
        let fast = verify_trace(
            &[accept(500, 1, 0, true)],
            &VerifySpec::new(1, 1).with_recovery_bound(SimDuration::from_millis(1)),
        );
        assert!(fast.is_clean());
    }

    #[test]
    fn relate2_mismatch_is_flagged() {
        let trace = vec![accept(1_000, 1, 0, false)];
        // One of two samples → 50% loss → 1000 × 51 = 51_000.
        let spec = VerifySpec::new(2, 1).with_reported_relate2(51_000.0);
        assert!(verify_trace(&trace, &spec).is_clean());
        let wrong = VerifySpec::new(2, 1).with_reported_relate2(50_000.0);
        let report = verify_trace(&trace, &wrong);
        assert_eq!(report.violations_of(InvariantKind::Relate2Consistency), 1);
    }

    #[test]
    fn durable_crash_restart_recovery_is_proven() {
        let node = NodeId::from_index(1);
        let trace = vec![
            accept(10, 1, 0, false),
            accept(20, 1, 1, false),
            ev(30, ObsEvent::NodeCrashed { node, epoch: 1 }),
            ev(40, ObsEvent::NodeRestarted { node, epoch: 2 }),
            accept(50, 1, 2, true),
            accept(60, 1, 3, false),
            ev(70, ObsEvent::CatchUpCompleted { node, recovered: 1 }),
        ];
        let spec = VerifySpec::new(4, 1)
            .with_durable_nodes([1])
            .with_catch_up_bound(SimDuration::from_millis(1));
        let report = verify_trace(&trace, &spec);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(report.accepted, 4);
    }

    #[test]
    fn durable_gap_at_end_of_trace_is_flagged() {
        // A volatile reader that restarts mid-stream loses sample 1 for
        // good; marking it durable makes that loss a violation.
        let node = NodeId::from_index(1);
        let trace = vec![
            accept(10, 1, 0, false),
            ev(20, ObsEvent::NodeCrashed { node, epoch: 1 }),
            ev(30, ObsEvent::NodeRestarted { node, epoch: 2 }),
            accept(40, 1, 2, false),
        ];
        let spec = VerifySpec::new(3, 1).with_durable_nodes([1]);
        let report = verify_trace(&trace, &spec);
        assert_eq!(report.violations_of(InvariantKind::NoGapAfterCatchUp), 1);
        assert!(report
            .violations
            .iter()
            .any(|v| v.detail.contains("first gap: 1")));
        // A restart with no CatchUpCompleted is itself a violation.
        assert_eq!(report.violations_of(InvariantKind::CatchUpLatencyBound), 1);
    }

    #[test]
    fn cross_incarnation_duplicate_is_flagged_for_durable_nodes() {
        let node = NodeId::from_index(1);
        let trace = vec![
            accept(10, 1, 0, false),
            ev(20, ObsEvent::NodeCrashed { node, epoch: 1 }),
            ev(30, ObsEvent::NodeRestarted { node, epoch: 2 }),
            accept(40, 1, 0, false), // delivered again after restart
            accept(50, 1, 1, false),
            ev(60, ObsEvent::CatchUpCompleted { node, recovered: 0 }),
        ];
        let spec = VerifySpec::new(2, 1).with_durable_nodes([1]);
        let report = verify_trace(&trace, &spec);
        assert_eq!(
            report.violations_of(InvariantKind::CrossIncarnationAtMostOnce),
            1
        );
        assert_eq!(report.accepted, 2, "duplicate must not count");
        // Plain (non-durable) verification accepts the re-delivery.
        let plain = verify_trace(&trace, &VerifySpec::new(2, 1));
        assert_eq!(
            plain.violations_of(InvariantKind::CrossIncarnationAtMostOnce),
            0
        );
    }

    #[test]
    fn slow_catch_up_breaks_the_bound() {
        let node = NodeId::from_index(1);
        let trace = vec![
            accept(10, 1, 0, false),
            ev(20, ObsEvent::NodeCrashed { node, epoch: 1 }),
            ev(30, ObsEvent::NodeRestarted { node, epoch: 2 }),
            // Catch-up completes 5 ms after restart; bound is 1 ms.
            ev(5_030, ObsEvent::CatchUpCompleted { node, recovered: 1 }),
        ];
        let spec = VerifySpec::new(1, 1)
            .with_durable_nodes([1])
            .with_catch_up_bound(SimDuration::from_millis(1));
        let report = verify_trace(&trace, &spec);
        assert_eq!(report.violations_of(InvariantKind::CatchUpLatencyBound), 1);
    }

    #[test]
    fn prefix_verification_skips_end_of_trace_checks_only() {
        let node = NodeId::from_index(1);
        // A restart whose catch-up hasn't happened *yet*: a legal prefix.
        let partial = vec![
            accept(10, 1, 0, false),
            ev(20, ObsEvent::NodeCrashed { node, epoch: 1 }),
            ev(30, ObsEvent::NodeRestarted { node, epoch: 2 }),
        ];
        let spec = VerifySpec::new(3, 1)
            .with_durable_nodes([1])
            .with_catch_up_bound(SimDuration::from_millis(1))
            .with_reported_relate2(0.0);
        assert!(!verify_trace(&partial, &spec).is_clean());
        assert!(verify_trace_prefix(&partial, &spec).is_clean());
        // Prefix-closed violations still trip: accept while crashed.
        let bad = vec![
            ev(20, ObsEvent::NodeCrashed { node, epoch: 1 }),
            accept(30, 1, 0, false),
        ];
        let report = verify_trace_prefix(&bad, &spec);
        assert_eq!(report.violations_of(InvariantKind::NoDeliveryAfterCrash), 1);
        // And so does a duplicate acceptance mid-prefix.
        let dup = vec![accept(10, 1, 0, false), accept(20, 1, 0, false)];
        assert_eq!(
            verify_trace_prefix(&dup, &spec).violations_of(InvariantKind::AtMostOnce),
            1
        );
    }

    #[test]
    fn report_serializes() {
        let trace = vec![accept(10, 1, 0, false), accept(20, 1, 0, false)];
        let report = verify_trace(&trace, &VerifySpec::new(2, 1));
        let json = report.to_json();
        assert_eq!(json.field::<u64>("accepted"), Ok(1));
        let viols = json.get("violations").unwrap().as_arr().unwrap();
        assert_eq!(viols.len(), 1);
        assert_eq!(
            viols[0].field::<String>("invariant"),
            Ok("AtMostOnce".to_owned())
        );
    }
}

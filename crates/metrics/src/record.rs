//! Per-receiver reception logs: the raw material of every QoS metric.

use adamant_netsim::{SimDuration, SimTime};

/// One sample delivered to one receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The publisher-assigned sample sequence number.
    pub seq: u64,
    /// When the publisher handed the sample to the middleware.
    pub published_at: SimTime,
    /// When the receiver's application saw the sample.
    pub delivered_at: SimTime,
    /// Whether the sample was recovered by the transport's error-correction
    /// machinery (NAK retransmission, lateral repair) rather than arriving
    /// on the first attempt.
    pub recovered: bool,
}

impl Delivery {
    /// End-to-end latency of this delivery.
    pub fn latency(&self) -> SimDuration {
        self.delivered_at.saturating_since(self.published_at)
    }
}

/// Everything one receiver observed during a run.
///
/// Transports append to this as they deliver samples to the application;
/// the metrics layer consumes it afterwards. Duplicate deliveries of the
/// same sequence number are recorded but flagged, and only the first copy
/// counts toward reliability.
#[derive(Debug, Clone, Default)]
pub struct ReceptionLog {
    deliveries: Vec<Delivery>,
    duplicates: u64,
    seen_max: Option<u64>,
}

impl ReceptionLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        ReceptionLog::default()
    }

    /// Records a delivery. Returns `false` (and counts a duplicate) if this
    /// sequence number was already delivered.
    pub fn record(&mut self, delivery: Delivery) -> bool {
        // Sequence numbers are dense and mostly in-order; a linear check on
        // recent entries would be fragile, so track delivered seqs exactly.
        if self.deliveries.iter().any(|d| d.seq == delivery.seq) {
            self.duplicates += 1;
            return false;
        }
        self.seen_max = Some(self.seen_max.map_or(delivery.seq, |m| m.max(delivery.seq)));
        self.deliveries.push(delivery);
        true
    }

    /// All recorded (unique) deliveries, in delivery order.
    pub fn deliveries(&self) -> &[Delivery] {
        &self.deliveries
    }

    /// Number of unique samples delivered.
    pub fn delivered_count(&self) -> u64 {
        self.deliveries.len() as u64
    }

    /// Number of duplicate deliveries suppressed.
    pub fn duplicate_count(&self) -> u64 {
        self.duplicates
    }

    /// Number of deliveries that came through error recovery.
    pub fn recovered_count(&self) -> u64 {
        self.deliveries.iter().filter(|d| d.recovered).count() as u64
    }

    /// The highest sequence number seen, if any sample arrived.
    pub fn max_seq(&self) -> Option<u64> {
        self.seen_max
    }

    /// Latencies of all unique deliveries, in microseconds.
    pub fn latencies_us(&self) -> Vec<f64> {
        self.deliveries
            .iter()
            .map(|d| d.latency().as_micros_f64())
            .collect()
    }
}

/// An efficient variant of [`ReceptionLog`] for dense sequence spaces.
///
/// `ReceptionLog::record` is quadratic in delivered count (it checks for
/// duplicates by scanning); `DenseReceptionLog` tracks delivered sequence
/// numbers in a bitset and is O(1) per record. Use this for the 20 000
/// samples-per-run experiment workloads.
#[derive(Debug, Clone, Default)]
pub struct DenseReceptionLog {
    deliveries: Vec<Delivery>,
    seen: Vec<u64>, // bitset, one bit per sequence number
    duplicates: u64,
    seen_max: Option<u64>,
}

impl DenseReceptionLog {
    /// Creates an empty log sized for sequences `0..capacity`.
    pub fn with_capacity(capacity: u64) -> Self {
        DenseReceptionLog {
            deliveries: Vec::with_capacity(capacity as usize),
            seen: vec![0u64; (capacity as usize).div_ceil(64)],
            duplicates: 0,
            seen_max: None,
        }
    }

    fn test_and_set(&mut self, seq: u64) -> bool {
        let word = (seq / 64) as usize;
        let bit = 1u64 << (seq % 64);
        if word >= self.seen.len() {
            self.seen.resize(word + 1, 0);
        }
        let was_set = self.seen[word] & bit != 0;
        self.seen[word] |= bit;
        was_set
    }

    /// Records a delivery. Returns `false` if this sequence number was
    /// already delivered.
    pub fn record(&mut self, delivery: Delivery) -> bool {
        if self.test_and_set(delivery.seq) {
            self.duplicates += 1;
            return false;
        }
        self.seen_max = Some(self.seen_max.map_or(delivery.seq, |m| m.max(delivery.seq)));
        self.deliveries.push(delivery);
        true
    }

    /// Whether `seq` has been delivered.
    pub fn contains(&self, seq: u64) -> bool {
        let word = (seq / 64) as usize;
        word < self.seen.len() && self.seen[word] & (1u64 << (seq % 64)) != 0
    }

    /// All recorded (unique) deliveries, in delivery order.
    pub fn deliveries(&self) -> &[Delivery] {
        &self.deliveries
    }

    /// Number of unique samples delivered.
    pub fn delivered_count(&self) -> u64 {
        self.deliveries.len() as u64
    }

    /// Number of duplicate deliveries suppressed.
    pub fn duplicate_count(&self) -> u64 {
        self.duplicates
    }

    /// Number of deliveries that came through error recovery.
    pub fn recovered_count(&self) -> u64 {
        self.deliveries.iter().filter(|d| d.recovered).count() as u64
    }

    /// The highest sequence number seen, if any sample arrived.
    pub fn max_seq(&self) -> Option<u64> {
        self.seen_max
    }

    /// Latencies of all unique deliveries, in microseconds.
    pub fn latencies_us(&self) -> Vec<f64> {
        self.deliveries
            .iter()
            .map(|d| d.latency().as_micros_f64())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(seq: u64, sent_us: u64, recv_us: u64) -> Delivery {
        Delivery {
            seq,
            published_at: SimTime::from_micros(sent_us),
            delivered_at: SimTime::from_micros(recv_us),
            recovered: false,
        }
    }

    #[test]
    fn latency_is_delivery_minus_publish() {
        assert_eq!(d(0, 100, 350).latency(), SimDuration::from_micros(250));
    }

    #[test]
    fn log_counts_uniques_and_duplicates() {
        let mut log = ReceptionLog::new();
        assert!(log.record(d(0, 0, 10)));
        assert!(log.record(d(1, 5, 25)));
        assert!(!log.record(d(0, 0, 99)));
        assert_eq!(log.delivered_count(), 2);
        assert_eq!(log.duplicate_count(), 1);
        assert_eq!(log.max_seq(), Some(1));
        assert_eq!(log.latencies_us(), vec![10.0, 20.0]);
    }

    #[test]
    fn log_tracks_recovered() {
        let mut log = ReceptionLog::new();
        log.record(Delivery {
            recovered: true,
            ..d(3, 0, 10)
        });
        log.record(d(4, 0, 10));
        assert_eq!(log.recovered_count(), 1);
    }

    #[test]
    fn empty_log() {
        let log = ReceptionLog::new();
        assert_eq!(log.delivered_count(), 0);
        assert_eq!(log.max_seq(), None);
        assert!(log.latencies_us().is_empty());
    }

    #[test]
    fn dense_log_matches_simple_log() {
        let mut simple = ReceptionLog::new();
        let mut dense = DenseReceptionLog::with_capacity(16);
        for (seq, sent, recv) in [(0, 0, 5), (2, 10, 30), (0, 0, 40), (7, 20, 21)] {
            assert_eq!(
                simple.record(d(seq, sent, recv)),
                dense.record(d(seq, sent, recv))
            );
        }
        assert_eq!(simple.delivered_count(), dense.delivered_count());
        assert_eq!(simple.duplicate_count(), dense.duplicate_count());
        assert_eq!(simple.max_seq(), dense.max_seq());
        assert_eq!(simple.latencies_us(), dense.latencies_us());
    }

    #[test]
    fn dense_log_grows_past_capacity() {
        let mut dense = DenseReceptionLog::with_capacity(1);
        assert!(dense.record(d(1_000, 0, 1)));
        assert!(dense.contains(1_000));
        assert!(!dense.contains(999));
        assert!(!dense.record(d(1_000, 0, 2)));
    }
}

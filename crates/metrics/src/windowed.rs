//! Time-windowed QoS: the monitoring view the runtime-adaptation loop
//! consumes.
//!
//! Aggregate reports answer "how did the run go?"; a controller watching a
//! *live* system needs "how is it going right now?". This module folds a
//! delivery stream into fixed windows of simulated time, each summarising
//! the samples *published* in that window — so a degradation shows up in
//! the window where it started, not smeared over the whole run.

use adamant_netsim::{SimDuration, SimTime};

use crate::record::Delivery;
use crate::stats::Welford;

/// QoS of the samples published during one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowQos {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window length.
    pub length: SimDuration,
    /// Samples published in the window.
    pub published: u64,
    /// Of those, samples delivered (eventually).
    pub delivered: u64,
    /// Mean latency of the delivered samples (µs).
    pub avg_latency_us: f64,
    /// Latency stddev of the delivered samples (µs).
    pub jitter_us: f64,
}

impl WindowQos {
    /// Delivered fraction in `[0, 1]` (zero when nothing was published).
    pub fn reliability(&self) -> f64 {
        if self.published == 0 {
            return 0.0;
        }
        self.delivered as f64 / self.published as f64
    }

    /// Windowed ReLate2 — average latency × (percent loss + 1), the
    /// windowed form of the paper's headline composite metric. This is the
    /// score the online feedback path exports per shard: lower is better,
    /// and windows with no publications score zero.
    pub fn relate2(&self) -> f64 {
        self.avg_latency_us * ((1.0 - self.reliability()) * 100.0 + 1.0)
    }
}

/// Splits a delivery stream into windows of `window` simulated time by
/// publication instant.
///
/// `published_per_window` tells the fold how many samples the writer
/// published in each window (for loss accounting); the slice's length
/// determines the number of windows.
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn windowed_qos(
    deliveries: &[Delivery],
    published_per_window: &[u64],
    window: SimDuration,
) -> Vec<WindowQos> {
    assert!(!window.is_zero(), "window length must be positive");
    let mut latencies: Vec<Welford> = vec![Welford::new(); published_per_window.len()];
    let mut delivered = vec![0u64; published_per_window.len()];
    for d in deliveries {
        let idx = (d.published_at.as_nanos() / window.as_nanos()) as usize;
        if let Some(count) = delivered.get_mut(idx) {
            *count += 1;
            latencies[idx].push(d.latency().as_micros_f64());
        }
    }
    published_per_window
        .iter()
        .enumerate()
        .map(|(i, &published)| WindowQos {
            start: SimTime::ZERO + window * i as u64,
            length: window,
            published,
            delivered: delivered[i],
            avg_latency_us: latencies[i].mean(),
            jitter_us: latencies[i].population_stddev(),
        })
        .collect()
}

/// Evenly distributes a constant-rate publication schedule over `windows`
/// windows: `rate_hz × window_secs` samples per window (the common case
/// for the paper's fixed-rate writers).
pub fn constant_rate_schedule(rate_hz: f64, window: SimDuration, windows: usize) -> Vec<u64> {
    let per_window = (rate_hz * window.as_secs_f64()).round() as u64;
    vec![per_window; windows]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(seq: u64, pub_ms: u64, lat_us: u64) -> Delivery {
        Delivery {
            seq,
            published_at: SimTime::from_millis(pub_ms),
            delivered_at: SimTime::from_millis(pub_ms) + SimDuration::from_micros(lat_us),
            recovered: false,
        }
    }

    #[test]
    fn degradation_lands_in_its_window() {
        // Window 1 s; second 1 s of the run loses half its samples and
        // doubles its latency.
        let mut deliveries = Vec::new();
        for i in 0..10u64 {
            deliveries.push(d(i, i * 100, 300));
        }
        for i in 10..15u64 {
            deliveries.push(d(i, 1_000 + (i - 10) * 200, 600));
        }
        let windows = windowed_qos(&deliveries, &[10, 10], SimDuration::from_secs(1));
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].reliability(), 1.0);
        assert_eq!(windows[0].avg_latency_us, 300.0);
        assert_eq!(windows[1].reliability(), 0.5);
        assert_eq!(windows[1].avg_latency_us, 600.0);
        assert_eq!(windows[1].start, SimTime::from_secs(1));
    }

    #[test]
    fn late_recovery_counts_toward_publication_window() {
        // Published at 900 ms, delivered at 1.4 s: belongs to window 0.
        let delivery = Delivery {
            seq: 0,
            published_at: SimTime::from_millis(900),
            delivered_at: SimTime::from_millis(1_400),
            recovered: true,
        };
        let windows = windowed_qos(&[delivery], &[1, 0], SimDuration::from_secs(1));
        assert_eq!(windows[0].delivered, 1);
        assert_eq!(windows[1].delivered, 0);
        assert_eq!(windows[0].avg_latency_us, 500_000.0);
    }

    #[test]
    fn deliveries_beyond_the_schedule_are_ignored() {
        let windows = windowed_qos(&[d(0, 5_000, 100)], &[1, 1], SimDuration::from_secs(1));
        assert!(windows.iter().all(|w| w.delivered == 0));
    }

    #[test]
    fn constant_rate_schedule_counts() {
        assert_eq!(
            constant_rate_schedule(25.0, SimDuration::from_secs(2), 3),
            vec![50, 50, 50]
        );
    }

    #[test]
    fn empty_window_reliability_is_zero() {
        let windows = windowed_qos(&[], &[0], SimDuration::from_secs(1));
        assert_eq!(windows[0].reliability(), 0.0);
    }

    #[test]
    #[should_panic(expected = "window length")]
    fn zero_window_rejected() {
        windowed_qos(&[], &[1], SimDuration::ZERO);
    }
}

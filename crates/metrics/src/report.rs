//! Aggregated QoS reports for a complete experiment run.

use adamant_netsim::SimDuration;

use crate::histogram::LatencyHistogram;
use crate::record::Delivery;
use crate::stats::Welford;

/// Aggregate QoS measurements for one experiment run (one data writer,
/// `receivers` data readers, `samples_sent` samples).
///
/// Reliability follows the paper: *packets received divided by packets
/// sent*, pooled across all receivers. Latency and jitter pool every unique
/// delivery from every receiver; jitter is the standard deviation of packet
/// latency, and burstiness is the standard deviation of per-second delivered
/// bandwidth.
#[derive(Debug, Clone, PartialEq)]
pub struct QosReport {
    /// Samples the writer published.
    pub samples_sent: u64,
    /// Number of data readers in the run.
    pub receivers: u32,
    /// Unique samples delivered, summed over receivers.
    pub delivered: u64,
    /// Deliveries that came through transport error recovery.
    pub recovered: u64,
    /// Duplicate deliveries suppressed by readers.
    pub duplicates: u64,
    /// Mean end-to-end latency over all unique deliveries, microseconds.
    pub avg_latency_us: f64,
    /// Standard deviation of end-to-end latency, microseconds.
    pub jitter_us: f64,
    /// Standard deviation of delivered bytes per simulated second.
    pub burstiness: f64,
    /// Mean delivered bytes per simulated second.
    pub avg_bandwidth_bytes_per_sec: f64,
    /// Total bytes clocked onto receiver links (all traffic classes).
    pub wire_bytes: u64,
    /// Wall-clock span of the run in simulated seconds.
    pub duration_secs: f64,
    /// Log-scale histogram of every delivery latency (for tail
    /// percentiles).
    pub latency_histogram: LatencyHistogram,
}

impl QosReport {
    /// Starts building a report for a run that published `samples_sent`
    /// samples to `receivers` readers.
    pub fn builder(samples_sent: u64, receivers: u32) -> QosReportBuilder {
        QosReportBuilder {
            samples_sent,
            receivers,
            delivered: 0,
            recovered: 0,
            duplicates: 0,
            latency: Welford::new(),
            histogram: LatencyHistogram::new(),
            bytes_per_second: Vec::new(),
            wire_bytes: 0,
            duration_secs: 0.0,
        }
    }

    /// Delivered fraction in `[0, 1]`: unique deliveries over expected
    /// deliveries (`samples_sent × receivers`).
    pub fn reliability(&self) -> f64 {
        let expected = self.samples_sent.saturating_mul(self.receivers as u64);
        if expected == 0 {
            return 0.0;
        }
        self.delivered as f64 / expected as f64
    }

    /// Loss as a percentage in `[0, 100]` — the `percent loss` term of the
    /// ReLate2 family.
    pub fn percent_loss(&self) -> f64 {
        (1.0 - self.reliability()) * 100.0
    }

    /// Mean latency as a [`SimDuration`].
    pub fn avg_latency(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.avg_latency_us)
    }

    /// Estimated latency percentile in microseconds (`None` when nothing
    /// was delivered).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn latency_percentile_us(&self, q: f64) -> Option<f64> {
        self.latency_histogram.percentile(q)
    }
}

/// Incremental builder for [`QosReport`]; feed it each receiver's log and
/// the run's wire statistics.
#[derive(Debug, Clone)]
pub struct QosReportBuilder {
    samples_sent: u64,
    receivers: u32,
    delivered: u64,
    recovered: u64,
    duplicates: u64,
    latency: Welford,
    histogram: LatencyHistogram,
    bytes_per_second: Vec<u64>,
    wire_bytes: u64,
    duration_secs: f64,
}

impl QosReportBuilder {
    /// Adds one receiver's unique deliveries and its duplicate count.
    pub fn add_receiver(&mut self, deliveries: &[Delivery], duplicates: u64) -> &mut Self {
        self.delivered += deliveries.len() as u64;
        self.duplicates += duplicates;
        for d in deliveries {
            if d.recovered {
                self.recovered += 1;
            }
            let us = d.latency().as_micros_f64();
            self.latency.push(us);
            self.histogram.record_us(us);
        }
        self
    }

    /// Sets wire-level totals (from
    /// [`WireStats`](adamant_netsim::WireStats)).
    pub fn wire(&mut self, bytes_per_second: &[u64], wire_bytes: u64) -> &mut Self {
        self.bytes_per_second = bytes_per_second.to_vec();
        self.wire_bytes = wire_bytes;
        self
    }

    /// Sets the simulated duration of the run.
    pub fn duration_secs(&mut self, secs: f64) -> &mut Self {
        self.duration_secs = secs;
        self
    }

    /// Finalizes the report.
    pub fn finish(&self) -> QosReport {
        let bw: Welford = self.bytes_per_second.iter().map(|&b| b as f64).collect();
        QosReport {
            samples_sent: self.samples_sent,
            receivers: self.receivers,
            delivered: self.delivered,
            recovered: self.recovered,
            duplicates: self.duplicates,
            avg_latency_us: self.latency.mean(),
            jitter_us: self.latency.population_stddev(),
            burstiness: bw.population_stddev(),
            avg_bandwidth_bytes_per_sec: bw.mean(),
            wire_bytes: self.wire_bytes,
            duration_secs: self.duration_secs,
            latency_histogram: self.histogram.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_netsim::SimTime;

    fn d(seq: u64, sent_us: u64, recv_us: u64, recovered: bool) -> Delivery {
        Delivery {
            seq,
            published_at: SimTime::from_micros(sent_us),
            delivered_at: SimTime::from_micros(recv_us),
            recovered,
        }
    }

    #[test]
    fn reliability_pools_receivers() {
        let mut b = QosReport::builder(10, 2);
        b.add_receiver(&[d(0, 0, 5, false), d(1, 0, 5, false)], 0);
        b.add_receiver(&[d(0, 0, 5, false)], 0);
        let r = b.finish();
        assert_eq!(r.delivered, 3);
        assert!((r.reliability() - 3.0 / 20.0).abs() < 1e-12);
        assert!((r.percent_loss() - 85.0).abs() < 1e-9);
    }

    #[test]
    fn latency_and_jitter_pool_all_deliveries() {
        let mut b = QosReport::builder(2, 2);
        b.add_receiver(&[d(0, 0, 100, false)], 0);
        b.add_receiver(&[d(0, 0, 300, true)], 1);
        let r = b.finish();
        assert_eq!(r.avg_latency_us, 200.0);
        assert_eq!(r.jitter_us, 100.0);
        assert_eq!(r.recovered, 1);
        assert_eq!(r.duplicates, 1);
        assert_eq!(r.avg_latency(), SimDuration::from_micros(200));
    }

    #[test]
    fn wire_stats_feed_burstiness() {
        let mut b = QosReport::builder(1, 1);
        b.add_receiver(&[d(0, 0, 10, false)], 0);
        b.wire(&[100, 300], 400).duration_secs(2.0);
        let r = b.finish();
        assert_eq!(r.avg_bandwidth_bytes_per_sec, 200.0);
        assert_eq!(r.burstiness, 100.0);
        assert_eq!(r.wire_bytes, 400);
        assert_eq!(r.duration_secs, 2.0);
    }

    #[test]
    fn percentiles_come_from_the_histogram() {
        let mut b = QosReport::builder(3, 1);
        b.add_receiver(
            &[
                d(0, 0, 100, false),
                d(1, 0, 200, false),
                d(2, 0, 400, false),
            ],
            0,
        );
        let r = b.finish();
        let p0 = r.latency_percentile_us(0.0).unwrap();
        let p100 = r.latency_percentile_us(1.0).unwrap();
        assert!((95.0..=105.0).contains(&p0), "p0 {p0}");
        assert!((380.0..=420.0).contains(&p100), "p100 {p100}");
        assert_eq!(
            QosReport::builder(1, 1).finish().latency_percentile_us(0.5),
            None
        );
    }

    #[test]
    fn perfect_run_has_zero_loss() {
        let mut b = QosReport::builder(2, 1);
        b.add_receiver(&[d(0, 0, 10, false), d(1, 10, 20, false)], 0);
        let r = b.finish();
        assert_eq!(r.reliability(), 1.0);
        assert_eq!(r.percent_loss(), 0.0);
    }

    #[test]
    fn empty_run_is_total_loss() {
        let r = QosReport::builder(100, 3).finish();
        assert_eq!(r.reliability(), 0.0);
        assert_eq!(r.percent_loss(), 100.0);
        assert_eq!(r.avg_latency_us, 0.0);
    }

    #[test]
    fn zero_expected_is_zero_reliability() {
        let r = QosReport::builder(0, 0).finish();
        assert_eq!(r.reliability(), 0.0);
    }
}

//! A log-scale latency histogram: constant-memory percentile estimates for
//! long runs.
//!
//! [`QosReport`](crate::QosReport) carries only aggregate moments; when a
//! run needs tail percentiles (e.g. the SAR fusion-window check), exact
//! storage of 20 000 × 15 latencies per configuration adds up. The
//! histogram buckets latencies geometrically (~2.4 % relative resolution)
//! and answers percentile queries with bounded error.

/// Geometric bucket growth factor (each bucket is ~4.7% wider; quantile
/// estimates are accurate to about half that).
const GROWTH: f64 = 1.047;
/// Smallest resolvable latency in microseconds.
const MIN_US: f64 = 0.5;

/// A fixed-size, log-scale histogram of latencies in microseconds.
///
/// # Examples
///
/// ```
/// use adamant_metrics::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for us in [100.0, 200.0, 300.0, 400.0] {
///     h.record_us(us);
/// }
/// let p50 = h.percentile(0.5).unwrap();
/// assert!((190.0..=310.0).contains(&p50), "p50 {p50}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    min_us: f64,
    max_us: f64,
}

impl LatencyHistogram {
    /// Number of buckets: covers `MIN_US × GROWTH^N`, comfortably past an
    /// hour of latency.
    const BUCKETS: usize = 512;

    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; Self::BUCKETS],
            total: 0,
            min_us: f64::INFINITY,
            max_us: 0.0,
        }
    }

    fn bucket_of(us: f64) -> usize {
        if us <= MIN_US {
            return 0;
        }
        let idx = (us / MIN_US).ln() / GROWTH.ln();
        (idx as usize).min(Self::BUCKETS - 1)
    }

    /// Lower edge of bucket `i` in microseconds.
    fn bucket_floor(i: usize) -> f64 {
        MIN_US * GROWTH.powi(i as i32)
    }

    /// Records one latency observation (clamped to non-negative).
    pub fn record_us(&mut self, us: f64) {
        let us = if us.is_finite() { us.max(0.0) } else { 0.0 };
        self.counts[Self::bucket_of(us)] += 1;
        self.total += 1;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min_us(&self) -> Option<f64> {
        (self.total > 0).then_some(self.min_us)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max_us(&self) -> Option<f64> {
        (self.total > 0).then_some(self.max_us)
    }

    /// Estimates the `q`-quantile (geometric midpoint of the containing
    /// bucket, clamped to the observed min/max). Returns `None` when
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.total == 0 {
            return None;
        }
        let rank = (q * (self.total - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen > rank {
                let mid = Self::bucket_floor(i) * GROWTH.sqrt();
                return Some(mid.clamp(self.min_us, self.max_us));
            }
        }
        Some(self.max_us)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl Extend<f64> for LatencyHistogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for us in iter {
            self.record_us(us);
        }
    }
}

impl FromIterator<f64> for LatencyHistogram {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut h = LatencyHistogram::new();
        h.extend(iter);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.min_us(), None);
        assert_eq!(h.max_us(), None);
    }

    #[test]
    fn single_value_percentiles() {
        let mut h = LatencyHistogram::new();
        h.record_us(250.0);
        for q in [0.0, 0.5, 1.0] {
            let p = h.percentile(q).unwrap();
            assert!((p - 250.0).abs() < 250.0 * 0.05, "q={q}: {p}");
        }
    }

    #[test]
    fn percentiles_track_uniform_data_within_resolution() {
        let h: LatencyHistogram = (1..=10_000).map(|i| i as f64).collect();
        for (q, expected) in [(0.5, 5_000.0), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let p = h.percentile(q).unwrap();
            let err = (p - expected).abs() / expected;
            assert!(err < 0.05, "q={q}: {p} vs {expected} (err {err})");
        }
        assert_eq!(h.min_us(), Some(1.0));
        assert_eq!(h.max_us(), Some(10_000.0));
    }

    #[test]
    fn merge_equals_combined_recording() {
        let a: LatencyHistogram = (0..500).map(|i| 10.0 + i as f64).collect();
        let b: LatencyHistogram = (0..500).map(|i| 2_000.0 + i as f64).collect();
        let mut merged = a.clone();
        merged.merge(&b);
        let direct: LatencyHistogram = (0..500)
            .map(|i| 10.0 + i as f64)
            .chain((0..500).map(|i| 2_000.0 + i as f64))
            .collect();
        assert_eq!(merged, direct);
        assert_eq!(merged.count(), 1_000);
    }

    #[test]
    fn pathological_inputs_are_absorbed() {
        let mut h = LatencyHistogram::new();
        h.record_us(f64::NAN);
        h.record_us(-12.0);
        h.record_us(f64::INFINITY);
        h.record_us(1e18); // beyond the last bucket: clamped
        assert_eq!(h.count(), 4);
        assert!(h.percentile(0.5).is_some());
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn bad_quantile_panics() {
        LatencyHistogram::new().percentile(1.5);
    }
}

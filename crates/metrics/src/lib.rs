//! # adamant-metrics
//!
//! Composite QoS metrics for evaluating pub/sub transport configurations,
//! reproducing §4.1 of the ADAMANT paper (Hoffert, Schmidt, Gokhale —
//! Middleware 2010).
//!
//! The crate provides three layers:
//!
//! * **Raw records** — [`Delivery`] / [`ReceptionLog`] /
//!   [`DenseReceptionLog`]: what each data reader observed.
//! * **Reports** — [`QosReport`]: pooled reliability, average latency,
//!   jitter (latency stddev), burstiness (per-second bandwidth stddev), and
//!   network usage for one run.
//! * **Composite metrics** — [`MetricKind`]: the ReLate2 family, which
//!   collapses a report into one comparable score (lower is better).
//!
//! On top of those, the crate consumes structured observability traces from
//! `adamant-netsim`: [`MetricsRegistry`] / [`registry_from_trace`] fold a
//! trace into counters, gauges, and latency histograms keyed by
//! `protocol × node` (rendered to JSON run reports), and [`verify_trace`]
//! replays a trace against runtime invariants — crash-epoch delivery
//! hygiene, at-most-once acceptance, recovery-latency bounds, and ReLate2
//! consistency between trace and engine report.
//!
//! ## Example
//!
//! ```
//! use adamant_metrics::{Delivery, MetricKind, QosReport};
//! use adamant_netsim::SimTime;
//!
//! let mut builder = QosReport::builder(2, 1);
//! builder.add_receiver(
//!     &[Delivery {
//!         seq: 0,
//!         published_at: SimTime::ZERO,
//!         delivered_at: SimTime::from_micros(800),
//!         recovered: false,
//!     }],
//!     0,
//! );
//! let report = builder.finish();
//! // One of two samples arrived: 50% loss → (50 + 1) × 800 µs.
//! assert_eq!(MetricKind::ReLate2.score(&report), 40_800.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod composite;
mod histogram;
mod record;
mod registry;
mod report;
mod stats;
mod verify;
mod windowed;

pub use composite::MetricKind;
pub use histogram::LatencyHistogram;
pub use record::{Delivery, DenseReceptionLog, ReceptionLog};
pub use registry::{registry_from_trace, MetricsRegistry};
pub use report::{QosReport, QosReportBuilder};
pub use stats::{percentile, Welford};
pub use verify::{
    verify_trace, verify_trace_prefix, InvariantKind, VerifyReport, VerifySpec, Violation,
};
pub use windowed::{constant_rate_schedule, windowed_qos, WindowQos};

// The sim-time types appear throughout this crate's public API
// (`Delivery`, `WindowQos`); re-exporting them lets wall-clock drivers
// (`adamant-rt`) build windowed observations without a direct simulator
// dependency.
pub use adamant_netsim::{SimDuration, SimTime};

//! Property-based tests of the composite QoS metric invariants.

use adamant_metrics::{percentile, Delivery, MetricKind, QosReport, Welford};
use adamant_netsim::SimTime;
use proptest::prelude::*;

fn report_from(latencies_us: &[u64], sent: u64) -> QosReport {
    let deliveries: Vec<Delivery> = latencies_us
        .iter()
        .enumerate()
        .map(|(i, &lat)| Delivery {
            seq: i as u64,
            published_at: SimTime::from_micros(1_000 * i as u64),
            delivered_at: SimTime::from_micros(1_000 * i as u64 + lat),
            recovered: false,
        })
        .collect();
    let mut b = QosReport::builder(sent, 1);
    b.add_receiver(&deliveries, 0);
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Reliability is always a fraction and percent loss its complement.
    #[test]
    fn reliability_bounds(
        lat in prop::collection::vec(1u64..100_000, 0..50),
        extra_sent in 0u64..50,
    ) {
        let sent = lat.len() as u64 + extra_sent;
        prop_assume!(sent > 0);
        let r = report_from(&lat, sent);
        prop_assert!((0.0..=1.0).contains(&r.reliability()));
        prop_assert!((0.0..=100.0).contains(&r.percent_loss()));
        prop_assert!((r.reliability() * 100.0 + r.percent_loss() - 100.0).abs() < 1e-9);
    }

    /// Dropping deliveries (same latencies) can only worsen ReLate2.
    #[test]
    fn relate2_monotone_in_loss(
        lat in prop::collection::vec(1u64..100_000, 2..50),
    ) {
        let sent = lat.len() as u64;
        let full = report_from(&lat, sent);
        let partial = report_from(&lat[..lat.len() - 1], sent);
        // Removing the last delivery changes the mean too; compare with the
        // same latency multiset by dropping one at the mean is complex, so
        // assert the weaker, always-true form: zero-loss scores strictly
        // less than the same-latency lossy report when means are equal.
        let constant = vec![lat[0]; lat.len()];
        let all = report_from(&constant, sent);
        let lossy = report_from(&constant[..lat.len() - 1], sent);
        prop_assert!(MetricKind::ReLate2.score(&all) < MetricKind::ReLate2.score(&lossy));
        // And loss accounting itself is monotone.
        prop_assert!(partial.percent_loss() > full.percent_loss());
    }

    /// Scaling all latencies scales ReLate2 proportionally (holding loss).
    #[test]
    fn relate2_linear_in_latency(
        base in 1u64..10_000,
        k in 2u64..10,
        n in 2usize..40,
    ) {
        let lat: Vec<u64> = vec![base; n];
        let scaled: Vec<u64> = vec![base * k; n];
        let a = MetricKind::ReLate2.score(&report_from(&lat, n as u64));
        let b = MetricKind::ReLate2.score(&report_from(&scaled, n as u64));
        prop_assert!((b / a - k as f64).abs() < 1e-9);
    }

    /// ReLate2Jit of a constant-latency stream is zero (no jitter) and all
    /// metric scores are finite and non-negative.
    #[test]
    fn scores_finite_nonnegative(
        lat in prop::collection::vec(1u64..100_000, 1..50),
        extra_sent in 0u64..10,
    ) {
        let sent = lat.len() as u64 + extra_sent;
        let r = report_from(&lat, sent);
        for metric in MetricKind::all() {
            let s = metric.score(&r);
            prop_assert!(s.is_finite());
            prop_assert!(s >= 0.0);
        }
        let constant = report_from(&[500; 10], 10);
        prop_assert_eq!(MetricKind::ReLate2Jit.score(&constant), 0.0);
    }

    /// Welford matches the naive two-pass computation.
    #[test]
    fn welford_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let w: Welford = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((w.population_variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
    }

    /// Percentiles are bounded by extremes and monotone in q.
    #[test]
    fn percentile_properties(
        xs in prop::collection::vec(-1e6f64..1e6, 1..100),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0,
    ) {
        let lo = q1.min(q2);
        let hi = q1.max(q2);
        let p_lo = percentile(&xs, lo).unwrap();
        let p_hi = percentile(&xs, hi).unwrap();
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p_lo <= p_hi);
        prop_assert!(p_lo >= min - 1e-9);
        prop_assert!(p_hi <= max + 1e-9);
    }
}

//! Property-style tests of the composite QoS metric invariants, driven by
//! deterministic seeded sweeps.

use adamant_metrics::{percentile, Delivery, MetricKind, QosReport, Welford};
use adamant_netsim::SimTime;

fn report_from(latencies_us: &[u64], sent: u64) -> QosReport {
    let deliveries: Vec<Delivery> = latencies_us
        .iter()
        .enumerate()
        .map(|(i, &lat)| Delivery {
            seq: i as u64,
            published_at: SimTime::from_micros(1_000 * i as u64),
            delivered_at: SimTime::from_micros(1_000 * i as u64 + lat),
            recovered: false,
        })
        .collect();
    let mut b = QosReport::builder(sent, 1);
    b.add_receiver(&deliveries, 0);
    b.finish()
}

/// Splitmix-style case generator.
struct CaseRng(u64);

impl CaseRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn latencies(&mut self, min_len: u64, max_len: u64) -> Vec<u64> {
        let len = self.range_u64(min_len, max_len);
        (0..len).map(|_| self.range_u64(1, 100_000)).collect()
    }
}

/// Reliability is always a fraction and percent loss its complement.
#[test]
fn reliability_bounds() {
    let mut rng = CaseRng(21);
    for _ in 0..128 {
        let lat = rng.latencies(0, 50);
        let extra_sent = rng.range_u64(0, 50);
        let sent = lat.len() as u64 + extra_sent;
        if sent == 0 {
            continue;
        }
        let r = report_from(&lat, sent);
        assert!((0.0..=1.0).contains(&r.reliability()));
        assert!((0.0..=100.0).contains(&r.percent_loss()));
        assert!((r.reliability() * 100.0 + r.percent_loss() - 100.0).abs() < 1e-9);
    }
}

/// Dropping deliveries (same latencies) can only worsen ReLate2.
#[test]
fn relate2_monotone_in_loss() {
    let mut rng = CaseRng(22);
    for _ in 0..128 {
        let lat = rng.latencies(2, 50);
        let sent = lat.len() as u64;
        let full = report_from(&lat, sent);
        let partial = report_from(&lat[..lat.len() - 1], sent);
        // Zero-loss scores strictly less than the same-latency lossy report
        // when means are equal, and loss accounting itself is monotone.
        let constant = vec![lat[0]; lat.len()];
        let all = report_from(&constant, sent);
        let lossy = report_from(&constant[..lat.len() - 1], sent);
        assert!(MetricKind::ReLate2.score(&all) < MetricKind::ReLate2.score(&lossy));
        assert!(partial.percent_loss() > full.percent_loss());
    }
}

/// Scaling all latencies scales ReLate2 proportionally (holding loss).
#[test]
fn relate2_linear_in_latency() {
    let mut rng = CaseRng(23);
    for _ in 0..128 {
        let base = rng.range_u64(1, 10_000);
        let k = rng.range_u64(2, 10);
        let n = rng.range_u64(2, 40) as usize;
        let lat: Vec<u64> = vec![base; n];
        let scaled: Vec<u64> = vec![base * k; n];
        let a = MetricKind::ReLate2.score(&report_from(&lat, n as u64));
        let b = MetricKind::ReLate2.score(&report_from(&scaled, n as u64));
        assert!((b / a - k as f64).abs() < 1e-9);
    }
}

/// ReLate2Jit of a constant-latency stream is zero (no jitter) and all
/// metric scores are finite and non-negative.
#[test]
fn scores_finite_nonnegative() {
    let mut rng = CaseRng(24);
    for _ in 0..128 {
        let lat = rng.latencies(1, 50);
        let extra_sent = rng.range_u64(0, 10);
        let sent = lat.len() as u64 + extra_sent;
        let r = report_from(&lat, sent);
        for metric in MetricKind::all() {
            let s = metric.score(&r);
            assert!(s.is_finite());
            assert!(s >= 0.0);
        }
    }
    let constant = report_from(&[500; 10], 10);
    assert_eq!(MetricKind::ReLate2Jit.score(&constant), 0.0);
}

/// Welford matches the naive two-pass computation.
#[test]
fn welford_matches_naive() {
    let mut rng = CaseRng(25);
    for _ in 0..128 {
        let n = rng.range_u64(1, 200) as usize;
        let xs: Vec<f64> = (0..n).map(|_| (rng.unit() - 0.5) * 2e6).collect();
        let w: Welford = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        assert!((w.population_variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
    }
}

/// Percentiles are bounded by extremes and monotone in q.
#[test]
fn percentile_properties() {
    let mut rng = CaseRng(26);
    for _ in 0..128 {
        let n = rng.range_u64(1, 100) as usize;
        let xs: Vec<f64> = (0..n).map(|_| (rng.unit() - 0.5) * 2e6).collect();
        let q1 = rng.unit();
        let q2 = rng.unit();
        let lo = q1.min(q2);
        let hi = q1.max(q2);
        let p_lo = percentile(&xs, lo).unwrap();
        let p_hi = percentile(&xs, hi).unwrap();
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(p_lo <= p_hi);
        assert!(p_lo >= min - 1e-9);
        assert!(p_hi <= max + 1e-9);
    }
}

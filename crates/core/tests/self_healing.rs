//! Acceptance test for the self-healing loop: a scripted chaos scenario —
//! a link-loss spike plus a bandwidth downgrade landing mid-stream — must
//! trip the QoS alarm, cause exactly one backoff-bounded protocol switch,
//! and settle windowed ReLate2 back within 20 % of the pre-fault baseline.
//! The whole trajectory is bit-for-bit deterministic under a fixed seed.

use adamant::dataset::{DatasetRow, LabeledDataset};
use adamant::{
    AdaptivePolicy, AppParams, BandwidthClass, Environment, HealingOutcome, MonitorThresholds,
    ProtocolSelector, ResilientSelector, SelectorConfig, SelectorSource, StreamConfig,
    TreeSelector,
};
use adamant_dds::DdsImplementation;
use adamant_metrics::MetricKind;
use adamant_netsim::{
    Bandwidth, FaultPlan, LossModel, MachineClass, NetworkConfig, NodeId, SimDuration, SimTime,
};
use adamant_transport::{ProtocolKind, TransportConfig};

/// The NAK-timeout trade-off as training data: calm links (loss ≤ 3 %)
/// prefer the lazy 50 ms timeout (class 0), lossy links the aggressive
/// 1 ms timeout (class 3).
fn loss_dataset() -> LabeledDataset {
    let mut rows = Vec::new();
    for bandwidth in BandwidthClass::all() {
        for loss in 1..=10u8 {
            rows.push(DatasetRow {
                env: Environment::new(
                    MachineClass::Pc3000,
                    bandwidth,
                    DdsImplementation::OpenSplice,
                    loss,
                ),
                app: AppParams::new(2, 100),
                metric: MetricKind::ReLate2,
                best_class: if loss <= 3 { 0 } else { 3 },
                scores: vec![0.0; 6],
            });
        }
    }
    LabeledDataset { rows }
}

fn policy_chain() -> AdaptivePolicy {
    let ds = loss_dataset();
    let (ann, _) = ProtocolSelector::train_from(&ds, &SelectorConfig::default());
    let tree = TreeSelector::from_dataset(&ds, adamant_ann::DecisionTreeParams::default());
    AdaptivePolicy::new(MetricKind::ReLate2)
        .with_ann(ann, 0.1)
        .with_tree(tree)
        .with_thresholds(MonitorThresholds {
            min_reliability: 0.90,
            max_avg_latency_us: 8_000.0,
            consecutive_windows: 2,
        })
        .with_backoff(SimDuration::from_secs(2), SimDuration::from_secs(16))
}

const FAULT_AT: SimTime = SimTime::from_secs(3);

/// Loss spike (8 % Bernoulli on every link, so repair traffic suffers
/// too) plus a 1 Gb → 100 Mb downgrade of every host's NIC.
fn chaos_plan() -> FaultPlan {
    let mut plan = FaultPlan::new().set_network_at(
        FAULT_AT,
        NetworkConfig {
            propagation: BandwidthClass::Mbps100.propagation(),
            loss: LossModel::Bernoulli(0.08),
        },
    );
    for node in 0..3 {
        plan = plan.set_bandwidth_at(FAULT_AT, NodeId::from_index(node), Bandwidth::MBPS_100);
    }
    plan
}

fn run_chaos(policy: &AdaptivePolicy) -> HealingOutcome {
    let env = Environment::new(
        MachineClass::Pc3000,
        BandwidthClass::Gbps1,
        DdsImplementation::OpenSplice,
        2,
    );
    let stream = StreamConfig::new(env, AppParams::new(2, 100), 1_200, 77);
    policy.run_stream(
        &stream,
        TransportConfig::new(ProtocolKind::Nakcast {
            timeout: SimDuration::from_millis(50),
        }),
        chaos_plan(),
    )
}

#[test]
fn chaos_scenario_self_heals_with_one_switch() {
    let policy = policy_chain();
    let outcome = run_chaos(&policy);

    let relate2 = outcome.window_relate2();
    for (i, w) in outcome.windows.iter().enumerate() {
        eprintln!(
            "window {i}: published={} delivered={} rel={:.4} lat={:.0}us relate2={:.0}",
            w.published,
            w.delivered,
            w.reliability(),
            w.avg_latency_us,
            relate2[i]
        );
    }
    eprintln!(
        "alarms={} switches={:?} suppressed={} final={}",
        outcome.alarms, outcome.switches, outcome.suppressed_switches, outcome.final_protocol
    );

    // The degradation tripped the monitor.
    assert!(outcome.alarms >= 1, "no QoS alarm fired");

    // Exactly one switch, bounded by the backoff policy.
    assert_eq!(outcome.switches.len(), 1, "{:?}", outcome.switches);
    let switch = outcome.switches[0];
    assert_eq!(
        switch.from,
        ProtocolKind::Nakcast {
            timeout: SimDuration::from_millis(50)
        }
    );
    assert_eq!(
        switch.to,
        ProtocolKind::Nakcast {
            timeout: SimDuration::from_millis(1)
        }
    );
    assert_eq!(switch.source, SelectorSource::Ann);
    assert!(
        switch.at > FAULT_AT && switch.at < SimTime::from_secs(8),
        "switch at {:?}",
        switch.at
    );
    assert_eq!(outcome.final_protocol, switch.to);
    // The re-probe saw the degraded wire, not the provisioned spec.
    assert!(switch.probed.loss_percent >= 4, "{:?}", switch.probed);
    assert_eq!(switch.probed.bandwidth, BandwidthClass::Mbps100);

    // Post-recovery windowed ReLate2 settles within 20 % of the pre-fault
    // baseline (windows 1–2; window 0 carries session warm-up).
    let baseline = outcome.mean_relate2(1..3);
    assert!(baseline > 0.0);
    let switch_window = (switch.at.as_nanos() / SimDuration::from_secs(1).as_nanos()) as usize;
    let last_publishing = outcome
        .windows
        .iter()
        .rposition(|w| w.published > 0)
        .unwrap();
    let recovered = outcome.mean_relate2(switch_window + 1..last_publishing + 1);
    assert!(
        recovered <= 1.2 * baseline,
        "post-recovery ReLate2 {recovered:.0} vs baseline {baseline:.0}"
    );
    let ttr = outcome
        .time_to_recover(FAULT_AT, baseline, 1.2)
        .expect("qos must settle before the stream ends");
    assert!(
        !ttr.is_zero() && ttr <= SimDuration::from_secs(5),
        "time to recover {ttr:?}"
    );

    // Nearly every sample reached every reader: the only permissible gap
    // is the handful of recoveries in flight when the swap tore down the
    // old incarnation.
    assert_eq!(outcome.report.samples_sent, 1_200);
    assert!(
        outcome.report.reliability() > 0.99,
        "end-to-end reliability {}",
        outcome.report.reliability()
    );
}

#[test]
fn chaos_scenario_is_bit_for_bit_deterministic() {
    let policy = policy_chain();
    let first = run_chaos(&policy);
    let second = run_chaos(&policy);
    assert_eq!(first, second);
}

#[test]
fn empty_selector_heals_with_the_safe_default() {
    // Graceful degradation: with no trained models at all, the loop still
    // reacts to the alarm — switching to the safe default protocol.
    let policy = AdaptivePolicy::new(MetricKind::ReLate2)
        .with_thresholds(MonitorThresholds {
            min_reliability: 0.90,
            max_avg_latency_us: 8_000.0,
            consecutive_windows: 2,
        })
        .with_backoff(SimDuration::from_secs(2), SimDuration::from_secs(16));
    let outcome = run_chaos(&policy);
    assert_eq!(outcome.switches.len(), 1, "{:?}", outcome.switches);
    assert_eq!(outcome.switches[0].source, SelectorSource::Default);
    assert_eq!(
        outcome.final_protocol,
        ResilientSelector::fallback_protocol()
    );
    assert!(outcome.report.reliability() > 0.99);
}

#[test]
fn healthy_run_never_switches() {
    // No faults: the monitor stays quiet and the initial protocol serves
    // the whole stream.
    let policy = policy_chain();
    let env = Environment::new(
        MachineClass::Pc3000,
        BandwidthClass::Gbps1,
        DdsImplementation::OpenSplice,
        2,
    );
    let stream = StreamConfig::new(env, AppParams::new(2, 100), 600, 5);
    let outcome = policy.run_stream(
        &stream,
        TransportConfig::new(ProtocolKind::Nakcast {
            timeout: SimDuration::from_millis(50),
        }),
        FaultPlan::new(),
    );
    assert_eq!(outcome.alarms, 0);
    assert!(outcome.switches.is_empty());
    assert_eq!(outcome.initial_protocol, outcome.final_protocol);
    assert!(outcome.report.reliability() > 0.999);
}

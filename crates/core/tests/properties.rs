//! Property-based tests of the ADAMANT core: feature encoding, labelling,
//! and selection invariants.

use adamant::features::{candidate_protocols, class_index, raw_features, FEATURE_DIM};
use adamant::{
    best_class_with_margin, AppParams, BandwidthClass, DatasetRow, Environment, LabeledDataset,
    ProtocolSelector, SelectorConfig,
};
use adamant_dds::DdsImplementation;
use adamant_metrics::MetricKind;
use adamant_netsim::MachineClass;
use proptest::prelude::*;

fn arb_environment() -> impl Strategy<Value = Environment> {
    (
        prop_oneof![Just(MachineClass::Pc850), Just(MachineClass::Pc3000)],
        prop_oneof![
            Just(BandwidthClass::Gbps1),
            Just(BandwidthClass::Mbps100),
            Just(BandwidthClass::Mbps10)
        ],
        prop_oneof![
            Just(DdsImplementation::OpenDds),
            Just(DdsImplementation::OpenSplice)
        ],
        1u8..=5,
    )
        .prop_map(|(machine, bandwidth, dds, loss)| {
            Environment::new(machine, bandwidth, dds, loss)
        })
}

fn arb_app() -> impl Strategy<Value = AppParams> {
    (3u32..=15, prop_oneof![Just(10u32), Just(25), Just(50), Just(100)])
        .prop_map(|(receivers, rate)| AppParams::new(receivers, rate))
}

fn arb_metric() -> impl Strategy<Value = MetricKind> {
    prop_oneof![Just(MetricKind::ReLate2), Just(MetricKind::ReLate2Jit)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Feature encoding is injective over the evaluation space: different
    /// configurations never collide.
    #[test]
    fn feature_encoding_is_injective(
        a in (arb_environment(), arb_app(), arb_metric()),
        b in (arb_environment(), arb_app(), arb_metric()),
    ) {
        let fa = raw_features(&a.0, &a.1, a.2);
        let fb = raw_features(&b.0, &b.1, b.2);
        if a != b {
            prop_assert_ne!(fa, fb, "distinct configs must encode distinctly");
        } else {
            prop_assert_eq!(fa, fb);
        }
    }

    /// Every feature vector has the advertised dimension and finite values.
    #[test]
    fn features_finite(env in arb_environment(), app in arb_app(), metric in arb_metric()) {
        let f = raw_features(&env, &app, metric);
        prop_assert_eq!(f.len(), FEATURE_DIM);
        prop_assert!(f.iter().all(|x| x.is_finite()));
    }

    /// Margin labelling picks the true argmin when the margin is zero, and
    /// never picks an index whose score exceeds the margin band.
    #[test]
    fn margin_labelling_sound(
        scores in prop::collection::vec(0.1f64..1e6, 1..6),
        margin in 0.0f64..0.2,
    ) {
        let zero = best_class_with_margin(&scores, 0.0);
        let min = scores.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(scores[zero], min);

        let with_margin = best_class_with_margin(&scores, margin);
        prop_assert!(scores[with_margin] <= min * (1.0 + margin) + 1e-9);
        prop_assert!(with_margin <= zero, "margin can only move labels earlier");
    }

    /// A trained selector always returns one of the candidate protocols
    /// with a full score vector, for any query in the space.
    #[test]
    fn selector_closed_over_candidates(
        env in arb_environment(),
        app in arb_app(),
        metric in arb_metric(),
    ) {
        // A small fixed dataset (training quality irrelevant here).
        let rows: Vec<DatasetRow> = (1..=5u8)
            .map(|loss| DatasetRow {
                env: Environment::new(
                    MachineClass::Pc3000,
                    BandwidthClass::Gbps1,
                    DdsImplementation::OpenDds,
                    loss,
                ),
                app: AppParams::new(3, 10),
                metric: MetricKind::ReLate2,
                best_class: (loss % 6) as usize,
                scores: vec![0.0; 6],
            })
            .collect();
        let dataset = LabeledDataset { rows };
        let config = SelectorConfig {
            train: adamant_ann::TrainParams {
                max_epochs: 5,
                ..adamant_ann::TrainParams::default()
            },
            ..SelectorConfig::default()
        };
        let (selector, _) = ProtocolSelector::train_from(&dataset, &config);
        let selection = selector.select(&env, &app, metric);
        prop_assert!(class_index(selection.protocol).is_some());
        prop_assert_eq!(selection.scores.len(), candidate_protocols().len());
        prop_assert!(selection.scores.iter().all(|s| s.is_finite()));
    }
}

//! Property-style tests of the ADAMANT core: feature encoding, labelling,
//! and selection invariants, swept deterministically over the evaluation
//! space.

use adamant::features::{candidate_protocols, class_index, raw_features, FEATURE_DIM};
use adamant::{
    best_class_with_margin, AppParams, BandwidthClass, DatasetRow, Environment, LabeledDataset,
    ProtocolSelector, SelectorConfig,
};
use adamant_dds::DdsImplementation;
use adamant_metrics::MetricKind;
use adamant_netsim::MachineClass;

/// Splitmix-style case generator.
struct CaseRng(u64);

impl CaseRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[(self.next_u64() % options.len() as u64) as usize]
    }

    fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn any_environment(rng: &mut CaseRng) -> Environment {
    Environment::new(
        rng.pick(&[MachineClass::Pc850, MachineClass::Pc3000]),
        rng.pick(&[
            BandwidthClass::Gbps1,
            BandwidthClass::Mbps100,
            BandwidthClass::Mbps10,
        ]),
        rng.pick(&[DdsImplementation::OpenDds, DdsImplementation::OpenSplice]),
        rng.range_u64(1, 6) as u8,
    )
}

fn any_app(rng: &mut CaseRng) -> AppParams {
    AppParams::new(rng.range_u64(3, 16) as u32, rng.pick(&[10u32, 25, 50, 100]))
}

fn any_metric(rng: &mut CaseRng) -> MetricKind {
    rng.pick(&[MetricKind::ReLate2, MetricKind::ReLate2Jit])
}

/// Feature encoding is injective over the evaluation space: different
/// configurations never collide.
#[test]
fn feature_encoding_is_injective() {
    let mut rng = CaseRng(41);
    for _ in 0..128 {
        let a = (
            any_environment(&mut rng),
            any_app(&mut rng),
            any_metric(&mut rng),
        );
        let b = (
            any_environment(&mut rng),
            any_app(&mut rng),
            any_metric(&mut rng),
        );
        let fa = raw_features(&a.0, &a.1, a.2);
        let fb = raw_features(&b.0, &b.1, b.2);
        if a != b {
            assert_ne!(fa, fb, "distinct configs must encode distinctly");
        } else {
            assert_eq!(fa, fb);
        }
    }
}

/// Every feature vector has the advertised dimension and finite values.
#[test]
fn features_finite() {
    let mut rng = CaseRng(42);
    for _ in 0..128 {
        let f = raw_features(
            &any_environment(&mut rng),
            &any_app(&mut rng),
            any_metric(&mut rng),
        );
        assert_eq!(f.len(), FEATURE_DIM);
        assert!(f.iter().all(|x| x.is_finite()));
    }
}

/// Margin labelling picks the true argmin when the margin is zero, and
/// never picks an index whose score exceeds the margin band.
#[test]
fn margin_labelling_sound() {
    let mut rng = CaseRng(43);
    for _ in 0..128 {
        let n = rng.range_u64(1, 6) as usize;
        let scores: Vec<f64> = (0..n).map(|_| 0.1 + rng.unit() * 1e6).collect();
        let margin = rng.unit() * 0.2;

        let zero = best_class_with_margin(&scores, 0.0);
        let min = scores.iter().copied().fold(f64::INFINITY, f64::min);
        assert_eq!(scores[zero], min);

        let with_margin = best_class_with_margin(&scores, margin);
        assert!(scores[with_margin] <= min * (1.0 + margin) + 1e-9);
        assert!(with_margin <= zero, "margin can only move labels earlier");
    }
}

/// A trained selector always returns one of the candidate protocols
/// with a full score vector, for any query in the space.
#[test]
fn selector_closed_over_candidates() {
    // A small fixed dataset (training quality irrelevant here).
    let rows: Vec<DatasetRow> = (1..=5u8)
        .map(|loss| DatasetRow {
            env: Environment::new(
                MachineClass::Pc3000,
                BandwidthClass::Gbps1,
                DdsImplementation::OpenDds,
                loss,
            ),
            app: AppParams::new(3, 10),
            metric: MetricKind::ReLate2,
            best_class: (loss % 6) as usize,
            scores: vec![0.0; 6],
        })
        .collect();
    let dataset = LabeledDataset { rows };
    let config = SelectorConfig {
        train: adamant_ann::TrainParams {
            max_epochs: 5,
            ..adamant_ann::TrainParams::default()
        },
        ..SelectorConfig::default()
    };
    let (selector, _) = ProtocolSelector::train_from(&dataset, &config);
    let mut rng = CaseRng(44);
    for _ in 0..32 {
        let selection = selector.select(
            &any_environment(&mut rng),
            &any_app(&mut rng),
            any_metric(&mut rng),
        );
        assert!(class_index(selection.protocol).is_some());
        assert_eq!(selection.scores.len(), candidate_protocols().len());
        assert!(selection.scores.iter().all(|s| s.is_finite()));
    }
}

//! Feature encoding: maps (environment, application, metric) triples onto
//! the ANN's input vector, and candidate protocols onto output classes.

use adamant_dds::DdsImplementation;
use adamant_metrics::MetricKind;
use adamant_netsim::MachineClass;
use adamant_transport::ProtocolKind;

use crate::env::{AppParams, Environment};

/// Number of ANN input features.
pub const FEATURE_DIM: usize = 7;

/// The candidate protocol configurations the selector chooses between
/// (§4.2: four NAKcast timeouts, two Ricochet settings).
pub fn candidate_protocols() -> [ProtocolKind; 6] {
    ProtocolKind::paper_candidates()
}

/// The output class index of `kind`, if it is a candidate.
pub fn class_index(kind: ProtocolKind) -> Option<usize> {
    candidate_protocols().iter().position(|&k| k == kind)
}

/// Index of the metric among the ANN-visible metrics (ReLate2 = 0,
/// ReLate2Jit = 1, then the extended family).
pub fn metric_index(metric: MetricKind) -> usize {
    match metric {
        MetricKind::ReLate2 => 0,
        MetricKind::ReLate2Jit => 1,
        MetricKind::ReLate => 2,
        MetricKind::ReLate2Burst => 3,
        MetricKind::ReLate2Net => 4,
    }
}

/// Encodes one configuration as raw (unscaled) features:
/// `[cpu MHz, bandwidth Mb/s, dds, loss %, receivers, rate Hz, metric]`.
pub fn raw_features(env: &Environment, app: &AppParams, metric: MetricKind) -> [f64; FEATURE_DIM] {
    let mhz = match env.machine {
        MachineClass::Pc850 => 850.0,
        MachineClass::Pc3000 => 3_000.0,
    };
    let dds = match env.dds {
        DdsImplementation::OpenDds => 0.0,
        DdsImplementation::OpenSplice => 1.0,
    };
    [
        mhz,
        env.bandwidth.mbps(),
        dds,
        env.loss_percent as f64,
        app.receivers as f64,
        app.rate_hz as f64,
        metric_index(metric) as f64,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::BandwidthClass;

    #[test]
    fn candidates_map_to_dense_classes() {
        for (i, kind) in candidate_protocols().iter().enumerate() {
            assert_eq!(class_index(*kind), Some(i));
        }
        assert_eq!(class_index(ProtocolKind::Udp), None);
    }

    #[test]
    fn features_reflect_configuration() {
        let env = Environment::new(
            MachineClass::Pc850,
            BandwidthClass::Mbps100,
            DdsImplementation::OpenSplice,
            4,
        );
        let app = AppParams::new(15, 25);
        let f = raw_features(&env, &app, MetricKind::ReLate2Jit);
        assert_eq!(f, [850.0, 100.0, 1.0, 4.0, 15.0, 25.0, 1.0]);
    }

    #[test]
    fn distinct_configurations_have_distinct_features() {
        let base = Environment::new(
            MachineClass::Pc3000,
            BandwidthClass::Gbps1,
            DdsImplementation::OpenDds,
            1,
        );
        let app = AppParams::new(3, 10);
        let f1 = raw_features(&base, &app, MetricKind::ReLate2);
        let mut other = base;
        other.loss_percent = 2;
        let f2 = raw_features(&other, &app, MetricKind::ReLate2);
        assert_ne!(f1, f2);
    }

    #[test]
    fn metric_indices_are_dense_and_distinct() {
        let mut seen: Vec<usize> = MetricKind::all().iter().map(|&m| metric_index(m)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), MetricKind::all().len());
    }
}

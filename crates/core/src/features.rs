//! Feature encoding: maps (environment, application, metric) triples onto
//! the ANN's input vector, and candidate protocols onto output classes.

use adamant_dds::DdsImplementation;
use adamant_metrics::MetricKind;
use adamant_netsim::MachineClass;
use adamant_transport::ProtocolKind;

use crate::env::{AppParams, Environment};

/// Number of ANN input features. v2 appends the RTT and same-host axes to
/// the paper's seven.
pub const FEATURE_DIM: usize = 9;

/// Names of the ANN input features, aligned with [`raw_features`]. The
/// array length is pinned to [`FEATURE_DIM`], so bumping the feature
/// dimension without naming (and encoding) the new axis — or vice versa —
/// fails to compile instead of silently skewing one side.
pub const FEATURE_NAMES: [&str; FEATURE_DIM] = [
    "cpu_mhz",
    "bandwidth_mbps",
    "dds",
    "loss_percent",
    "receivers",
    "rate_hz",
    "metric_index",
    "rtt_ms",
    "same_host",
];

/// The numeric clock-speed encoding of a machine class in MHz: the single
/// normalization table shared by the feature encoder, the simulated-cloud
/// probe, and the analytic timing model, so the constants cannot drift
/// apart.
pub fn machine_mhz(machine: MachineClass) -> f64 {
    match machine {
        MachineClass::Pc850 => 850.0,
        MachineClass::Pc3000 => 3_000.0,
    }
}

/// The numeric encoding of a DDS implementation in the feature vector.
pub fn dds_code(dds: DdsImplementation) -> f64 {
    match dds {
        DdsImplementation::OpenDds => 0.0,
        DdsImplementation::OpenSplice => 1.0,
    }
}

/// The candidate protocol configurations the selector chooses between:
/// the paper's six (§4.2: four NAKcast timeouts, two Ricochet settings)
/// plus the v2 stream/WAN cores — StreamCast for long-RTT lossy paths,
/// ShmCast for same-host deployments.
pub fn candidate_protocols() -> [ProtocolKind; 8] {
    let paper = ProtocolKind::paper_candidates();
    [
        paper[0],
        paper[1],
        paper[2],
        paper[3],
        paper[4],
        paper[5],
        ProtocolKind::StreamCast { window: 64 },
        ProtocolKind::ShmCast { queue: 256 },
    ]
}

/// The output class index of `kind`, if it is a candidate.
pub fn class_index(kind: ProtocolKind) -> Option<usize> {
    candidate_protocols().iter().position(|&k| k == kind)
}

/// Whether `kind` can be deployed at all in `env`. The shared-memory
/// path exists only when writer and readers are co-located on one host;
/// every networked transport is feasible everywhere. Infeasible
/// candidates are never measured into dataset labels and are masked out
/// at selection time, so the ANN cannot "choose" a transport the
/// deployment cannot instantiate.
pub fn is_feasible(kind: ProtocolKind, env: &Environment) -> bool {
    match kind {
        ProtocolKind::ShmCast { .. } => env.same_host,
        _ => true,
    }
}

/// Index of the metric among the ANN-visible metrics (ReLate2 = 0,
/// ReLate2Jit = 1, then the extended family).
pub fn metric_index(metric: MetricKind) -> usize {
    match metric {
        MetricKind::ReLate2 => 0,
        MetricKind::ReLate2Jit => 1,
        MetricKind::ReLate => 2,
        MetricKind::ReLate2Burst => 3,
        MetricKind::ReLate2Net => 4,
    }
}

/// Encodes one configuration as raw (unscaled) features:
/// `[cpu MHz, bandwidth Mb/s, dds, loss %, receivers, rate Hz, metric,
/// rtt ms, same-host]`.
pub fn raw_features(env: &Environment, app: &AppParams, metric: MetricKind) -> [f64; FEATURE_DIM] {
    [
        machine_mhz(env.machine),
        env.bandwidth.mbps(),
        dds_code(env.dds),
        env.loss_percent as f64,
        app.receivers as f64,
        app.rate_hz as f64,
        metric_index(metric) as f64,
        env.rtt_ms(),
        if env.same_host { 1.0 } else { 0.0 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::BandwidthClass;

    #[test]
    fn candidates_map_to_dense_classes() {
        for (i, kind) in candidate_protocols().iter().enumerate() {
            assert_eq!(class_index(*kind), Some(i));
        }
        assert_eq!(class_index(ProtocolKind::Udp), None);
    }

    #[test]
    fn features_reflect_configuration() {
        let env = Environment::new(
            MachineClass::Pc850,
            BandwidthClass::Mbps100,
            DdsImplementation::OpenSplice,
            4,
        );
        let app = AppParams::new(15, 25);
        let f = raw_features(&env, &app, MetricKind::ReLate2Jit);
        assert_eq!(f, [850.0, 100.0, 1.0, 4.0, 15.0, 25.0, 1.0, 0.3, 0.0]);
    }

    #[test]
    fn v2_axes_reach_the_feature_vector() {
        let app = AppParams::new(3, 10);
        let wan = Environment::new(
            MachineClass::Pc3000,
            BandwidthClass::Wan50ms,
            DdsImplementation::OpenDds,
            2,
        );
        let f = raw_features(&wan, &app, MetricKind::ReLate2);
        assert_eq!(f[7], 50.0, "WAN RTT in ms");
        assert_eq!(f[8], 0.0);

        let shm = Environment::colocated(MachineClass::Pc3000, DdsImplementation::OpenDds);
        let f = raw_features(&shm, &app, MetricKind::ReLate2);
        assert!(f[7] < 0.01, "same-host RTT is ~2 µs");
        assert_eq!(f[8], 1.0);
    }

    #[test]
    fn widened_candidates_cover_the_new_cores() {
        let all = candidate_protocols();
        assert_eq!(all.len(), 8);
        assert_eq!(&all[..6], &ProtocolKind::paper_candidates()[..]);
        assert_eq!(all[6], ProtocolKind::StreamCast { window: 64 });
        assert_eq!(all[7], ProtocolKind::ShmCast { queue: 256 });
    }

    #[test]
    fn shared_memory_is_only_feasible_on_one_host() {
        let lan = Environment::new(
            MachineClass::Pc3000,
            BandwidthClass::Gbps1,
            DdsImplementation::OpenDds,
            1,
        );
        let shm = Environment::colocated(MachineClass::Pc3000, DdsImplementation::OpenDds);
        for kind in candidate_protocols() {
            assert!(is_feasible(kind, &shm), "{kind} must run same-host");
            let networked = !matches!(kind, ProtocolKind::ShmCast { .. });
            assert_eq!(is_feasible(kind, &lan), networked, "{kind} on the LAN");
        }
    }

    #[test]
    fn distinct_configurations_have_distinct_features() {
        let base = Environment::new(
            MachineClass::Pc3000,
            BandwidthClass::Gbps1,
            DdsImplementation::OpenDds,
            1,
        );
        let app = AppParams::new(3, 10);
        let f1 = raw_features(&base, &app, MetricKind::ReLate2);
        let mut other = base;
        other.loss_percent = 2;
        let f2 = raw_features(&other, &app, MetricKind::ReLate2);
        assert_ne!(f1, f2);
    }

    #[test]
    fn feature_names_align_with_the_encoder() {
        assert_eq!(FEATURE_NAMES.len(), FEATURE_DIM);
        assert_eq!(FEATURE_NAMES[0], "cpu_mhz");
        assert_eq!(FEATURE_NAMES[FEATURE_DIM - 1], "same_host");
        assert_eq!(machine_mhz(MachineClass::Pc850), 850.0);
        assert_eq!(machine_mhz(MachineClass::Pc3000), 3_000.0);
        assert_eq!(dds_code(DdsImplementation::OpenDds), 0.0);
        assert_eq!(dds_code(DdsImplementation::OpenSplice), 1.0);
    }

    #[test]
    fn metric_indices_are_dense_and_distinct() {
        let mut seen: Vec<usize> = MetricKind::all().iter().map(|&m| metric_index(m)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), MetricKind::all().len());
    }
}

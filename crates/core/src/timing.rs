//! Analytic query-time model: projects an ANN query onto the paper's
//! machine classes.
//!
//! We cannot swap this host's CPU for an 850 MHz Pentium III, so Figures
//! 20–21's pc850-vs-pc3000 comparison is reproduced two ways: real
//! wall-clock measurement on this host (Criterion benches and the timing
//! harness) *and* this cycle-count model, which maps the ANN's fixed
//! per-query operation count onto each machine's clock. The query path is
//! a dense feedforward pass — the same arithmetic for every input — which
//! is exactly why its cost model is a constant.

use adamant_ann::NeuralNetwork;
use adamant_netsim::MachineClass;

/// Cycle-count model for one ANN query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryCostModel {
    /// Fixed per-call overhead in cycles (call, marshalling, cache warmup).
    pub fixed_cycles: f64,
    /// Cycles per network operation (multiply-add halves plus activation
    /// amortisation).
    pub cycles_per_op: f64,
}

impl Default for QueryCostModel {
    fn default() -> Self {
        QueryCostModel {
            fixed_cycles: 2_500.0,
            cycles_per_op: 7.0,
        }
    }
}

impl QueryCostModel {
    /// Projected time of one query of `net` on `machine`, in microseconds.
    pub fn projected_micros(&self, net: &NeuralNetwork, machine: MachineClass) -> f64 {
        let cycles = self.fixed_cycles + self.cycles_per_op * net.ops_per_query() as f64;
        cycles / machine.mops() // MHz ≡ cycles per microsecond
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_ann::Activation;

    fn paper_net(hidden: usize) -> NeuralNetwork {
        NeuralNetwork::new(&[7, hidden, 6], Activation::fann_default(), 1)
    }

    #[test]
    fn pc850_is_slower_than_pc3000() {
        let model = QueryCostModel::default();
        let net = paper_net(24);
        let fast = model.projected_micros(&net, MachineClass::Pc3000);
        let slow = model.projected_micros(&net, MachineClass::Pc850);
        assert!(slow > fast);
        // Clock ratio: 3000/850.
        assert!((slow / fast - 3000.0 / 850.0).abs() < 1e-9);
    }

    #[test]
    fn paper_architecture_is_under_ten_microseconds_on_pc3000() {
        let model = QueryCostModel::default();
        let net = paper_net(24);
        let t = model.projected_micros(&net, MachineClass::Pc3000);
        assert!(t < 10.0, "projected {t} µs");
        assert!(t > 0.5, "projected {t} µs suspiciously fast");
    }

    #[test]
    fn more_hidden_nodes_cost_more() {
        let model = QueryCostModel::default();
        let small = model.projected_micros(&paper_net(8), MachineClass::Pc3000);
        let large = model.projected_micros(&paper_net(32), MachineClass::Pc3000);
        assert!(large > small);
    }
}

//! One-stop import for the types that nearly every ADAMANT program touches.
//!
//! The workspace is split into focused crates (`adamant-proto`,
//! `adamant-rt`, `adamant-transport`, `adamant-dds`, `adamant-netsim`,
//! `adamant-metrics`), which keeps the layers honest but makes example
//! code start with a wall of `use` lines. `adamant::prelude` re-exports
//! the cross-crate surface once, from exactly one canonical path per
//! name, so applications can write:
//!
//! ```
//! use adamant::prelude::*;
//!
//! let cfg = TransportConfig::new(ProtocolKind::Udp);
//! let qos = QosProfile::reliable();
//! let node = NodeId(7);
//! let _ = (cfg, qos, node);
//! ```
//!
//! Names that exist in more than one crate (e.g. `NodeId`, which
//! `adamant-netsim` re-exports from `adamant-proto`) are pulled from
//! their defining crate only, so a glob import never produces an
//! ambiguity error.

// Protocol-layer identities and time (defining crate for NodeId/GroupId).
pub use adamant_proto::{GroupId, NodeId, ProtocolCore, Span, TimePoint};

// Real-clock runtime: single endpoint, per-socket cluster, or the
// readiness-driven multiplexed cluster.
pub use adamant_rt::{
    Cluster, ClusterConfig, ClusterStats, Endpoint, EndpointId, EndpointReport, MonotonicClock,
    MuxCluster, MuxConfig, RtConfig, RtError,
};

// Transport selection and tuning.
pub use adamant_transport::{AppSpec, ProtocolKind, StackProfile, TransportConfig, Tuning};

// DDS-style pub/sub surface.
pub use adamant_dds::{
    DataReader, DataWriter, DdsError, DdsImplementation, DomainParticipant, QosProfile, Topic,
};

// Simulated cloud environments.
pub use adamant_netsim::{Bandwidth, HostConfig, MachineClass, SimDuration, SimTime, Simulation};

// Composite QoS metrics.
pub use adamant_metrics::{MetricKind, MetricsRegistry};

// The adaptation loop from this crate: the unified policy builder and the
// pieces it composes.
pub use crate::{
    AdaptivePolicy, AppParams, BandwidthClass, Choice, Environment, FeatureRow, HealingOutcome,
    MonitorThresholds, OnlineStats, OnlineTrainer, OnlineTrainingConfig, ProtocolSelector,
    QosObservation, ResilientChoice, ResilientSelector, Scenario, Selection, SelectorConfig,
    SelectorSource, StreamConfig, SwitchRecord, TreeSelector,
};

//! The end-to-end scenario runner: stands up the full stack — simulated
//! hosts, DDS entities, ANT transport — for one experiment configuration
//! and returns its pooled QoS report.

use adamant_dds::{DomainParticipant, QosProfile};
use adamant_metrics::QosReport;
use adamant_netsim::{SimDuration, Simulation};
use adamant_transport::{ant, AppSpec, ProtocolKind, TransportConfig};

use crate::env::{AppParams, Environment};

/// One experiment configuration: environment, application parameters, and
/// workload scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scenario {
    /// The cloud environment (Table 1 row).
    pub env: Environment,
    /// The application parameters (Table 2 row).
    pub app: AppParams,
    /// Samples the data writer publishes (20 000 in the paper).
    pub samples: u64,
    /// Payload bytes per sample (12 in the paper).
    pub payload_bytes: u32,
    /// Simulation seed; repetitions use consecutive seeds.
    pub seed: u64,
}

impl Scenario {
    /// A scenario with the paper's workload (20 000 × 12-byte samples).
    pub fn paper(env: Environment, app: AppParams, seed: u64) -> Self {
        Scenario {
            env,
            app,
            samples: 20_000,
            payload_bytes: 12,
            seed,
        }
    }

    /// Same configuration with a smaller sample count — for tests and
    /// quick sweeps where 20 000 samples would be wastefully slow.
    pub fn with_samples(mut self, samples: u64) -> Self {
        self.samples = samples;
        self
    }

    /// The topic QoS profile that matches a candidate protocol's delivery
    /// semantics.
    fn qos_for(kind: ProtocolKind) -> QosProfile {
        match kind {
            ProtocolKind::Udp => QosProfile::best_effort(),
            // Stream and shared-memory cores guarantee loss-free ordered
            // delivery, the same contract NAKcast's reliable profile names.
            ProtocolKind::Nakcast { .. }
            | ProtocolKind::StreamCast { .. }
            | ProtocolKind::ShmCast { .. } => QosProfile::reliable(),
            ProtocolKind::Ricochet { .. }
            | ProtocolKind::Ackcast { .. }
            | ProtocolKind::Slingshot { .. } => QosProfile::time_critical(),
        }
    }

    /// Runs this scenario once over `transport` and returns the pooled QoS
    /// report.
    ///
    /// The full stack is exercised: a [`DomainParticipant`] with the
    /// environment's DDS implementation creates the topic, writer, and
    /// readers; QoS compatibility is validated; the session is installed
    /// over the transport; and the simulation runs to quiescence (publish
    /// span plus a recovery grace period).
    ///
    /// # Panics
    ///
    /// Panics if the DDS layer rejects the session (cannot happen for the
    /// candidate protocols and their matching QoS profiles).
    pub fn run(&self, transport: TransportConfig) -> QosReport {
        let qos = Self::qos_for(transport.kind);
        let mut participant = DomainParticipant::new(0, self.env.dds);
        let topic = participant
            .create_topic::<[u8; 12]>("adamant/experiment", qos)
            .expect("fresh participant has no topics");
        let host = self.env.host_config();
        participant
            .create_data_writer(
                topic,
                qos,
                AppSpec::at_rate(self.samples, self.app.rate_hz as f64, self.payload_bytes),
                host,
            )
            .expect("topic has no writer yet");
        for _ in 0..self.app.receivers {
            participant
                .create_data_reader(topic, qos, host, self.env.drop_probability())
                .expect("reader creation is infallible here");
        }

        let mut sim = Simulation::new(self.seed).with_network(self.env.network_config());
        let handles = participant
            .install(&mut sim, topic, transport)
            .expect("candidate protocols satisfy their matching qos");

        let publish_span =
            SimDuration::from_secs_f64(self.samples as f64 / self.app.rate_hz as f64);
        let grace = SimDuration::from_secs(3);
        sim.run_until(adamant_netsim::SimTime::ZERO + publish_span + grace);
        ant::collect_report(&sim, &handles)
    }

    /// Runs `repetitions` independent repetitions (consecutive seeds), as
    /// the paper does (5 per configuration).
    pub fn run_repeated(&self, transport: TransportConfig, repetitions: u32) -> Vec<QosReport> {
        (0..repetitions as u64)
            .map(|rep| {
                Scenario {
                    seed: self.seed.wrapping_add(rep),
                    ..*self
                }
                .run(transport)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::BandwidthClass;
    use adamant_dds::DdsImplementation;
    use adamant_metrics::MetricKind;
    use adamant_netsim::MachineClass;

    fn fast_env() -> Environment {
        Environment::new(
            MachineClass::Pc3000,
            BandwidthClass::Gbps1,
            DdsImplementation::OpenSplice,
            5,
        )
    }

    #[test]
    fn runs_each_candidate_protocol_through_full_stack() {
        let scenario = Scenario::paper(fast_env(), AppParams::new(3, 100), 1).with_samples(400);
        for kind in crate::features::candidate_protocols() {
            let report = scenario.run(TransportConfig::new(kind));
            assert_eq!(report.samples_sent, 400);
            assert_eq!(report.receivers, 3);
            assert!(
                report.reliability() > 0.9,
                "{kind}: reliability {}",
                report.reliability()
            );
        }
    }

    #[test]
    fn repetitions_vary_but_are_deterministic() {
        let scenario = Scenario::paper(fast_env(), AppParams::new(3, 100), 7).with_samples(300);
        let transport = TransportConfig::new(ProtocolKind::Ricochet { r: 4, c: 3 });
        let runs = scenario.run_repeated(transport, 3);
        assert_eq!(runs.len(), 3);
        // Different seeds → (almost surely) different latency samples.
        assert!(
            runs[0].avg_latency_us != runs[1].avg_latency_us
                || runs[1].avg_latency_us != runs[2].avg_latency_us
        );
        // Re-running reproduces the same reports.
        let again = scenario.run_repeated(transport, 3);
        assert_eq!(runs, again);
    }

    #[test]
    fn scores_are_finite_and_positive() {
        let scenario = Scenario::paper(fast_env(), AppParams::new(3, 50), 3).with_samples(300);
        let report = scenario.run(TransportConfig::new(ProtocolKind::Nakcast {
            timeout: SimDuration::from_millis(1),
        }));
        for metric in MetricKind::all() {
            let score = metric.score(&report);
            assert!(score.is_finite() && score >= 0.0, "{metric}: {score}");
        }
    }
}

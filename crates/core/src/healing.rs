//! The resilient building blocks of the adaptation loop — the graceful
//! selector chain, switch hysteresis, and the outcome record — plus the
//! legacy `SelfHealingSession` entry point (now a thin shim over
//! [`AdaptivePolicy`]).
//!
//! The closed loop itself lives in [`crate::policy`]: a policy runs a live
//! pub/sub session while a fault plan (loss spikes, bandwidth downgrades,
//! CPU contention — see [`adamant_netsim::FaultPlan`]) degrades it
//! mid-stream. Each window the loop folds the delivery stream into a
//! [`WindowQos`]; when the monitor alarms, it re-probes the (now degraded)
//! environment, asks a [`ResilientSelector`] for a protocol, and — subject
//! to a [`SwitchBackoff`] hysteresis policy that prevents flapping — swaps
//! the running transport over mid-stream.
//!
//! The selector chain degrades gracefully: a trained ANN answers only
//! when its output margin clears a confidence floor, a decision-tree
//! fallback answers otherwise, and with no models at all the session falls
//! back to the safest candidate (NAKcast with a 1 ms timeout — reliable
//! under every environment of the paper's evaluation, if not optimal).

use adamant_metrics::{Delivery, MetricKind, QosReport, WindowQos};
use adamant_netsim::{Bandwidth, FaultPlan, SimDuration, SimTime, Simulation, TracedEvent};
use adamant_transport::{ant, ProtocolKind, SessionHandles, TransportConfig};

use crate::adaptive::MonitorThresholds;
use crate::env::{AppParams, BandwidthClass, Environment};
use crate::policy::{AdaptivePolicy, OnlineStats, StreamConfig};
use crate::selector::{ProtocolSelector, TreeSelector};

/// Which stage of the fallback chain produced a protocol choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectorSource {
    /// The ANN answered with sufficient output margin.
    Ann,
    /// The ANN was absent or unsure; the decision tree answered.
    Tree,
    /// No model could answer; the safe default was used.
    Default,
}

impl SelectorSource {
    /// Stable integer encoding used by the `HealDecision` and
    /// `HealSwitch` trace events of [`adamant_netsim::ObsEvent`].
    pub fn code(self) -> u8 {
        match self {
            SelectorSource::Ann => 0,
            SelectorSource::Tree => 1,
            SelectorSource::Default => 2,
        }
    }
}

/// One answer from a [`ResilientSelector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilientChoice {
    /// The chosen transport protocol.
    pub protocol: ProtocolKind,
    /// Which fallback stage produced it.
    pub source: SelectorSource,
    /// The ANN's output margin (top score minus runner-up) when the ANN
    /// answered; `1.0` for the tree (its answer is categorical) and `0.0`
    /// for the default.
    pub confidence: f64,
}

/// A protocol selector that never fails to answer: ANN with a confidence
/// floor, then a decision tree, then a safe default.
#[derive(Debug, Clone)]
pub struct ResilientSelector {
    ann: Option<(ProtocolSelector, f64)>,
    tree: Option<TreeSelector>,
    metric: MetricKind,
}

impl ResilientSelector {
    /// Creates a selector chain optimising `metric` with no models yet:
    /// every query answers [`ResilientSelector::fallback_protocol`].
    pub fn new(metric: MetricKind) -> Self {
        ResilientSelector {
            ann: None,
            tree: None,
            metric,
        }
    }

    /// Adds a trained ANN whose answer is trusted only when the margin
    /// between its top two output scores reaches `confidence_floor`.
    ///
    /// # Panics
    ///
    /// Panics if `confidence_floor` is negative or not finite.
    pub fn with_ann(mut self, selector: ProtocolSelector, confidence_floor: f64) -> Self {
        assert!(
            confidence_floor.is_finite() && confidence_floor >= 0.0,
            "confidence floor must be finite and non-negative"
        );
        self.ann = Some((selector, confidence_floor));
        self
    }

    /// Adds the decision-tree fallback consulted when the ANN is absent
    /// or unsure.
    pub fn with_tree(mut self, tree: TreeSelector) -> Self {
        self.tree = Some(tree);
        self
    }

    /// The metric the chain optimises.
    pub fn metric(&self) -> MetricKind {
        self.metric
    }

    /// The currently installed ANN, if any.
    pub fn ann(&self) -> Option<&ProtocolSelector> {
        self.ann.as_ref().map(|(selector, _)| selector)
    }

    /// Hot-swaps the ANN, keeping the existing confidence floor (or
    /// trusting every answer when no floor was ever set). This is the
    /// online trainer's install point: swapping a model changes future
    /// *answers* only — actual protocol switches still flow through the
    /// alarm → backoff → reinstall path.
    pub fn replace_ann(&mut self, selector: ProtocolSelector) {
        let floor = self.ann.as_ref().map(|(_, floor)| *floor).unwrap_or(0.0);
        self.ann = Some((selector, floor));
    }

    /// The last-resort choice when no model can answer: NAKcast with a
    /// 1 ms timeout, the candidate that stays reliable across the paper's
    /// whole environment space.
    pub fn fallback_protocol() -> ProtocolKind {
        ProtocolKind::Nakcast {
            timeout: SimDuration::from_millis(1),
        }
    }

    /// Answers a selection query, walking the fallback chain.
    pub fn select(&self, env: &Environment, app: &AppParams) -> ResilientChoice {
        if let Some((ann, floor)) = &self.ann {
            let selection = ann.select(env, app, self.metric);
            let margin = top_two_margin(&selection.scores);
            if margin >= *floor {
                return ResilientChoice {
                    protocol: selection.protocol,
                    source: SelectorSource::Ann,
                    confidence: margin,
                };
            }
        }
        if let Some(tree) = &self.tree {
            let selection = tree.select(env, app, self.metric);
            return ResilientChoice {
                protocol: selection.protocol,
                source: SelectorSource::Tree,
                confidence: 1.0,
            };
        }
        ResilientChoice {
            protocol: Self::fallback_protocol(),
            source: SelectorSource::Default,
            confidence: 0.0,
        }
    }
}

/// Margin between the largest and second-largest score (the ANN's
/// confidence proxy). A single-output network's margin is its sole score.
fn top_two_margin(scores: &[f64]) -> f64 {
    let mut top = f64::NEG_INFINITY;
    let mut second = f64::NEG_INFINITY;
    for &s in scores {
        if s > top {
            second = top;
            top = s;
        } else if s > second {
            second = s;
        }
    }
    if second == f64::NEG_INFINITY {
        top
    } else {
        top - second
    }
}

/// Anti-flapping policy for mid-stream protocol switches: a minimum dwell
/// time after every switch, doubling (up to a cap) while switches keep
/// happening, so a session oscillating at a decision boundary settles
/// instead of thrashing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchBackoff {
    min_dwell: SimDuration,
    max_backoff: SimDuration,
    current: SimDuration,
    next_allowed: SimTime,
}

impl SwitchBackoff {
    /// Creates a policy with the given initial dwell and backoff cap.
    ///
    /// # Panics
    ///
    /// Panics if `min_dwell` is zero or exceeds `max_backoff`.
    pub fn new(min_dwell: SimDuration, max_backoff: SimDuration) -> Self {
        assert!(!min_dwell.is_zero(), "dwell time must be positive");
        assert!(max_backoff >= min_dwell, "backoff cap below initial dwell");
        SwitchBackoff {
            min_dwell,
            max_backoff,
            current: min_dwell,
            next_allowed: SimTime::ZERO,
        }
    }

    /// Whether a switch is currently allowed.
    pub fn may_switch(&self, now: SimTime) -> bool {
        now >= self.next_allowed
    }

    /// Records a switch at `now`, starting the next dwell period and
    /// doubling it for the one after.
    pub fn record_switch(&mut self, now: SimTime) {
        self.next_allowed = now + self.current;
        self.current = (self.current * 2).min(self.max_backoff);
    }

    /// The dwell the *next* switch will impose.
    pub fn current_dwell(&self) -> SimDuration {
        self.current
    }

    /// Re-arms the policy to its initial dwell (for callers that consider
    /// the system to have settled).
    pub fn reset(&mut self) {
        self.current = self.min_dwell;
    }
}

/// Configuration of one self-healing run.
#[deprecated(
    note = "use `StreamConfig` for the workload and `AdaptivePolicy` for the decision knobs"
)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealingConfig {
    /// The provisioned environment the session starts in (faults may move
    /// the *actual* conditions away from it mid-run).
    pub env: Environment,
    /// Application parameters.
    pub app: AppParams,
    /// Samples the writer publishes over the whole session, switches
    /// included.
    pub samples: u64,
    /// Payload bytes per sample.
    pub payload_bytes: u32,
    /// Simulation seed.
    pub seed: u64,
    /// Monitoring window length.
    pub window: SimDuration,
    /// Degradation-alarm thresholds.
    pub thresholds: MonitorThresholds,
    /// Minimum dwell after a switch.
    pub min_dwell: SimDuration,
    /// Cap on the exponential switch backoff.
    pub max_backoff: SimDuration,
    /// Extra windows after the last publication, for tail recovery.
    pub grace: SimDuration,
    /// Whether to attach a trace sink and capture a structured
    /// observability trace of the run (off by default; the engine then
    /// pays only a disabled-branch per hook site).
    pub observe: bool,
}

#[allow(deprecated)]
impl HealingConfig {
    /// A configuration with sensible defaults: 12-byte payloads, 1 s
    /// windows, default thresholds, 2 s dwell backing off to 16 s, 3 s
    /// grace.
    pub fn new(env: Environment, app: AppParams, samples: u64, seed: u64) -> Self {
        HealingConfig {
            env,
            app,
            samples,
            payload_bytes: 12,
            seed,
            window: SimDuration::from_secs(1),
            thresholds: MonitorThresholds::default(),
            min_dwell: SimDuration::from_secs(2),
            max_backoff: SimDuration::from_secs(16),
            grace: SimDuration::from_secs(3),
            observe: false,
        }
    }

    /// Enables structured trace capture for the run; the captured events
    /// come back in [`HealingOutcome::trace`].
    pub fn with_observation(mut self) -> Self {
        self.observe = true;
        self
    }

    /// Overrides the monitoring window length.
    pub fn with_window(mut self, window: SimDuration) -> Self {
        self.window = window;
        self
    }

    /// Overrides the alarm thresholds.
    pub fn with_thresholds(mut self, thresholds: MonitorThresholds) -> Self {
        self.thresholds = thresholds;
        self
    }

    /// Overrides the switch dwell and backoff cap.
    pub fn with_dwell(mut self, min_dwell: SimDuration, max_backoff: SimDuration) -> Self {
        self.min_dwell = min_dwell;
        self.max_backoff = max_backoff;
        self
    }
}

/// One committed mid-stream protocol switch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchRecord {
    /// When the switch happened.
    pub at: SimTime,
    /// The protocol being replaced.
    pub from: ProtocolKind,
    /// The protocol switched to.
    pub to: ProtocolKind,
    /// Which fallback stage chose it.
    pub source: SelectorSource,
    /// The re-probed environment the choice was made for.
    pub probed: Environment,
}

/// The full record of one self-healing run. Two runs with identical
/// configuration, selector, and fault plan compare equal — the loop is
/// bit-for-bit deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct HealingOutcome {
    /// Pooled per-window QoS (all receivers, all protocol incarnations).
    pub windows: Vec<WindowQos>,
    /// Degradation alarms raised by the monitor.
    pub alarms: u64,
    /// Committed protocol switches, in order.
    pub switches: Vec<SwitchRecord>,
    /// Alarms that proposed a switch the backoff policy suppressed.
    pub suppressed_switches: u64,
    /// The protocol the session started on.
    pub initial_protocol: ProtocolKind,
    /// The protocol in force at the end.
    pub final_protocol: ProtocolKind,
    /// Pooled whole-run QoS across every incarnation.
    pub report: QosReport,
    /// The structured observability trace, when the run was configured
    /// with [`StreamConfig::with_observation`]; empty otherwise.
    pub trace: Vec<TracedEvent>,
    /// Counters of the online learn → vet → hot-swap path (all zero when
    /// online training was not enabled).
    pub online: OnlineStats,
}

impl HealingOutcome {
    /// Per-window ReLate2 (average latency × (percent loss + 1)) — the
    /// windowed form of the paper's headline composite metric. Windows
    /// with no publications score zero.
    pub fn window_relate2(&self) -> Vec<f64> {
        self.windows
            .iter()
            .map(|w| w.avg_latency_us * ((1.0 - w.reliability()) * 100.0 + 1.0))
            .collect()
    }

    /// Mean windowed ReLate2 over `range` (publishing windows only).
    ///
    /// Returns zero when the range holds no publishing window.
    pub fn mean_relate2(&self, range: std::ops::Range<usize>) -> f64 {
        let relate2 = self.window_relate2();
        let mut sum = 0.0;
        let mut n = 0u32;
        for i in range {
            if let Some(w) = self.windows.get(i) {
                if w.published > 0 {
                    sum += relate2[i];
                    n += 1;
                }
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Time from `fault_at` until windowed QoS settles back within
    /// `tolerance × baseline` ReLate2 for the rest of the stream.
    ///
    /// Returns `SimDuration::ZERO` when no window at or after the fault
    /// ever violated the bound, and `None` when QoS never settled (the
    /// last publishing window still violates it).
    pub fn time_to_recover(
        &self,
        fault_at: SimTime,
        baseline: f64,
        tolerance: f64,
    ) -> Option<SimDuration> {
        let relate2 = self.window_relate2();
        let mut last_bad: Option<usize> = None;
        for (i, w) in self.windows.iter().enumerate() {
            if w.start + w.length <= fault_at {
                continue;
            }
            if w.published > 0 && relate2[i] > tolerance * baseline {
                last_bad = Some(i);
            }
        }
        match last_bad {
            None => Some(SimDuration::ZERO),
            Some(i) => {
                let settled_after = self.windows[i].start + self.windows[i].length;
                let published_later = self.windows.iter().skip(i + 1).any(|w| w.published > 0);
                if published_later {
                    Some(settled_after.saturating_since(fault_at))
                } else {
                    None
                }
            }
        }
    }
}

/// A live pub/sub session wrapped in the monitor → probe → select →
/// reconfigure loop, run against a fault plan.
#[deprecated(note = "use `AdaptivePolicy::run_stream` with a `StreamConfig`")]
#[derive(Debug, Clone)]
#[allow(deprecated)]
pub struct SelfHealingSession {
    config: HealingConfig,
    selector: ResilientSelector,
}

#[allow(deprecated)]
impl SelfHealingSession {
    /// Creates a session runner.
    pub fn new(config: HealingConfig, selector: ResilientSelector) -> Self {
        SelfHealingSession { config, selector }
    }

    /// Runs the session on `initial`, applying `plan`'s faults at their
    /// scheduled instants, until the stream completes (plus grace).
    ///
    /// This is now a shim over [`AdaptivePolicy::run_stream`]; the two
    /// paths produce identical outcomes for identical configuration.
    ///
    /// # Panics
    ///
    /// Panics if `initial` cannot carry a time-critical topic (e.g. plain
    /// UDP), or if a fault crashes the session's *sender* (warm-standby
    /// failover lives in `adamant-transport`, not in this loop).
    pub fn run(&self, initial: TransportConfig, plan: FaultPlan) -> HealingOutcome {
        let cfg = self.config;
        let stream = StreamConfig {
            env: cfg.env,
            app: cfg.app,
            samples: cfg.samples,
            payload_bytes: cfg.payload_bytes,
            seed: cfg.seed,
            window: cfg.window,
            grace: cfg.grace,
            observe: cfg.observe,
        };
        AdaptivePolicy::from_selector(self.selector.clone())
            .with_thresholds(cfg.thresholds)
            .with_backoff(cfg.min_dwell, cfg.max_backoff)
            .run_stream(&stream, initial, plan)
    }
}

/// Re-probes the environment after an alarm: machine and bandwidth from
/// the (possibly fault-mutated) host the writer runs on, loss from the
/// alarming window's own wire evidence — samples that needed recovery or
/// are still missing — floored at the provisioned rate.
pub(crate) fn probe_environment(
    provisioned: &Environment,
    sim: &Simulation,
    handles: &SessionHandles,
    pooled: &[Delivery],
    window: &WindowQos,
) -> Environment {
    let host = sim.host_config(handles.sender);
    let start = window.start;
    let end = window.start + window.length;
    let recovered = pooled
        .iter()
        .filter(|d| d.published_at >= start && d.published_at < end && d.recovered)
        .count() as u64;
    let expected = window.published;
    let missing = expected.saturating_sub(window.delivered);
    let fraction = if expected == 0 {
        0.0
    } else {
        (recovered + missing) as f64 / expected as f64
    };
    let observed = (fraction * 100.0).round().clamp(0.0, 100.0) as u8;
    Environment::new(
        host.machine,
        nearest_bandwidth_class(host.bandwidth),
        provisioned.dds,
        observed.max(provisioned.loss_percent),
    )
}

/// Everything every reader has delivered so far: harvested logs of dead
/// incarnations plus the live agents' logs, in stable receiver order.
pub(crate) fn pooled_deliveries(
    sim: &Simulation,
    handles: &SessionHandles,
    harvested: &[(Vec<Delivery>, u64)],
) -> Vec<Delivery> {
    let mut pooled: Vec<Delivery> = Vec::new();
    for (past, _) in harvested {
        pooled.extend_from_slice(past);
    }
    for &node in &handles.receivers {
        if !sim.is_crashed(node) {
            pooled.extend_from_slice(ant::reader(sim, handles, node).log().deliveries());
        }
    }
    pooled
}

/// The Table 1 bandwidth class nearest (in log space) to a raw link
/// bandwidth — the probe's quantisation step.
fn nearest_bandwidth_class(bandwidth: Bandwidth) -> BandwidthClass {
    let mbps = bandwidth.mbps();
    if mbps <= 0.0 {
        return BandwidthClass::Mbps10;
    }
    let mut best = BandwidthClass::Gbps1;
    let mut best_err = f64::INFINITY;
    for class in BandwidthClass::all() {
        let err = (class.mbps().ln() - mbps.ln()).abs();
        if err < best_err {
            best = class;
            best_err = err;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetRow, LabeledDataset};
    use crate::selector::SelectorConfig;
    use adamant_dds::DdsImplementation;
    use adamant_netsim::MachineClass;

    /// Loss ≤ 3 % → NAKcast 50 ms (class 0); above → NAKcast 1 ms
    /// (class 3). The timeout trade-off the healing loop exploits.
    fn loss_dataset() -> LabeledDataset {
        let mut rows = Vec::new();
        for bandwidth in BandwidthClass::all() {
            for loss in 1..=10u8 {
                rows.push(DatasetRow {
                    env: Environment::new(
                        MachineClass::Pc3000,
                        bandwidth,
                        DdsImplementation::OpenSplice,
                        loss,
                    ),
                    app: AppParams::new(2, 100),
                    metric: MetricKind::ReLate2,
                    best_class: if loss <= 3 { 0 } else { 3 },
                    scores: vec![0.0; 6],
                });
            }
        }
        LabeledDataset { rows }
    }

    fn lossy_env(loss: u8) -> Environment {
        Environment::new(
            MachineClass::Pc3000,
            BandwidthClass::Gbps1,
            DdsImplementation::OpenSplice,
            loss,
        )
    }

    #[test]
    fn confident_ann_answers_first() {
        let ds = loss_dataset();
        let (ann, _) = ProtocolSelector::train_from(&ds, &SelectorConfig::default());
        let tree = TreeSelector::from_dataset(&ds, adamant_ann::DecisionTreeParams::default());
        let chain = ResilientSelector::new(MetricKind::ReLate2)
            .with_ann(ann, 0.1)
            .with_tree(tree);
        let choice = chain.select(&lossy_env(8), &AppParams::new(2, 100));
        assert_eq!(choice.source, SelectorSource::Ann);
        assert_eq!(choice.protocol, ResilientSelector::fallback_protocol());
        assert!(choice.confidence >= 0.1);
        let calm = chain.select(&lossy_env(1), &AppParams::new(2, 100));
        assert_eq!(
            calm.protocol,
            ProtocolKind::Nakcast {
                timeout: SimDuration::from_millis(50)
            }
        );
    }

    #[test]
    fn unsure_ann_falls_back_to_tree() {
        let ds = loss_dataset();
        let (ann, _) = ProtocolSelector::train_from(&ds, &SelectorConfig::default());
        let tree = TreeSelector::from_dataset(&ds, adamant_ann::DecisionTreeParams::default());
        // An unreachable floor: no ANN margin can hit 1000.
        let chain = ResilientSelector::new(MetricKind::ReLate2)
            .with_ann(ann, 1_000.0)
            .with_tree(tree);
        let choice = chain.select(&lossy_env(8), &AppParams::new(2, 100));
        assert_eq!(choice.source, SelectorSource::Tree);
        assert_eq!(choice.protocol, ResilientSelector::fallback_protocol());
        assert_eq!(choice.confidence, 1.0);
    }

    #[test]
    fn empty_chain_answers_the_safe_default() {
        let chain = ResilientSelector::new(MetricKind::ReLate2);
        let choice = chain.select(&lossy_env(5), &AppParams::new(2, 100));
        assert_eq!(choice.source, SelectorSource::Default);
        assert_eq!(choice.protocol, ResilientSelector::fallback_protocol());
        assert_eq!(choice.confidence, 0.0);
        assert_eq!(chain.metric(), MetricKind::ReLate2);
    }

    #[test]
    fn margin_of_scores() {
        assert_eq!(top_two_margin(&[0.9, 0.1, 0.05]), 0.8);
        assert_eq!(top_two_margin(&[0.5]), 0.5);
        assert_eq!(top_two_margin(&[0.4, 0.4]), 0.0);
    }

    #[test]
    fn backoff_enforces_dwell_and_doubles() {
        let mut b = SwitchBackoff::new(SimDuration::from_secs(2), SimDuration::from_secs(8));
        assert!(b.may_switch(SimTime::ZERO));
        b.record_switch(SimTime::from_secs(1));
        assert!(!b.may_switch(SimTime::from_millis(2_999)));
        assert!(b.may_switch(SimTime::from_secs(3)));
        assert_eq!(b.current_dwell(), SimDuration::from_secs(4));
        b.record_switch(SimTime::from_secs(3));
        assert!(!b.may_switch(SimTime::from_millis(6_999)));
        assert_eq!(b.current_dwell(), SimDuration::from_secs(8));
        b.record_switch(SimTime::from_secs(10));
        // Capped: never exceeds the maximum.
        assert_eq!(b.current_dwell(), SimDuration::from_secs(8));
        b.reset();
        assert_eq!(b.current_dwell(), SimDuration::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "dwell time")]
    fn zero_dwell_rejected() {
        SwitchBackoff::new(SimDuration::ZERO, SimDuration::from_secs(1));
    }

    #[test]
    fn bandwidth_probe_quantises_to_nearest_class() {
        assert_eq!(
            nearest_bandwidth_class(Bandwidth::GBPS_1),
            BandwidthClass::Gbps1
        );
        assert_eq!(
            nearest_bandwidth_class(Bandwidth::MBPS_100),
            BandwidthClass::Mbps100
        );
        assert_eq!(
            nearest_bandwidth_class(Bandwidth::MBPS_10),
            BandwidthClass::Mbps10
        );
        assert_eq!(
            nearest_bandwidth_class(Bandwidth::from_bps(250_000_000)),
            BandwidthClass::Mbps100
        );
    }

    #[test]
    fn time_to_recover_reads_the_window_sequence() {
        let window = |start_s: u64, published: u64, lat: f64| WindowQos {
            start: SimTime::from_secs(start_s),
            length: SimDuration::from_secs(1),
            published,
            delivered: published,
            avg_latency_us: lat,
            jitter_us: 0.0,
        };
        let outcome = HealingOutcome {
            windows: vec![
                window(0, 100, 1_000.0),
                window(1, 100, 1_000.0),
                window(2, 100, 9_000.0), // fault lands here
                window(3, 100, 9_000.0),
                window(4, 100, 1_050.0), // healed
                window(5, 100, 1_050.0),
                window(6, 0, 0.0), // grace
            ],
            alarms: 1,
            switches: Vec::new(),
            suppressed_switches: 0,
            initial_protocol: ResilientSelector::fallback_protocol(),
            final_protocol: ResilientSelector::fallback_protocol(),
            report: QosReport::builder(600, 1).finish(),
            trace: Vec::new(),
            online: OnlineStats::default(),
        };
        let baseline = outcome.mean_relate2(0..2);
        assert!((baseline - 1_000.0).abs() < 1e-9);
        let ttr = outcome
            .time_to_recover(SimTime::from_secs(2), baseline, 1.2)
            .unwrap();
        assert_eq!(ttr, SimDuration::from_secs(2));
        // Never-degraded stream recovers instantly.
        assert_eq!(
            outcome.time_to_recover(SimTime::from_secs(4), baseline, 1.2),
            Some(SimDuration::ZERO)
        );
    }
}

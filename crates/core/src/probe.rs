//! Autonomic resource probing (Fig. 3 of the paper): ADAMANT queries the
//! environment for hardware and networking resources before asking the ANN
//! for a transport configuration.
//!
//! On a real Linux host the paper reads `/proc/cpuinfo` and runs `ethtool`;
//! [`LinuxProcProbe`] does the former. In simulation, [`SimulatedCloud`]
//! plays the role of the cloud's provisioning answer.

use adamant_netsim::MachineClass;

use crate::env::{BandwidthClass, Environment};

/// What a probe learned about the platform.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbedResources {
    /// CPU clock in MHz.
    pub cpu_mhz: f64,
    /// Logical CPU count.
    pub cpus: u32,
    /// CPU model string, if available.
    pub model: Option<String>,
    /// Link speed in Mb/s, if known.
    pub link_mbps: Option<f64>,
    /// Measured path round-trip time to the peers in microseconds, if
    /// known. Raw link speed cannot distinguish a 100 Mb/s campus LAN
    /// from a 100 Mb/s inter-region WAN path; the RTT can.
    pub rtt_us: Option<f64>,
    /// Whether every peer of the session resolves to this same host.
    pub same_host: bool,
}

impl ProbedResources {
    /// Maps the probed CPU onto the nearest paper machine class (by clock).
    pub fn machine_class(&self) -> MachineClass {
        // Midpoint between the two encoded machine clocks.
        let midpoint = (crate::features::machine_mhz(MachineClass::Pc850)
            + crate::features::machine_mhz(MachineClass::Pc3000))
            / 2.0;
        if self.cpu_mhz < midpoint {
            MachineClass::Pc850
        } else {
            MachineClass::Pc3000
        }
    }

    /// Maps the probed link onto the nearest bandwidth class (defaults
    /// to 1 Gb/s when unknown). A path RTT of 5 ms or more marks the
    /// WAN class regardless of link speed: propagation, not the NIC,
    /// dominates such a path.
    pub fn bandwidth_class(&self) -> BandwidthClass {
        if matches!(self.rtt_us, Some(rtt) if rtt >= 5_000.0) {
            return BandwidthClass::Wan50ms;
        }
        match self.link_mbps {
            Some(mbps) if mbps <= 55.0 => BandwidthClass::Mbps10,
            Some(mbps) if mbps <= 550.0 => BandwidthClass::Mbps100,
            _ => BandwidthClass::Gbps1,
        }
    }
}

/// A source of platform resource information.
pub trait ResourceProbe {
    /// Queries the platform.
    ///
    /// # Errors
    ///
    /// Returns a message when the underlying source cannot be read or
    /// parsed.
    fn probe(&self) -> Result<ProbedResources, String>;
}

/// Probes the local Linux host through `/proc/cpuinfo`.
#[derive(Debug, Clone, Default)]
pub struct LinuxProcProbe {
    /// Override of the cpuinfo path (tests use a fixture).
    pub cpuinfo_path: Option<std::path::PathBuf>,
}

impl LinuxProcProbe {
    /// Probes the standard `/proc/cpuinfo` location.
    pub fn new() -> Self {
        LinuxProcProbe::default()
    }

    /// Parses cpuinfo text (exposed for testing).
    pub fn parse(cpuinfo: &str) -> Result<ProbedResources, String> {
        let mut cpu_mhz = None;
        let mut cpus = 0u32;
        let mut model = None;
        for line in cpuinfo.lines() {
            let Some((key, value)) = line.split_once(':') else {
                continue;
            };
            let key = key.trim();
            let value = value.trim();
            match key {
                "processor" => cpus += 1,
                "cpu MHz" if cpu_mhz.is_none() => {
                    cpu_mhz = value.parse::<f64>().ok();
                }
                "model name" if model.is_none() => {
                    model = Some(value.to_owned());
                }
                _ => {}
            }
        }
        let cpu_mhz = cpu_mhz.ok_or_else(|| "no `cpu MHz` line in cpuinfo".to_owned())?;
        if cpus == 0 {
            return Err("no processors listed in cpuinfo".to_owned());
        }
        Ok(ProbedResources {
            cpu_mhz,
            cpus,
            model,
            link_mbps: None,
            rtt_us: None,
            same_host: false,
        })
    }
}

impl ResourceProbe for LinuxProcProbe {
    fn probe(&self) -> Result<ProbedResources, String> {
        let path = self
            .cpuinfo_path
            .clone()
            .unwrap_or_else(|| "/proc/cpuinfo".into());
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&text)
    }
}

/// A simulated cloud provisioning answer: yields the resources of a chosen
/// [`Environment`].
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedCloud {
    /// The environment the cloud provisioned.
    pub environment: Environment,
}

impl SimulatedCloud {
    /// Creates a cloud that provisions `environment`.
    pub fn new(environment: Environment) -> Self {
        SimulatedCloud { environment }
    }
}

impl ResourceProbe for SimulatedCloud {
    fn probe(&self) -> Result<ProbedResources, String> {
        let cpu_mhz = crate::features::machine_mhz(self.environment.machine);
        let (cpus, model) = match self.environment.machine {
            MachineClass::Pc850 => (1, "Pentium III (Coppermine)"),
            MachineClass::Pc3000 => (2, "Intel(R) Xeon(TM) CPU 3.00GHz"),
        };
        Ok(ProbedResources {
            cpu_mhz,
            cpus,
            model: Some(model.to_owned()),
            link_mbps: Some(self.environment.bandwidth.mbps()),
            rtt_us: Some(self.environment.rtt_ms() * 1_000.0),
            same_host: self.environment.same_host,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adamant_dds::DdsImplementation;

    const FIXTURE: &str = "\
processor\t: 0
vendor_id\t: GenuineIntel
model name\t: Intel(R) Xeon(TM) CPU 3.00GHz
cpu MHz\t\t: 2992.689
cache size\t: 2048 KB

processor\t: 1
vendor_id\t: GenuineIntel
model name\t: Intel(R) Xeon(TM) CPU 3.00GHz
cpu MHz\t\t: 2992.689
cache size\t: 2048 KB
";

    #[test]
    fn parses_cpuinfo_fixture() {
        let r = LinuxProcProbe::parse(FIXTURE).unwrap();
        assert_eq!(r.cpus, 2);
        assert!((r.cpu_mhz - 2992.689).abs() < 1e-9);
        assert_eq!(r.model.as_deref(), Some("Intel(R) Xeon(TM) CPU 3.00GHz"));
        assert_eq!(r.machine_class(), MachineClass::Pc3000);
    }

    #[test]
    fn rejects_garbage() {
        assert!(LinuxProcProbe::parse("hello world").is_err());
        assert!(LinuxProcProbe::parse("processor : 0\n").is_err());
    }

    #[test]
    fn classifies_slow_cpu_as_pc850() {
        let r = ProbedResources {
            cpu_mhz: 851.0,
            cpus: 1,
            model: None,
            link_mbps: None,
            rtt_us: None,
            same_host: false,
        };
        assert_eq!(r.machine_class(), MachineClass::Pc850);
    }

    #[test]
    fn bandwidth_classification() {
        let mk = |mbps: Option<f64>, rtt_us: Option<f64>| ProbedResources {
            cpu_mhz: 3000.0,
            cpus: 1,
            model: None,
            link_mbps: mbps,
            rtt_us,
            same_host: false,
        };
        assert_eq!(
            mk(Some(10.0), None).bandwidth_class(),
            BandwidthClass::Mbps10
        );
        assert_eq!(
            mk(Some(100.0), None).bandwidth_class(),
            BandwidthClass::Mbps100
        );
        assert_eq!(
            mk(Some(1000.0), None).bandwidth_class(),
            BandwidthClass::Gbps1
        );
        assert_eq!(mk(None, None).bandwidth_class(), BandwidthClass::Gbps1);
        // A 100 Mb/s NIC with a long path RTT is the WAN class: the RTT
        // axis disambiguates what link speed alone cannot.
        assert_eq!(
            mk(Some(100.0), Some(50_000.0)).bandwidth_class(),
            BandwidthClass::Wan50ms
        );
        assert_eq!(
            mk(Some(100.0), Some(300.0)).bandwidth_class(),
            BandwidthClass::Mbps100
        );
    }

    #[test]
    fn simulated_cloud_round_trips_environment() {
        let env = Environment::new(
            MachineClass::Pc850,
            BandwidthClass::Mbps100,
            DdsImplementation::OpenSplice,
            3,
        );
        let probed = SimulatedCloud::new(env).probe().unwrap();
        assert_eq!(probed.machine_class(), MachineClass::Pc850);
        assert_eq!(probed.bandwidth_class(), BandwidthClass::Mbps100);
    }

    #[test]
    fn simulated_cloud_round_trips_v2_axes() {
        let wan = Environment::new(
            MachineClass::Pc3000,
            BandwidthClass::Wan50ms,
            DdsImplementation::OpenSplice,
            3,
        );
        let probed = SimulatedCloud::new(wan).probe().unwrap();
        assert_eq!(probed.bandwidth_class(), BandwidthClass::Wan50ms);
        assert!(!probed.same_host);

        let shm = Environment::colocated(MachineClass::Pc3000, DdsImplementation::OpenSplice);
        let probed = SimulatedCloud::new(shm).probe().unwrap();
        assert!(probed.same_host);
        assert_ne!(probed.bandwidth_class(), BandwidthClass::Wan50ms);
    }

    #[test]
    fn real_proc_cpuinfo_parses_on_linux() {
        if std::path::Path::new("/proc/cpuinfo").exists() {
            let r = LinuxProcProbe::new().probe().unwrap();
            assert!(r.cpus >= 1);
            assert!(r.cpu_mhz > 0.0);
        }
    }
}

//! Protocol selection: the ANN-backed selector (ADAMANT's knowledge base)
//! and a nearest-neighbour lookup-table baseline for comparison.

use std::time::{Duration, Instant};

use adamant_ann::{
    evaluate, train, Activation, BatchScratch, DecisionTree, DecisionTreeParams, Evaluation,
    MinMaxScaler, NeuralNetwork, TrainOutcome, TrainParams,
};
use adamant_metrics::MetricKind;
use adamant_transport::ProtocolKind;

use crate::dataset::LabeledDataset;
use crate::env::{AppParams, Environment};
use crate::features::{candidate_protocols, is_feasible, raw_features, FEATURE_DIM};

/// Architecture and training configuration for the selector's ANN.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectorConfig {
    /// Hidden-node count (the paper's best network uses 24).
    pub hidden_nodes: usize,
    /// Training parameters (stopping error 1e-4 in the paper).
    pub train: TrainParams,
    /// Weight-initialisation seed.
    pub seed: u64,
}

impl Default for SelectorConfig {
    fn default() -> Self {
        SelectorConfig {
            hidden_nodes: 24,
            train: TrainParams::default(),
            seed: 1,
        }
    }
}

/// The outcome of one protocol selection.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// The protocol the selector chose.
    pub protocol: ProtocolKind,
    /// The raw per-class output scores.
    pub scores: Vec<f64>,
    /// Wall-clock time of the query on this host.
    pub elapsed: Duration,
}

/// One endpoint's selection query — the raw inputs [`ProtocolSelector::select`]
/// takes, packaged as plain data so a whole fleet of endpoints can be
/// encoded and swept through the network in a single batched pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureRow {
    /// The environment configuration.
    pub env: Environment,
    /// The application parameters.
    pub app: AppParams,
    /// The composite metric of interest.
    pub metric: MetricKind,
}

impl FeatureRow {
    /// Packages one selection query.
    pub fn new(env: Environment, app: AppParams, metric: MetricKind) -> Self {
        FeatureRow { env, app, metric }
    }
}

/// One batched selection result: the winning candidate (feasibility-masked
/// for that row's environment) and its raw network score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Choice {
    /// The protocol the selector chose.
    pub protocol: ProtocolKind,
    /// Index of the protocol among [`candidate_protocols`].
    pub class: usize,
    /// The winning raw output score.
    pub score: f64,
}

impl Default for Choice {
    fn default() -> Self {
        Choice {
            protocol: candidate_protocols()[0],
            class: 0,
            score: 0.0,
        }
    }
}

/// ADAMANT's trained knowledge base: encodes a configuration, runs the
/// ANN, and returns the winning transport protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolSelector {
    network: NeuralNetwork,
    scaler: MinMaxScaler,
}

impl ProtocolSelector {
    /// Trains a selector on `dataset` with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn train_from(dataset: &LabeledDataset, config: &SelectorConfig) -> (Self, TrainOutcome) {
        let (data, scaler) = dataset.to_training_data();
        let mut network = NeuralNetwork::new(
            &[
                FEATURE_DIM,
                config.hidden_nodes,
                candidate_protocols().len(),
            ],
            Activation::fann_default(),
            config.seed,
        );
        let outcome = train(&mut network, &data, &config.train);
        (ProtocolSelector { network, scaler }, outcome)
    }

    /// Wraps an externally trained network and its feature scaler.
    ///
    /// # Panics
    ///
    /// Panics if the network shape does not match the feature/class
    /// dimensions.
    pub fn from_parts(network: NeuralNetwork, scaler: MinMaxScaler) -> Self {
        assert_eq!(network.input_size(), FEATURE_DIM, "input size mismatch");
        assert_eq!(
            network.output_size(),
            candidate_protocols().len(),
            "output size mismatch"
        );
        assert_eq!(scaler.dim(), FEATURE_DIM, "scaler dimension mismatch");
        ProtocolSelector { network, scaler }
    }

    /// The underlying network (e.g. for timing models).
    pub fn network(&self) -> &NeuralNetwork {
        &self.network
    }

    /// Selects the transport protocol for a configuration, measuring the
    /// query's wall-clock time on this host.
    ///
    /// The scalar path is [`select_batch`](Self::select_batch) with a
    /// single row: both run the same encode → scale → forward → masked
    /// argmax kernel.
    pub fn select(&self, env: &Environment, app: &AppParams, metric: MetricKind) -> Selection {
        let query = [FeatureRow::new(*env, *app, metric)];
        let start = Instant::now();
        let mut flat = Vec::with_capacity(FEATURE_DIM);
        let mut scratch = BatchScratch::new();
        let mut scores = Vec::new();
        self.score_batch(&query, &mut flat, &mut scratch, &mut scores);
        let class = Self::feasible_argmax(&scores, env);
        let elapsed = start.elapsed();
        Selection {
            protocol: candidate_protocols()[class],
            scores,
            elapsed,
        }
    }

    /// Selects for a whole fleet of endpoints in one batched forward pass:
    /// `out[i]` receives the (feasibility-masked) choice for `envs[i]`.
    /// Identical decisions to per-row [`select`](Self::select) calls, but
    /// the per-query dispatch, scaling, and buffer churn are amortized
    /// across the batch — after the internal buffers warm up, the sweep is
    /// one pass over flat contiguous slices per layer.
    ///
    /// # Panics
    ///
    /// Panics if `envs.len() != out.len()`.
    pub fn select_batch(&self, envs: &[FeatureRow], out: &mut [Choice]) {
        assert_eq!(
            envs.len(),
            out.len(),
            "output slice must match the query batch"
        );
        if envs.is_empty() {
            return;
        }
        let rows = envs.len();
        let mut cols = Vec::with_capacity(rows * FEATURE_DIM);
        let mut scratch = BatchScratch::new();
        let mut scores = Vec::new();
        self.score_batch(envs, &mut cols, &mut scratch, &mut scores);
        let classes = candidate_protocols().len();
        let mut row_scores = Vec::with_capacity(classes);
        for (r, (query, choice)) in envs.iter().zip(out.iter_mut()).enumerate() {
            row_scores.clear();
            row_scores.extend((0..classes).map(|c| scores[c * rows + r]));
            let class = Self::feasible_argmax(&row_scores, &query.env);
            *choice = Choice {
                protocol: candidate_protocols()[class],
                class,
                score: row_scores[class],
            };
        }
    }

    /// Encodes, scales, and forward-passes a batch of queries into
    /// column-major lanes: `scores` becomes the flat `classes ×
    /// envs.len()` matrix with class `c`'s score for query `r` at
    /// `scores[c * envs.len() + r]`. Feature lanes are written directly
    /// (no row-major intermediate, no transposes), and all buffers are
    /// caller-provided so repeated sweeps allocate nothing once warm.
    pub(crate) fn score_batch(
        &self,
        envs: &[FeatureRow],
        cols: &mut Vec<f64>,
        scratch: &mut BatchScratch,
        scores: &mut Vec<f64>,
    ) {
        let rows = envs.len();
        cols.clear();
        cols.resize(rows * FEATURE_DIM, 0.0);
        for (r, query) in envs.iter().enumerate() {
            let raw = raw_features(&query.env, &query.app, query.metric);
            for (i, &x) in raw.iter().enumerate() {
                cols[i * rows + r] = self.scaler.scale_dim(i, x);
            }
        }
        self.network
            .run_batch_cols_into(cols, rows, scratch, scores);
    }

    /// Argmax over the classes that can actually be deployed in this
    /// environment: the network may score ShmCast highly near the
    /// same-host boundary, but a cross-host deployment cannot use it.
    fn feasible_argmax(scores: &[f64], env: &Environment) -> usize {
        scores
            .iter()
            .enumerate()
            .filter(|&(i, _)| is_feasible(candidate_protocols()[i], env))
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite score"))
            .map(|(i, _)| i)
            .expect("at least one feasible candidate")
    }

    /// Training-set recall: the paper's "accuracy for environments known
    /// *a priori*".
    pub fn evaluate_on(&self, dataset: &LabeledDataset) -> Evaluation {
        let raw = dataset.raw_inputs();
        let inputs = self.scaler.transform(&raw);
        let targets: Vec<Vec<f64>> = dataset
            .rows
            .iter()
            .map(|r| adamant_ann::one_hot(r.best_class, candidate_protocols().len()))
            .collect();
        let data = adamant_ann::TrainingData::new(inputs, targets);
        evaluate(&self.network, &data)
    }
}

adamant_json::impl_json_struct!(ProtocolSelector { network, scaler });

/// The manual alternative to the ANN: a lookup table of every measured
/// configuration, answered by nearest neighbour in scaled feature space.
///
/// Exact for environments known *a priori*, but its query time grows with
/// the table (versus the ANN's constant-time pass), and its handling of
/// unseen environments has no notion of generalisation beyond distance.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSelector {
    scaler: MinMaxScaler,
    entries: Vec<(Vec<f64>, usize)>,
}

impl TableSelector {
    /// Builds the table from a labelled dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn from_dataset(dataset: &LabeledDataset) -> Self {
        assert!(!dataset.is_empty(), "cannot build a table from no data");
        let raw = dataset.raw_inputs();
        let scaler = MinMaxScaler::fit(&raw);
        let entries = raw
            .iter()
            .zip(&dataset.rows)
            .map(|(r, row)| (scaler.transform_row(r), row.best_class))
            .collect();
        TableSelector { scaler, entries }
    }

    /// Number of table entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Selects by nearest neighbour, measuring wall-clock time.
    pub fn select(&self, env: &Environment, app: &AppParams, metric: MetricKind) -> Selection {
        let raw = raw_features(env, app, metric);
        let start = Instant::now();
        let query = self.scaler.transform_row(&raw);
        let mut best = (f64::INFINITY, 0usize);
        for (features, class) in &self.entries {
            if !is_feasible(candidate_protocols()[*class], env) {
                continue;
            }
            let dist: f64 = features
                .iter()
                .zip(&query)
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            if dist < best.0 {
                best = (dist, *class);
            }
        }
        let elapsed = start.elapsed();
        let mut scores = vec![0.0; candidate_protocols().len()];
        scores[best.1] = 1.0;
        Selection {
            protocol: candidate_protocols()[best.1],
            scores,
            elapsed,
        }
    }
}

/// A decision-tree alternative to the ANN (the paper's "other machine
/// learning techniques" future-work comparator). Training is deterministic
/// and querying is a bounded chain of comparisons.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeSelector {
    scaler: MinMaxScaler,
    tree: DecisionTree,
}

impl TreeSelector {
    /// Fits a tree to a labelled dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn from_dataset(dataset: &LabeledDataset, params: DecisionTreeParams) -> Self {
        assert!(!dataset.is_empty(), "cannot fit a tree to no data");
        let raw = dataset.raw_inputs();
        let scaler = MinMaxScaler::fit(&raw);
        let inputs = scaler.transform(&raw);
        let labels: Vec<usize> = dataset.rows.iter().map(|r| r.best_class).collect();
        let tree = DecisionTree::fit(&inputs, &labels, candidate_protocols().len(), params);
        TreeSelector { scaler, tree }
    }

    /// The underlying tree (for size/depth inspection).
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }

    /// Selects by tree traversal, measuring wall-clock time.
    pub fn select(&self, env: &Environment, app: &AppParams, metric: MetricKind) -> Selection {
        let raw = raw_features(env, app, metric);
        let start = Instant::now();
        let query = self.scaler.transform_row(&raw);
        let class = self.tree.predict(&query);
        let elapsed = start.elapsed();
        let mut scores = vec![0.0; candidate_protocols().len()];
        scores[class] = 1.0;
        Selection {
            protocol: candidate_protocols()[class],
            scores,
            elapsed,
        }
    }

    /// Training-set recall.
    pub fn evaluate_on(&self, dataset: &LabeledDataset) -> f64 {
        let inputs = self.scaler.transform(&dataset.raw_inputs());
        let labels: Vec<usize> = dataset.rows.iter().map(|r| r.best_class).collect();
        self.tree.accuracy(&inputs, &labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetRow;
    use crate::env::BandwidthClass;
    use adamant_dds::DdsImplementation;
    use adamant_netsim::MachineClass;

    /// A synthetic but learnable dataset over the widened v2 grid: on the
    /// LAN classes pc3000 prefers Ricochet R4C3 (class 4) and pc850
    /// prefers NAKcast 1 ms (class 3) — the paper's headline pattern —
    /// while the WAN rows prefer StreamCast (class 6) and the same-host
    /// rows ShmCast (class 7).
    fn synthetic_dataset() -> LabeledDataset {
        let mut rows = Vec::new();
        for machine in MachineClass::all() {
            for bandwidth in BandwidthClass::all() {
                for dds in DdsImplementation::all() {
                    for loss in 1..=5u8 {
                        for receivers in [3u32, 15] {
                            let env = Environment::new(machine, bandwidth, dds, loss);
                            let best_class = match machine {
                                MachineClass::Pc3000 => 4,
                                MachineClass::Pc850 => 3,
                            };
                            rows.push(DatasetRow {
                                env,
                                app: AppParams::new(receivers, 25),
                                metric: MetricKind::ReLate2,
                                best_class,
                                scores: vec![0.0; 8],
                            });
                        }
                    }
                }
            }
        }
        for machine in MachineClass::all() {
            for dds in DdsImplementation::all() {
                for receivers in [3u32, 15] {
                    for loss in 1..=5u8 {
                        rows.push(DatasetRow {
                            env: Environment::new(machine, BandwidthClass::Wan50ms, dds, loss),
                            app: AppParams::new(receivers, 25),
                            metric: MetricKind::ReLate2,
                            best_class: 6,
                            scores: vec![0.0; 8],
                        });
                    }
                    rows.push(DatasetRow {
                        env: Environment::colocated(machine, dds),
                        app: AppParams::new(receivers, 25),
                        metric: MetricKind::ReLate2,
                        best_class: 7,
                        scores: vec![0.0; 8],
                    });
                }
            }
        }
        LabeledDataset { rows }
    }

    #[test]
    fn trained_selector_recalls_training_set() {
        let ds = synthetic_dataset();
        let (selector, outcome) = ProtocolSelector::train_from(&ds, &SelectorConfig::default());
        assert!(
            outcome.reached_target || outcome.final_mse < 0.02,
            "training struggled: {outcome:?}"
        );
        let eval = selector.evaluate_on(&ds);
        assert!(eval.accuracy() > 0.98, "accuracy {}", eval.accuracy());
    }

    #[test]
    fn selection_matches_learned_pattern() {
        let ds = synthetic_dataset();
        let (selector, _) = ProtocolSelector::train_from(&ds, &SelectorConfig::default());
        let fast = Environment::new(
            MachineClass::Pc3000,
            BandwidthClass::Gbps1,
            DdsImplementation::OpenSplice,
            5,
        );
        let slow = Environment::new(
            MachineClass::Pc850,
            BandwidthClass::Mbps100,
            DdsImplementation::OpenSplice,
            5,
        );
        let app = AppParams::new(3, 25);
        assert_eq!(
            selector.select(&fast, &app, MetricKind::ReLate2).protocol,
            ProtocolKind::Ricochet { r: 4, c: 3 }
        );
        assert!(matches!(
            selector.select(&slow, &app, MetricKind::ReLate2).protocol,
            ProtocolKind::Nakcast { .. }
        ));
    }

    #[test]
    fn selector_learns_the_v2_axes() {
        let ds = synthetic_dataset();
        let (selector, _) = ProtocolSelector::train_from(&ds, &SelectorConfig::default());
        let app = AppParams::new(3, 25);
        let wan = Environment::new(
            MachineClass::Pc3000,
            BandwidthClass::Wan50ms,
            DdsImplementation::OpenSplice,
            3,
        );
        assert!(matches!(
            selector.select(&wan, &app, MetricKind::ReLate2).protocol,
            ProtocolKind::StreamCast { .. }
        ));
        let shm = Environment::colocated(MachineClass::Pc850, DdsImplementation::OpenDds);
        assert!(matches!(
            selector.select(&shm, &app, MetricKind::ReLate2).protocol,
            ProtocolKind::ShmCast { .. }
        ));
    }

    #[test]
    fn infeasible_classes_are_masked_at_selection_time() {
        // A table whose only entry says "ShmCast" must still refuse to
        // recommend it for a cross-host query — and an ANN query from
        // right outside the same-host boundary must land on a transport
        // the deployment can actually instantiate.
        let ds = LabeledDataset {
            rows: vec![DatasetRow {
                env: Environment::colocated(MachineClass::Pc3000, DdsImplementation::OpenDds),
                app: AppParams::new(3, 25),
                metric: MetricKind::ReLate2,
                best_class: 7,
                scores: vec![0.0; 8],
            }],
        };
        let table = TableSelector::from_dataset(&ds);
        let lan = Environment::new(
            MachineClass::Pc3000,
            BandwidthClass::Gbps1,
            DdsImplementation::OpenDds,
            1,
        );
        let app = AppParams::new(3, 25);
        let sel = table.select(&lan, &app, MetricKind::ReLate2);
        assert!(!matches!(sel.protocol, ProtocolKind::ShmCast { .. }));

        let (selector, _) =
            ProtocolSelector::train_from(&synthetic_dataset(), &SelectorConfig::default());
        let mut near = Environment::colocated(MachineClass::Pc3000, DdsImplementation::OpenDds);
        near.same_host = false;
        let sel = selector.select(&near, &app, MetricKind::ReLate2);
        assert!(
            !matches!(sel.protocol, ProtocolKind::ShmCast { .. }),
            "picked {} for a cross-host environment",
            sel.protocol
        );
    }

    #[test]
    fn selection_time_is_measured_and_small() {
        let ds = synthetic_dataset();
        let (selector, _) = ProtocolSelector::train_from(&ds, &SelectorConfig::default());
        let env = ds.rows[0].env;
        let app = ds.rows[0].app;
        // Warm up, then measure.
        let _ = selector.select(&env, &app, MetricKind::ReLate2);
        let sel = selector.select(&env, &app, MetricKind::ReLate2);
        assert!(sel.elapsed < Duration::from_millis(1), "{:?}", sel.elapsed);
        assert_eq!(sel.scores.len(), 8);
    }

    #[test]
    fn table_selector_is_exact_on_known_configurations() {
        let ds = synthetic_dataset();
        let table = TableSelector::from_dataset(&ds);
        assert_eq!(table.len(), ds.len());
        for row in &ds.rows {
            let sel = table.select(&row.env, &row.app, row.metric);
            assert_eq!(sel.protocol, row.best_protocol());
        }
    }

    #[test]
    fn tree_selector_recalls_and_generalises_the_pattern() {
        let ds = synthetic_dataset();
        let tree = TreeSelector::from_dataset(&ds, adamant_ann::DecisionTreeParams::default());
        assert!(
            tree.evaluate_on(&ds) > 0.99,
            "recall {}",
            tree.evaluate_on(&ds)
        );
        let fast = Environment::new(
            MachineClass::Pc3000,
            BandwidthClass::Gbps1,
            DdsImplementation::OpenSplice,
            5,
        );
        let sel = tree.select(&fast, &AppParams::new(3, 25), MetricKind::ReLate2);
        assert_eq!(sel.protocol, ProtocolKind::Ricochet { r: 4, c: 3 });
        assert!(tree.tree().depth() >= 1);
    }

    #[test]
    fn batched_selection_matches_scalar_select() {
        let ds = synthetic_dataset();
        let (selector, _) = ProtocolSelector::train_from(&ds, &SelectorConfig::default());
        let queries: Vec<FeatureRow> = ds
            .rows
            .iter()
            .map(|r| FeatureRow::new(r.env, r.app, r.metric))
            .collect();
        let mut choices = vec![Choice::default(); queries.len()];
        selector.select_batch(&queries, &mut choices);
        for (query, choice) in queries.iter().zip(&choices) {
            let scalar = selector.select(&query.env, &query.app, query.metric);
            assert_eq!(choice.protocol, scalar.protocol);
            assert_eq!(choice.score, scalar.scores[choice.class]);
            assert!(crate::features::is_feasible(choice.protocol, &query.env));
        }
    }

    #[test]
    #[should_panic(expected = "output slice")]
    fn batch_rejects_mismatched_output() {
        let ds = synthetic_dataset();
        let (selector, _) = ProtocolSelector::train_from(&ds, &SelectorConfig::default());
        let queries = [FeatureRow::new(
            ds.rows[0].env,
            ds.rows[0].app,
            ds.rows[0].metric,
        )];
        let mut out: [Choice; 2] = [Choice::default(), Choice::default()];
        selector.select_batch(&queries, &mut out);
    }

    #[test]
    fn from_parts_validates_shape() {
        let ds = synthetic_dataset();
        let (data, scaler) = ds.to_training_data();
        let _ = data;
        let net = NeuralNetwork::new(&[FEATURE_DIM, 4, 8], Activation::fann_default(), 1);
        let selector = ProtocolSelector::from_parts(net, scaler);
        let _ = selector.network();
    }

    #[test]
    #[should_panic(expected = "output size mismatch")]
    fn from_parts_rejects_wrong_outputs() {
        let ds = synthetic_dataset();
        let (_, scaler) = ds.to_training_data();
        let net = NeuralNetwork::new(&[FEATURE_DIM, 4, 2], Activation::fann_default(), 1);
        ProtocolSelector::from_parts(net, scaler);
    }
}

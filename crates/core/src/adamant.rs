//! The ADAMANT facade: the full autonomic control flow of the paper's
//! Figure 3 — probe the environment, consult the machine-learning
//! knowledge base, and configure the DDS middleware's transport.

use adamant_dds::DdsImplementation;
use adamant_metrics::MetricKind;
use adamant_transport::TransportConfig;

use crate::env::{AppParams, Environment};
use crate::probe::ResourceProbe;
use crate::selector::{ProtocolSelector, Selection};

/// A completed autonomic configuration decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Configuration {
    /// The environment ADAMANT determined it is running in.
    pub environment: Environment,
    /// The selector's decision (protocol, scores, query time).
    pub selection: Selection,
}

impl Configuration {
    /// The transport configuration to hand to the DDS layer.
    pub fn transport(&self) -> TransportConfig {
        TransportConfig::new(self.selection.protocol)
    }
}

/// The ADAMANT platform: ties a trained [`ProtocolSelector`] to a resource
/// probe, mirroring the paper's control flow:
///
/// 1. Query the environment for hardware and networking resources
///    (`/proc/cpuinfo`, `ethtool` — or the simulated cloud).
/// 2. Combine with application properties (receivers, sending rate) and
///    the QoS metric of interest.
/// 3. Ask the ANN for the best transport protocol.
/// 4. Configure the DDS middleware through ANT with that protocol.
///
/// # Examples
///
/// See `examples/quickstart.rs` for the end-to-end flow.
#[derive(Debug)]
pub struct Adamant {
    selector: ProtocolSelector,
}

impl Adamant {
    /// Creates the platform around a trained selector.
    pub fn new(selector: ProtocolSelector) -> Self {
        Adamant { selector }
    }

    /// The underlying selector.
    pub fn selector(&self) -> &ProtocolSelector {
        &self.selector
    }

    /// Runs the autonomic configuration flow.
    ///
    /// `dds` and `loss_percent` come from the deployment's service
    /// agreement (the paper: DDS availability and network loss are part of
    /// what the cloud offering specifies), while machine class and
    /// bandwidth are probed.
    ///
    /// # Errors
    ///
    /// Returns the probe's error message when the platform cannot be
    /// inspected.
    pub fn configure(
        &self,
        probe: &dyn ResourceProbe,
        dds: DdsImplementation,
        loss_percent: u8,
        app: AppParams,
        metric: MetricKind,
    ) -> Result<Configuration, String> {
        let probed = probe.probe()?;
        let environment = if probed.same_host {
            // Every peer resolves locally: the co-located descriptor
            // (lossless, microsecond-RTT) replaces the service
            // agreement's network axes, which describe a path that is
            // never traversed.
            Environment::colocated(probed.machine_class(), dds)
        } else {
            Environment::new(
                probed.machine_class(),
                probed.bandwidth_class(),
                dds,
                loss_percent,
            )
        };
        let selection = self.selector.select(&environment, &app, metric);
        Ok(Configuration {
            environment,
            selection,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetRow, LabeledDataset};
    use crate::env::BandwidthClass;
    use crate::probe::SimulatedCloud;
    use crate::selector::SelectorConfig;
    use adamant_netsim::MachineClass;
    use adamant_transport::ProtocolKind;

    fn trained_platform() -> Adamant {
        // pc3000 → class 4 (Ricochet R4C3), pc850 → class 3 (NAKcast
        // 1 ms) on the LAN classes; WAN → StreamCast (6); same-host →
        // ShmCast (7).
        let mut rows = Vec::new();
        for machine in MachineClass::all() {
            for bandwidth in BandwidthClass::all() {
                for loss in 1..=5u8 {
                    rows.push(DatasetRow {
                        env: Environment::new(
                            machine,
                            bandwidth,
                            DdsImplementation::OpenSplice,
                            loss,
                        ),
                        app: AppParams::new(3, 25),
                        metric: MetricKind::ReLate2,
                        best_class: if machine == MachineClass::Pc3000 {
                            4
                        } else {
                            3
                        },
                        scores: vec![0.0; 8],
                    });
                }
            }
            for loss in 1..=5u8 {
                rows.push(DatasetRow {
                    env: Environment::new(
                        machine,
                        BandwidthClass::Wan50ms,
                        DdsImplementation::OpenSplice,
                        loss,
                    ),
                    app: AppParams::new(3, 25),
                    metric: MetricKind::ReLate2,
                    best_class: 6,
                    scores: vec![0.0; 8],
                });
            }
            rows.push(DatasetRow {
                env: Environment::colocated(machine, DdsImplementation::OpenSplice),
                app: AppParams::new(3, 25),
                metric: MetricKind::ReLate2,
                best_class: 7,
                scores: vec![0.0; 8],
            });
        }
        let ds = LabeledDataset { rows };
        let (selector, _) = ProtocolSelector::train_from(&ds, &SelectorConfig::default());
        Adamant::new(selector)
    }

    #[test]
    fn end_to_end_probe_to_transport() {
        let adamant = trained_platform();
        let cloud = SimulatedCloud::new(Environment::new(
            MachineClass::Pc3000,
            BandwidthClass::Gbps1,
            DdsImplementation::OpenSplice,
            5,
        ));
        let config = adamant
            .configure(
                &cloud,
                DdsImplementation::OpenSplice,
                5,
                AppParams::new(3, 25),
                MetricKind::ReLate2,
            )
            .unwrap();
        assert_eq!(config.environment.machine, MachineClass::Pc3000);
        assert_eq!(config.environment.bandwidth, BandwidthClass::Gbps1);
        assert_eq!(
            config.transport().kind,
            ProtocolKind::Ricochet { r: 4, c: 3 }
        );
    }

    #[test]
    fn different_cloud_different_decision() {
        let adamant = trained_platform();
        let slow_cloud = SimulatedCloud::new(Environment::new(
            MachineClass::Pc850,
            BandwidthClass::Mbps100,
            DdsImplementation::OpenSplice,
            5,
        ));
        let config = adamant
            .configure(
                &slow_cloud,
                DdsImplementation::OpenSplice,
                5,
                AppParams::new(3, 25),
                MetricKind::ReLate2,
            )
            .unwrap();
        assert!(matches!(
            config.transport().kind,
            ProtocolKind::Nakcast { .. }
        ));
    }

    #[test]
    fn wan_cloud_selects_the_stream_core() {
        let adamant = trained_platform();
        let wan_cloud = SimulatedCloud::new(Environment::new(
            MachineClass::Pc3000,
            BandwidthClass::Wan50ms,
            DdsImplementation::OpenSplice,
            3,
        ));
        let config = adamant
            .configure(
                &wan_cloud,
                DdsImplementation::OpenSplice,
                3,
                AppParams::new(3, 25),
                MetricKind::ReLate2,
            )
            .unwrap();
        assert_eq!(config.environment.bandwidth, BandwidthClass::Wan50ms);
        assert!(matches!(
            config.transport().kind,
            ProtocolKind::StreamCast { .. }
        ));
    }

    #[test]
    fn colocated_cloud_selects_shared_memory() {
        let adamant = trained_platform();
        let shm_env = Environment::colocated(MachineClass::Pc3000, DdsImplementation::OpenSplice);
        let cloud = SimulatedCloud::new(shm_env);
        let config = adamant
            .configure(
                &cloud,
                DdsImplementation::OpenSplice,
                // The service agreement's loss axis is irrelevant when
                // the probe finds every peer on this host.
                5,
                AppParams::new(3, 25),
                MetricKind::ReLate2,
            )
            .unwrap();
        assert!(config.environment.same_host);
        assert!(matches!(
            config.transport().kind,
            ProtocolKind::ShmCast { .. }
        ));
    }

    #[test]
    fn probe_errors_propagate() {
        struct Broken;
        impl ResourceProbe for Broken {
            fn probe(&self) -> Result<crate::probe::ProbedResources, String> {
                Err("no hardware".into())
            }
        }
        let adamant = trained_platform();
        let err = adamant
            .configure(
                &Broken,
                DdsImplementation::OpenDds,
                1,
                AppParams::new(3, 10),
                MetricKind::ReLate2,
            )
            .unwrap_err();
        assert_eq!(err, "no hardware");
    }
}

//! Labelled datasets: the bridge between experiment sweeps and ANN
//! training. Each row is one (environment, application, metric)
//! configuration labelled with the transport protocol that scored best.

use adamant_metrics::MetricKind;
use adamant_transport::ProtocolKind;

use adamant_ann::{one_hot, MinMaxScaler, TrainingData};

use crate::env::{AppParams, Environment};
use crate::features::{candidate_protocols, is_feasible, raw_features};

/// Picks the best (lowest) score index with a stability margin: when a
/// lower-indexed candidate scores within `margin` (fractionally) of the
/// minimum, the lower index wins. Candidates whose measured scores are
/// statistically indistinguishable (e.g. Ricochet R4 vs R8 at low rates,
/// where the window parameter cannot engage) would otherwise be labelled
/// by run-to-run noise, which puts an artificial ceiling on classifier
/// accuracy.
///
/// # Panics
///
/// Panics if `scores` is empty or contains NaN.
pub fn best_class_with_margin(scores: &[f64], margin: f64) -> usize {
    assert!(!scores.is_empty(), "no scores to compare");
    let best = scores
        .iter()
        .copied()
        .min_by(|a, b| a.partial_cmp(b).expect("NaN score"))
        .expect("nonempty");
    scores
        .iter()
        .position(|&s| s <= best * (1.0 + margin))
        .expect("minimum exists")
}

/// The default labelling margin (3%): differences smaller than typical
/// repetition-to-repetition variation resolve to the first candidate.
pub const LABEL_MARGIN: f64 = 0.03;

/// One labelled example.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetRow {
    /// The environment configuration.
    pub env: Environment,
    /// The application parameters.
    pub app: AppParams,
    /// The composite metric of interest.
    pub metric: MetricKind,
    /// Index (into [`candidate_protocols`]) of the best protocol.
    pub best_class: usize,
    /// The metric score each candidate achieved (averaged over
    /// repetitions), aligned with [`candidate_protocols`].
    pub scores: Vec<f64>,
}

adamant_json::impl_json_struct!(DatasetRow {
    env,
    app,
    metric,
    best_class,
    scores,
});

impl DatasetRow {
    /// The winning protocol.
    pub fn best_protocol(&self) -> ProtocolKind {
        candidate_protocols()[self.best_class]
    }
}

/// A labelled dataset (the paper's 394 training inputs).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LabeledDataset {
    /// The examples.
    pub rows: Vec<DatasetRow>,
}

adamant_json::impl_json_struct!(LabeledDataset { rows });

impl LabeledDataset {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Raw (unscaled) feature matrix.
    pub fn raw_inputs(&self) -> Vec<Vec<f64>> {
        self.rows
            .iter()
            .map(|r| raw_features(&r.env, &r.app, r.metric).to_vec())
            .collect()
    }

    /// Converts to scaled ANN training data plus the fitted scaler
    /// (needed to encode queries consistently at selection time).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn to_training_data(&self) -> (TrainingData, MinMaxScaler) {
        assert!(!self.is_empty(), "cannot train on an empty dataset");
        let raw = self.raw_inputs();
        let scaler = MinMaxScaler::fit(&raw);
        let classes = candidate_protocols().len();
        let targets: Vec<Vec<f64>> = self
            .rows
            .iter()
            .map(|r| one_hot(r.best_class, classes))
            .collect();
        (TrainingData::new(scaler.transform(&raw), targets), scaler)
    }

    /// Measures and labels a dataset serially: for every configuration,
    /// runs each candidate protocol `repetitions` times with `samples`
    /// samples and records the winner under each paper metric.
    ///
    /// This is the library-level (single-threaded) path used by examples;
    /// the `adamant-experiments` crate provides the parallel sweep that
    /// builds the full 394-input set.
    pub fn measure(
        configs: &[(Environment, AppParams)],
        samples: u64,
        repetitions: u32,
    ) -> LabeledDataset {
        Self::measure_with_metrics(configs, &MetricKind::paper_metrics(), samples, repetitions)
    }

    /// [`measure`](Self::measure) over an explicit metric set — e.g. the
    /// full extended family when the WAN axes make the bandwidth-weighted
    /// metrics decisive. Each candidate still runs only once per
    /// configuration; every metric is scored from the same reports.
    pub fn measure_with_metrics(
        configs: &[(Environment, AppParams)],
        metrics: &[MetricKind],
        samples: u64,
        repetitions: u32,
    ) -> LabeledDataset {
        use crate::runner::Scenario;
        use adamant_transport::TransportConfig;

        let candidates = candidate_protocols();
        let mut rows = Vec::with_capacity(configs.len() * 2);
        for (i, &(env, app)) in configs.iter().enumerate() {
            let scenario =
                Scenario::paper(env, app, 0x5EED ^ (i as u64) << 8).with_samples(samples);
            // Candidates the deployment cannot instantiate here (e.g.
            // ShmCast across hosts) are not measured; an infinite score
            // keeps the vector aligned with `candidate_protocols()`
            // while guaranteeing they never become the label.
            let per_candidate: Vec<Option<Vec<adamant_metrics::QosReport>>> = candidates
                .iter()
                .map(|&kind| {
                    is_feasible(kind, &env)
                        .then(|| scenario.run_repeated(TransportConfig::new(kind), repetitions))
                })
                .collect();
            for &metric in metrics {
                let scores: Vec<f64> = per_candidate
                    .iter()
                    .map(|reports| match reports {
                        Some(reports) => {
                            reports.iter().map(|r| metric.score(r)).sum::<f64>()
                                / reports.len() as f64
                        }
                        None => f64::INFINITY,
                    })
                    .collect();
                let best_class = best_class_with_margin(&scores, LABEL_MARGIN);
                rows.push(DatasetRow {
                    env,
                    app,
                    metric,
                    best_class,
                    scores,
                });
            }
        }
        LabeledDataset { rows }
    }

    /// How often each class is the winner (diagnostic for dataset balance).
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; candidate_protocols().len()];
        for row in &self.rows {
            hist[row.best_class] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::BandwidthClass;
    use adamant_dds::DdsImplementation;
    use adamant_netsim::MachineClass;

    fn row(loss: u8, best_class: usize) -> DatasetRow {
        DatasetRow {
            env: Environment::new(
                MachineClass::Pc3000,
                BandwidthClass::Gbps1,
                DdsImplementation::OpenDds,
                loss,
            ),
            app: AppParams::new(3, 10),
            metric: MetricKind::ReLate2,
            best_class,
            scores: vec![1.0; 8],
        }
    }

    #[test]
    fn converts_to_training_data() {
        let ds = LabeledDataset {
            rows: vec![row(1, 0), row(2, 4), row(3, 5)],
        };
        let (data, scaler) = ds.to_training_data();
        assert_eq!(data.len(), 3);
        assert_eq!(data.input_dim(), crate::features::FEATURE_DIM);
        assert_eq!(data.target_dim(), 8);
        assert_eq!(scaler.dim(), crate::features::FEATURE_DIM);
        // Scaled features live in [0, 1].
        for rowv in data.inputs() {
            assert!(rowv.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
        // Targets are one-hot.
        assert_eq!(data.targets()[1][4], 1.0);
        assert_eq!(data.targets()[1].iter().sum::<f64>(), 1.0);
    }

    #[test]
    fn histogram_counts_winners() {
        let ds = LabeledDataset {
            rows: vec![row(1, 0), row(2, 0), row(3, 5)],
        };
        assert_eq!(ds.class_histogram(), vec![2, 0, 0, 0, 0, 1, 0, 0]);
        assert_eq!(ds.rows[2].best_protocol(), candidate_protocols()[5]);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_cannot_train() {
        LabeledDataset::default().to_training_data();
    }

    #[test]
    fn json_round_trip() {
        let ds = LabeledDataset {
            rows: vec![row(1, 2)],
        };
        let json = adamant_json::to_string(&ds);
        let back: LabeledDataset = adamant_json::from_str(&json).unwrap();
        assert_eq!(ds, back);
    }
}

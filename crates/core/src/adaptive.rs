//! Runtime adaptation: the paper's concluding-remarks extension.
//!
//! The paper's evaluation configures the middleware *at startup*; its
//! lessons-learned section motivates using the same fast, predictable ANN
//! guidance to re-configure a *running* system when the monitored
//! environment changes ("turbulent environments"). This module implements
//! that loop: an [`AdaptiveController`] holds the trained selector and the
//! current transport, receives environment observations, and decides —
//! with hysteresis — whether to keep or switch the transport; an
//! [`AdaptiveTimeline`] replays a sequence of environment phases through a
//! controller and measures the QoS of each phase under the adapted
//! configuration.

use adamant_metrics::{MetricKind, QosReport};
use adamant_transport::{ProtocolKind, TransportConfig};

use crate::env::{AppParams, Environment};
use crate::runner::Scenario;
use crate::selector::{ProtocolSelector, Selection};

/// What the controller decided on one observation.
#[derive(Debug, Clone, PartialEq)]
pub enum AdaptationDecision {
    /// First observation: adopt the selected protocol.
    Configure {
        /// The protocol adopted.
        to: ProtocolKind,
        /// The selector's full answer (scores, query time).
        selection: Selection,
    },
    /// The selected protocol equals the current one: no change.
    Keep {
        /// The protocol kept.
        current: ProtocolKind,
        /// The selector's answer.
        selection: Selection,
    },
    /// The environment moved enough to change the answer: reconfigure.
    Switch {
        /// The protocol being replaced.
        from: ProtocolKind,
        /// The new protocol.
        to: ProtocolKind,
        /// The selector's answer.
        selection: Selection,
    },
}

impl AdaptationDecision {
    /// The protocol in force after this decision.
    pub fn active_protocol(&self) -> ProtocolKind {
        match self {
            AdaptationDecision::Configure { to, .. } => *to,
            AdaptationDecision::Keep { current, .. } => *current,
            AdaptationDecision::Switch { to, .. } => *to,
        }
    }

    /// Whether this decision changes the running configuration.
    pub fn reconfigures(&self) -> bool {
        matches!(
            self,
            AdaptationDecision::Configure { .. } | AdaptationDecision::Switch { .. }
        )
    }
}

/// The autonomic adaptation loop: selector + current state + switch policy.
#[derive(Debug)]
pub struct AdaptiveController {
    selector: ProtocolSelector,
    metric: MetricKind,
    current: Option<ProtocolKind>,
    /// Consecutive observations that must agree before a switch is made
    /// (1 = switch immediately). Dampens thrashing when the environment
    /// jitters at a decision boundary.
    confirmations_required: u32,
    pending: Option<(ProtocolKind, u32)>,
    switches: u32,
    observations: u32,
}

impl AdaptiveController {
    /// Creates a controller optimising `metric` with immediate switching.
    pub fn new(selector: ProtocolSelector, metric: MetricKind) -> Self {
        AdaptiveController {
            selector,
            metric,
            current: None,
            confirmations_required: 1,
            pending: None,
            switches: 0,
            observations: 0,
        }
    }

    /// Requires `n` consecutive agreeing observations before switching.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_confirmations(mut self, n: u32) -> Self {
        assert!(n > 0, "at least one confirmation required");
        self.confirmations_required = n;
        self
    }

    /// The protocol currently in force, if configured.
    pub fn current(&self) -> Option<ProtocolKind> {
        self.current
    }

    /// Total reconfigurations performed (excluding the initial one).
    pub fn switches(&self) -> u32 {
        self.switches
    }

    /// Observations processed.
    pub fn observations(&self) -> u32 {
        self.observations
    }

    /// Feeds one environment observation through the selector and applies
    /// the switch policy.
    pub fn observe(&mut self, env: &Environment, app: &AppParams) -> AdaptationDecision {
        self.observations += 1;
        let selection = self.selector.select(env, app, self.metric);
        let proposed = selection.protocol;
        match self.current {
            None => {
                self.current = Some(proposed);
                AdaptationDecision::Configure {
                    to: proposed,
                    selection,
                }
            }
            Some(current) if current == proposed => {
                self.pending = None;
                AdaptationDecision::Keep { current, selection }
            }
            Some(current) => {
                let agreed = match self.pending.take() {
                    Some((candidate, count)) if candidate == proposed => count + 1,
                    _ => 1,
                };
                if agreed >= self.confirmations_required {
                    self.current = Some(proposed);
                    self.switches += 1;
                    AdaptationDecision::Switch {
                        from: current,
                        to: proposed,
                        selection,
                    }
                } else {
                    self.pending = Some((proposed, agreed));
                    AdaptationDecision::Keep { current, selection }
                }
            }
        }
    }
}

/// One phase of an adaptive run: an environment that holds for a stretch
/// of operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// The environment during this phase.
    pub env: Environment,
    /// The application parameters during this phase.
    pub app: AppParams,
    /// Samples published during this phase.
    pub samples: u64,
}

/// The outcome of one phase.
#[derive(Debug, Clone)]
pub struct PhaseOutcome {
    /// The phase that ran.
    pub phase: Phase,
    /// The controller's decision entering the phase.
    pub decision: AdaptationDecision,
    /// Measured QoS of the phase under the active protocol.
    pub report: QosReport,
}

/// Replays `phases` through a controller: before each phase the
/// environment is re-observed (the paper's monitoring step) and the phase
/// then runs under whatever protocol is in force.
pub struct AdaptiveTimeline {
    controller: AdaptiveController,
    seed: u64,
}

impl AdaptiveTimeline {
    /// Creates a timeline driver around `controller`.
    pub fn new(controller: AdaptiveController, seed: u64) -> Self {
        AdaptiveTimeline { controller, seed }
    }

    /// Runs every phase, returning per-phase outcomes.
    pub fn run(mut self, phases: &[Phase]) -> (Vec<PhaseOutcome>, AdaptiveController) {
        let mut outcomes = Vec::with_capacity(phases.len());
        for (i, &phase) in phases.iter().enumerate() {
            let decision = self.controller.observe(&phase.env, &phase.app);
            let report = Scenario::paper(phase.env, phase.app, self.seed.wrapping_add(i as u64))
                .with_samples(phase.samples)
                .run(TransportConfig::new(decision.active_protocol()));
            outcomes.push(PhaseOutcome {
                phase,
                decision,
                report,
            });
        }
        (outcomes, self.controller)
    }
}

/// Alarm thresholds for [`QosMonitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorThresholds {
    /// Alarm when window reliability falls below this fraction.
    pub min_reliability: f64,
    /// Alarm when window average latency exceeds this (µs).
    pub max_avg_latency_us: f64,
    /// Consecutive bad windows required before raising the alarm.
    pub consecutive_windows: u32,
}

impl Default for MonitorThresholds {
    fn default() -> Self {
        MonitorThresholds {
            min_reliability: 0.98,
            max_avg_latency_us: 5_000.0,
            consecutive_windows: 2,
        }
    }
}

/// Watches a stream of windowed QoS measurements and raises an alarm when
/// QoS degrades persistently — the "system monitoring the environment"
/// trigger the paper's conclusion sketches for runtime adaptation. On
/// alarm, the application re-probes the environment and feeds
/// [`AdaptiveController::observe`].
#[derive(Debug, Clone)]
pub struct QosMonitor {
    thresholds: MonitorThresholds,
    consecutive_bad: u32,
    windows_seen: u64,
    alarms: u64,
}

impl QosMonitor {
    /// Creates a monitor with the given thresholds.
    pub fn new(thresholds: MonitorThresholds) -> Self {
        QosMonitor {
            thresholds,
            consecutive_bad: 0,
            windows_seen: 0,
            alarms: 0,
        }
    }

    /// Feeds one window; returns `true` when the degradation alarm fires
    /// (once per sustained episode — the counter re-arms after a good
    /// window).
    pub fn observe_window(&mut self, window: &adamant_metrics::WindowQos) -> bool {
        self.windows_seen += 1;
        let bad = window.reliability() < self.thresholds.min_reliability
            || window.avg_latency_us > self.thresholds.max_avg_latency_us;
        if !bad {
            self.consecutive_bad = 0;
            return false;
        }
        self.consecutive_bad += 1;
        if self.consecutive_bad == self.thresholds.consecutive_windows {
            self.alarms += 1;
            return true;
        }
        false
    }

    /// Windows processed so far.
    pub fn windows_seen(&self) -> u64 {
        self.windows_seen
    }

    /// Alarms raised so far.
    pub fn alarms(&self) -> u64 {
        self.alarms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{DatasetRow, LabeledDataset};
    use crate::env::BandwidthClass;
    use crate::selector::SelectorConfig;
    use adamant_dds::DdsImplementation;
    use adamant_netsim::MachineClass;

    fn synthetic_selector() -> ProtocolSelector {
        // pc3000 → Ricochet R4C3 (class 4); pc850 → NAKcast 1 ms (class 3).
        let mut rows = Vec::new();
        for machine in MachineClass::all() {
            for bandwidth in BandwidthClass::all() {
                for loss in 1..=5u8 {
                    rows.push(DatasetRow {
                        env: Environment::new(
                            machine,
                            bandwidth,
                            DdsImplementation::OpenSplice,
                            loss,
                        ),
                        app: AppParams::new(3, 25),
                        metric: MetricKind::ReLate2,
                        best_class: if machine == MachineClass::Pc3000 {
                            4
                        } else {
                            3
                        },
                        scores: vec![0.0; 6],
                    });
                }
            }
        }
        let (selector, _) =
            ProtocolSelector::train_from(&LabeledDataset { rows }, &SelectorConfig::default());
        selector
    }

    fn fast() -> Environment {
        Environment::new(
            MachineClass::Pc3000,
            BandwidthClass::Gbps1,
            DdsImplementation::OpenSplice,
            5,
        )
    }

    fn slow() -> Environment {
        Environment::new(
            MachineClass::Pc850,
            BandwidthClass::Mbps100,
            DdsImplementation::OpenSplice,
            5,
        )
    }

    #[test]
    fn first_observation_configures() {
        let mut ctl = AdaptiveController::new(synthetic_selector(), MetricKind::ReLate2);
        let d = ctl.observe(&fast(), &AppParams::new(3, 25));
        assert!(matches!(d, AdaptationDecision::Configure { .. }));
        assert!(d.reconfigures());
        assert_eq!(ctl.current(), Some(d.active_protocol()));
        assert_eq!(ctl.switches(), 0);
    }

    #[test]
    fn stable_environment_keeps() {
        let mut ctl = AdaptiveController::new(synthetic_selector(), MetricKind::ReLate2);
        ctl.observe(&fast(), &AppParams::new(3, 25));
        for _ in 0..5 {
            let d = ctl.observe(&fast(), &AppParams::new(3, 25));
            assert!(matches!(d, AdaptationDecision::Keep { .. }));
        }
        assert_eq!(ctl.switches(), 0);
        assert_eq!(ctl.observations(), 6);
    }

    #[test]
    fn environment_change_switches() {
        let mut ctl = AdaptiveController::new(synthetic_selector(), MetricKind::ReLate2);
        let first = ctl.observe(&fast(), &AppParams::new(3, 25));
        let second = ctl.observe(&slow(), &AppParams::new(3, 25));
        match second {
            AdaptationDecision::Switch { from, to, .. } => {
                assert_eq!(from, first.active_protocol());
                assert_ne!(from, to);
            }
            other => panic!("expected a switch, got {other:?}"),
        }
        assert_eq!(ctl.switches(), 1);
    }

    #[test]
    fn hysteresis_delays_switch_until_confirmed() {
        let mut ctl = AdaptiveController::new(synthetic_selector(), MetricKind::ReLate2)
            .with_confirmations(3);
        ctl.observe(&fast(), &AppParams::new(3, 25));
        // Two observations of the new environment: still held back.
        assert!(!ctl.observe(&slow(), &AppParams::new(3, 25)).reconfigures());
        assert!(!ctl.observe(&slow(), &AppParams::new(3, 25)).reconfigures());
        // Third agreeing observation commits the switch.
        assert!(ctl.observe(&slow(), &AppParams::new(3, 25)).reconfigures());
        assert_eq!(ctl.switches(), 1);
        // A flapping observation no longer counts once back to stable.
        assert!(!ctl.observe(&slow(), &AppParams::new(3, 25)).reconfigures());
    }

    #[test]
    fn monitor_fires_once_per_sustained_episode() {
        use adamant_metrics::WindowQos;
        use adamant_netsim::{SimDuration, SimTime};
        let window = |published: u64, delivered: u64, lat: f64| WindowQos {
            start: SimTime::ZERO,
            length: SimDuration::from_secs(1),
            published,
            delivered,
            avg_latency_us: lat,
            jitter_us: 0.0,
        };
        let mut monitor = QosMonitor::new(MonitorThresholds {
            min_reliability: 0.95,
            max_avg_latency_us: 2_000.0,
            consecutive_windows: 2,
        });
        // Healthy stream: no alarms.
        assert!(!monitor.observe_window(&window(100, 100, 500.0)));
        // One bad window: not yet.
        assert!(!monitor.observe_window(&window(100, 80, 500.0)));
        // Second consecutive: alarm fires exactly once.
        assert!(monitor.observe_window(&window(100, 80, 500.0)));
        assert!(!monitor.observe_window(&window(100, 80, 500.0)));
        assert_eq!(monitor.alarms(), 1);
        // Recovery re-arms the detector; a latency episode fires again.
        assert!(!monitor.observe_window(&window(100, 100, 500.0)));
        assert!(!monitor.observe_window(&window(100, 100, 9_000.0)));
        assert!(monitor.observe_window(&window(100, 100, 9_000.0)));
        assert_eq!(monitor.alarms(), 2);
        assert_eq!(monitor.windows_seen(), 7);
    }

    #[test]
    fn monitor_detects_real_degradation_in_a_run() {
        use adamant_metrics::{constant_rate_schedule, windowed_qos};
        use adamant_netsim::SimDuration;
        // A lossy UDP run degrades reliability in every window; the
        // monitor should alarm early.
        let report_env = Environment::new(
            MachineClass::Pc3000,
            BandwidthClass::Gbps1,
            DdsImplementation::OpenSplice,
            5,
        );
        let scenario =
            crate::Scenario::paper(report_env, AppParams::new(1, 100), 3).with_samples(400);
        let report = scenario.run(adamant_transport::TransportConfig::new(
            adamant_transport::ProtocolKind::Udp,
        ));
        let _ = report;
        // Re-run through the ant layer to get raw deliveries.
        use adamant_transport::{ant, AppSpec, SessionSpec, StackProfile};
        let spec = SessionSpec {
            transport: adamant_transport::TransportConfig::new(
                adamant_transport::ProtocolKind::Udp,
            ),
            app: AppSpec::at_rate(400, 100.0, 12),
            stack: StackProfile::new(20.0, 48),
            sender_host: report_env.host_config(),
            receiver_hosts: vec![report_env.host_config()],
            drop_probability: 0.10,
        };
        let mut sim = adamant_netsim::Simulation::new(3);
        let handles = ant::install(&mut sim, &spec);
        sim.run_until(adamant_netsim::SimTime::from_secs(6));
        let reader = ant::reader(&sim, &handles, handles.receivers[0]);
        let schedule = constant_rate_schedule(100.0, SimDuration::from_secs(1), 4);
        let windows = windowed_qos(
            reader.log().deliveries(),
            &schedule,
            SimDuration::from_secs(1),
        );
        let mut monitor = QosMonitor::new(MonitorThresholds {
            min_reliability: 0.95,
            max_avg_latency_us: 1e9,
            consecutive_windows: 2,
        });
        let mut alarmed = false;
        for w in &windows {
            alarmed |= monitor.observe_window(w);
        }
        assert!(alarmed, "10% UDP loss must trip a 95% reliability monitor");
    }

    #[test]
    fn timeline_adapts_across_phases() {
        let ctl = AdaptiveController::new(synthetic_selector(), MetricKind::ReLate2);
        let phases = [
            Phase {
                env: slow(),
                app: AppParams::new(3, 25),
                samples: 300,
            },
            Phase {
                env: fast(),
                app: AppParams::new(3, 25),
                samples: 300,
            },
        ];
        let (outcomes, ctl) = AdaptiveTimeline::new(ctl, 9).run(&phases);
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes[0].decision.reconfigures()); // initial configure
        assert!(outcomes[1].decision.reconfigures()); // switch on upgrade
        assert_ne!(
            outcomes[0].decision.active_protocol(),
            outcomes[1].decision.active_protocol()
        );
        for o in &outcomes {
            assert!(o.report.reliability() > 0.95, "{:?}", o.report);
        }
        assert_eq!(ctl.switches(), 1);
    }
}

//! The configuration space of the paper's evaluation: cloud environment
//! variables (Table 1) and application variables (Table 2).

use adamant_dds::DdsImplementation;
use adamant_netsim::{Bandwidth, HostConfig, LossModel, MachineClass, NetworkConfig, SimDuration};

/// The network bandwidth classes of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BandwidthClass {
    /// 1 Gb/s LAN.
    Gbps1,
    /// 100 Mb/s LAN.
    Mbps100,
    /// 10 Mb/s LAN.
    Mbps10,
}

adamant_json::impl_json_unit_enum!(BandwidthClass {
    Gbps1,
    Mbps100,
    Mbps10
});

impl BandwidthClass {
    /// All classes, Table 1 order (fastest first).
    pub fn all() -> [BandwidthClass; 3] {
        [
            BandwidthClass::Gbps1,
            BandwidthClass::Mbps100,
            BandwidthClass::Mbps10,
        ]
    }

    /// The link bandwidth.
    pub fn bandwidth(self) -> Bandwidth {
        match self {
            BandwidthClass::Gbps1 => Bandwidth::GBPS_1,
            BandwidthClass::Mbps100 => Bandwidth::MBPS_100,
            BandwidthClass::Mbps10 => Bandwidth::MBPS_10,
        }
    }

    /// One-way switch/propagation delay for this network class.
    ///
    /// Slower Emulab LANs come with older switching gear; the per-packet
    /// fixed delay grows as the link slows. This is what makes bandwidth a
    /// meaningful environment input even for the paper's 12-byte samples,
    /// whose serialization time alone would barely register.
    pub fn propagation(self) -> SimDuration {
        match self {
            BandwidthClass::Gbps1 => SimDuration::from_micros(50),
            BandwidthClass::Mbps100 => SimDuration::from_micros(150),
            BandwidthClass::Mbps10 => SimDuration::from_micros(500),
        }
    }

    /// Bandwidth in Mb/s (feature encoding).
    pub fn mbps(self) -> f64 {
        self.bandwidth().mbps()
    }
}

impl std::fmt::Display for BandwidthClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.bandwidth())
    }
}

/// One cloud environment configuration (a row of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Environment {
    /// Machine type: pc850 or pc3000.
    pub machine: MachineClass,
    /// Network bandwidth class: 1 Gb, 100 Mb, or 10 Mb.
    pub bandwidth: BandwidthClass,
    /// DDS implementation: OpenDDS or OpenSplice.
    pub dds: DdsImplementation,
    /// Percent end-host network loss (1–5 in the paper).
    pub loss_percent: u8,
}

adamant_json::impl_json_struct!(Environment {
    machine,
    bandwidth,
    dds,
    loss_percent,
});

impl Environment {
    /// Creates an environment, validating the loss range.
    ///
    /// # Panics
    ///
    /// Panics if `loss_percent` exceeds 100.
    pub fn new(
        machine: MachineClass,
        bandwidth: BandwidthClass,
        dds: DdsImplementation,
        loss_percent: u8,
    ) -> Self {
        assert!(loss_percent <= 100, "loss percent out of range");
        Environment {
            machine,
            bandwidth,
            dds,
            loss_percent,
        }
    }

    /// Every Table 1 configuration: 2 machines × 3 bandwidths × 2 DDS
    /// implementations × 5 loss rates = 60 environments.
    pub fn table1() -> Vec<Environment> {
        let mut all = Vec::with_capacity(60);
        for machine in MachineClass::all() {
            for bandwidth in BandwidthClass::all() {
                for dds in DdsImplementation::all() {
                    for loss_percent in 1..=5u8 {
                        all.push(Environment {
                            machine,
                            bandwidth,
                            dds,
                            loss_percent,
                        });
                    }
                }
            }
        }
        all
    }

    /// The loss as a probability in `[0, 1]`.
    pub fn drop_probability(&self) -> f64 {
        self.loss_percent as f64 / 100.0
    }

    /// The host configuration every node of this environment runs on (the
    /// paper's LANs are homogeneous).
    pub fn host_config(&self) -> HostConfig {
        HostConfig::new(self.machine, self.bandwidth.bandwidth())
    }

    /// The network configuration of this environment.
    pub fn network_config(&self) -> NetworkConfig {
        NetworkConfig {
            propagation: self.bandwidth.propagation(),
            loss: LossModel::NONE,
        }
    }
}

impl std::fmt::Display for Environment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}/{}/{}% loss",
            self.machine, self.bandwidth, self.dds, self.loss_percent
        )
    }
}

/// One application configuration (a row of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AppParams {
    /// Number of receiving data readers (3–15 in the paper).
    pub receivers: u32,
    /// Sending rate in Hz (10, 25, 50, or 100 in the paper).
    pub rate_hz: u32,
}

adamant_json::impl_json_struct!(AppParams { receivers, rate_hz });

impl AppParams {
    /// Creates application parameters.
    ///
    /// # Panics
    ///
    /// Panics if either value is zero.
    pub fn new(receivers: u32, rate_hz: u32) -> Self {
        assert!(receivers > 0, "need at least one receiver");
        assert!(rate_hz > 0, "rate must be positive");
        AppParams { receivers, rate_hz }
    }

    /// The sending rates of Table 2.
    pub fn table2_rates() -> [u32; 4] {
        [10, 25, 50, 100]
    }

    /// The receiver-count range of Table 2.
    pub fn table2_receivers() -> std::ops::RangeInclusive<u32> {
        3..=15
    }
}

impl std::fmt::Display for AppParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} receivers @ {} Hz", self.receivers, self.rate_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_enumerates_sixty_environments() {
        let all = Environment::table1();
        assert_eq!(all.len(), 60);
        let mut unique = all.clone();
        unique.dedup();
        assert_eq!(unique.len(), 60);
    }

    #[test]
    fn propagation_grows_as_bandwidth_shrinks() {
        assert!(BandwidthClass::Mbps10.propagation() > BandwidthClass::Mbps100.propagation());
        assert!(BandwidthClass::Mbps100.propagation() > BandwidthClass::Gbps1.propagation());
    }

    #[test]
    fn display_formats() {
        let env = Environment::new(
            MachineClass::Pc3000,
            BandwidthClass::Gbps1,
            DdsImplementation::OpenSplice,
            5,
        );
        assert_eq!(env.to_string(), "pc3000/1Gb/OpenSplice/5% loss");
        assert_eq!(AppParams::new(3, 25).to_string(), "3 receivers @ 25 Hz");
    }

    #[test]
    fn drop_probability_from_percent() {
        let env = Environment::new(
            MachineClass::Pc850,
            BandwidthClass::Mbps100,
            DdsImplementation::OpenDds,
            5,
        );
        assert!((env.drop_probability() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn host_and_network_configs_reflect_environment() {
        let env = Environment::new(
            MachineClass::Pc850,
            BandwidthClass::Mbps10,
            DdsImplementation::OpenDds,
            1,
        );
        assert_eq!(env.host_config().machine, MachineClass::Pc850);
        assert_eq!(env.host_config().bandwidth, Bandwidth::MBPS_10);
        assert_eq!(
            env.network_config().propagation,
            SimDuration::from_micros(500)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn absurd_loss_rejected() {
        Environment::new(
            MachineClass::Pc850,
            BandwidthClass::Mbps10,
            DdsImplementation::OpenDds,
            101,
        );
    }

    #[test]
    fn table2_space() {
        assert_eq!(AppParams::table2_rates(), [10, 25, 50, 100]);
        assert_eq!(AppParams::table2_receivers().count(), 13);
    }
}

//! The configuration space of the paper's evaluation: cloud environment
//! variables (Table 1) and application variables (Table 2), plus the v2
//! descriptor axes (WAN paths, same-host deployments) that widen the
//! autonomic choice space beyond the paper's switched LANs.

use adamant_dds::DdsImplementation;
use adamant_netsim::{
    Bandwidth, HostConfig, LinkProfile, LossModel, MachineClass, NetworkConfig, SimDuration,
};

/// The network bandwidth classes of Table 1, plus the v2 WAN class.
///
/// The bandwidth/propagation pairing behind each class is defined once, in
/// [`LinkProfile`] — this enum only names the rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BandwidthClass {
    /// 1 Gb/s LAN.
    Gbps1,
    /// 100 Mb/s LAN.
    Mbps100,
    /// 10 Mb/s LAN.
    Mbps10,
    /// 100 Mb/s wide-area path with a 50 ms round trip (inter-datacenter).
    /// Not part of Table 1; introduced by the environment descriptor v2.
    Wan50ms,
}

adamant_json::impl_json_unit_enum!(BandwidthClass {
    Gbps1,
    Mbps100,
    Mbps10,
    Wan50ms
});

impl BandwidthClass {
    /// The Table 1 classes, paper order (fastest first). The WAN class is
    /// deliberately excluded so [`Environment::table1`] stays the paper's
    /// 60-row grid; use [`BandwidthClass::all_v2`] for the widened space.
    pub fn all() -> [BandwidthClass; 3] {
        [
            BandwidthClass::Gbps1,
            BandwidthClass::Mbps100,
            BandwidthClass::Mbps10,
        ]
    }

    /// Every class of the v2 descriptor, LAN classes first.
    pub fn all_v2() -> [BandwidthClass; 4] {
        [
            BandwidthClass::Gbps1,
            BandwidthClass::Mbps100,
            BandwidthClass::Mbps10,
            BandwidthClass::Wan50ms,
        ]
    }

    /// The link profile (bandwidth + propagation) of this class.
    pub fn link(self) -> LinkProfile {
        match self {
            BandwidthClass::Gbps1 => LinkProfile::GBPS1_LAN,
            BandwidthClass::Mbps100 => LinkProfile::MBPS100_LAN,
            BandwidthClass::Mbps10 => LinkProfile::MBPS10_LAN,
            BandwidthClass::Wan50ms => LinkProfile::WAN_50MS,
        }
    }

    /// The link bandwidth.
    pub fn bandwidth(self) -> Bandwidth {
        self.link().bandwidth
    }

    /// One-way switch/propagation delay for this network class.
    ///
    /// Slower Emulab LANs come with older switching gear; the per-packet
    /// fixed delay grows as the link slows. This is what makes bandwidth a
    /// meaningful environment input even for the paper's 12-byte samples,
    /// whose serialization time alone would barely register. The WAN class
    /// is dominated by distance instead: 25 ms each way.
    pub fn propagation(self) -> SimDuration {
        self.link().propagation
    }

    /// Bandwidth in Mb/s (feature encoding).
    pub fn mbps(self) -> f64 {
        self.bandwidth().mbps()
    }

    /// Whether losses on this class hit the network itself (WAN), as
    /// opposed to the end hosts (the paper's LAN emulation).
    pub fn network_level_loss(self) -> bool {
        matches!(self, BandwidthClass::Wan50ms)
    }
}

impl std::fmt::Display for BandwidthClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BandwidthClass::Wan50ms => write!(f, "{}-wan50ms", self.bandwidth()),
            _ => write!(f, "{}", self.bandwidth()),
        }
    }
}

/// One cloud environment configuration — a row of Table 1, or one of the
/// v2 rows (WAN path, same-host deployment) beyond it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Environment {
    /// Machine type: pc850 or pc3000.
    pub machine: MachineClass,
    /// Network class: 1 Gb, 100 Mb, or 10 Mb LAN, or the 50 ms WAN.
    pub bandwidth: BandwidthClass,
    /// DDS implementation: OpenDDS or OpenSplice.
    pub dds: DdsImplementation,
    /// Percent network loss (1–5 in the paper). End-host loss on LAN
    /// classes, network-level loss on the WAN class.
    pub loss_percent: u8,
    /// Writer and readers share one machine (the shared-memory fast path
    /// applies, and the network class describes the loopback hop).
    pub same_host: bool,
}

adamant_json::impl_json_struct!(Environment {
    machine,
    bandwidth,
    dds,
    loss_percent,
    same_host,
});

impl Environment {
    /// Creates a distributed (cross-host) environment, validating the loss
    /// range.
    ///
    /// # Panics
    ///
    /// Panics if `loss_percent` exceeds 100.
    pub fn new(
        machine: MachineClass,
        bandwidth: BandwidthClass,
        dds: DdsImplementation,
        loss_percent: u8,
    ) -> Self {
        assert!(loss_percent <= 100, "loss percent out of range");
        Environment {
            machine,
            bandwidth,
            dds,
            loss_percent,
            same_host: false,
        }
    }

    /// Creates a same-host environment: writer and readers co-located on
    /// one `machine`, talking over the loopback / shared-memory path. The
    /// path drops nothing.
    pub fn colocated(machine: MachineClass, dds: DdsImplementation) -> Self {
        Environment {
            machine,
            bandwidth: BandwidthClass::Gbps1,
            dds,
            loss_percent: 0,
            same_host: true,
        }
    }

    /// Every Table 1 configuration: 2 machines × 3 bandwidths × 2 DDS
    /// implementations × 5 loss rates = 60 environments.
    pub fn table1() -> Vec<Environment> {
        let mut all = Vec::with_capacity(60);
        for machine in MachineClass::all() {
            for bandwidth in BandwidthClass::all() {
                for dds in DdsImplementation::all() {
                    for loss_percent in 1..=5u8 {
                        all.push(Environment::new(machine, bandwidth, dds, loss_percent));
                    }
                }
            }
        }
        all
    }

    /// The widened v2 grid: Table 1 (60) plus the WAN rows
    /// (2 machines × 2 DDS × 5 loss rates = 20) plus the same-host rows
    /// (2 machines × 2 DDS = 4) — 84 environments.
    pub fn cloud_grid() -> Vec<Environment> {
        let mut all = Environment::table1();
        for machine in MachineClass::all() {
            for dds in DdsImplementation::all() {
                for loss_percent in 1..=5u8 {
                    all.push(Environment::new(
                        machine,
                        BandwidthClass::Wan50ms,
                        dds,
                        loss_percent,
                    ));
                }
            }
        }
        for machine in MachineClass::all() {
            for dds in DdsImplementation::all() {
                all.push(Environment::colocated(machine, dds));
            }
        }
        all
    }

    /// The link profile of this environment's data path.
    pub fn link(&self) -> LinkProfile {
        if self.same_host {
            LinkProfile::SAME_HOST
        } else {
            self.bandwidth.link()
        }
    }

    /// Round-trip time of the data path (feature encoding: milliseconds).
    pub fn rtt_ms(&self) -> f64 {
        self.link().rtt().as_nanos() as f64 / 1_000_000.0
    }

    /// The *end-host* loss probability in `[0, 1]` that readers should
    /// apply. Zero for same-host deployments (the path drops nothing) and
    /// for the WAN class, where loss lives in the network itself — see
    /// [`Environment::network_config`] — so control traffic is exposed to
    /// it too.
    pub fn drop_probability(&self) -> f64 {
        if self.same_host || self.bandwidth.network_level_loss() {
            0.0
        } else {
            self.loss_percent as f64 / 100.0
        }
    }

    /// The host configuration every node of this environment runs on (the
    /// paper's LANs are homogeneous).
    pub fn host_config(&self) -> HostConfig {
        HostConfig::new(self.machine, self.link().bandwidth)
    }

    /// The network configuration of this environment. LAN classes keep the
    /// paper's model — lossless switch, end-host drops. The WAN class
    /// moves the Bernoulli loss into the network so every packet,
    /// including NAKs/ACKs and heartbeats, is at risk. The same-host path
    /// is a ~1 µs lossless hop.
    pub fn network_config(&self) -> NetworkConfig {
        let link = self.link();
        let loss = if !self.same_host && self.bandwidth.network_level_loss() {
            LossModel::Bernoulli(self.loss_percent as f64 / 100.0)
        } else {
            LossModel::NONE
        };
        NetworkConfig {
            propagation: link.propagation,
            loss,
        }
    }
}

impl std::fmt::Display for Environment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.same_host {
            write!(
                f,
                "{}/same-host/{}/{}% loss",
                self.machine, self.dds, self.loss_percent
            )
        } else {
            write!(
                f,
                "{}/{}/{}/{}% loss",
                self.machine, self.bandwidth, self.dds, self.loss_percent
            )
        }
    }
}

/// One application configuration (a row of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AppParams {
    /// Number of receiving data readers (3–15 in the paper).
    pub receivers: u32,
    /// Sending rate in Hz (10, 25, 50, or 100 in the paper).
    pub rate_hz: u32,
}

adamant_json::impl_json_struct!(AppParams { receivers, rate_hz });

impl AppParams {
    /// Creates application parameters.
    ///
    /// # Panics
    ///
    /// Panics if either value is zero.
    pub fn new(receivers: u32, rate_hz: u32) -> Self {
        assert!(receivers > 0, "need at least one receiver");
        assert!(rate_hz > 0, "rate must be positive");
        AppParams { receivers, rate_hz }
    }

    /// The sending rates of Table 2.
    pub fn table2_rates() -> [u32; 4] {
        [10, 25, 50, 100]
    }

    /// The receiver-count range of Table 2.
    pub fn table2_receivers() -> std::ops::RangeInclusive<u32> {
        3..=15
    }
}

impl std::fmt::Display for AppParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} receivers @ {} Hz", self.receivers, self.rate_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_enumerates_sixty_environments() {
        let all = Environment::table1();
        assert_eq!(all.len(), 60);
        let mut unique = all.clone();
        unique.dedup();
        assert_eq!(unique.len(), 60);
    }

    #[test]
    fn propagation_grows_as_bandwidth_shrinks() {
        assert!(BandwidthClass::Mbps10.propagation() > BandwidthClass::Mbps100.propagation());
        assert!(BandwidthClass::Mbps100.propagation() > BandwidthClass::Gbps1.propagation());
    }

    #[test]
    fn display_formats() {
        let env = Environment::new(
            MachineClass::Pc3000,
            BandwidthClass::Gbps1,
            DdsImplementation::OpenSplice,
            5,
        );
        assert_eq!(env.to_string(), "pc3000/1Gb/OpenSplice/5% loss");
        assert_eq!(AppParams::new(3, 25).to_string(), "3 receivers @ 25 Hz");
    }

    #[test]
    fn drop_probability_from_percent() {
        let env = Environment::new(
            MachineClass::Pc850,
            BandwidthClass::Mbps100,
            DdsImplementation::OpenDds,
            5,
        );
        assert!((env.drop_probability() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn host_and_network_configs_reflect_environment() {
        let env = Environment::new(
            MachineClass::Pc850,
            BandwidthClass::Mbps10,
            DdsImplementation::OpenDds,
            1,
        );
        assert_eq!(env.host_config().machine, MachineClass::Pc850);
        assert_eq!(env.host_config().bandwidth, Bandwidth::MBPS_10);
        assert_eq!(
            env.network_config().propagation,
            SimDuration::from_micros(500)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn absurd_loss_rejected() {
        Environment::new(
            MachineClass::Pc850,
            BandwidthClass::Mbps10,
            DdsImplementation::OpenDds,
            101,
        );
    }

    #[test]
    fn table2_space() {
        assert_eq!(AppParams::table2_rates(), [10, 25, 50, 100]);
        assert_eq!(AppParams::table2_receivers().count(), 13);
    }

    #[test]
    fn cloud_grid_is_table1_plus_wan_plus_same_host() {
        let grid = Environment::cloud_grid();
        assert_eq!(grid.len(), 84);
        let mut unique = grid.clone();
        unique.sort_by_key(|e| format!("{e}"));
        unique.dedup();
        assert_eq!(unique.len(), 84);
        assert_eq!(&grid[..60], &Environment::table1()[..]);
        assert_eq!(
            grid.iter()
                .filter(|e| e.bandwidth == BandwidthClass::Wan50ms)
                .count(),
            20
        );
        assert_eq!(grid.iter().filter(|e| e.same_host).count(), 4);
    }

    #[test]
    fn wan_moves_loss_into_the_network() {
        let wan = Environment::new(
            MachineClass::Pc3000,
            BandwidthClass::Wan50ms,
            DdsImplementation::OpenSplice,
            4,
        );
        // End hosts no longer roll drops: the network does, so NAKs and
        // ACKs are exposed to loss too.
        assert_eq!(wan.drop_probability(), 0.0);
        let cfg = wan.network_config();
        assert_eq!(cfg.propagation, SimDuration::from_millis(25));
        assert!(matches!(cfg.loss, LossModel::Bernoulli(p) if (p - 0.04).abs() < 1e-12));
        assert!((wan.rtt_ms() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn same_host_path_is_fast_and_lossless() {
        let shm = Environment::colocated(MachineClass::Pc850, DdsImplementation::OpenDds);
        assert!(shm.same_host);
        assert_eq!(shm.drop_probability(), 0.0);
        let cfg = shm.network_config();
        assert_eq!(cfg.propagation, SimDuration::from_micros(1));
        assert!(matches!(cfg.loss, LossModel::NONE));
        assert!(shm.rtt_ms() < 0.01);
        assert_eq!(shm.to_string(), "pc850/same-host/OpenDDS/0% loss");
    }

    #[test]
    fn legacy_lan_classes_are_unchanged_by_v2() {
        // The Table 1 rows must keep their exact pre-v2 behaviour so
        // existing golden traces and the regression suite stay valid.
        for env in Environment::table1() {
            assert!(!env.same_host);
            assert!((env.drop_probability() - env.loss_percent as f64 / 100.0).abs() < 1e-12);
            assert!(matches!(env.network_config().loss, LossModel::NONE));
        }
        assert_eq!(
            BandwidthClass::Gbps1.propagation(),
            SimDuration::from_micros(50)
        );
        assert_eq!(
            BandwidthClass::Mbps100.propagation(),
            SimDuration::from_micros(150)
        );
        assert_eq!(
            BandwidthClass::Mbps10.propagation(),
            SimDuration::from_micros(500)
        );
    }

    #[test]
    fn environment_json_round_trips_across_all_v2_axes() {
        for env in Environment::cloud_grid() {
            let text = adamant_json::to_string(&env);
            let back: Environment = adamant_json::from_str(&text).expect("round trip");
            assert_eq!(back, env, "{text}");
        }
        // Pin the serialized form of one v2 row so the descriptor schema
        // can't silently drift.
        let wan = Environment::new(
            MachineClass::Pc850,
            BandwidthClass::Wan50ms,
            DdsImplementation::OpenDds,
            3,
        );
        let text = adamant_json::to_string(&wan);
        assert!(text.contains("\"bandwidth\":\"Wan50ms\""), "{text}");
        assert!(text.contains("\"same_host\":false"), "{text}");
    }
}

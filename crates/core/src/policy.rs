//! The unified adaptation policy: probe → learn → adapt behind one API.
//!
//! Earlier layers expose the adaptation loop as parts the caller wires by
//! hand — a [`QosMonitor`] to notice degradation, a probe to re-read the
//! environment, a [`ResilientSelector`] to answer "which transport?", a
//! [`SwitchBackoff`] to stop flapping, and the
//! mid-stream reinstall plumbing. [`AdaptivePolicy`] collapses that wiring
//! into one builder, and adds the piece none of the parts had: *online
//! learning*. A fleet's per-shard [`WindowQos`] observations stream into a
//! bounded [`FeedbackRing`] (never blocking the hot path — when full, the
//! oldest observation is overwritten and counted), an [`OnlineTrainer`]
//! periodically folds the ring into labelled training rows and fits a
//! candidate selector, and the candidate is hot-swapped into the live
//! policy **only** if it does not regress against a held-out slice of the
//! same observations.
//!
//! The hot-swap is safe by construction:
//!
//! 1. The candidate never touches the wire directly — swapping a model
//!    changes only future *answers*; actual protocol switches still flow
//!    through the alarm → probe → select → backoff → reinstall path, so
//!    the anti-flapping dwell and mid-stream state harvesting are
//!    unchanged.
//! 2. A candidate that scores worse than the incumbent on the holdout is
//!    rejected (counted in [`OnlineStats::rejected`]), so a burst of noisy
//!    windows cannot replace a good model with a bad one.
//! 3. The loop is single-threaded and deterministic: the swap is a plain
//!    assignment between windows, and two runs with the same seed, faults,
//!    and configuration produce identical outcomes.

use adamant_ann::{train_with_validation, Activation, NeuralNetwork, TrainParams};
use adamant_dds::{DomainParticipant, QosProfile};
use adamant_metrics::{windowed_qos, Delivery, MetricKind, QosReport, WindowQos};
use adamant_netsim::{FaultPlan, MemorySink, ObsEvent, SimDuration, SimTime, Simulation};
use adamant_transport::{ant, AppSpec, TransportConfig};

use crate::adaptive::{MonitorThresholds, QosMonitor};
use crate::dataset::{best_class_with_margin, DatasetRow, LabeledDataset, LABEL_MARGIN};
use crate::env::{AppParams, Environment};
use crate::features::{candidate_protocols, class_index, FEATURE_DIM};
use crate::healing::{
    pooled_deliveries, probe_environment, HealingOutcome, ResilientChoice, ResilientSelector,
    SwitchBackoff, SwitchRecord,
};
use crate::selector::{ProtocolSelector, TreeSelector};

/// One windowed QoS observation from one shard of the fleet: "running
/// protocol class `class` under (what the shard probed as) `env`, this
/// window measured `window`".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosObservation {
    /// The environment the shard observed itself running in.
    pub env: Environment,
    /// The shard's application parameters.
    pub app: AppParams,
    /// The metric the shard's policy optimises.
    pub metric: MetricKind,
    /// Index (into [`candidate_protocols`]) of the protocol the shard was
    /// running during the window.
    pub class: usize,
    /// The windowed QoS measurement itself.
    pub window: WindowQos,
}

/// A bounded, non-blocking feedback ring. Pushing when full overwrites the
/// oldest observation and increments the drop counter — the hot path never
/// waits on the learner, and the learner can see exactly how much history
/// it lost.
#[derive(Debug, Clone)]
pub struct FeedbackRing {
    buf: std::collections::VecDeque<QosObservation>,
    capacity: usize,
    pushed: u64,
    dropped: u64,
}

impl FeedbackRing {
    /// Creates a ring holding at most `capacity` observations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        FeedbackRing {
            buf: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            pushed: 0,
            dropped: 0,
        }
    }

    /// Pushes an observation, overwriting (and counting) the oldest when
    /// the ring is full. Never blocks, never allocates once warm.
    pub fn push(&mut self, obs: QosObservation) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(obs);
        self.pushed += 1;
    }

    /// Observations currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no observations.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total observations ever pushed.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Observations overwritten before the learner consumed them.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Folds the ring into labelled training rows: observations group by
    /// (environment, application, metric), each group scores every
    /// candidate class by its mean window score (unobserved classes score
    /// infinite, so they can never become the label), and the best
    /// observed class — with the same stability margin the offline sweep
    /// uses — becomes the row's label.
    pub fn fold(&self) -> LabeledDataset {
        // One accumulator per configuration group: (sum, count) per class.
        type Group = (Environment, AppParams, MetricKind, Vec<(f64, u32)>);
        let classes = candidate_protocols().len();
        let mut groups: Vec<Group> = Vec::new();
        for obs in &self.buf {
            if obs.window.published == 0 || obs.class >= classes {
                continue;
            }
            let group = match groups
                .iter_mut()
                .find(|(e, a, m, _)| *e == obs.env && *a == obs.app && *m == obs.metric)
            {
                Some(found) => found,
                None => {
                    groups.push((obs.env, obs.app, obs.metric, vec![(0.0, 0); classes]));
                    groups.last_mut().expect("just pushed")
                }
            };
            let slot = &mut group.3[obs.class];
            slot.0 += window_score(&obs.window);
            slot.1 += 1;
        }
        let rows = groups
            .into_iter()
            .map(|(env, app, metric, sums)| {
                let scores: Vec<f64> = sums
                    .iter()
                    .map(|&(sum, n)| {
                        if n == 0 {
                            f64::INFINITY
                        } else {
                            sum / f64::from(n)
                        }
                    })
                    .collect();
                let best_class = best_class_with_margin(&scores, LABEL_MARGIN);
                DatasetRow {
                    env,
                    app,
                    metric,
                    best_class,
                    scores,
                }
            })
            .collect();
        LabeledDataset { rows }
    }
}

/// The score one window contributes to its class: windowed ReLate2, with
/// total loss bounded as "every sample took the whole window and none
/// arrived" — strictly worse than any protocol that delivered something.
fn window_score(w: &WindowQos) -> f64 {
    if w.delivered == 0 {
        w.length.as_micros_f64() * 101.0
    } else {
        w.relate2()
    }
}

/// Configuration of the online trainer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineTrainingConfig {
    /// Feedback-ring capacity (observations).
    pub ring_capacity: usize,
    /// Retrain after this many published windows have been observed.
    pub cadence_windows: u32,
    /// Minimum folded rows before a retrain is attempted.
    pub min_rows: usize,
    /// Hidden-node count of candidate networks.
    pub hidden_nodes: usize,
    /// Training parameters for candidates (epoch budget per retrain).
    pub train: TrainParams,
    /// Epochs per early-stopping round.
    pub round_epochs: u32,
    /// Early-stopping patience (rounds without holdout improvement).
    pub patience: u32,
    /// Weight-initialisation seed (varied per retrain).
    pub seed: u64,
}

impl Default for OnlineTrainingConfig {
    fn default() -> Self {
        OnlineTrainingConfig {
            ring_capacity: 1_024,
            cadence_windows: 8,
            min_rows: 8,
            hidden_nodes: 24,
            train: TrainParams {
                max_epochs: 600,
                ..TrainParams::default()
            },
            round_epochs: 50,
            patience: 4,
            seed: 0xADA9,
        }
    }
}

/// Running counters of the online adaptation path, reported in
/// [`HealingOutcome::online`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OnlineStats {
    /// Windowed observations pushed into the feedback ring.
    pub observations: u64,
    /// Observations overwritten before a retrain consumed them.
    pub dropped: u64,
    /// Retrains attempted (enough rows were available).
    pub retrains: u64,
    /// Candidates that passed the holdout gate.
    pub accepted: u64,
    /// Candidates rejected for regressing on the holdout.
    pub rejected: u64,
    /// Accepted candidates actually hot-swapped into a live policy.
    pub swaps: u64,
}

/// The background incremental trainer: folds the feedback ring into
/// training rows, fits a candidate selector, and vets it against a holdout
/// before anyone is allowed to serve it.
#[derive(Debug, Clone)]
pub struct OnlineTrainer {
    pub(crate) config: OnlineTrainingConfig,
    ring: FeedbackRing,
    retrains: u64,
    accepted: u64,
    rejected: u64,
}

impl OnlineTrainer {
    /// Creates a trainer with an empty feedback ring.
    pub fn new(config: OnlineTrainingConfig) -> Self {
        OnlineTrainer {
            ring: FeedbackRing::new(config.ring_capacity),
            config,
            retrains: 0,
            accepted: 0,
            rejected: 0,
        }
    }

    /// Feeds one shard observation into the ring (never blocks).
    pub fn observe(&mut self, obs: QosObservation) {
        self.ring.push(obs);
    }

    /// The feedback ring (for inspection).
    pub fn ring(&self) -> &FeedbackRing {
        &self.ring
    }

    /// Counters so far (swaps are counted by the policy that serves the
    /// accepted candidates, not here).
    pub fn stats(&self) -> OnlineStats {
        OnlineStats {
            observations: self.ring.pushed(),
            dropped: self.ring.dropped(),
            retrains: self.retrains,
            accepted: self.accepted,
            rejected: self.rejected,
            swaps: 0,
        }
    }

    /// Attempts a retrain: folds the ring, splits off a holdout (every
    /// fourth row), trains a candidate on the rest with early stopping
    /// against the holdout, and accepts the candidate only if its holdout
    /// accuracy does not regress against `live` (a missing live model
    /// scores zero, so any learning candidate beats it).
    ///
    /// Returns the vetted candidate, or `None` when there is not enough
    /// data yet or the candidate was rejected.
    pub fn maybe_retrain(&mut self, live: Option<&ProtocolSelector>) -> Option<ProtocolSelector> {
        let dataset = self.ring.fold();
        if dataset.len() < self.config.min_rows.max(2) {
            return None;
        }
        let mut train_rows = Vec::new();
        let mut holdout_rows = Vec::new();
        for (i, row) in dataset.rows.iter().enumerate() {
            if i % 4 == 0 {
                holdout_rows.push(row.clone());
            } else {
                train_rows.push(row.clone());
            }
        }
        if train_rows.is_empty() || holdout_rows.is_empty() {
            return None;
        }
        self.retrains += 1;
        let train_ds = LabeledDataset { rows: train_rows };
        let holdout_ds = LabeledDataset { rows: holdout_rows };
        let (train_data, scaler) = train_ds.to_training_data();
        let holdout_raw = holdout_ds.raw_inputs();
        let holdout_targets: Vec<Vec<f64>> = holdout_ds
            .rows
            .iter()
            .map(|r| adamant_ann::one_hot(r.best_class, candidate_protocols().len()))
            .collect();
        let holdout_data =
            adamant_ann::TrainingData::new(scaler.transform(&holdout_raw), holdout_targets);
        let mut network = NeuralNetwork::new(
            &[
                FEATURE_DIM,
                self.config.hidden_nodes,
                candidate_protocols().len(),
            ],
            Activation::fann_default(),
            self.config.seed ^ self.retrains,
        );
        train_with_validation(
            &mut network,
            &train_data,
            &holdout_data,
            &self.config.train,
            self.config.round_epochs,
            self.config.patience,
        );
        let candidate = ProtocolSelector::from_parts(network, scaler);
        let candidate_accuracy = candidate.evaluate_on(&holdout_ds).accuracy();
        let live_accuracy = live
            .map(|s| s.evaluate_on(&holdout_ds).accuracy())
            .unwrap_or(0.0);
        if candidate_accuracy >= live_accuracy {
            self.accepted += 1;
            Some(candidate)
        } else {
            self.rejected += 1;
            None
        }
    }
}

/// What to run: the stream a policy adapts. Decision knobs (thresholds,
/// backoff, online training) live on the [`AdaptivePolicy`]; this is only
/// the workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// The provisioned environment the session starts in (faults may move
    /// the *actual* conditions away from it mid-run).
    pub env: Environment,
    /// Application parameters.
    pub app: AppParams,
    /// Samples the writer publishes over the whole session, switches
    /// included.
    pub samples: u64,
    /// Payload bytes per sample.
    pub payload_bytes: u32,
    /// Simulation seed.
    pub seed: u64,
    /// Monitoring window length.
    pub window: SimDuration,
    /// Extra windows after the last publication, for tail recovery.
    pub grace: SimDuration,
    /// Whether to capture a structured observability trace of the run.
    pub observe: bool,
}

impl StreamConfig {
    /// A stream with the standard defaults: 12-byte payloads, 1 s windows,
    /// 3 s grace, no trace capture.
    pub fn new(env: Environment, app: AppParams, samples: u64, seed: u64) -> Self {
        StreamConfig {
            env,
            app,
            samples,
            payload_bytes: 12,
            seed,
            window: SimDuration::from_secs(1),
            grace: SimDuration::from_secs(3),
            observe: false,
        }
    }

    /// Enables structured trace capture; the events come back in
    /// [`HealingOutcome::trace`].
    pub fn with_observation(mut self) -> Self {
        self.observe = true;
        self
    }

    /// Overrides the monitoring window length.
    pub fn with_window(mut self, window: SimDuration) -> Self {
        self.window = window;
        self
    }

    /// Overrides the post-publication grace period.
    pub fn with_grace(mut self, grace: SimDuration) -> Self {
        self.grace = grace;
        self
    }

    /// Overrides the payload size.
    pub fn with_payload_bytes(mut self, payload_bytes: u32) -> Self {
        self.payload_bytes = payload_bytes;
        self
    }
}

/// The unified adaptation policy: monitor thresholds, the resilient
/// selector chain, switch hysteresis, and (optionally) online training,
/// behind one builder.
///
/// ```
/// use adamant::prelude::*;
///
/// let policy = AdaptivePolicy::new(MetricKind::ReLate2)
///     .with_thresholds(MonitorThresholds::default())
///     .with_backoff(SimDuration::from_secs(2), SimDuration::from_secs(16));
/// let env = Environment::new(
///     MachineClass::Pc3000,
///     BandwidthClass::Gbps1,
///     DdsImplementation::OpenSplice,
///     3,
/// );
/// // With no models attached the chain answers the safe default.
/// let choice = policy.select(&env, &AppParams::new(2, 50));
/// assert_eq!(choice.protocol, ResilientSelector::fallback_protocol());
/// ```
#[derive(Debug, Clone)]
pub struct AdaptivePolicy {
    selector: ResilientSelector,
    thresholds: MonitorThresholds,
    min_dwell: SimDuration,
    max_backoff: SimDuration,
    online: Option<OnlineTrainingConfig>,
}

impl AdaptivePolicy {
    /// A policy optimising `metric` with default thresholds and backoff
    /// (2 s dwell doubling to 16 s) and no models yet.
    pub fn new(metric: MetricKind) -> Self {
        Self::from_selector(ResilientSelector::new(metric))
    }

    /// Wraps an existing selector chain.
    pub fn from_selector(selector: ResilientSelector) -> Self {
        AdaptivePolicy {
            selector,
            thresholds: MonitorThresholds::default(),
            min_dwell: SimDuration::from_secs(2),
            max_backoff: SimDuration::from_secs(16),
            online: None,
        }
    }

    /// Adds a trained ANN trusted only when its output margin reaches
    /// `confidence_floor`.
    pub fn with_ann(mut self, selector: ProtocolSelector, confidence_floor: f64) -> Self {
        self.selector = self.selector.with_ann(selector, confidence_floor);
        self
    }

    /// Adds the decision-tree fallback consulted when the ANN is absent or
    /// unsure.
    pub fn with_tree(mut self, tree: TreeSelector) -> Self {
        self.selector = self.selector.with_tree(tree);
        self
    }

    /// Overrides the degradation-alarm thresholds.
    pub fn with_thresholds(mut self, thresholds: MonitorThresholds) -> Self {
        self.thresholds = thresholds;
        self
    }

    /// Overrides the switch dwell and backoff cap.
    ///
    /// # Panics
    ///
    /// Panics if `min_dwell` is zero or exceeds `max_backoff` (validated
    /// eagerly so a misconfigured policy fails at build time, not
    /// mid-stream).
    pub fn with_backoff(mut self, min_dwell: SimDuration, max_backoff: SimDuration) -> Self {
        // Construct once to run SwitchBackoff's validation now.
        let _ = SwitchBackoff::new(min_dwell, max_backoff);
        self.min_dwell = min_dwell;
        self.max_backoff = max_backoff;
        self
    }

    /// Enables online training: feed per-window observations into a
    /// feedback ring and periodically hot-swap vetted candidate models
    /// into the live chain.
    pub fn with_online_training(mut self, config: OnlineTrainingConfig) -> Self {
        self.online = Some(config);
        self
    }

    /// The metric the policy optimises.
    pub fn metric(&self) -> MetricKind {
        self.selector.metric()
    }

    /// The underlying selector chain.
    pub fn selector(&self) -> &ResilientSelector {
        &self.selector
    }

    /// Whether online training is enabled.
    pub fn online_training(&self) -> Option<&OnlineTrainingConfig> {
        self.online.as_ref()
    }

    /// Answers one selection query through the fallback chain.
    pub fn select(&self, env: &Environment, app: &AppParams) -> ResilientChoice {
        self.selector.select(env, app)
    }

    /// Runs `stream` on `initial`, applying `plan`'s faults at their
    /// scheduled instants, until the stream completes (plus grace) — the
    /// closed monitor → probe → select → reconfigure loop, with the online
    /// learn → vet → hot-swap path layered on when configured.
    ///
    /// The topic uses the time-critical QoS profile, which every candidate
    /// protocol satisfies — a healing switch must never be vetoed by QoS
    /// validation.
    ///
    /// # Panics
    ///
    /// Panics if `initial` cannot carry a time-critical topic (e.g. plain
    /// UDP), or if a fault crashes the session's *sender* (warm-standby
    /// failover lives in `adamant-transport`, not in this loop).
    pub fn run_stream(
        &self,
        stream: &StreamConfig,
        initial: TransportConfig,
        mut plan: FaultPlan,
    ) -> HealingOutcome {
        let cfg = *stream;
        let qos = QosProfile::time_critical();
        let mut participant = DomainParticipant::new(0, cfg.env.dds);
        let topic = participant
            .create_topic::<[u8; 12]>("adamant/self-healing", qos)
            .expect("fresh participant has no topics");
        let host = cfg.env.host_config();
        participant
            .create_data_writer(
                topic,
                qos,
                AppSpec::at_rate(cfg.samples, cfg.app.rate_hz as f64, cfg.payload_bytes),
                host,
            )
            .expect("topic has no writer yet");
        for _ in 0..cfg.app.receivers {
            participant
                .create_data_reader(topic, qos, host, cfg.env.drop_probability())
                .expect("reader creation is infallible here");
        }

        let mut sim = Simulation::new(cfg.seed).with_network(cfg.env.network_config());
        if cfg.observe {
            sim.set_obs_sink(MemorySink::new());
        }
        let mut handles = participant
            .install(&mut sim, topic, initial)
            .expect("initial transport must satisfy time-critical qos");

        let receiver_count = handles.receivers.len() as u64;
        let mut live = self.selector.clone();
        let mut trainer = self.online.map(OnlineTrainer::new);
        let mut windows_since_retrain = 0u32;
        let mut swaps = 0u64;
        let mut monitor = QosMonitor::new(self.thresholds);
        let mut backoff = SwitchBackoff::new(self.min_dwell, self.max_backoff);
        let mut current = initial.kind;
        // Reception logs die with their agents on a switch; everything a
        // dead incarnation delivered is harvested here first, per reader.
        let mut harvested: Vec<(Vec<Delivery>, u64)> =
            vec![(Vec::new(), 0); handles.receivers.len()];
        let mut published_before = 0u64;
        let mut schedule: Vec<u64> = Vec::new();
        let mut last_published_total = 0u64;
        let mut windows: Vec<WindowQos> = Vec::new();
        let mut switches: Vec<SwitchRecord> = Vec::new();
        let mut suppressed_switches = 0u64;

        let per_window = (cfg.app.rate_hz as f64 * cfg.window.as_secs_f64()).max(1.0);
        let publish_windows = (cfg.samples as f64 / per_window).ceil() as usize + 1;
        let grace_windows = cfg.grace.as_nanos().div_ceil(cfg.window.as_nanos()) as usize;
        // Switches stretch the stream, but never unboundedly: cap the loop
        // well past any legitimate completion.
        let max_windows = 4 * (publish_windows + grace_windows) + 8;
        let mut publish_done_at: Option<usize> = None;

        for i in 0..max_windows {
            // Windows are [start, end): measure just shy of the boundary
            // so an event landing exactly on it is accounted — by both the
            // publication schedule and the delivery fold — to the next
            // window, matching `windowed_qos`'s assignment.
            let window_end = SimTime::ZERO + cfg.window * (i as u64 + 1);
            let measure_at = SimTime::from_nanos(window_end.as_nanos() - 1);
            plan.run_until(&mut sim, measure_at);

            let published_total = published_before + ant::published_count(&sim, &handles);
            schedule.push((published_total - last_published_total) * receiver_count);
            last_published_total = published_total;

            let pooled = pooled_deliveries(&sim, &handles, &harvested);
            let window = windowed_qos(&pooled, &schedule, cfg.window)[i];
            windows.push(window);

            // Grace windows publish nothing and would read as zero
            // reliability; only live windows feed the monitor.
            if window.published > 0 && monitor.observe_window(&window) {
                sim.emit(ObsEvent::HealAlarm { window: i as u32 });
                let remaining = cfg.samples.saturating_sub(published_total);
                let probed = probe_environment(&cfg.env, &sim, &handles, &pooled, &window);
                sim.emit(ObsEvent::HealProbe {
                    loss_percent: probed.loss_percent,
                });
                let choice = live.select(&probed, &cfg.app);
                sim.emit(ObsEvent::HealDecision {
                    source: choice.source.code(),
                    protocol: choice.protocol.code(),
                });
                if choice.protocol != current && remaining > 0 {
                    if backoff.may_switch(sim.now()) {
                        for (slot, &node) in harvested.iter_mut().zip(&handles.receivers) {
                            if !sim.is_crashed(node) {
                                let r = ant::reader(&sim, &handles, node);
                                slot.0.extend_from_slice(r.log().deliveries());
                                slot.1 += r.duplicates();
                            }
                        }
                        published_before = published_total;
                        let from = current;
                        handles = participant
                            .reinstall(
                                &mut sim,
                                topic,
                                &handles,
                                TransportConfig::new(choice.protocol),
                                remaining,
                            )
                            .expect("candidate protocols satisfy time-critical qos");
                        current = choice.protocol;
                        backoff.record_switch(sim.now());
                        sim.emit(ObsEvent::HealSwitch {
                            from: from.code(),
                            to: current.code(),
                            source: choice.source.code(),
                        });
                        switches.push(SwitchRecord {
                            at: sim.now(),
                            from,
                            to: current,
                            source: choice.source,
                            probed,
                        });
                    } else {
                        suppressed_switches += 1;
                        sim.emit(ObsEvent::HealSuppressed {
                            want: choice.protocol.code(),
                        });
                    }
                }
            }

            // The online feedback path: every published window becomes one
            // shard observation; on cadence, a vetted candidate hot-swaps
            // into the live chain. The swap changes only future answers —
            // protocol changes still go through the alarm path above.
            if let Some(tr) = trainer.as_mut() {
                if window.published > 0 {
                    if let Some(class) = class_index(current) {
                        let observed =
                            probe_environment(&cfg.env, &sim, &handles, &pooled, &window);
                        tr.observe(QosObservation {
                            env: observed,
                            app: cfg.app,
                            metric: live.metric(),
                            class,
                            window,
                        });
                        windows_since_retrain += 1;
                        if windows_since_retrain >= tr.config.cadence_windows {
                            windows_since_retrain = 0;
                            if let Some(candidate) = tr.maybe_retrain(live.ann()) {
                                live.replace_ann(candidate);
                                swaps += 1;
                            }
                        }
                    }
                }
            }

            if publish_done_at.is_none() && published_total >= cfg.samples {
                publish_done_at = Some(i);
            }
            if let Some(done) = publish_done_at {
                if i - done >= grace_windows {
                    break;
                }
            }
        }

        for (slot, &node) in harvested.iter_mut().zip(&handles.receivers) {
            if !sim.is_crashed(node) {
                let r = ant::reader(&sim, &handles, node);
                slot.0.extend_from_slice(r.log().deliveries());
                slot.1 += r.duplicates();
            }
        }
        let mut builder = QosReport::builder(cfg.samples, handles.receivers.len() as u32);
        for (deliveries, duplicates) in &harvested {
            builder.add_receiver(deliveries, *duplicates);
        }
        builder
            .wire(
                sim.stats().bytes_per_second(),
                sim.stats().total_bytes_delivered(),
            )
            .duration_secs(sim.now().as_secs_f64());

        let mut online = trainer
            .as_ref()
            .map(OnlineTrainer::stats)
            .unwrap_or_default();
        online.swaps = swaps;

        HealingOutcome {
            windows,
            alarms: monitor.alarms(),
            switches,
            suppressed_switches,
            initial_protocol: initial.kind,
            final_protocol: current,
            report: builder.finish(),
            trace: sim.take_obs_events(),
            online,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::BandwidthClass;
    use crate::selector::SelectorConfig;
    use adamant_dds::DdsImplementation;
    use adamant_netsim::MachineClass;
    use adamant_transport::ProtocolKind;

    fn qos_window(latency_us: f64, published: u64, delivered: u64) -> WindowQos {
        WindowQos {
            start: SimTime::ZERO,
            length: SimDuration::from_secs(1),
            published,
            delivered,
            avg_latency_us: latency_us,
            jitter_us: 0.0,
        }
    }

    fn env_with_loss(loss: u8, bandwidth: BandwidthClass) -> Environment {
        Environment::new(
            MachineClass::Pc3000,
            bandwidth,
            DdsImplementation::OpenSplice,
            loss,
        )
    }

    fn obs(env: Environment, class: usize, latency_us: f64) -> QosObservation {
        QosObservation {
            env,
            app: AppParams::new(2, 100),
            metric: MetricKind::ReLate2,
            class,
            window: qos_window(latency_us, 100, 100),
        }
    }

    /// Fills a ring with a loss-dependent truth across a grid of
    /// environments (one group per env): under light loss class 0 wins,
    /// under heavy loss class 3 does — a pattern a trained model recalls
    /// but a constant guess cannot.
    fn drifted_observations(trainer: &mut OnlineTrainer) {
        for bandwidth in BandwidthClass::all() {
            for loss in 1..=8u8 {
                let env = env_with_loss(loss, bandwidth);
                let (slow, fast) = if loss <= 4 { (3, 0) } else { (0, 3) };
                for rep in 0..3u64 {
                    trainer.observe(obs(env, slow, 9_000.0 + rep as f64));
                    trainer.observe(obs(env, fast, 700.0 + rep as f64));
                }
            }
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut ring = FeedbackRing::new(4);
        for i in 0..6u64 {
            ring.push(obs(env_with_loss(1, BandwidthClass::Gbps1), 0, i as f64));
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.pushed(), 6);
        assert_eq!(ring.dropped(), 2);
        // The survivors are the newest four.
        let ds = ring.fold();
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn fold_labels_the_best_observed_class() {
        let mut ring = FeedbackRing::new(64);
        let env = env_with_loss(5, BandwidthClass::Gbps1);
        ring.push(obs(env, 0, 9_000.0));
        ring.push(obs(env, 0, 11_000.0));
        ring.push(obs(env, 3, 800.0));
        let ds = ring.fold();
        assert_eq!(ds.len(), 1);
        let row = &ds.rows[0];
        assert_eq!(row.best_class, 3);
        assert_eq!(row.scores[0], 10_000.0);
        assert_eq!(row.scores[3], 800.0);
        // Unobserved classes can never become the label.
        assert!(row.scores[1].is_infinite());
    }

    #[test]
    fn zero_delivery_windows_score_worst() {
        let mut ring = FeedbackRing::new(64);
        let env = env_with_loss(5, BandwidthClass::Gbps1);
        let mut dead = obs(env, 0, 0.0);
        dead.window = qos_window(0.0, 100, 0);
        ring.push(dead);
        // A protocol that delivered slowly still beats one that delivered
        // nothing at all.
        ring.push(obs(env, 3, 500_000.0));
        let ds = ring.fold();
        assert_eq!(ds.rows[0].best_class, 3);
        assert!(ds.rows[0].scores[0] > ds.rows[0].scores[3]);
    }

    #[test]
    fn trainer_waits_for_enough_rows() {
        let mut trainer = OnlineTrainer::new(OnlineTrainingConfig::default());
        trainer.observe(obs(env_with_loss(1, BandwidthClass::Gbps1), 0, 500.0));
        assert!(trainer.maybe_retrain(None).is_none());
        assert_eq!(trainer.stats().retrains, 0);
    }

    #[test]
    fn trainer_learns_the_drifted_pattern() {
        let mut trainer = OnlineTrainer::new(OnlineTrainingConfig::default());
        drifted_observations(&mut trainer);
        let candidate = trainer
            .maybe_retrain(None)
            .expect("candidate beats an absent live model");
        let stats = trainer.stats();
        assert_eq!(stats.retrains, 1);
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.rejected, 0);
        let selection = candidate.select(
            &env_with_loss(7, BandwidthClass::Gbps1),
            &AppParams::new(2, 100),
            MetricKind::ReLate2,
        );
        assert_eq!(
            selection.protocol,
            candidate_protocols()[3],
            "candidate should recommend the class the fleet measured best"
        );
    }

    #[test]
    fn regressing_candidate_is_rejected_by_the_holdout_gate() {
        // The live model is trained well on exactly the rows the ring
        // folds to; the trainer is crippled (two hidden nodes, one epoch),
        // so its candidate must score worse on the holdout and be refused.
        let mut trainer = OnlineTrainer::new(OnlineTrainingConfig {
            hidden_nodes: 2,
            train: TrainParams {
                max_epochs: 1,
                ..TrainParams::default()
            },
            round_epochs: 1,
            patience: 1,
            ..OnlineTrainingConfig::default()
        });
        drifted_observations(&mut trainer);
        let folded = trainer.ring().fold();
        let (live, _) = ProtocolSelector::train_from(&folded, &SelectorConfig::default());
        assert!(
            live.evaluate_on(&folded).accuracy() > 0.9,
            "live model must be competent for the gate to bite"
        );
        assert!(
            trainer.maybe_retrain(Some(&live)).is_none(),
            "an under-trained candidate must not replace a good live model"
        );
        let stats = trainer.stats();
        assert_eq!(stats.retrains, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.accepted, 0);
    }

    #[test]
    fn policy_builder_composes_and_answers() {
        let policy = AdaptivePolicy::new(MetricKind::ReLate2)
            .with_thresholds(MonitorThresholds::default())
            .with_backoff(SimDuration::from_secs(1), SimDuration::from_secs(4));
        assert_eq!(policy.metric(), MetricKind::ReLate2);
        assert!(policy.online_training().is_none());
        let choice = policy.select(
            &env_with_loss(5, BandwidthClass::Gbps1),
            &AppParams::new(2, 100),
        );
        assert_eq!(choice.protocol, ResilientSelector::fallback_protocol());
    }

    #[test]
    #[should_panic(expected = "dwell time")]
    fn policy_rejects_zero_dwell_at_build_time() {
        let _ = AdaptivePolicy::new(MetricKind::ReLate2)
            .with_backoff(SimDuration::ZERO, SimDuration::from_secs(1));
    }

    #[test]
    fn run_stream_matches_the_legacy_session() {
        // The policy-driven loop is the legacy loop, moved: identical
        // configuration must produce an identical outcome (including the
        // structured trace) when online training is off.
        let env = env_with_loss(2, BandwidthClass::Gbps1);
        let app = AppParams::new(2, 100);
        let plan = |_: ()| {
            FaultPlan::new().set_network_at(
                SimTime::from_secs(2),
                env_with_loss(9, BandwidthClass::Gbps1).network_config(),
            )
        };
        let initial = TransportConfig::new(ProtocolKind::Nakcast {
            timeout: SimDuration::from_millis(50),
        });

        let policy = AdaptivePolicy::new(MetricKind::ReLate2);
        let stream = StreamConfig::new(env, app, 600, 7).with_observation();
        let new = policy.run_stream(&stream, initial, plan(()));

        #[allow(deprecated)]
        let old = {
            let config = crate::healing::HealingConfig::new(env, app, 600, 7).with_observation();
            crate::healing::SelfHealingSession::new(
                config,
                ResilientSelector::new(MetricKind::ReLate2),
            )
            .run(initial, plan(()))
        };
        assert_eq!(new, old);
        assert_eq!(new.online, OnlineStats::default());
    }

    #[test]
    fn online_run_observes_the_stream() {
        let env = env_with_loss(2, BandwidthClass::Gbps1);
        let app = AppParams::new(2, 100);
        let policy =
            AdaptivePolicy::new(MetricKind::ReLate2).with_online_training(OnlineTrainingConfig {
                cadence_windows: 2,
                ..OnlineTrainingConfig::default()
            });
        let stream = StreamConfig::new(env, app, 400, 11);
        let initial = TransportConfig::new(ResilientSelector::fallback_protocol());
        let outcome = policy.run_stream(&stream, initial, FaultPlan::new());
        assert!(outcome.online.observations > 0);
        assert_eq!(outcome.online.dropped, 0);
        // One protocol observed per group: retrains may trigger, but a
        // single-class fold can never mislabel, and no switch is possible
        // without an alarm.
        assert_eq!(outcome.switches.len(), 0);
    }
}

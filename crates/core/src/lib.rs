//! # adamant
//!
//! **ADAMANT** (*ADAptive Middleware And Network Transports*): autonomic
//! configuration of QoS-enabled DDS pub/sub middleware for cloud computing
//! environments via supervised machine learning — a Rust reproduction of
//! Hoffert, Schmidt, and Gokhale, *"Adapting Distributed Real-Time and
//! Embedded Pub/Sub Middleware for Cloud Computing Environments"*
//! (Middleware 2010).
//!
//! ## The control flow (paper Fig. 3)
//!
//! 1. **Probe** the provisioned resources ([`probe`]): CPU class and link
//!    bandwidth, from `/proc/cpuinfo` on a real host or a
//!    [`SimulatedCloud`].
//! 2. **Encode** the environment (Table 1), application parameters
//!    (Table 2), and the composite QoS metric of interest into ANN
//!    features ([`features`]).
//! 3. **Select** the transport protocol with the trained neural network
//!    ([`ProtocolSelector`]) — in microseconds, with input-independent
//!    cost.
//! 4. **Configure** the DDS middleware through the ANT framework with the
//!    chosen protocol and run the session ([`Scenario::run`]).
//!
//! ## Quick taste
//!
//! ```
//! use adamant::{
//!     AppParams, BandwidthClass, Environment, ProtocolSelector, Scenario, SelectorConfig,
//! };
//! use adamant::dataset::{DatasetRow, LabeledDataset};
//! use adamant_dds::DdsImplementation;
//! use adamant_metrics::MetricKind;
//! use adamant_netsim::MachineClass;
//! use adamant_transport::TransportConfig;
//!
//! // A toy dataset: fast machines prefer Ricochet (class 4), slow ones
//! // NAKcast 1 ms (class 3). Real training data comes from the sweep in
//! // `adamant-experiments`.
//! let rows: Vec<DatasetRow> = MachineClass::all()
//!     .into_iter()
//!     .flat_map(|machine| {
//!         (1..=5u8).map(move |loss| DatasetRow {
//!             env: Environment::new(
//!                 machine,
//!                 BandwidthClass::Gbps1,
//!                 DdsImplementation::OpenSplice,
//!                 loss,
//!             ),
//!             app: AppParams::new(3, 25),
//!             metric: MetricKind::ReLate2,
//!             best_class: if machine == MachineClass::Pc3000 { 4 } else { 3 },
//!             scores: vec![0.0; 6],
//!         })
//!     })
//!     .collect();
//! let dataset = LabeledDataset { rows };
//!
//! let (selector, _) = ProtocolSelector::train_from(&dataset, &SelectorConfig::default());
//! let env = Environment::new(
//!     MachineClass::Pc3000,
//!     BandwidthClass::Gbps1,
//!     DdsImplementation::OpenSplice,
//!     5,
//! );
//! let selection = selector.select(&env, &AppParams::new(3, 25), MetricKind::ReLate2);
//!
//! // Run the configured session end to end on the simulated cloud.
//! let report = Scenario::paper(env, AppParams::new(3, 25), 42)
//!     .with_samples(200)
//!     .run(TransportConfig::new(selection.protocol));
//! assert!(report.reliability() > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adamant;
pub mod adaptive;
pub mod dataset;
mod env;
pub mod features;
mod healing;
pub mod policy;
pub mod prelude;
pub mod probe;
mod runner;
mod selector;
mod timing;

pub use crate::adamant::{Adamant, Configuration};
pub use adaptive::{
    AdaptationDecision, AdaptiveController, AdaptiveTimeline, MonitorThresholds, Phase,
    PhaseOutcome, QosMonitor,
};
pub use dataset::{best_class_with_margin, DatasetRow, LabeledDataset, LABEL_MARGIN};
pub use env::{AppParams, BandwidthClass, Environment};
#[allow(deprecated)]
pub use healing::{HealingConfig, SelfHealingSession};
pub use healing::{
    HealingOutcome, ResilientChoice, ResilientSelector, SelectorSource, SwitchBackoff, SwitchRecord,
};
pub use policy::{
    AdaptivePolicy, FeedbackRing, OnlineStats, OnlineTrainer, OnlineTrainingConfig, QosObservation,
    StreamConfig,
};
pub use probe::{LinuxProcProbe, ProbedResources, ResourceProbe, SimulatedCloud};
pub use runner::Scenario;
pub use selector::{
    Choice, FeatureRow, ProtocolSelector, Selection, SelectorConfig, TableSelector, TreeSelector,
};
pub use timing::QueryCostModel;

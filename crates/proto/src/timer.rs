//! Shared timer substrate: the hierarchical calendar queue and the
//! [`TimerWheel`] drivers hang protocol timers on.
//!
//! The [`CalendarQueue`] started life inside `adamant-netsim` as the event
//! queue of the discrete-event engine; it was hoisted here so the real-UDP
//! runtime (`adamant-rt`) schedules its timers through the exact same
//! structure the simulator uses — O(1) amortized push/pop into the current
//! window, recycled bucket storage, and a deterministic `(time, seq)` FIFO
//! ordering contract. `adamant-netsim` re-exports it unchanged.
//!
//! [`TimerWheel`] specialises the queue for protocol timers: entries are
//! `(owner, TimerToken, tag)` triples keyed by [`TimePoint`], with O(1)
//! cancellation. One wheel serves many protocol cores (a runtime worker
//! owns one wheel for its whole shard of endpoints); the `owner` index
//! says which core a fired timer belongs to.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet, VecDeque};

use crate::core::TimerToken;
use crate::time::TimePoint;

/// One queued entry: a payload with its `(time, seq)` priority key.
#[derive(Debug)]
struct Entry<T> {
    time: u64,
    seq: u64,
    item: T,
}

impl<T> Entry<T> {
    #[inline]
    fn key(&self) -> (u64, u64) {
        (self.time, self.seq)
    }
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

/// Default bucket width: 2^18 ns ≈ 262 µs per bucket — wide enough that
/// LAN-scale hops (tens of µs) mostly stay within the cursor's bucket,
/// keeping bucket loads rare, while cohorts stay small enough to sort
/// cheaply.
const DEFAULT_BUCKET_SHIFT: u32 = 18;
/// Default ring size: 1024 buckets ≈ a 268 ms "year" before overflow.
const DEFAULT_BUCKETS: usize = 1024;

/// A deterministic min-priority calendar queue keyed on `u64` timestamps.
///
/// Entries pop in ascending `(time, seq)` order, where `seq` is the
/// push-order sequence number assigned by the queue — so entries scheduled
/// for the same instant pop in FIFO order. This is the exact ordering
/// contract the simulation engine's determinism rests on.
///
/// # Structure
///
/// Three tiers, by distance from the drain cursor:
///
/// 1. **`active`** — the bucket currently being drained, kept sorted; pops
///    are O(1) from its front, and late entries that land at or before the
///    cursor are merged in by binary search.
/// 2. **ring buckets** — `buckets` fixed-width windows of `2^shift` ns
///    each, unsorted until their turn comes (one `sort_unstable` per bucket
///    per drain).
/// 3. **`overflow`** — a binary heap for entries beyond the ring's horizon,
///    migrated into the ring as the cursor advances.
///
/// All bucket storage is recycled between drains: once warmed up, a
/// steady-state push/pop workload performs **zero heap allocations**.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    /// log2 of the bucket width in timestamp units.
    shift: u32,
    /// `buckets.len() - 1`; bucket count is a power of two.
    mask: u64,
    /// Absolute index (time >> shift) of the bucket drained into `active`.
    cursor: u64,
    /// The current bucket's entries, sorted ascending by `(time, seq)`.
    active: VecDeque<Entry<T>>,
    /// The ring: bucket for absolute index `b` lives at `b & mask`.
    buckets: Vec<Vec<Entry<T>>>,
    /// Total entries across all ring buckets (excluding `active`).
    ring_len: usize,
    /// Entries at least a full ring beyond the cursor.
    overflow: BinaryHeap<std::cmp::Reverse<Entry<T>>>,
    /// Recycled bucket storage, swapped into a bucket when it is drained.
    spare: Vec<Entry<T>>,
    next_seq: u64,
    len: usize,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// Creates a queue with the default geometry (1024 buckets of
    /// 2^18 = 262 144 timestamp units each).
    pub fn new() -> Self {
        Self::with_geometry(DEFAULT_BUCKET_SHIFT, DEFAULT_BUCKETS)
    }

    /// Creates a queue with `buckets` ring buckets (a power of two, at
    /// least 2) each spanning `2^shift` timestamp units. Smaller
    /// geometries exercise the overflow and year-wrap paths; the defaults
    /// suit nanosecond simulation timestamps.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is not a power of two ≥ 2 or `shift` ≥ 64.
    pub fn with_geometry(shift: u32, buckets: usize) -> Self {
        assert!(
            buckets.is_power_of_two() && buckets >= 2,
            "bucket count must be a power of two >= 2, got {buckets}"
        );
        assert!(shift < 64, "bucket shift must be < 64, got {shift}");
        CalendarQueue {
            shift,
            mask: (buckets - 1) as u64,
            cursor: 0,
            active: VecDeque::new(),
            buckets: std::iter::repeat_with(Vec::new).take(buckets).collect(),
            ring_len: 0,
            overflow: BinaryHeap::new(),
            spare: Vec::new(),
            next_seq: 0,
            len: 0,
        }
    }

    /// Number of ring buckets.
    #[inline]
    fn ring_size(&self) -> u64 {
        self.mask + 1
    }

    /// Schedules `item` at `time`. Returns the tie-break sequence number:
    /// strictly increasing across pushes, so same-time entries pop in push
    /// order.
    pub fn push(&mut self, time: u64, item: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry { time, seq, item };
        let abs = time >> self.shift;
        if abs <= self.cursor {
            // At or before the bucket being drained (zero-delay timers,
            // same-window sends): merge into the sorted active run. The new
            // entry's seq exceeds every queued one, so same-time entries
            // keep FIFO order.
            let idx = self.active.partition_point(|e| e.key() < (time, seq));
            self.active.insert(idx, entry);
        } else if abs - self.cursor <= self.mask {
            self.buckets[(abs & self.mask) as usize].push(entry);
            self.ring_len += 1;
        } else {
            self.overflow.push(std::cmp::Reverse(entry));
        }
        self.len += 1;
        seq
    }

    /// Removes and returns the earliest entry as `(time, seq, item)`.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        self.prepare_front();
        let entry = self.active.pop_front()?;
        self.len -= 1;
        Some((entry.time, entry.seq, entry.item))
    }

    /// The timestamp of the earliest pending entry. Takes `&mut self`
    /// because it may advance the drain cursor to find it.
    pub fn peek_time(&mut self) -> Option<u64> {
        self.prepare_front();
        self.active.front().map(|e| e.time)
    }

    /// The earliest pending entry as `(time, seq, &item)`, without
    /// removing it. Takes `&mut self` for the same reason as
    /// [`peek_time`](Self::peek_time).
    pub fn peek(&mut self) -> Option<(u64, u64, &T)> {
        self.prepare_front();
        self.active.front().map(|e| (e.time, e.seq, &e.item))
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Ensures the earliest pending entry (if any) sits at the front of
    /// `active`, advancing the cursor across empty buckets and migrating
    /// overflow entries that come within the ring's horizon.
    fn prepare_front(&mut self) {
        while self.active.is_empty() && self.len > 0 {
            if self.ring_len == 0 {
                // Everything pending is in the overflow heap: jump the
                // cursor straight to the earliest entry's bucket instead of
                // scanning a whole empty ring.
                let earliest = self
                    .overflow
                    .peek()
                    .expect("len > 0 with empty ring and active")
                    .0
                    .time
                    >> self.shift;
                debug_assert!(earliest > self.cursor);
                self.cursor = earliest;
            } else {
                self.cursor += 1;
            }
            self.migrate_overflow();
            let slot = (self.cursor & self.mask) as usize;
            if !self.buckets[slot].is_empty() {
                self.load(slot);
            }
        }
    }

    /// Moves overflow entries that now fall within the ring's horizon into
    /// their ring buckets. Called after every cursor change, which keeps
    /// the invariant that overflow entries are at least a full ring away.
    fn migrate_overflow(&mut self) {
        let horizon = self.cursor + self.ring_size();
        while let Some(std::cmp::Reverse(e)) = self.overflow.peek() {
            let abs = e.time >> self.shift;
            if abs >= horizon {
                break;
            }
            debug_assert!(abs >= self.cursor);
            let std::cmp::Reverse(entry) = self.overflow.pop().expect("peeked entry");
            self.buckets[(abs & self.mask) as usize].push(entry);
            self.ring_len += 1;
        }
    }

    /// Sorts ring bucket `slot` and makes it the active drain run, rotating
    /// the freed storage back into the ring so no buffer is ever dropped.
    fn load(&mut self, slot: usize) {
        debug_assert!(self.active.is_empty());
        let drained = std::mem::take(&mut self.active);
        let refill = std::mem::take(&mut self.spare);
        let mut entries = std::mem::replace(&mut self.buckets[slot], refill);
        self.ring_len -= entries.len();
        // Keys are unique (seq is), so unstable sort is deterministic.
        entries.sort_unstable();
        self.active = VecDeque::from(entries);
        self.spare = Vec::from(drained);
    }
}

/// A timer that came due on a [`TimerWheel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerFire {
    /// The wheel-local owner index supplied when the timer was armed
    /// (which core of the shard it belongs to).
    pub owner: u32,
    /// The token the owning core received from `Env::set_timer`.
    pub token: TimerToken,
    /// The tag the core attached to the timer.
    pub tag: u64,
}

/// A multi-core timer wheel over a [`CalendarQueue`], with O(1) arm and
/// cancel.
///
/// One wheel serves every protocol core of a runtime shard: timers are
/// armed with the wheel-local `owner` index of their core, pop in strict
/// `(deadline, arming order)` across the whole shard, and cancel by
/// `(owner, token)` — tokens are only unique per core, so the owner index
/// disambiguates. Cancelled entries stay queued (cancellation just marks
/// them) and are discarded when their deadline comes around.
#[derive(Debug, Default)]
pub struct TimerWheel {
    queue: CalendarQueue<TimerFire>,
    cancelled: HashSet<(u32, TimerToken)>,
}

impl TimerWheel {
    /// An empty wheel with the default calendar geometry.
    pub fn new() -> Self {
        TimerWheel {
            queue: CalendarQueue::new(),
            cancelled: HashSet::new(),
        }
    }

    /// Arms a timer for core `owner` firing at `at`.
    pub fn arm(&mut self, at: TimePoint, owner: u32, token: TimerToken, tag: u64) {
        self.queue
            .push(at.as_nanos(), TimerFire { owner, token, tag });
    }

    /// Cancels core `owner`'s timer `token` (no-op if it already fired).
    pub fn cancel(&mut self, owner: u32, token: TimerToken) {
        self.cancelled.insert((owner, token));
    }

    /// The deadline of the earliest live timer, discarding any cancelled
    /// entries found at the front (so idle sleeps never wait on a timer
    /// that will not fire).
    pub fn next_deadline(&mut self) -> Option<TimePoint> {
        loop {
            let (time, front_cancelled) = {
                let (time, _, fire) = self.queue.peek()?;
                (time, self.cancelled.contains(&(fire.owner, fire.token)))
            };
            if !front_cancelled {
                return Some(TimePoint::from_nanos(time));
            }
            let (_, _, fire) = self.queue.pop().expect("peeked entry");
            self.cancelled.remove(&(fire.owner, fire.token));
        }
    }

    /// Pops the earliest timer if it is due at `now`, skipping cancelled
    /// entries. Call in a loop until `None` to fire everything due.
    pub fn pop_due(&mut self, now: TimePoint) -> Option<TimerFire> {
        loop {
            let time = self.queue.peek_time()?;
            if time > now.as_nanos() {
                return None;
            }
            let (_, _, fire) = self.queue.pop()?;
            if self.cancelled.remove(&(fire.owner, fire.token)) {
                continue;
            }
            return Some(fire);
        }
    }

    /// Number of queued entries, including not-yet-discarded cancelled ones.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Span;

    #[test]
    fn tiny_geometry_wraps_the_ring() {
        // 4 buckets of 2 units each: an 8-unit year, so this exercises
        // bucket aliasing and overflow migration heavily.
        let mut q = CalendarQueue::with_geometry(1, 4);
        let times = [37u64, 2, 9, 8, 40, 3, 2, 25, 14, 0];
        for &t in &times {
            q.push(t, t);
        }
        let mut sorted = times.to_vec();
        sorted.sort_unstable();
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(t, _, _)| t).collect();
        assert_eq!(popped, sorted);
        assert!(q.is_empty());
    }

    #[test]
    fn calendar_seq_breaks_ties_fifo() {
        let mut q = CalendarQueue::with_geometry(4, 8);
        for item in 0..10u32 {
            q.push(100, item);
        }
        let items: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, _, i)| i).collect();
        assert_eq!(items, (0..10).collect::<Vec<_>>());
    }

    /// Arms timers through a core-side `Env` so wheel tokens are realistic.
    fn tokens(n: usize) -> Vec<TimerToken> {
        use crate::{Effect, EnvHost, Input, NodeId, ProtocolCore};
        struct Armer(usize);
        impl ProtocolCore for Armer {
            fn step(&mut self, _input: Input<'_>, env: &mut crate::Env<'_>) {
                for i in 0..self.0 {
                    env.set_timer(Span::from_micros(i as u64), i as u64);
                }
            }
        }
        let mut host = EnvHost::new(NodeId(0), 1);
        host.step(&mut Armer(n), TimePoint::ZERO, Input::Start)
            .into_iter()
            .filter_map(|e| match e {
                Effect::SetTimer { token, .. } => Some(token),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn wheel_fires_in_deadline_then_arming_order() {
        let toks = tokens(4);
        let mut wheel = TimerWheel::new();
        wheel.arm(TimePoint::from_micros(20), 0, toks[0], 100);
        wheel.arm(TimePoint::from_micros(10), 1, toks[1], 101);
        wheel.arm(TimePoint::from_micros(10), 0, toks[2], 102);
        assert_eq!(wheel.next_deadline(), Some(TimePoint::from_micros(10)));
        assert!(wheel.pop_due(TimePoint::from_micros(5)).is_none());
        let now = TimePoint::from_micros(25);
        let fired: Vec<(u32, u64)> = std::iter::from_fn(|| wheel.pop_due(now))
            .map(|f| (f.owner, f.tag))
            .collect();
        assert_eq!(fired, vec![(1, 101), (0, 102), (0, 100)]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn wheel_cancel_is_per_owner() {
        let toks = tokens(1);
        let mut wheel = TimerWheel::new();
        // Two cores armed the *same* token value (tokens are per-core
        // counters); cancelling owner 0's must not touch owner 1's.
        wheel.arm(TimePoint::from_micros(5), 0, toks[0], 7);
        wheel.arm(TimePoint::from_micros(5), 1, toks[0], 8);
        wheel.cancel(0, toks[0]);
        let now = TimePoint::from_micros(10);
        let fired: Vec<u32> = std::iter::from_fn(|| wheel.pop_due(now))
            .map(|f| f.owner)
            .collect();
        assert_eq!(fired, vec![1]);
    }

    #[test]
    fn wheel_next_deadline_skips_cancelled_front() {
        let toks = tokens(2);
        let mut wheel = TimerWheel::new();
        wheel.arm(TimePoint::from_micros(1), 0, toks[0], 0);
        wheel.arm(TimePoint::from_millis(1), 0, toks[1], 1);
        wheel.cancel(0, toks[0]);
        assert_eq!(wheel.next_deadline(), Some(TimePoint::from_millis(1)));
        let fire = wheel.pop_due(TimePoint::from_millis(2)).expect("fires");
        assert_eq!(fire.tag, 1);
        assert!(wheel.pop_due(TimePoint::from_millis(2)).is_none());
    }
}

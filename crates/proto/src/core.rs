//! The sans-I/O protocol contract: typed inputs in, typed effects out.
//!
//! A [`ProtocolCore`] is a pure state machine. It owns no sockets, reads no
//! clock, and spawns no timers — the driver feeds it [`Input`]s (each
//! stamped with the driver's current time) and collects the [`Effect`]s it
//! wants performed. The same core therefore runs unchanged under the
//! deterministic simulator (`adamant-netsim`), over real UDP sockets
//! (`adamant-rt`), or inside a test harness that replays a canned schedule.
//!
//! Determinism contract: given the same input sequence, the same entropy
//! stream, and the same membership view, a core must produce a
//! bit-identical effect stream. The property tests in this crate's
//! consumers enforce exactly that.

use crate::event::ProtoEvent;
use crate::ids::{Destination, GroupId, NodeId, ProcessingCost};
use crate::rng::{DetRng, Entropy};
use crate::time::{Span, TimePoint};
use crate::wire::WireMsg;

/// One typed input delivered to a protocol core by its driver.
#[derive(Debug)]
pub enum Input<'a> {
    /// The core was just installed; runs once before any other input.
    Start,
    /// A wire message arrived from `src`.
    PacketIn {
        /// The sending endpoint.
        src: NodeId,
        /// The decoded message (borrowed; cores clone what they keep).
        msg: &'a WireMsg,
    },
    /// A timer previously requested via [`Effect::SetTimer`] fired.
    TimerFired {
        /// The token the core received when it set the timer.
        token: TimerToken,
        /// The tag the core attached to the timer.
        tag: u64,
    },
    /// A driver liveness poll carrying nothing but the current time; cores
    /// with no periodic work ignore it.
    Tick,
}

/// Handle to a pending timer, allocated by [`Env::set_timer`].
///
/// Tokens are unique per core for the lifetime of the session (a plain
/// counter), so a stale token can never alias a newer timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerToken(u64);

/// One side effect requested by a protocol core.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Transmit `msg` to `dst`.
    Send {
        /// Where the message is headed.
        dst: Destination,
        /// Wire size in bytes (payload plus framing) for the network model.
        size_bytes: u32,
        /// Statistics discriminator.
        tag: u16,
        /// Declared CPU cost for the simulated host model.
        cost: ProcessingCost,
        /// The message itself.
        msg: WireMsg,
    },
    /// Arm a timer firing `delay` from the input's timestamp.
    SetTimer {
        /// Token identifying the timer in a later
        /// [`TimerFired`](Input::TimerFired) or [`Effect::CancelTimer`].
        token: TimerToken,
        /// How far in the future the timer fires.
        delay: Span,
        /// Tag echoed back when the timer fires.
        tag: u64,
    },
    /// Disarm a previously set timer (no-op if already fired).
    CancelTimer {
        /// The timer to disarm.
        token: TimerToken,
    },
    /// Hand a fully recovered, in-order application sample up the stack.
    Deliver {
        /// Application sequence number.
        seq: u64,
        /// When the publisher stamped the sample.
        published_at: TimePoint,
        /// Whether the sample arrived through a recovery path.
        recovered: bool,
    },
    /// Record a protocol-behaviour trace event (only emitted when the
    /// driver declared itself observed).
    Trace(ProtoEvent),
}

/// A driver's view of multicast membership, read-only from the core side.
pub trait Membership {
    /// Current members of `group` (including the local node, if joined).
    fn members(&self, group: GroupId) -> &[NodeId];
}

impl Membership for &[Vec<NodeId>] {
    fn members(&self, group: GroupId) -> &[NodeId] {
        &self[group.index()]
    }
}

impl Membership for Vec<Vec<NodeId>> {
    fn members(&self, group: GroupId) -> &[NodeId] {
        &self[group.index()]
    }
}

/// An empty membership view for cores that never consult groups.
impl Membership for () {
    fn members(&self, _group: GroupId) -> &[NodeId] {
        &[]
    }
}

/// The execution environment a driver lends to a core for one
/// [`step`](ProtocolCore::step): the input's timestamp, the endpoint
/// identity, entropy, membership, and the effect buffer.
pub struct Env<'a> {
    now: TimePoint,
    node: NodeId,
    cpu_scale: f64,
    observed: bool,
    rng: &'a mut dyn Entropy,
    groups: &'a dyn Membership,
    next_timer: &'a mut u64,
    effects: &'a mut Vec<Effect>,
}

impl<'a> Env<'a> {
    /// Assembles an environment for one step. Drivers call this; cores only
    /// consume it.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        now: TimePoint,
        node: NodeId,
        cpu_scale: f64,
        observed: bool,
        rng: &'a mut dyn Entropy,
        groups: &'a dyn Membership,
        next_timer: &'a mut u64,
        effects: &'a mut Vec<Effect>,
    ) -> Self {
        Env {
            now,
            node,
            cpu_scale,
            observed,
            rng,
            groups,
            next_timer,
            effects,
        }
    }

    /// The timestamp of the input being processed.
    pub fn now(&self) -> TimePoint {
        self.now
    }

    /// The endpoint this core runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The CPU scale of the endpoint's machine class (1.0 = reference).
    /// Real-socket drivers report 1.0.
    pub fn cpu_scale(&self) -> f64 {
        self.cpu_scale
    }

    /// Whether anything consumes [`Effect::Trace`]; [`emit`](Self::emit)
    /// is free when this is `false`.
    pub fn observed(&self) -> bool {
        self.observed
    }

    /// The core's entropy stream.
    pub fn rng(&mut self) -> &mut dyn Entropy {
        self.rng
    }

    /// Current members of `group`.
    pub fn members(&self, group: GroupId) -> &'a [NodeId] {
        self.groups.members(group)
    }

    /// Requests transmission of `msg`.
    pub fn send(
        &mut self,
        dst: impl Into<Destination>,
        size_bytes: u32,
        tag: u16,
        cost: ProcessingCost,
        msg: WireMsg,
    ) {
        self.effects.push(Effect::Send {
            dst: dst.into(),
            size_bytes,
            tag,
            cost,
            msg,
        });
    }

    /// Arms a timer firing `delay` from now and returns its token.
    pub fn set_timer(&mut self, delay: Span, tag: u64) -> TimerToken {
        let token = TimerToken(*self.next_timer);
        *self.next_timer += 1;
        self.effects.push(Effect::SetTimer { token, delay, tag });
        token
    }

    /// Disarms `token` (no-op if it already fired).
    pub fn cancel_timer(&mut self, token: TimerToken) {
        self.effects.push(Effect::CancelTimer { token });
    }

    /// Hands a sample up the stack.
    pub fn deliver(&mut self, seq: u64, published_at: TimePoint, recovered: bool) {
        self.effects.push(Effect::Deliver {
            seq,
            published_at,
            recovered,
        });
    }

    /// Records a trace event. The closure runs only when the driver is
    /// observed, so unobserved runs never build events nobody consumes —
    /// and, crucially, never perturb determinism by doing so.
    pub fn emit(&mut self, event: impl FnOnce() -> ProtoEvent) {
        if self.observed {
            self.effects.push(Effect::Trace(event()));
        }
    }

    /// Number of effects currently buffered. Wrapper cores record this
    /// before delegating to an inner core so they can inspect (or veto)
    /// exactly the effects the inner step appended.
    pub fn effects_len(&self) -> usize {
        self.effects.len()
    }

    /// The effects appended since `mark` (a value previously returned by
    /// [`effects_len`](Self::effects_len)).
    pub fn effects_since(&self, mark: usize) -> &[Effect] {
        &self.effects[mark.min(self.effects.len())..]
    }

    /// Retains only the effects appended since `mark` for which `keep`
    /// returns `true`; effects buffered before `mark` are untouched. This
    /// is how wrapper cores suppress an inner core's effects (e.g. a
    /// duplicate delivery across reader incarnations) without the inner
    /// core knowing it is wrapped.
    pub fn retain_effects_since(&mut self, mark: usize, mut keep: impl FnMut(&Effect) -> bool) {
        let mark = mark.min(self.effects.len());
        let mut index = 0usize;
        self.effects.retain(|effect| {
            let kept = index < mark || keep(effect);
            index += 1;
            kept
        });
    }
}

/// A runtime-agnostic protocol state machine.
///
/// `Send + 'static` so drivers can box cores, move them across threads
/// (the real-UDP runtime runs one event loop per endpoint), and downcast
/// them after a run.
pub trait ProtocolCore: Send + 'static {
    /// Consumes one input, appending any requested effects to the
    /// environment's buffer.
    fn step(&mut self, input: Input<'_>, env: &mut Env<'_>);
}

/// A self-contained host for stepping a core outside any driver: owns the
/// entropy stream, the membership table, and the effect buffer. Used by
/// the property tests, the NAK debugging harness, and the `proto_step`
/// micro-benchmark; the real-UDP driver embeds one per endpoint.
#[derive(Debug)]
pub struct EnvHost {
    node: NodeId,
    cpu_scale: f64,
    observed: bool,
    groups: Vec<Vec<NodeId>>,
    rng: DetRng,
    next_timer: u64,
}

impl EnvHost {
    /// A host for `node` with entropy seeded from `seed`, no groups, and
    /// tracing enabled.
    pub fn new(node: NodeId, seed: u64) -> Self {
        EnvHost {
            node,
            cpu_scale: 1.0,
            observed: true,
            groups: Vec::new(),
            rng: DetRng::seed_from_u64(seed),
            next_timer: 0,
        }
    }

    /// Replaces the membership table (builder-style).
    pub fn with_groups(mut self, groups: Vec<Vec<NodeId>>) -> Self {
        self.groups = groups;
        self
    }

    /// Sets whether [`Effect::Trace`] is produced (builder-style).
    pub fn with_observed(mut self, observed: bool) -> Self {
        self.observed = observed;
        self
    }

    /// The endpoint this host represents.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Mutable access to the membership table (mid-session joins/leaves).
    pub fn groups_mut(&mut self) -> &mut Vec<Vec<NodeId>> {
        &mut self.groups
    }

    /// Steps `core` once at `now`, appending its effects to `out`.
    pub fn step_into<C: ProtocolCore + ?Sized>(
        &mut self,
        core: &mut C,
        now: TimePoint,
        input: Input<'_>,
        out: &mut Vec<Effect>,
    ) {
        let mut env = Env::new(
            now,
            self.node,
            self.cpu_scale,
            self.observed,
            &mut self.rng,
            &self.groups,
            &mut self.next_timer,
            out,
        );
        core.step(input, &mut env);
    }

    /// Steps `core` once at `now` and returns the effects it produced.
    pub fn step<C: ProtocolCore + ?Sized>(
        &mut self,
        core: &mut C,
        now: TimePoint,
        input: Input<'_>,
    ) -> Vec<Effect> {
        let mut out = Vec::new();
        self.step_into(core, now, input, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::FinMsg;

    /// Replies to every packet with a FIN and keeps one periodic timer.
    struct Pong {
        period: Span,
        pings: u64,
    }

    impl ProtocolCore for Pong {
        fn step(&mut self, input: Input<'_>, env: &mut Env<'_>) {
            match input {
                Input::Start => {
                    let phase = Span::from_nanos(env.rng().next_below(1_000));
                    env.set_timer(phase, 1);
                }
                Input::PacketIn { src, .. } => {
                    self.pings += 1;
                    env.send(
                        src,
                        64,
                        7,
                        ProcessingCost::FREE,
                        WireMsg::Fin(FinMsg { total: self.pings }),
                    );
                    env.emit(|| ProtoEvent::SampleDuplicate { seq: self.pings });
                }
                Input::TimerFired { tag: 1, .. } => {
                    env.set_timer(self.period, 1);
                }
                Input::TimerFired { .. } | Input::Tick => {}
            }
        }
    }

    #[test]
    fn env_host_steps_and_collects_effects() {
        let mut host = EnvHost::new(NodeId(0), 7);
        let mut core = Pong {
            period: Span::from_millis(1),
            pings: 0,
        };
        let start = host.step(&mut core, TimePoint::ZERO, Input::Start);
        assert_eq!(start.len(), 1);
        let (token, tag) = match start[0] {
            Effect::SetTimer { token, tag, .. } => (token, tag),
            ref other => panic!("unexpected: {other:?}"),
        };
        let msg = WireMsg::Fin(FinMsg { total: 0 });
        let got = host.step(
            &mut core,
            TimePoint::from_micros(5),
            Input::PacketIn {
                src: NodeId(3),
                msg: &msg,
            },
        );
        assert_eq!(got.len(), 2);
        assert!(matches!(
            got[0],
            Effect::Send {
                dst: Destination::Node(NodeId(3)),
                size_bytes: 64,
                tag: 7,
                ..
            }
        ));
        assert_eq!(
            got[1],
            Effect::Trace(ProtoEvent::SampleDuplicate { seq: 1 })
        );
        let again = host.step(
            &mut core,
            TimePoint::from_millis(1),
            Input::TimerFired { token, tag },
        );
        // Re-armed with a fresh token: the counter never reuses one.
        match again[0] {
            Effect::SetTimer { token: t2, .. } => assert_ne!(t2, token),
            ref other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn unobserved_hosts_suppress_trace_effects() {
        let mut host = EnvHost::new(NodeId(0), 7).with_observed(false);
        let mut core = Pong {
            period: Span::from_millis(1),
            pings: 0,
        };
        host.step(&mut core, TimePoint::ZERO, Input::Start);
        let msg = WireMsg::Fin(FinMsg { total: 0 });
        let got = host.step(
            &mut core,
            TimePoint::from_micros(5),
            Input::PacketIn {
                src: NodeId(1),
                msg: &msg,
            },
        );
        assert!(got.iter().all(|e| !matches!(e, Effect::Trace(_))));
    }

    #[test]
    fn identical_hosts_produce_identical_effect_streams() {
        let run = || {
            let mut host = EnvHost::new(NodeId(0), 42);
            let mut core = Pong {
                period: Span::from_millis(1),
                pings: 0,
            };
            let mut all = host.step(&mut core, TimePoint::ZERO, Input::Start);
            let msg = WireMsg::Fin(FinMsg { total: 0 });
            for i in 0..10u64 {
                all.extend(host.step(
                    &mut core,
                    TimePoint::from_micros(i),
                    Input::PacketIn {
                        src: NodeId(1),
                        msg: &msg,
                    },
                ));
            }
            all
        };
        assert_eq!(run(), run());
    }
}
